"""Reliability sweep: fault rate x protocol over the faulty transport.

For every protocol and per-link fault rate (uniform drop + duplicate +
reorder + corrupt), the round over a :class:`FaultyChannel` must return
the byte-identical answer set it returns over a perfect channel with the
same seeds — faults may only add retransmissions, never change answers.
The recorded series quantifies the reliability tax: extra communication
and retransmission counts as the network degrades.
"""

from __future__ import annotations

import numpy as np

from repro.core.group import random_group, run_ppgnn
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt
from repro.errors import TransportError
from repro.transport.channel import FaultyChannel
from repro.transport.faults import FaultPlan
from repro.transport.retry import RetryPolicy
from repro.transport.transport import Transport

RATE_VALUES = [0.0, 0.05, 0.1, 0.2]
RUNNERS = {
    "ppgnn": run_ppgnn,
    "ppgnn-opt": run_ppgnn_opt,
    "naive": run_naive,
}

#: At 20% loss per copy, ten attempts leave ~1e-7 abort odds per message.
POLICY = RetryPolicy(max_attempts=10)


def _run(lsp, runner, group, cfg, seed, transport):
    lsp.reset_rng(4242)
    return runner(lsp, group, cfg, seed=seed, transport=transport)


def test_transport_fault_sweep(lsp, settings, config_factory, recorder, benchmark):
    cfg = config_factory()
    group = random_group(4, lsp.space, np.random.default_rng(settings.seed))
    columns: dict[str, list[str]] = {}
    aborts = 0

    for name, runner in RUNNERS.items():
        baseline = _run(lsp, runner, group, cfg, settings.seed, Transport())
        cells = []
        for rate in RATE_VALUES:
            if rate == 0.0:
                cells.append(f"{baseline.report.total_comm_bytes} B (+0)")
                continue
            plan = FaultPlan.uniform(rate, seed=int(rate * 100))
            transport = Transport(FaultyChannel(plan), POLICY)
            try:
                result = _run(lsp, runner, group, cfg, settings.seed, transport)
            except TransportError:
                aborts += 1  # typed abort: allowed, never a wrong answer
                cells.append("abort")
                continue
            assert result.answer_ids == baseline.answer_ids
            overhead = (
                result.report.total_comm_bytes - baseline.report.total_comm_bytes
            )
            cells.append(
                f"{result.report.total_comm_bytes} B "
                f"(+{overhead}, {transport.stats.retransmissions} retx)"
            )
        columns[name] = cells

    recorder.record(
        "transport_faults",
        "Reliability tax: comm bytes vs per-link fault rate (n=4, 10-attempt cap)",
        "fault rate",
        RATE_VALUES,
        columns,
        notes=(
            f"answers byte-identical to the perfect channel at every rate; "
            f"{aborts} typed aborts across the sweep"
        ),
    )

    plan = FaultPlan.uniform(0.1, seed=1)
    benchmark.pedantic(
        lambda: _run(
            lsp, run_ppgnn, group, cfg, settings.seed,
            Transport(FaultyChannel(plan), POLICY),
        ),
        rounds=1,
        iterations=1,
    )
