"""Closed-loop overload control under a seeded flash crowd.

A 4x burst against a single worker with the controller armed: the loop
must scale out, enter brownout, and *degrade* traffic (smaller k,
quality-scored answers) rather than fail it.  The exact control
timeline — sheds, degrades, brownouts, scale-ups — plus the usual
serving counters freeze into the ``serve-overload`` baseline, so a
change that silently stops the loop from engaging (or makes it drop
queries) trips the perf sentinel.

Runs at a small fixed key size: the scenario is about the *plan-phase*
control dynamics, which are key-size independent; real crypto still
executes every admitted job.
"""

from __future__ import annotations

import pytest

from repro.obs.analyze import SLOPolicy
from repro.serve import ServeConfig, ServeEngine, WorkloadSpec, generate_workload
from repro.serve.control import ControlConfig

KEYSIZE = 128
QUERIES = 40
RATE = 800.0
SPAN = QUERIES / RATE

SPEC = WorkloadSpec(
    queries=QUERIES,
    rate_qps=RATE,
    protocol_mix={"ppgnn": 1.0},
    group_size_mix={2: 1.0},
    k_mix={4: 1.0},
    tenants=("tenant-0", "tenant-1"),
    groups=6,
    seed=20180326,
    burst_multiplier=4.0,
    burst_start=0.25 * SPAN,
    burst_duration=0.5 * SPAN,
)

CONTROL = ControlConfig(
    tick_seconds=SPAN / 20,
    window_seconds=SPAN / 5,
    slo=SLOPolicy(latency_p99=0.05),
    max_workers=4,
    shed_policy="degrade",
    queue_high_fraction=0.1,
)


@pytest.fixture(scope="module")
def overload_report(lsp, settings):
    from conftest import make_config

    config = make_config(settings, d=4, delta=8, k=4, keysize=KEYSIZE)
    serve = ServeConfig(workers=1, obs=True, control=CONTROL)
    return ServeEngine(lsp, config, serve).run(generate_workload(SPEC, lsp.space))


def test_serve_overload_control(overload_report, recorder, sentinel):
    report = overload_report

    # The availability contract: overload degrades, it never breaks.
    assert report.failed == 0
    assert report.completed + report.rejected == QUERIES
    assert report.control is not None, "the flash crowd must engage the loop"
    control = report.control
    assert control["brownouts"] >= 1
    assert control["degraded"] > 0
    assert control["workers"]["final"] > control["workers"]["initial"]

    from repro.bench.sentinel import serving_report_metrics

    metrics = serving_report_metrics(report.to_dict())
    metrics.update(
        {
            "control.ticks": control["ticks"],
            "control.scale_ups": control["scale_ups"],
            "control.policy_switches": control["policy_switches"],
            "control.brownouts": control["brownouts"],
            "control.shed": control["shed"],
            "control.degraded": control["degraded"],
        }
    )
    sentinel.gate(
        "serve-overload",
        metrics,
        keysize=KEYSIZE,
        config={
            "queries": QUERIES,
            "rate_qps": RATE,
            "burst_multiplier": SPEC.burst_multiplier,
            "seed": SPEC.seed,
            "workers": 1,
            "max_workers": CONTROL.max_workers,
            "shed_policy": CONTROL.shed_policy,
        },
    )
    recorder.record_json(
        "serve-overload",
        {
            "queries": QUERIES,
            "rate_qps": RATE,
            "report": report.to_dict(include_wall=True),
        },
        keysize=KEYSIZE,
        config={"seed": SPEC.seed, "workers": 1, "control": True},
        metrics=(report.obs or {}).get("metrics"),
    )
    recorder.note(
        "serve-overload",
        f"{control['degraded']} degraded / {control['shed']} shed of "
        f"{QUERIES}, workers {control['workers']['initial']} -> "
        f"{control['workers']['final']}, p99 {report.latency_p99:.3f}s",
    )


def test_overload_timeline_is_deterministic(overload_report, lsp, settings):
    """The whole controlled run replays bit-for-bit."""
    from conftest import make_config

    config = make_config(settings, d=4, delta=8, k=4, keysize=KEYSIZE)
    serve = ServeConfig(workers=1, obs=True, control=CONTROL)
    again = ServeEngine(lsp, config, serve).run(generate_workload(SPEC, lsp.space))
    assert again.to_dict() == overload_report.to_dict()
