"""Ablation: CRT-accelerated decryption and the omega choice of Section 6.

Two design decisions get quantified here:

1. eps_1 decryption runs through a CRT fast path (half-size exponents and
   moduli per prime factor) — the classic Paillier optimization; the
   generic Damgård–Jurik recursion stays as the reference and as the only
   path for s >= 2.
2. PPGNN-OPT's block count omega: the exact integer optimum of the byte
   model vs the paper's closed form sqrt(delta'/2), swept over omega to
   show the cost curve is convex with the chosen minimum.
"""

from __future__ import annotations

import math
import random
import time

from repro.core.opt import optimal_omega, paper_omega
from repro.crypto.paillier import generate_keypair


def test_ablation_crt_decryption(settings, recorder, benchmark):
    sk, pk = generate_keypair(settings.keysize, seed=settings.seed)
    rng = random.Random(1)
    ciphertexts = [pk.encrypt(rng.randrange(pk.n), rng=rng) for _ in range(60)]

    start = time.perf_counter()
    generic = [sk.decrypt(c, use_crt=False) for c in ciphertexts]
    generic_time = time.perf_counter() - start

    start = time.perf_counter()
    crt = [sk.decrypt(c, use_crt=True) for c in ciphertexts]
    crt_time = time.perf_counter() - start

    assert generic == crt
    recorder.record(
        "ablation_crypto",
        f"Ablation: eps_1 decryption path ({settings.keysize}-bit keys, 60 ops)",
        "path",
        ["generic DJ", "CRT"],
        {
            "time": [f"{generic_time * 1000:.1f} ms", f"{crt_time * 1000:.1f} ms"],
        },
        notes=f"speedup {generic_time / crt_time:.2f}x, outputs identical",
    )
    assert crt_time < generic_time

    benchmark.pedantic(
        lambda: [sk.decrypt(c) for c in ciphertexts[:10]], rounds=3, iterations=1
    )


def test_ablation_omega_sweep(settings, recorder, benchmark):
    """The byte cost over omega is minimized at optimal_omega (Eqn 18)."""
    delta_prime = 101  # the paper-default delta' (n=8, d=25, delta=100)
    m = 3

    def cost_units(omega: int) -> int:
        return 2 * math.ceil(delta_prime / omega) + 3 * omega + 3 * m

    omegas = [1, 2, 4, 6, 8, 10, 12, 16, 24, 32, 64, 101]
    costs = [cost_units(w) for w in omegas]
    best = optimal_omega(delta_prime)
    recorder.record(
        "ablation_crypto",
        f"Ablation: omega sweep at delta'={delta_prime} (cost in keysize/2 units)",
        "omega",
        omegas,
        {"cost": [str(c) for c in costs]},
        notes=(
            f"exact optimum omega={best} (cost {cost_units(best)}); "
            f"paper closed form sqrt(delta'/2) -> {paper_omega(delta_prime)}"
        ),
    )
    assert all(cost_units(best) <= c for c in costs)
    # The paper's approximation lands within a few units of the optimum.
    assert cost_units(paper_omega(delta_prime)) <= cost_units(best) + 6

    benchmark.pedantic(lambda: optimal_omega(delta_prime), rounds=3, iterations=1)
