"""Ablation: dummy-generation strategies (Privacy I quality).

The paper evaluates with uniform dummies and cites PAD [20] and
k-anonymity dummies [22] as pluggable alternatives.  This bench compares
the three strategies in :mod:`repro.dummies` on two Privacy-I-relevant
metrics over many generated location sets:

- *anonymity spread*: the minimum pairwise distance within a location set
  (bigger = the candidate locations cover more ground, PAD's objective),
- *plausibility*: mean distance from a dummy to its nearest real POI
  (smaller = dummies look like places people actually are, [22]'s
  objective).

Protocol costs are identical across strategies (same d locations on the
wire); what changes is the quality of the anonymity set.
"""

from __future__ import annotations

import statistics

import numpy as np

from repro.dummies import (
    POIAwareDummyGenerator,
    PrivacyAreaDummyGenerator,
    UniformDummyGenerator,
)
from repro.gnn.knn import best_first_knn

ROUNDS = 30
SET_SIZE = 25  # the paper-default d


def _min_pairwise(points) -> float:
    return min(
        a.distance_to(b) for i, a in enumerate(points) for b in points[i + 1 :]
    )


def test_ablation_dummy_strategies(lsp, settings, recorder, benchmark):
    generators = {
        "uniform": UniformDummyGenerator(),
        "privacy-area": PrivacyAreaDummyGenerator(),
        "poi-aware": POIAwareDummyGenerator(
            [poi for _, poi in list(lsp.engine.tree.entries())[:2000]]
        ),
    }
    spreads = {}
    plausibility = {}
    for name, generator in generators.items():
        spread_values = []
        nearest_values = []
        for round_idx in range(ROUNDS):
            rng = np.random.default_rng(settings.seed + round_idx)
            dummies = generator.generate(SET_SIZE, lsp.space, rng)
            spread_values.append(_min_pairwise(dummies))
            for dummy in dummies[:5]:
                nearest = best_first_knn(lsp.engine.tree, dummy, 1)[0][0]
                nearest_values.append(dummy.distance_to(nearest))
        spreads[name] = statistics.mean(spread_values)
        plausibility[name] = statistics.mean(nearest_values)

    recorder.record(
        "ablation_dummies",
        f"Ablation: dummy strategies (d={SET_SIZE}, {ROUNDS} sets)",
        "strategy",
        list(generators),
        {
            "min pairwise dist (spread)": [
                f"{spreads[name]:.4f}" for name in generators
            ],
            "dist to nearest POI (plausibility)": [
                f"{plausibility[name]:.4f}" for name in generators
            ],
        },
        notes="privacy-area maximizes spread; poi-aware maximizes plausibility",
    )
    assert spreads["privacy-area"] > spreads["uniform"]
    assert plausibility["poi-aware"] <= plausibility["uniform"]

    generator = generators["privacy-area"]
    benchmark.pedantic(
        lambda: generator.generate(SET_SIZE, lsp.space, np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
