"""Figure 5: the single-user query evaluation (n = 1).

- 5a/5b/5c: communication / user / LSP cost of PPGNN vs PPGNN-OPT while the
  Privacy I parameter d varies.  Expected shape: all costs grow with d;
  PPGNN-OPT's comm overtakes PPGNN beyond a moderate d (the paper sees the
  crossover near d = 15), while its LSP cost is always higher (the second
  selection phase).
- 5d/5e/5f: the same costs plus the APNN baseline while k varies.  Expected
  shape: staged growth of comm with k (several POIs pack into one big
  integer), and APNN showing the lowest LSP cost thanks to its precomputed
  grid — paid for with approximate answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.apnn import APNNServer, run_apnn
from repro.bench.harness import format_bytes, format_seconds, measure_protocol
from repro.core.single import run_single_user, run_single_user_opt

D_VALUES = [5, 15, 25, 35, 50]
K_VALUES = [2, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def apnn_server(pois):
    # 64 x 64 grid; b = 5 gives the d = 25-equivalent privacy level.
    return APNNServer(pois, cells_per_side=64)


def _user_location(lsp, seed: int):
    return lsp.space.sample_point(np.random.default_rng(seed))


def _measure(run, settings):
    return measure_protocol(run, repeats=settings.repeats, base_seed=settings.seed)


def test_fig5_vary_d(lsp, settings, config_factory, recorder, benchmark):
    """Figures 5a-5c: PPGNN vs PPGNN-OPT over the Privacy I parameter d."""
    rows: dict[str, dict[str, list]] = {
        "comm": {"ppgnn": [], "ppgnn-opt": []},
        "user": {"ppgnn": [], "ppgnn-opt": []},
        "lsp": {"ppgnn": [], "ppgnn-opt": []},
    }
    for d in D_VALUES:
        cfg = config_factory(d=d, delta=d, theta0=None, sanitize=False)
        plain = _measure(
            lambda seed: run_single_user(lsp, _user_location(lsp, seed), cfg, seed),
            settings,
        )
        opt = _measure(
            lambda seed: run_single_user_opt(lsp, _user_location(lsp, seed), cfg, seed),
            settings,
        )
        for metric, values in (("comm", "comm_bytes"), ("user", "user_seconds"), ("lsp", "lsp_seconds")):
            fmt = format_bytes if metric == "comm" else format_seconds
            rows[metric]["ppgnn"].append(fmt(getattr(plain, values)))
            rows[metric]["ppgnn-opt"].append(fmt(getattr(opt, values)))
    for metric, title in (
        ("comm", "Fig 5a: communication cost vs d (n=1)"),
        ("user", "Fig 5b: user cost vs d (n=1)"),
        ("lsp", "Fig 5c: LSP cost vs d (n=1)"),
    ):
        recorder.record("fig5", title, "d", D_VALUES, rows[metric])
    cfg = config_factory(theta0=None, sanitize=False, delta=25)
    benchmark.pedantic(
        lambda: run_single_user(lsp, _user_location(lsp, 0), cfg, 0),
        rounds=1,
        iterations=1,
    )


def test_fig5_vary_k(lsp, settings, config_factory, apnn_server, recorder, benchmark):
    """Figures 5d-5f: PPGNN, PPGNN-OPT, and APNN over k."""
    rows: dict[str, dict[str, list]] = {
        metric: {"ppgnn": [], "ppgnn-opt": [], "apnn": []}
        for metric in ("comm", "user", "lsp")
    }
    for k in K_VALUES:
        cfg = config_factory(k=k, delta=25, theta0=None, sanitize=False)
        plain = _measure(
            lambda seed: run_single_user(lsp, _user_location(lsp, seed), cfg, seed),
            settings,
        )
        opt = _measure(
            lambda seed: run_single_user_opt(lsp, _user_location(lsp, seed), cfg, seed),
            settings,
        )
        apnn = _measure(
            lambda seed: run_apnn(apnn_server, _user_location(lsp, seed), cfg, seed=seed),
            settings,
        )
        for metric, attr in (("comm", "comm_bytes"), ("user", "user_seconds"), ("lsp", "lsp_seconds")):
            fmt = format_bytes if metric == "comm" else format_seconds
            rows[metric]["ppgnn"].append(fmt(getattr(plain, attr)))
            rows[metric]["ppgnn-opt"].append(fmt(getattr(opt, attr)))
            rows[metric]["apnn"].append(fmt(getattr(apnn, attr)))
    for metric, title in (
        ("comm", "Fig 5d: communication cost vs k (n=1)"),
        ("user", "Fig 5e: user cost vs k (n=1)"),
        ("lsp", "Fig 5f: LSP cost vs k (n=1)"),
    ):
        recorder.record("fig5", title, "k", K_VALUES, rows[metric])
    cfg = config_factory(delta=25, theta0=None, sanitize=False)
    benchmark.pedantic(
        lambda: run_apnn(apnn_server, _user_location(lsp, 1), cfg, seed=1),
        rounds=1,
        iterations=1,
    )
