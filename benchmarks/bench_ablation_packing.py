"""Ablation: answer-encoding density and the staged growth of Figure 5d.

DESIGN.md decision 3: POIs are packed at 64 bits each (id + two quantized
coordinates), giving 15 POIs per 1024-bit integer — the density the paper
reports.  This bench tabulates m (integers per answer) against k for
several key sizes and field layouts, showing where each extra ciphertext
"step" in the communication curve comes from.
"""

from __future__ import annotations

from repro.encoding.answers import AnswerCodec
from repro.geometry.space import LocationSpace

K_VALUES = [1, 2, 4, 8, 15, 16, 30, 31, 32, 64]


def test_ablation_packing_density(recorder, benchmark):
    space = LocationSpace.unit_square()
    rows = {}
    for keysize in (256, 512, 1024):
        rows[f"m @ {keysize}-bit keys"] = [
            str(AnswerCodec(keysize, k, space).m) for k in K_VALUES
        ]
    # A wasteful layout (one POI per integer) for contrast.
    rows["m, one POI per integer"] = [str(1 + k) for k in K_VALUES]
    recorder.record(
        "ablation_packing",
        "Ablation: answer integers m vs k (64-bit POI slots)",
        "k",
        K_VALUES,
        rows,
        notes="steps in m are the staged growth of the Fig 5d comm curve",
    )

    codec_1024 = AnswerCodec(1024, 15, space)
    assert codec_1024.pois_per_integer == 15  # the paper's density
    assert codec_1024.m == 1  # 15 POIs + header fit one integer
    assert AnswerCodec(1024, 16, space).m == 2  # the first step

    # m is monotone in k for every key size.
    for keysize in (256, 512, 1024):
        ms = [AnswerCodec(keysize, k, space).m for k in K_VALUES]
        assert ms == sorted(ms)

    benchmark.pedantic(
        lambda: AnswerCodec(1024, 32, space).encode([]), rounds=3, iterations=1
    )
