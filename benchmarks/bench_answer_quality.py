"""Extension: quantifying the answer-utility claims of Sections 8-9.

The paper argues qualitatively that approximate schemes degrade utility —
APNN returns the kNN of a grid-cell center, GLP the kNN of the centroid —
while PPGNN returns exact (possibly truncated) answers and IPPF filters a
superset down to the exact top-k.  This bench puts numbers on that:
precision / recall against the exact kGNN answer and the mean
aggregate-cost ratio (1.0 = optimal), averaged over repeated queries.

Expected: PPGNN precision 1.0 and cost ratio 1.0 (its prefix is exact);
IPPF all 1.0 (exact but leaky); GLP clearly below 1.0 precision with a
cost ratio above 1.0; APNN (n = 1) close to exact but not exact.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.apnn import APNNServer, run_apnn
from repro.baselines.glp import run_glp
from repro.baselines.ippf import run_ippf
from repro.core.group import run_ppgnn
from repro.metrics.quality import evaluate_answer

ROUNDS = 6


def _exact(lsp, locations, k):
    return lsp.engine.query(k, locations)


def test_answer_quality_group(lsp, settings, config_factory, recorder, benchmark):
    cfg = config_factory()
    rows = {"precision": {}, "recall": {}, "cost ratio": {}}
    protocols = {
        "ppgnn": lambda group, seed: [
            lsp.engine.poi_by_id(a.poi_id)
            for a in run_ppgnn(lsp, group, cfg, seed=seed).answers
        ],
        "ippf": lambda group, seed: list(
            run_ippf(lsp, group, cfg, seed=seed).answers
        ),
        "glp": lambda group, seed: list(run_glp(lsp, group, cfg, seed=seed).answers),
    }
    for name, runner in protocols.items():
        qualities = []
        for i in range(ROUNDS):
            group = lsp.space.sample_points(8, np.random.default_rng(settings.seed + i))
            returned = runner(group, i)
            exact = _exact(lsp, group, cfg.k)
            qualities.append(evaluate_answer(returned, exact, group, lsp.aggregate))
        rows["precision"][name] = f"{np.mean([q.precision for q in qualities]):.3f}"
        rows["recall"][name] = f"{np.mean([q.recall for q in qualities]):.3f}"
        rows["cost ratio"][name] = f"{np.mean([q.cost_ratio for q in qualities]):.4f}"

    recorder.record(
        "answer_quality",
        f"Answer quality vs exact kGNN (n=8, k={cfg.k}, {ROUNDS} queries)",
        "metric",
        list(protocols),
        {
            metric: [values[name] for name in protocols]
            for metric, values in rows.items()
        },
        notes="ppgnn precision/cost are exact by construction; glp approximates",
    )
    assert rows["precision"]["ppgnn"] == "1.000"
    assert rows["precision"]["ippf"] == "1.000"
    assert float(rows["precision"]["glp"]) < 1.0
    assert float(rows["cost ratio"]["glp"]) > 1.0

    group = lsp.space.sample_points(8, np.random.default_rng(0))
    benchmark.pedantic(
        lambda: run_glp(lsp, group, cfg, seed=0), rounds=1, iterations=1
    )


def test_answer_quality_single_user(lsp, pois, settings, config_factory, recorder, benchmark):
    cfg = config_factory(delta=25, theta0=None, sanitize=False)
    server = APNNServer(pois, cells_per_side=64)
    qualities = []
    for i in range(ROUNDS):
        user = lsp.space.sample_point(np.random.default_rng(settings.seed + i))
        returned = list(run_apnn(server, user, cfg, seed=i).answers)
        exact = _exact(lsp, [user], cfg.k)
        qualities.append(evaluate_answer(returned, exact, [user], lsp.aggregate))
    precision = float(np.mean([q.precision for q in qualities]))
    ratio = float(np.mean([q.cost_ratio for q in qualities]))
    recorder.record(
        "answer_quality",
        f"APNN (n=1) quality vs exact kNN (k={cfg.k}, {ROUNDS} queries)",
        "metric",
        ["precision", "recall", "cost ratio"],
        {
            "apnn": [
                f"{precision:.3f}",
                f"{np.mean([q.recall for q in qualities]):.3f}",
                f"{ratio:.4f}",
            ]
        },
        notes="the price of the precomputed grid: near-exact, not exact",
    )
    assert ratio >= 1.0
    assert precision > 0.4  # close to the exact answer, as the paper implies

    user = lsp.space.sample_point(np.random.default_rng(1))
    benchmark.pedantic(
        lambda: run_apnn(server, user, cfg, seed=1), rounds=1, iterations=1
    )
