"""Shared benchmark fixtures.

Every experiment runs against one session-wide LSP built over the Sequoia
surrogate at the scale chosen via REPRO_BENCH_* environment variables (see
:class:`repro.bench.harness.BenchSettings`).  Figure series are printed and
persisted under ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make ``pytest benchmarks/`` work from the repo root *and* from inside
# ``benchmarks/`` itself: the library lives in ``../src`` relative to this
# file, which a relative ``PYTHONPATH=src`` only covers from the root.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402

from repro.bench.harness import BenchSettings  # noqa: E402
from repro.bench.recorder import SeriesRecorder  # noqa: E402
from repro.bench.sentinel import BenchSentinel  # noqa: E402
from repro.core.config import PPGNNConfig  # noqa: E402
from repro.core.lsp import LSPServer  # noqa: E402
from repro.datasets.sequoia import load_sequoia  # noqa: E402


@pytest.fixture(scope="session")
def settings() -> BenchSettings:
    return BenchSettings.from_env()


@pytest.fixture(scope="session")
def pois(settings):
    return load_sequoia(settings.pois)


@pytest.fixture(scope="session")
def lsp(settings, pois) -> LSPServer:
    return LSPServer(
        pois,
        sanitation_samples=settings.sanitation_samples,
        seed=settings.seed,
    )


@pytest.fixture(scope="session")
def recorder() -> SeriesRecorder:
    return SeriesRecorder(Path(__file__).parent / "results")


@pytest.fixture(scope="session")
def sentinel() -> BenchSentinel:
    """The performance sentinel, armed via REPRO_BENCH_* env variables.

    Disarmed (record=False, check=False) unless
    ``REPRO_BENCH_RECORD_BASELINE`` / ``REPRO_BENCH_CHECK_BASELINE`` is
    set, so plain benchmark runs never fail on baseline drift.
    """
    return BenchSentinel.from_env(Path(__file__).parent / "baselines")


def make_config(settings: BenchSettings, **overrides) -> PPGNNConfig:
    """Paper Table 3 defaults at the session's key size."""
    parameters = dict(
        d=25,
        delta=100,
        k=8,
        theta0=0.05,
        keysize=settings.keysize,
        sanitation_samples=settings.sanitation_samples,
        key_seed=settings.seed,
    )
    parameters.update(overrides)
    return PPGNNConfig(**parameters)


@pytest.fixture(scope="session")
def config_factory(settings):
    """Build a config with Table 3 defaults plus per-experiment overrides."""

    def factory(**overrides) -> PPGNNConfig:
        return make_config(settings, **overrides)

    return factory
