"""Shared benchmark fixtures.

Every experiment runs against one session-wide LSP built over the Sequoia
surrogate at the scale chosen via REPRO_BENCH_* environment variables (see
:class:`repro.bench.harness.BenchSettings`).  Figure series are printed and
persisted under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import BenchSettings
from repro.bench.recorder import SeriesRecorder
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.datasets.sequoia import load_sequoia


@pytest.fixture(scope="session")
def settings() -> BenchSettings:
    return BenchSettings.from_env()


@pytest.fixture(scope="session")
def pois(settings):
    return load_sequoia(settings.pois)


@pytest.fixture(scope="session")
def lsp(settings, pois) -> LSPServer:
    return LSPServer(
        pois,
        sanitation_samples=settings.sanitation_samples,
        seed=settings.seed,
    )


@pytest.fixture(scope="session")
def recorder() -> SeriesRecorder:
    return SeriesRecorder(Path(__file__).parent / "results")


def make_config(settings: BenchSettings, **overrides) -> PPGNNConfig:
    """Paper Table 3 defaults at the session's key size."""
    parameters = dict(
        d=25,
        delta=100,
        k=8,
        theta0=0.05,
        keysize=settings.keysize,
        sanitation_samples=settings.sanitation_samples,
        key_seed=settings.seed,
    )
    parameters.update(overrides)
    return PPGNNConfig(**parameters)


@pytest.fixture(scope="session")
def config_factory(settings):
    """Build a config with Table 3 defaults plus per-experiment overrides."""

    def factory(**overrides) -> PPGNNConfig:
        return make_config(settings, **overrides)

    return factory
