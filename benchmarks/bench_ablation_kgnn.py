"""Ablation: the plaintext kGNN black box — MBM vs SPM vs MQM ([24]).

The paper instantiates C_q with MBM; SPM and MQM are the other two
algorithms of Papadias et al.  This bench times all three on the benchmark
database across group spreads (tight groups favour SPM's centroid stream;
spread groups favour MBM's aggregate pruning; MQM pays one stream per
user), and verifies they return identical answers.
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry.point import Point
from repro.gnn.mbm import mbm_kgnn
from repro.gnn.mqm import mqm_kgnn
from repro.gnn.spm import spm_kgnn

ALGORITHMS = {"mbm": mbm_kgnn, "spm": spm_kgnn, "mqm": mqm_kgnn}
SPREADS = [0.02, 0.1, 0.3, 1.0]  # group diameter as a fraction of the space
QUERIES_PER_POINT = 8
N = 8
K = 8


def _group(space, spread: float, rng) -> list[Point]:
    cx, cy = rng.uniform(spread / 2, 1 - spread / 2, 2)
    xs = np.clip(rng.uniform(cx - spread / 2, cx + spread / 2, N), 0, 1)
    ys = np.clip(rng.uniform(cy - spread / 2, cy + spread / 2, N), 0, 1)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys, strict=True)]


def test_ablation_kgnn_algorithms(lsp, settings, recorder, benchmark):
    tree = lsp.engine.tree
    aggregate = lsp.aggregate
    times = {name: [] for name in ALGORITHMS}
    for spread in SPREADS:
        rng = np.random.default_rng(settings.seed)
        groups = [_group(lsp.space, spread, rng) for _ in range(QUERIES_PER_POINT)]
        answers = {}
        for name, algorithm in ALGORITHMS.items():
            start = time.perf_counter()
            results = [algorithm(tree, group, K, aggregate) for group in groups]
            times[name].append((time.perf_counter() - start) / len(groups))
            answers[name] = [[item.poi_id for _, item, _ in r] for r in results]
        assert answers["mbm"] == answers["spm"] == answers["mqm"]

    recorder.record(
        "ablation_kgnn",
        f"Ablation: kGNN algorithm time vs group spread (n={N}, k={K})",
        "spread",
        SPREADS,
        {
            name: [f"{t * 1000:.2f} ms" for t in series]
            for name, series in times.items()
        },
        notes="all three return identical answers; MBM is the paper's C_q",
    )

    group = _group(lsp.space, 0.1, np.random.default_rng(1))
    benchmark.pedantic(
        lambda: mbm_kgnn(tree, group, K, aggregate), rounds=3, iterations=1
    )
