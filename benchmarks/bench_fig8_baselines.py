"""Figure 8: PPGNN (and PPGNN-NAS) against the IPPF and GLP baselines.

Sweeps k (8a-c) and n (8d-f).  Expected shapes from the paper:

- communication: IPPF worst by far (it ships the whole candidate superset
  and hops it along the user chain); GLP grows O(n^2); PPGNN flat-ish,
- user cost: GLP worst (O(n^2) cryptographic work), IPPF pays candidate
  filtering, PPGNN only the indicator encryption and decryption,
- LSP cost: PPGNN highest — the gap to PPGNN-NAS *is* the answer
  sanitation; PPGNN-NAS lands near IPPF/GLP.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.glp import run_glp
from repro.baselines.ippf import run_ippf
from repro.bench.harness import format_bytes, format_seconds, measure_protocol
from repro.core.group import run_ppgnn

K_VALUES = [2, 4, 8, 16, 32]
N_VALUES = [2, 4, 8, 16, 32]
METRICS = (("comm", "comm_bytes"), ("user", "user_seconds"), ("lsp", "lsp_seconds"))


def _group(lsp, n: int, seed: int):
    return lsp.space.sample_points(n, np.random.default_rng(seed))


def _runners(config_factory):
    def make(cfg):
        return {
            "ppgnn": lambda lsp, group, seed: run_ppgnn(lsp, group, cfg, seed=seed),
            "ppgnn-nas": lambda lsp, group, seed: run_ppgnn(
                lsp, group, cfg.without_sanitation(), seed=seed
            ),
            "ippf": lambda lsp, group, seed: run_ippf(lsp, group, cfg, seed=seed),
            "glp": lambda lsp, group, seed: run_glp(lsp, group, cfg, seed=seed),
        }

    return make


def _sweep(lsp, settings, config_factory, xs, config_for, n_for):
    make = _runners(config_factory)
    names = ["ppgnn", "ppgnn-nas", "ippf", "glp"]
    rows = {metric: {name: [] for name in names} for metric, _ in METRICS}
    candidate_counts = []
    for x in xs:
        cfg = config_for(x)
        n = n_for(x)
        runners = make(cfg)
        for name in names:
            measured = measure_protocol(
                lambda seed, name=name, n=n: runners[name](
                    lsp, _group(lsp, n, seed), seed
                ),
                repeats=settings.repeats,
                base_seed=settings.seed,
            )
            if name == "ippf":
                counts = measured.extras.get("candidate_count", [])
                candidate_counts.append(
                    sum(counts) / len(counts) if counts else 0.0
                )
            for metric, attr in METRICS:
                fmt = format_bytes if metric == "comm" else format_seconds
                rows[metric][name].append(fmt(getattr(measured, attr)))
    return rows, candidate_counts


def test_fig8_vary_k(lsp, settings, config_factory, recorder, benchmark):
    rows, candidates = _sweep(
        lsp,
        settings,
        config_factory,
        K_VALUES,
        config_for=lambda k: config_factory(k=k),
        n_for=lambda _: 8,
    )
    for (metric, _), title in zip(
        METRICS,
        (
            "Fig 8a: communication cost vs k (n=8)",
            "Fig 8b: user cost vs k (n=8)",
            "Fig 8c: LSP cost vs k (n=8)",
        ),
        strict=True,
    ):
        recorder.record("fig8", title, "k", K_VALUES, rows[metric])
    recorder.note(
        "fig8",
        f"IPPF mean candidate counts over k={K_VALUES}: "
        f"{[round(c, 1) for c in candidates]}",
    )
    cfg = config_factory()
    benchmark.pedantic(
        lambda: run_ippf(lsp, _group(lsp, 8, 0), cfg, seed=0), rounds=1, iterations=1
    )


def test_fig8_vary_n(lsp, settings, config_factory, recorder, benchmark):
    rows, candidates = _sweep(
        lsp,
        settings,
        config_factory,
        N_VALUES,
        config_for=lambda _: config_factory(),
        n_for=lambda n: n,
    )
    for (metric, _), title in zip(
        METRICS,
        (
            "Fig 8d: communication cost vs n (k=8)",
            "Fig 8e: user cost vs n (k=8)",
            "Fig 8f: LSP cost vs n (k=8)",
        ),
        strict=True,
    ):
        recorder.record("fig8", title, "n", N_VALUES, rows[metric])
    recorder.note(
        "fig8",
        f"IPPF mean candidate counts over n={N_VALUES}: "
        f"{[round(c, 1) for c in candidates]}",
    )
    cfg = config_factory()
    benchmark.pedantic(
        lambda: run_glp(lsp, _group(lsp, 16, 0), cfg, seed=0), rounds=1, iterations=1
    )
