"""Table 4 (group-query rows): the privacy-property matrix, checked by probes.

For each group approach (IPPF, GLP, PPGNN) the paper claims which of
Privacy I-IV hold.  Rather than restating the table, this bench *executes*
an observable probe per cell against real protocol runs:

- Privacy I   — does the LSP receive any user's exact location in a form it
  can single out?  (location hidden among d slots / inside a rectangle /
  behind a centroid -> satisfied)
- Privacy II  — can the LSP compute the query answer it returned?  (GLP
  sends the centroid in plaintext -> violated; PPGNN/IPPF keep the real
  query ambiguous -> satisfied)
- Privacy III — do users receive more POIs than the k they asked for?
  (IPPF's candidate superset -> violated)
- Privacy IV  — does the collusion attack pin the victim into less than
  theta0 of the space for some configuration?  (exact recovery for GLP;
  inequality attack for IPPF/PPGNN-NAS; only PPGNN resists)

Expected output: exactly the paper's check marks.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.inequality import inequality_attack
from repro.baselines.glp import run_glp
from repro.baselines.ippf import run_ippf
from repro.core.group import run_ppgnn
from repro.geometry.point import Point
from repro.protocol.metrics import COORDINATOR, LSP


def _groups(lsp, n, count, base_seed):
    return [
        lsp.space.sample_points(n, np.random.default_rng(base_seed + i))
        for i in range(count)
    ]


def _privacy4_attackable(lsp, cfg, runs, theta0, attack_seed=0) -> bool:
    """Whether full collusion *clearly* succeeds for some run/target.

    "Clearly" means the victim's region collapses below theta0 / 2: the
    sanitation's per-test Type I error (gamma = 0.05) and the attacker's own
    Monte-Carlo noise both produce borderline estimates near theta0, and a
    margin keeps the matrix deterministic.  Unsanitized answers on spread
    groups collapse the region by orders of magnitude, far past the margin.
    """
    for result, group in runs:
        answers = getattr(result, "answers", ())
        locations = [
            a.location if hasattr(a, "location") and isinstance(a.location, Point)
            else a.location
            for a in answers
        ]
        if not locations:
            continue
        for target in range(len(group)):
            known = [l for i, l in enumerate(group) if i != target]
            attack = inequality_attack(
                locations, known, lsp.space, lsp.aggregate,
                n_samples=3000, rng=np.random.default_rng(attack_seed),
            )
            if attack.theta_estimate <= theta0 / 2:
                return True
    return False


def test_table4_privacy_matrix(lsp, settings, config_factory, recorder, benchmark):
    theta0 = 0.05
    cfg = config_factory(theta0=theta0)
    n = 8
    groups = _groups(lsp, n, 4, settings.seed)

    matrix: dict[str, dict[str, str]] = {}

    # ---------------------------------------------------------------- IPPF
    ippf_runs = [(run_ippf(lsp, g, cfg, seed=i), g) for i, g in enumerate(groups)]
    ippf_over_k = any(
        r.extras["candidate_count"] > cfg.k for r, _ in ippf_runs
    )
    matrix["ippf"] = {
        "I": "yes",  # the LSP only ever sees cloak rectangles
        "II": "yes",  # the real query stays ambiguous inside the rectangles
        "III": "no" if ippf_over_k else "yes",  # candidate superset leaks
        "IV": "no"
        if _privacy4_attackable(lsp, cfg, ippf_runs, theta0)
        else "yes",
    }

    # ----------------------------------------------------------------- GLP
    glp_runs = [(run_glp(lsp, g, cfg, seed=i), g) for i, g in enumerate(groups)]
    glp_plain_query = all(
        r.report.link_bytes(COORDINATOR, LSP) <= 24 for r, _ in glp_runs
    )  # a bare centroid: the LSP sees query and answer in the clear
    # n-1 colluders recover the victim exactly: centroid * n - sum(known).
    g0 = groups[0]
    centroid = glp_runs[0][0].extras["centroid"]
    recovered = Point(
        centroid.x * n - sum(p.x for p in g0[1:]),
        centroid.y * n - sum(p.y for p in g0[1:]),
    )
    glp_exact_recovery = recovered.distance_to(g0[0]) < 1e-6
    matrix["glp"] = {
        "I": "yes",  # the LSP sees only the centroid, not any user location
        "II": "no" if glp_plain_query else "yes",
        "III": "yes",  # exactly k POIs come back
        "IV": "no" if glp_exact_recovery else "yes",
    }

    # --------------------------------------------------------- PPGNN (ours)
    ppgnn_runs = [(run_ppgnn(lsp, g, cfg, seed=i), g) for i, g in enumerate(groups)]
    ppgnn_at_most_k = all(len(r.answers) <= cfg.k for r, _ in ppgnn_runs)
    ppgnn_candidates_ok = lsp.last_stats.candidate_count >= cfg.delta
    matrix["ppgnn"] = {
        "I": "yes",  # d-anonymity of every location set (Theorem 4.3)
        "II": "yes" if ppgnn_candidates_ok else "no",
        "III": "yes" if ppgnn_at_most_k else "no",
        "IV": "no"
        if _privacy4_attackable(lsp, cfg, ppgnn_runs, theta0)
        else "yes",
    }

    recorder.record(
        "table4",
        "Table 4 (n>1 rows): executable privacy matrix",
        "privacy",
        ["I", "II", "III", "IV"],
        {name: [cells[p] for p in ("I", "II", "III", "IV")] for name, cells in matrix.items()},
        notes="paper: ippf = I,II only; glp = I,III only; ppgnn = I-IV",
    )

    assert matrix["ippf"] == {"I": "yes", "II": "yes", "III": "no", "IV": "no"}
    assert matrix["glp"] == {"I": "yes", "II": "no", "III": "yes", "IV": "no"}
    assert matrix["ppgnn"] == {"I": "yes", "II": "yes", "III": "yes", "IV": "yes"}

    benchmark.pedantic(
        lambda: run_glp(lsp, groups[0], cfg, seed=9), rounds=1, iterations=1
    )
