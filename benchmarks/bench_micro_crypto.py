"""Micro-benchmarks of the cryptographic primitives (pytest-benchmark).

These are the C_e building blocks of Table 2's cost model: encryption,
decryption, homomorphic addition/scalar multiplication, and the private
selection.  Timings here explain the macro numbers in Figures 5-8 — e.g.
the eps_2/eps_1 cost ratio that decides the PPGNN-OPT user-cost crossover.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.homomorphic import (
    encrypt_indicator,
    hom_add,
    hom_scalar_mul,
    matrix_select,
)
from repro.crypto.paillier import generate_keypair


@pytest.fixture(scope="module")
def kp(settings):
    return generate_keypair(settings.keysize, seed=settings.seed)


@pytest.fixture(scope="module")
def rng():
    return random.Random(7)


def test_encrypt_eps1(kp, rng, benchmark):
    _, pk = kp
    benchmark(lambda: pk.encrypt(123456789, rng=rng))


def test_encrypt_eps2(kp, rng, benchmark):
    _, pk = kp
    benchmark(lambda: pk.encrypt(123456789, s=2, rng=rng))


def test_decrypt_eps1(kp, rng, benchmark):
    sk, pk = kp
    c = pk.encrypt(987654321, rng=rng)
    benchmark(lambda: sk.decrypt(c))


def test_decrypt_nested(kp, rng, benchmark):
    sk, pk = kp
    inner = pk.encrypt(42, rng=rng)
    outer = pk.encrypt(inner.value, s=2, rng=rng)
    benchmark(lambda: sk.decrypt_nested(outer))


def test_homomorphic_add(kp, rng, benchmark):
    _, pk = kp
    a = pk.encrypt(1, rng=rng)
    b = pk.encrypt(2, rng=rng)
    benchmark(lambda: hom_add(a, b))


def test_scalar_mul_large_exponent(kp, rng, benchmark):
    """The selection hot path: exponents are answer integers near N."""
    _, pk = kp
    c = pk.encrypt(1, rng=rng)
    scalar = pk.n - 12345
    benchmark(lambda: hom_scalar_mul(scalar, c))


def test_private_selection_100(kp, rng, benchmark):
    """One row of Theorem 3.1 at the paper's default delta' ~ 100."""
    _, pk = kp
    indicator = encrypt_indicator(pk, 100, 42, rng=rng)
    row = [rng.randrange(pk.n) for _ in range(100)]
    benchmark(lambda: matrix_select([row], indicator))


def test_keygen(settings, benchmark):
    counter = iter(range(10_000))
    benchmark(lambda: generate_keypair(settings.keysize, seed=90_000 + next(counter)))
