"""Figure 6: the group query evaluation (n > 1) of PPGNN / PPGNN-OPT / Naive.

Sweeps delta (6a-c), k (6d-f), n (6g-i), and theta0 (6j-l), reporting the
three costs per point.  Expected shapes from the paper:

- vs delta: OPT's comm/user cost grows ~sqrt(delta') and stays well below
  PPGNN; Naive is worst (every user ships delta locations); LSP costs are
  nearly identical across the three (dominated by answer sanitation).
- vs k: comm/user roughly flat; LSP rises then flattens once sanitation
  truncates answers anyway (see Fig 7a).
- vs n: Naive grows fastest (n * delta dummies); LSP grows linearly (the
  inequality count per test grows with nothing, but the number of target
  users does).
- vs theta0: comm/user flat; LSP drops steeply then flattens, tracking the
  Eqn (17) sample size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import format_bytes, format_seconds, measure_protocol
from repro.core.group import run_ppgnn
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt

DELTA_VALUES = [25, 50, 100, 150, 200]
K_VALUES = [2, 4, 8, 16, 32]
N_VALUES = [2, 4, 8, 16, 32]
THETA_VALUES = [0.01, 0.02, 0.05, 0.1]

PROTOCOLS = {
    "ppgnn": run_ppgnn,
    "ppgnn-opt": run_ppgnn_opt,
    "naive": run_naive,
}

METRICS = (("comm", "comm_bytes"), ("user", "user_seconds"), ("lsp", "lsp_seconds"))


def _group(lsp, n: int, seed: int):
    return lsp.space.sample_points(n, np.random.default_rng(seed))


def _sweep(lsp, settings, xs, config_for, n_for):
    """Measure the three protocols at every sweep point."""
    rows = {metric: {name: [] for name in PROTOCOLS} for metric, _ in METRICS}
    for x in xs:
        cfg = config_for(x)
        n = n_for(x)
        for name, runner in PROTOCOLS.items():
            measured = measure_protocol(
                lambda seed, runner=runner, cfg=cfg, n=n: runner(
                    lsp, _group(lsp, n, seed), cfg, seed=seed
                ),
                repeats=settings.repeats,
                base_seed=settings.seed,
            )
            for metric, attr in METRICS:
                fmt = format_bytes if metric == "comm" else format_seconds
                rows[metric][name].append(fmt(getattr(measured, attr)))
    return rows


def _record(recorder, figure, labels, x_label, xs, rows):
    for (metric, _), label in zip(METRICS, labels, strict=True):
        recorder.record(figure, label, x_label, xs, rows[metric])


def test_fig6_vary_delta(lsp, settings, config_factory, recorder, benchmark):
    rows = _sweep(
        lsp,
        settings,
        DELTA_VALUES,
        config_for=lambda delta: config_factory(delta=delta),
        n_for=lambda _: 8,
    )
    _record(
        recorder,
        "fig6",
        (
            "Fig 6a: communication cost vs delta (n=8)",
            "Fig 6b: user cost vs delta (n=8)",
            "Fig 6c: LSP cost vs delta (n=8)",
        ),
        "delta",
        DELTA_VALUES,
        rows,
    )
    cfg = config_factory()
    benchmark.pedantic(
        lambda: run_ppgnn(lsp, _group(lsp, 8, 0), cfg, seed=0), rounds=1, iterations=1
    )


def test_fig6_vary_k(lsp, settings, config_factory, recorder, benchmark):
    rows = _sweep(
        lsp,
        settings,
        K_VALUES,
        config_for=lambda k: config_factory(k=k),
        n_for=lambda _: 8,
    )
    _record(
        recorder,
        "fig6",
        (
            "Fig 6d: communication cost vs k (n=8)",
            "Fig 6e: user cost vs k (n=8)",
            "Fig 6f: LSP cost vs k (n=8)",
        ),
        "k",
        K_VALUES,
        rows,
    )
    cfg = config_factory(k=16)
    benchmark.pedantic(
        lambda: run_ppgnn_opt(lsp, _group(lsp, 8, 0), cfg, seed=0),
        rounds=1,
        iterations=1,
    )


def test_fig6_vary_n(lsp, settings, config_factory, recorder, benchmark):
    rows = _sweep(
        lsp,
        settings,
        N_VALUES,
        config_for=lambda _: config_factory(),
        n_for=lambda n: n,
    )
    _record(
        recorder,
        "fig6",
        (
            "Fig 6g: communication cost vs n",
            "Fig 6h: user cost vs n",
            "Fig 6i: LSP cost vs n",
        ),
        "n",
        N_VALUES,
        rows,
    )
    cfg = config_factory()
    benchmark.pedantic(
        lambda: run_naive(lsp, _group(lsp, 16, 0), cfg, seed=0), rounds=1, iterations=1
    )


def test_fig6_vary_theta(lsp, settings, config_factory, recorder, benchmark):
    if settings.sanitation_samples is not None:
        pytest.skip("theta0 sweep requires the exact Eqn-17 sample size")
    rows = _sweep(
        lsp,
        settings,
        THETA_VALUES,
        config_for=lambda theta0: config_factory(theta0=theta0),
        n_for=lambda _: 8,
    )
    _record(
        recorder,
        "fig6",
        (
            "Fig 6j: communication cost vs theta0 (n=8)",
            "Fig 6k: user cost vs theta0 (n=8)",
            "Fig 6l: LSP cost vs theta0 (n=8)",
        ),
        "theta0",
        THETA_VALUES,
        rows,
    )
    cfg = config_factory(theta0=0.05)
    benchmark.pedantic(
        lambda: run_ppgnn(lsp, _group(lsp, 8, 1), cfg, seed=1), rounds=1, iterations=1
    )
