"""Serving-engine throughput: worker pool vs serial, shared caches on.

Runs one mixed workload through :class:`repro.serve.ServeEngine` twice —
serial executor, then the multiprocessing pool — at the paper-adjacent
512-bit key size, and records throughput plus cache statistics to
``BENCH_serve.json`` (git-SHA/keysize/config stamped).

The >= 2x speedup assertion only arms on hosts with at least 4 cores:
the pool cannot beat serial on a single-core container, but the numbers
are recorded either way so the report stays honest about where it ran.
"""

from __future__ import annotations

import os

import pytest

from repro.serve import ServeConfig, ServeEngine, WorkloadSpec, generate_workload

KEYSIZE = 512
WORKERS = 4

SPEC = WorkloadSpec(
    queries=24,
    rate_qps=50.0,
    protocol_mix={"ppgnn": 2.0, "ppgnn-opt": 1.0, "naive": 1.0},
    group_size_mix={2: 1.0, 3: 1.0},
    k_mix={4: 1.0},
    tenants=("tenant-0", "tenant-1"),
    groups=8,
    repeat_fraction=0.35,
    seed=20180326,
)


@pytest.fixture(scope="module")
def serve_runs(lsp, settings):
    from conftest import make_config

    config = make_config(settings, d=4, delta=8, k=4, keysize=KEYSIZE)
    workload = generate_workload(SPEC, lsp.space)
    runs = {}
    for executor in ("serial", "process"):
        serve = ServeConfig(
            workers=WORKERS,
            executor=executor,
            policy="fifo",
            knn_cache_size=128,
            obs=True,
        )
        runs[executor] = ServeEngine(lsp, config, serve).run(workload)
    return config, runs


def test_serve_throughput(serve_runs, recorder, sentinel):
    config, runs = serve_runs
    serial, pooled = runs["serial"], runs["process"]
    speedup = (
        pooled.wall_qps / serial.wall_qps if serial.wall_qps > 0 else 0.0
    )
    cores = os.cpu_count() or 1
    recorder.record_json(
        "serve",
        {
            "cores": cores,
            "workers": WORKERS,
            "queries": SPEC.queries,
            "serial": serial.to_dict(include_wall=True),
            "process": pooled.to_dict(include_wall=True),
            "pool_speedup": round(speedup, 3),
        },
        keysize=KEYSIZE,
        config={
            "d": config.d,
            "delta": config.delta,
            "k": config.k,
            "workers": WORKERS,
            "policy": "fifo",
            "repeat_fraction": SPEC.repeat_fraction,
            "seed": SPEC.seed,
        },
        metrics=(pooled.obs or {}).get("metrics"),
    )
    # Baseline gate: exact counters (ops, bytes, cache hits) must not
    # regress when the sentinel is armed via REPRO_BENCH_CHECK_BASELINE.
    from repro.bench.sentinel import serving_report_metrics

    sentinel.gate(
        "serve",
        serving_report_metrics(pooled.to_dict(include_wall=False)),
        keysize=KEYSIZE,
        config={"queries": SPEC.queries, "seed": SPEC.seed, "workers": WORKERS},
    )
    recorder.note(
        "serve",
        f"pool speedup {speedup:.2f}x on {cores} cores "
        f"({serial.wall_qps:.2f} -> {pooled.wall_qps:.2f} qps wall)",
    )

    # Everything below holds on any host.
    assert serial.completed == SPEC.queries
    assert pooled.completed == SPEC.queries
    assert serial.answers_digest == pooled.answers_digest
    assert pooled.cache["hits"] > 0  # repeats actually hit the kNN cache
    assert pooled.pool["pooled"] > 0  # indicators spent precomputed nonces

    # The headline claim needs real parallel hardware.
    if cores >= 4:
        assert speedup >= 2.0, (
            f"worker pool only reached {speedup:.2f}x on {cores} cores"
        )
    else:
        pytest.skip(f"speedup assertion needs >= 4 cores (host has {cores})")


def test_serve_report_deterministic(lsp, settings):
    from conftest import make_config

    config = make_config(settings, d=4, delta=8, k=4, keysize=KEYSIZE)
    serve = ServeConfig(workers=WORKERS, policy="fifo", knn_cache_size=128)
    one = ServeEngine(lsp, config, serve).run(generate_workload(SPEC, lsp.space))
    two = ServeEngine(lsp, config, serve).run(generate_workload(SPEC, lsp.space))
    assert one.to_dict() == two.to_dict()
