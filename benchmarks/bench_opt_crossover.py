"""Section 6: where PPGNN-OPT's communication beats PPGNN's.

The paper derives (with the eps_2-costs-2x-eps_1 approximation) that OPT
wins iff delta' > r1 = m + 4 + 2 * sqrt(2m + 4).  We measure the actual
indicator + answer bytes of both variants across delta' and locate the
measured crossover, comparing it against the paper's closed form and
against the exact-integer prediction from our byte model (eps_2 = 1.5x).
"""

from __future__ import annotations

import math

from repro.core.opt import optimal_omega
from repro.encoding.answers import AnswerCodec
from repro.geometry.space import LocationSpace

DELTA_PRIMES = list(range(2, 161))


def _plain_cost_units(delta_prime: int, m: int) -> int:
    """PPGNN ciphertext bytes in half-keysize units: indicator + answer."""
    return 2 * delta_prime + 2 * m


def _opt_cost_units(delta_prime: int, m: int) -> int:
    """PPGNN-OPT units: eps_1 inner (2/cipher), eps_2 outer+answer (3/cipher)."""
    omega = optimal_omega(delta_prime)
    block = math.ceil(delta_prime / omega)
    return 2 * block + 3 * omega + 3 * m


def _paper_r1(m: int) -> float:
    return m + 4 + 2 * math.sqrt(2 * m + 4)


def test_opt_crossover(settings, recorder, benchmark):
    codec = AnswerCodec(settings.keysize, k=8, space=LocationSpace.unit_square())
    m = codec.m
    measured_crossover = None
    for delta_prime in DELTA_PRIMES:
        if _opt_cost_units(delta_prime, m) < _plain_cost_units(delta_prime, m):
            measured_crossover = delta_prime
            break
    assert measured_crossover is not None, "OPT never wins - model broken"
    # Beyond the crossover OPT must keep winning (costs diverge).
    for delta_prime in range(measured_crossover + 20, 161, 20):
        assert _opt_cost_units(delta_prime, m) < _plain_cost_units(delta_prime, m)

    paper_r1 = _paper_r1(m)
    recorder.record(
        "opt_crossover",
        "Section 6: PPGNN-OPT vs PPGNN communication crossover",
        "quantity",
        ["m", "measured crossover delta'", "paper r1 (2x approx)"],
        {
            "value": [
                str(m),
                str(measured_crossover),
                f"{paper_r1:.1f}",
            ]
        },
        notes=(
            "paper: OPT wins iff delta' > r1; our exact byte model (eps_2 = "
            "1.5x eps_1) crosses slightly earlier than the 2x approximation"
        ),
    )
    # The measured crossover sits in the same low-tens regime as r1.
    assert measured_crossover <= paper_r1 + 10
    # At the paper's default delta' ~ 100 OPT clearly wins, as in Fig 6a.
    assert _opt_cost_units(100, m) < 0.5 * _plain_cost_units(100, m)

    benchmark.pedantic(
        lambda: [optimal_omega(dp) for dp in (10, 100, 1000)], rounds=3, iterations=1
    )
