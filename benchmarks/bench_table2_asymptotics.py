"""Table 2: empirical validation of the cost asymptotics.

The paper's analysis (Section 7) predicts, as functions of delta':

- PPGNN indicator communication:      O(delta')      * L_e
- PPGNN-OPT indicator communication:  O(sqrt(delta')) * L_e
- LSP private-selection work:         O(delta' * k)  homomorphic ops
  (+ O(sqrt(delta') * k) extra for OPT's second phase)
- user encryption work:               O(delta') / O(sqrt(delta')) ops

We verify by measuring *deterministic* quantities — message bytes and
homomorphic operation counts — across a delta sweep and fitting the log-log
slope: linear terms must fit slope ~1.0 and sqrt terms slope ~0.5.
"""

from __future__ import annotations


import numpy as np

from repro.core.group import run_ppgnn
from repro.core.opt import run_ppgnn_opt
from repro.protocol.metrics import COORDINATOR, LSP

DELTA_VALUES = [25, 50, 100, 200, 400]


def _loglog_slope(xs, ys):
    lx = np.log(np.array(xs, dtype=float))
    ly = np.log(np.array(ys, dtype=float))
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)


def test_table2_scaling(lsp, settings, config_factory, recorder, benchmark):
    group = lsp.space.sample_points(8, np.random.default_rng(settings.seed))
    plain_indicator_bytes = []
    opt_indicator_bytes = []
    plain_lsp_ops = []
    opt_user_encs = []
    plain_user_encs = []
    delta_primes = []
    for delta in DELTA_VALUES:
        cfg = config_factory(delta=delta, theta0=None, sanitize=False, d=25)
        plain = run_ppgnn(lsp, group, cfg, seed=settings.seed)
        opt = run_ppgnn_opt(lsp, group, cfg, seed=settings.seed)
        delta_primes.append(plain.delta_prime)
        plain_indicator_bytes.append(plain.report.link_bytes(COORDINATOR, LSP))
        opt_indicator_bytes.append(opt.report.link_bytes(COORDINATOR, LSP))
        plain_lsp_ops.append(plain.report.ops_by_role[LSP].total)
        plain_user_encs.append(plain.report.ops_by_role[COORDINATOR].encryptions)
        opt_user_encs.append(opt.report.ops_by_role[COORDINATOR].encryptions)

    slopes = {
        "PPGNN indicator bytes (theory 1.0)": _loglog_slope(
            delta_primes, plain_indicator_bytes
        ),
        "PPGNN-OPT indicator bytes (theory 0.5)": _loglog_slope(
            delta_primes, opt_indicator_bytes
        ),
        "PPGNN LSP hom. ops (theory 1.0)": _loglog_slope(delta_primes, plain_lsp_ops),
        "PPGNN user encryptions (theory 1.0)": _loglog_slope(
            delta_primes, plain_user_encs
        ),
        "PPGNN-OPT user encryptions (theory 0.5)": _loglog_slope(
            delta_primes, opt_user_encs
        ),
    }
    recorder.record(
        "table2",
        "Table 2: measured log-log scaling exponents vs delta'",
        "quantity",
        list(slopes.keys()),
        {"slope": [f"{v:.3f}" for v in slopes.values()]},
        notes=f"delta' sweep: {delta_primes}",
    )
    # The fits must land near the theory (request bytes include constant
    # terms such as the location sets, so allow slack below the exponent).
    assert 0.7 <= slopes["PPGNN indicator bytes (theory 1.0)"] <= 1.05
    assert 0.25 <= slopes["PPGNN-OPT indicator bytes (theory 0.5)"] <= 0.75
    assert 0.8 <= slopes["PPGNN LSP hom. ops (theory 1.0)"] <= 1.2
    assert 0.85 <= slopes["PPGNN user encryptions (theory 1.0)"] <= 1.1
    assert 0.3 <= slopes["PPGNN-OPT user encryptions (theory 0.5)"] <= 0.7

    cfg = config_factory(theta0=None, sanitize=False)
    benchmark.pedantic(
        lambda: run_ppgnn(lsp, group, cfg, seed=1), rounds=1, iterations=1
    )
