"""Figure 7: the number of POIs actually returned after answer sanitation.

The sanitation truncates the top-k answer to its longest collusion-safe
prefix, so fewer than k POIs may reach the users.  The paper's findings
(defaults k = 8, n = 8, theta0 = 0.01):

- 7a (vs k): rises with k then saturates around 4-5 — beyond a few
  inequalities the attack succeeds, so extra k has no effect,
- 7b (vs n): rises slightly with n — more users dilute the target's weight
  in the aggregate, enlarging the feasible region,
- 7c (vs theta0): falls as theta0 grows — stronger Privacy IV trims more.

Only PPGNN is measured; OPT and Naive return identical answers.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import measure_protocol
from repro.core.group import run_ppgnn

K_VALUES = [2, 4, 8, 16, 32]
N_VALUES = [2, 4, 8, 16, 32]
THETA_VALUES = [0.01, 0.02, 0.05, 0.1]


def _group(lsp, n: int, seed: int):
    return lsp.space.sample_points(n, np.random.default_rng(seed))


def _mean_answer_length(lsp, settings, cfg, n: int) -> float:
    measured = measure_protocol(
        lambda seed: run_ppgnn(lsp, _group(lsp, n, seed), cfg, seed=seed),
        repeats=settings.repeats,
        base_seed=settings.seed,
    )
    return measured.mean_answer_length


def test_fig7a_pois_vs_k(lsp, settings, config_factory, recorder, benchmark):
    values = [
        _mean_answer_length(lsp, settings, config_factory(k=k, theta0=0.01), 8)
        for k in K_VALUES
    ]
    recorder.record(
        "fig7",
        "Fig 7a: POIs returned vs k (n=8, theta0=0.01)",
        "k",
        K_VALUES,
        {"ppgnn": [f"{v:.2f}" for v in values]},
    )
    cfg = config_factory(theta0=0.01)
    benchmark.pedantic(
        lambda: run_ppgnn(lsp, _group(lsp, 8, 0), cfg, seed=0), rounds=1, iterations=1
    )


def test_fig7b_pois_vs_n(lsp, settings, config_factory, recorder, benchmark):
    cfg = config_factory(theta0=0.01)
    values = [_mean_answer_length(lsp, settings, cfg, n) for n in N_VALUES]
    recorder.record(
        "fig7",
        "Fig 7b: POIs returned vs n (k=8, theta0=0.01)",
        "n",
        N_VALUES,
        {"ppgnn": [f"{v:.2f}" for v in values]},
    )
    benchmark.pedantic(
        lambda: run_ppgnn(lsp, _group(lsp, 4, 1), cfg, seed=1), rounds=1, iterations=1
    )


def test_fig7c_pois_vs_theta(lsp, settings, config_factory, recorder, benchmark):
    values = [
        _mean_answer_length(lsp, settings, config_factory(theta0=theta0), 8)
        for theta0 in THETA_VALUES
    ]
    recorder.record(
        "fig7",
        "Fig 7c: POIs returned vs theta0 (k=8, n=8)",
        "theta0",
        THETA_VALUES,
        {"ppgnn": [f"{v:.2f}" for v in values]},
        notes="larger theta0 = stronger Privacy IV = shorter safe prefix",
    )
    cfg = config_factory(theta0=0.05)
    benchmark.pedantic(
        lambda: run_ppgnn(lsp, _group(lsp, 8, 2), cfg, seed=2), rounds=1, iterations=1
    )
