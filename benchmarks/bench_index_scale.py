"""Index substrate crossover: exact candidate work vs. approximate recall.

Builds every index kind over clustered datasets of increasing size and
runs one seeded group-query workload through each, freezing the exact
per-workload candidate counters into the ``index-scale`` baseline.  The
counters are the crossover story in numbers: the hierarchical indexes
(rtree/kdtree/grid) score a near-constant candidate set per query while
brute force scores the whole database, and the approximate paths
(spill/lsh) cut candidates sub-linearly at a measured, seeded recall —
which freezes too, as a fixed metric, so a recall drop can never slip
through as "just a perf change".

All exact kinds must return identical answer ids for every query; that
equivalence is asserted here on every run, baseline or not.
"""

from __future__ import annotations

import pytest

from repro.datasets import stream_clustered
from repro.geometry.space import LocationSpace
from repro.gnn.engine import APPROXIMATE_INDEX_KINDS, INDEX_KINDS, GNNQueryEngine

import numpy as np

SIZES = (2_000, 8_000, 32_000)
QUERIES = 12
K = 8
GROUP = 2
SEED = 20180326

#: Minimum acceptable seeded recall for the approximate kinds at any size.
RECALL_FLOOR = 0.6


def _workload(space: LocationSpace):
    rng = np.random.default_rng(SEED)
    return [space.sample_points(GROUP, rng) for _ in range(QUERIES)]


@pytest.fixture(scope="module")
def scale_results():
    space = LocationSpace.unit_square()
    queries = _workload(space)
    results: dict[int, dict[str, dict]] = {}
    for size in SIZES:
        pois = list(stream_clustered(size, space=space, seed=SEED))
        per_kind: dict[str, dict] = {}
        for kind in INDEX_KINDS:
            engine = GNNQueryEngine(pois, index=kind, space=space)
            answers = [
                tuple(p.poi_id for p in engine.query(K, group))
                for group in queries
            ]
            per_kind[kind] = {
                "answers": answers,
                "counters": engine.index_counters,
                "recall": engine.recall_estimate,
            }
        results[size] = per_kind
    return results


def test_exact_kinds_answer_identically(scale_results):
    exact_kinds = [k for k in INDEX_KINDS if k not in APPROXIMATE_INDEX_KINDS]
    for size, per_kind in scale_results.items():
        reference = per_kind["rtree"]["answers"]
        for kind in exact_kinds:
            assert per_kind[kind]["answers"] == reference, (
                f"{kind} diverged from rtree at n={size}"
            )


def test_approximate_recall_meets_floor(scale_results):
    for size, per_kind in scale_results.items():
        for kind in APPROXIMATE_INDEX_KINDS:
            recall = per_kind[kind]["recall"]
            assert recall is not None, f"{kind} must carry a recall estimate"
            assert recall.expected_recall >= RECALL_FLOOR, (
                f"{kind} recall {recall.expected_recall:.2f} below "
                f"{RECALL_FLOOR} at n={size}"
            )


def test_approximate_candidates_sublinear(scale_results):
    """Candidate work of the approximate paths must not scale with n."""
    lo, hi = SIZES[0], SIZES[-1]
    growth = hi / lo
    for kind in APPROXIMATE_INDEX_KINDS:
        c_lo = scale_results[lo][kind]["counters"].candidates_scored
        c_hi = scale_results[hi][kind]["counters"].candidates_scored
        assert c_hi < scale_results[hi]["bruteforce"]["counters"].candidates_scored
        assert c_hi / max(c_lo, 1) < growth / 2, (
            f"{kind} candidate growth {c_hi}/{c_lo} tracks n too closely"
        )


def test_index_scale_baseline(scale_results, recorder, sentinel):
    metrics: dict[str, float] = {}
    for size, per_kind in scale_results.items():
        for kind in INDEX_KINDS:
            counters = per_kind[kind]["counters"]
            metrics[f"candidates.{kind}.n{size}"] = counters.candidates_scored
            metrics[f"nodes.{kind}.n{size}"] = counters.nodes_visited
        for kind in APPROXIMATE_INDEX_KINDS:
            # "answers" marks the metric direction-fixed: seeded recall is
            # deterministic, so *any* drift is a behavior change.
            metrics[f"answers.recall.{kind}.n{size}"] = round(
                per_kind[kind]["recall"].expected_recall, 6
            )
    sentinel.gate(
        "index-scale",
        metrics,
        config={
            "sizes": list(SIZES),
            "queries": QUERIES,
            "k": K,
            "group": GROUP,
            "seed": SEED,
        },
    )
    recorder.record_json(
        "index-scale",
        {"sizes": list(SIZES), "metrics": metrics},
        config={"seed": SEED},
    )
    largest = SIZES[-1]
    brute = scale_results[largest]["bruteforce"]["counters"].candidates_scored
    lsh = scale_results[largest]["lsh"]["counters"].candidates_scored
    recorder.note(
        "index-scale",
        f"n={largest}: lsh scores {lsh} candidates vs {brute} brute-force "
        f"({lsh / brute:.1%}), recall "
        f"{scale_results[largest]['lsh']['recall'].expected_recall:.2f}",
    )
