"""Section 8.3 claim: delta' tracks delta closely over the evaluation grid.

The paper: "We experimentally tested for every (n, d, delta) where
n in [2, 32], d in [5, 50], delta in [50, 200] and the average difference
between delta' and delta is approximately 1."

We sweep a stride grid over the same ranges and report the average and
maximum gap.  Small-d / large-delta corners force coarse overshoot (the
achievable power sums are sparse there), so the average is dominated by the
well-conditioned bulk, exactly as in the paper.
"""

from __future__ import annotations

import statistics

from repro.errors import InfeasibleError
from repro.partition.solver import solve_partition

N_VALUES = [2, 4, 8, 16, 32]
D_VALUES = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
DELTA_VALUES = [50, 75, 100, 125, 150, 175, 200]


def test_partition_gap(recorder, benchmark):
    gaps = []
    per_d_gaps: dict[int, list[int]] = {d: [] for d in D_VALUES}
    skipped = 0
    for n in N_VALUES:
        for d in D_VALUES:
            for delta in DELTA_VALUES:
                try:
                    params = solve_partition(n, d, delta)
                except InfeasibleError:
                    skipped += 1
                    continue
                gap = params.delta_prime - delta
                gaps.append(gap)
                per_d_gaps[d].append(gap)

    mean_gap = statistics.mean(gaps)
    recorder.record(
        "partition_gap",
        "Section 8.3: delta' - delta over the (n, d, delta) grid",
        "d",
        D_VALUES,
        {
            "mean gap": [
                f"{statistics.mean(per_d_gaps[d]):.2f}" if per_d_gaps[d] else "-"
                for d in D_VALUES
            ],
            "max gap": [
                f"{max(per_d_gaps[d])}" if per_d_gaps[d] else "-" for d in D_VALUES
            ],
        },
        notes=(
            f"overall mean gap {mean_gap:.2f}, max {max(gaps)}, "
            f"{len(gaps)} instances, {skipped} infeasible corners skipped "
            f"(paper reports ~1 on its grid)"
        ),
    )
    # The well-conditioned bulk (d >= 15) must be tight, like the paper's grid.
    bulk = [g for d in D_VALUES if d >= 15 for g in per_d_gaps[d]]
    assert statistics.mean(bulk) <= 2.0
    assert all(g >= 0 for g in gaps)

    benchmark.pedantic(
        lambda: solve_partition.__wrapped__(8, 25, 100), rounds=3, iterations=1
    )
