"""Ablation: vectorized answer sanitation vs the scalar reference.

DESIGN.md decision 1: the sanitation evaluates the inequality attack on one
shared Monte-Carlo batch with a cumulative AND, instead of re-testing every
prefix length with fresh loops.  This bench quantifies the speedup and
re-verifies output equality on the benchmark workload.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.sanitize import AnswerSanitizer
from repro.stats.hypothesis import SanitationTestPlan

SAMPLES = 2000  # scalar path is O(N_H * n * k^2); keep the reference feasible


def test_ablation_sanitize_vectorized_vs_scalar(lsp, settings, recorder, benchmark):
    plan = SanitationTestPlan.from_parameters(0.05, n_samples_override=SAMPLES)
    sanitizer = AnswerSanitizer(
        lsp.space, lsp.aggregate, plan, np.random.default_rng(1)
    )
    group = lsp.space.sample_points(8, np.random.default_rng(settings.seed))
    pois = lsp.engine.query(8, group)
    xs, ys = lsp.space.sample_arrays(SAMPLES, np.random.default_rng(2))

    start = time.perf_counter()
    incremental = sanitizer._sanitize_incremental(pois, group, xs, ys)
    incremental_time = time.perf_counter() - start

    start = time.perf_counter()
    batched = sanitizer._sanitize_with_samples(pois, group, xs, ys)
    batched_time = time.perf_counter() - start

    start = time.perf_counter()
    scalar = sanitizer.sanitize_scalar(pois, group, xs, ys)
    scalar_time = time.perf_counter() - start

    assert incremental.prefix == batched.prefix == scalar.prefix
    speedup = scalar_time / batched_time
    recorder.record(
        "ablation_sanitize",
        "Ablation: sanitation implementation (N_H=2000, n=8, k=8)",
        "variant",
        ["incremental (paper)", "batched", "scalar"],
        {
            "time": [
                f"{incremental_time * 1000:.2f} ms",
                f"{batched_time * 1000:.2f} ms",
                f"{scalar_time * 1000:.2f} ms",
            ],
            "prefix": [
                str(len(incremental.prefix)),
                str(len(batched.prefix)),
                str(len(scalar.prefix)),
            ],
        },
        notes=(
            f"vectorized-vs-scalar speedup {speedup:.0f}x; the incremental "
            f"path additionally skips POI columns past the unsafe prefix "
            f"(why Fig 6f flattens at large k); all prefixes identical"
        ),
    )
    assert speedup > 5  # the vectorized paths must matter

    benchmark.pedantic(
        lambda: sanitizer._sanitize_incremental(pois, group, xs, ys),
        rounds=3,
        iterations=1,
    )
