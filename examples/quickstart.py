"""Quickstart: one privacy-preserving group kNN query, end to end.

Eight friends scattered over the city want the top-8 meeting places that
minimize their total travel distance — without revealing their locations
to the service provider, to each other, or learning more of the provider's
database than the answer.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import LSPServer, PPGNNConfig, random_group, run_ppgnn
from repro.datasets import load_sequoia


def main() -> None:
    # The service provider owns a database of POIs (a Sequoia-like surrogate).
    print("Building the LSP over 10,000 POIs ...")
    lsp = LSPServer(load_sequoia(10_000), seed=7)

    # Eight mobile users at arbitrary locations form the query group.
    group = random_group(8, lsp.space, np.random.default_rng(42))

    # Privacy parameters (paper Table 3): each location hides among d = 25
    # dummies, the joint query among delta >= 100 candidates, and under full
    # collusion every user stays hidden in >= 5% of the city (theta0).
    config = PPGNNConfig(d=25, delta=100, k=8, theta0=0.05, keysize=256)

    print("Running the PPGNN protocol ...")
    result = run_ppgnn(lsp, group, config, seed=1)

    print(f"\nTop meeting places (of k={config.k} requested, "
          f"{len(result.answers)} survived answer sanitation):")
    for rank, answer in enumerate(result.answers, start=1):
        poi = lsp.engine.poi_by_id(answer.poi_id)
        print(f"  {rank}. {poi}")

    report = result.report
    print("\nWhat this round cost:")
    print(f"  candidate queries computed by LSP : {result.delta_prime}")
    print(f"  total communication               : {report.total_comm_bytes} bytes")
    print(f"  total user computation            : {report.user_cost_seconds * 1000:.1f} ms")
    print(f"  LSP computation                   : {report.lsp_cost_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
