"""Group queries over road-network distance (Section 2.1's other metric).

The kGNN query is defined over any metric space; the paper evaluates with
Euclidean distance but cites road networks [38] as the natural alternative.
Because PPGNN treats query answering as a black box, swapping the metric is
an engine change only: this example builds a jittered-grid road network,
installs a RoadNetworkEngine in the LSP, and runs the same group protocol —
then shows where road distance changes the answer.

Run:  python examples/road_network.py
"""

from __future__ import annotations


from repro import LSPServer, PPGNNConfig, run_ppgnn
from repro.datasets import uniform_pois
from repro.geometry import Point
from repro.gnn.engine import GNNQueryEngine
from repro.roadnet import RoadNetwork, RoadNetworkEngine


def main() -> None:
    print("Building a 20x20 jittered road grid and 2,000 POIs ...")
    network = RoadNetwork.grid(nodes_per_side=20, drop_fraction=0.15, seed=7)
    pois = uniform_pois(2_000, network.space, seed=8)

    road_lsp = LSPServer(engine=RoadNetworkEngine(pois, network), seed=1)
    euclid_lsp = LSPServer(engine=GNNQueryEngine(pois), seed=1)

    group = [Point(0.15, 0.2), Point(0.85, 0.25), Point(0.5, 0.9)]
    # Privacy IV included: the LSP picks the road-metric sanitizer
    # automatically for RoadNetworkEngine (see repro.roadnet.sanitize).
    config = PPGNNConfig(d=10, delta=40, k=5, keysize=256, theta0=0.05)

    print("Running PPGNN over both metrics ...\n")
    road = run_ppgnn(road_lsp, group, config, seed=3)
    euclid = run_ppgnn(euclid_lsp, group, config, seed=3)

    print(f"answers surviving sanitation: road {len(road.answers)}, "
          f"Euclidean {len(euclid.answers)} (of k={config.k})\n")
    print("rank  road-distance answer      Euclidean answer")
    for i in range(min(len(road.answers), len(euclid.answers))):
        road_poi = road_lsp.engine.poi_by_id(road.answer_ids[i])
        euclid_poi = euclid_lsp.engine.poi_by_id(euclid.answer_ids[i])
        marker = "  <- differs" if road_poi.poi_id != euclid_poi.poi_id else ""
        print(f"  {i + 1}.  {road_poi.name:<22} {euclid_poi.name:<22}{marker}")

    overlap = len(set(road.answer_ids) & set(euclid.answer_ids))
    print(f"\n{overlap}/{config.k} POIs shared between the metrics.")
    best = road_lsp.engine.poi_by_id(road.answer_ids[0])
    print(f"\nWinner under road distance: {best}")
    for idx, user in enumerate(group):
        direct = user.distance_to(best.location)
        via_roads = network.distance(user, best.location)
        print(f"  user {idx}: straight-line {direct:.3f}, by road {via_roads:.3f} "
              f"(detour {via_roads / max(direct, 1e-9):.2f}x)")


if __name__ == "__main__":
    main()
