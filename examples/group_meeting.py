"""Protocol comparison on a realistic group-meeting workload.

Runs the same query with the three protocol variants the paper evaluates —
PPGNN, PPGNN-OPT, and the Naive solution — plus PPGNN-NAS (no collusion
defense), and prints a side-by-side cost/answer comparison.  Also shows a
`max`-aggregate query (the troop-gathering semantics of Section 2.1).

Run:  python examples/group_meeting.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LSPServer,
    PPGNNConfig,
    random_group,
    run_naive,
    run_ppgnn,
    run_ppgnn_opt,
)
from repro.bench.harness import format_bytes, format_seconds
from repro.datasets import load_sequoia


def describe(label, result, lsp):
    report = result.report
    names = [lsp.engine.poi_by_id(a.poi_id).name for a in result.answers]
    print(f"  {label:<10} comm {format_bytes(report.total_comm_bytes):>10}   "
          f"user {format_seconds(report.user_cost_seconds):>9}   "
          f"lsp {format_seconds(report.lsp_cost_seconds):>9}   "
          f"answers {names}")


def main() -> None:
    pois = load_sequoia(10_000)
    lsp = LSPServer(pois, seed=3)
    group = random_group(8, lsp.space, np.random.default_rng(11))
    config = PPGNNConfig(d=25, delta=100, k=8, theta0=0.05, keysize=256)

    print(f"Group of {len(group)} users; d={config.d}, delta={config.delta}, "
          f"k={config.k}, theta0={config.theta0}\n")

    print("Sum aggregate (minimize total travel):")
    lsp.reset_rng(1)
    describe("PPGNN", run_ppgnn(lsp, group, config, seed=5), lsp)
    lsp.reset_rng(1)
    describe("PPGNN-OPT", run_ppgnn_opt(lsp, group, config, seed=5), lsp)
    lsp.reset_rng(1)
    describe("Naive", run_naive(lsp, group, config, seed=5), lsp)
    describe("NAS", run_ppgnn(lsp, group, config.without_sanitation(), seed=5), lsp)
    print("  (PPGNN-OPT: least communication; Naive: most — every user ships")
    print("   delta locations.  NAS returns all k POIs but drops Privacy IV.)")

    print("\nMax aggregate (minimize the farthest user's travel):")
    max_lsp = LSPServer(pois, aggregate_name="max", seed=3)
    max_config = PPGNNConfig(
        d=25, delta=100, k=4, theta0=0.05, keysize=256, aggregate_name="max"
    )
    describe("PPGNN", run_ppgnn(max_lsp, group, max_config, seed=6), max_lsp)


if __name__ == "__main__":
    main()
