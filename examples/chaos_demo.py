"""A PPGNN round on a network that drops and corrupts 10% of messages.

Every message crosses a :class:`~repro.transport.channel.FaultyChannel`
that silently discards 10% of transmissions and bit-flips another 10%.
The transport layer retries on timeout, NACKs corrupted envelopes before
anything reaches the crypto layer, and the transcript shows the extra
traffic — while the answer set stays byte-identical to a perfect network.

Run:  python examples/chaos_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FaultPlan,
    FaultyChannel,
    LinkFaults,
    LSPServer,
    PPGNNConfig,
    RetryPolicy,
    Transport,
    random_group,
    run_ppgnn,
)
from repro.datasets import load_sequoia
from repro.protocol.transcript import format_transcript


def main() -> None:
    lsp = LSPServer(load_sequoia(5_000), seed=6)
    group = random_group(4, lsp.space, np.random.default_rng(3))
    config = PPGNNConfig(d=8, delta=24, k=4, theta0=0.05, keysize=192, key_seed=11)

    # Baseline: the same query over a loss-free network.
    lsp.reset_rng(42)
    perfect = run_ppgnn(lsp, group, config, seed=2, transport=Transport())

    # Chaos: 10% of transmissions vanish, another 10% arrive bit-flipped.
    plan = FaultPlan(default=LinkFaults(drop=0.10, corrupt=0.10), seed=5)
    transport = Transport(FaultyChannel(plan), RetryPolicy(max_attempts=10))
    lsp.reset_rng(42)
    faulty = run_ppgnn(lsp, group, config, seed=2, transport=transport)

    print(f"Group of {len(group)} users, 10% drop + 10% corruption per link\n")
    print("Message flow under chaos (xN = retransmissions, Nack = corrupt copy):")
    print(format_transcript(faulty.report))
    print(f"\nTransport: {transport.stats.summary()}")

    overhead = faulty.report.total_comm_bytes - perfect.report.total_comm_bytes
    print(
        f"Reliability overhead: {overhead} bytes "
        f"({overhead / perfect.report.total_comm_bytes:.0%} over the "
        f"perfect-network round)."
    )

    print(f"\nAnswers over perfect network: {sorted(perfect.answer_ids)}")
    print(f"Answers under chaos:          {sorted(faulty.answer_ids)}")
    if faulty.answer_ids == perfect.answer_ids:
        print("Identical — faults cost retries, never correctness.")
    else:  # unreachable by design: checksums + retries, or a typed abort
        raise SystemExit("answer sets diverged")


if __name__ == "__main__":
    main()
