"""A serving fleet: many groups, one LSP, scheduling and shared caches.

Six query groups fire a mixed PPGNN / PPGNN-OPT / Naive workload at one
provider through the :mod:`repro.serve` engine.  A third of the queries
re-issue an earlier query verbatim (the "where shall we meet *tonight*"
repeat), which the LSP-side kNN cache answers without re-searching; every
indicator encryption spends a precomputed nonce from the shared pool.
The timeline is simulated deterministically, so the printed report is
identical on every run — only the wall-clock line is real.

Run:  python examples/serve_demo.py
"""

from __future__ import annotations

from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.datasets import load_sequoia
from repro.serve import ServeConfig, ServeEngine, WorkloadSpec, generate_workload
from repro.transport.faults import FaultPlan


def main() -> None:
    lsp = LSPServer(load_sequoia(2_000), seed=4)
    config = PPGNNConfig(
        d=4, delta=8, k=4, keysize=192, key_seed=7, sanitation_samples=16
    )
    spec = WorkloadSpec(
        queries=24,
        rate_qps=12.0,
        protocol_mix={"ppgnn": 2.0, "ppgnn-opt": 1.0, "naive": 1.0},
        group_size_mix={2: 1.0, 3: 1.0},
        k_mix={4: 1.0},
        tenants=("friends", "colleagues"),
        groups=6,
        repeat_fraction=0.35,
        seed=42,
    )
    serve = ServeConfig(
        workers=2,
        policy="fair-share",
        queue_capacity=16,
        knn_cache_size=128,
        faults=FaultPlan.uniform(0.02, seed=9),  # a mildly lossy network
    )

    workload = generate_workload(spec, lsp.space)
    report = ServeEngine(lsp, config, serve).run(workload)

    print(
        f"served {report.completed}/{report.queries} queries on "
        f"{serve.workers} workers under {serve.policy!r} scheduling"
    )
    print(
        f"simulated: {report.throughput_qps:.2f} qps, latency "
        f"p50={report.latency_p50 * 1e3:.1f} ms "
        f"p95={report.latency_p95 * 1e3:.1f} ms, "
        f"peak queue depth {report.max_queue_depth}"
    )
    print(
        f"kNN cache: {report.cache['hits']} hits / "
        f"{report.cache['misses']} misses "
        f"({report.cache['hit_rate']:.0%} hit rate)"
    )
    print(
        f"nonce pool: {report.pool['pooled']} pooled factors spent, "
        f"{report.pool['dry']} dry takes"
    )
    print(
        f"network: {report.retransmissions} retransmissions, "
        f"{report.corrupt_rejected} corrupted envelopes rejected"
    )
    for tenant, entry in report.per_tenant.items():
        print(f"  {tenant}: {entry['completed']} completed")
    print(f"(wall-clock: {report.wall_seconds:.2f} s real execution)")


if __name__ == "__main__":
    main()
