"""Closed-loop overload control: a diurnal cycle with a flash crowd.

The same serving fleet runs twice against one provider.  Off-peak, a
trickle of queries leaves the armed controller idle — the report is
byte-identical to running with no controller at all.  At peak, a 4x
flash crowd slams one worker: the control loop watches SLO burn rates
and queue depth on the simulated clock, scales the pool out, switches
the scheduler to shortest-cost, and brownouts the heaviest tenant —
degrading its queries to a smaller k with an exact quality score
instead of failing them.  Every decision lands in an auditable
timeline, printed below; both phases replay bit-for-bit.

Run:  python examples/overload_demo.py
"""

from __future__ import annotations

from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.datasets import load_sequoia
from repro.obs.analyze import SLOPolicy
from repro.serve import (
    ControlConfig,
    ServeConfig,
    ServeEngine,
    WorkloadSpec,
    generate_workload,
)

QUERIES = 32
PEAK_RATE = 600.0
SPAN = QUERIES / PEAK_RATE


def spec(rate: float, burst: float) -> WorkloadSpec:
    span = QUERIES / rate
    return WorkloadSpec(
        queries=QUERIES,
        rate_qps=rate,
        protocol_mix={"ppgnn": 1.0},
        group_size_mix={2: 1.0},
        k_mix={4: 1.0},
        tenants=("commuters", "tourists"),
        groups=6,
        seed=42,
        burst_multiplier=burst,
        burst_start=0.25 * span if burst > 1.0 else 0.0,
        burst_duration=0.5 * span if burst > 1.0 else 0.0,
    )


def main() -> None:
    lsp = LSPServer(load_sequoia(2_000), sanitation_samples=16, seed=4)
    config = PPGNNConfig(
        d=4, delta=8, k=4, keysize=128, key_seed=7, sanitation_samples=16
    )
    control = ControlConfig(
        tick_seconds=SPAN / 20,
        window_seconds=SPAN / 5,
        slo=SLOPolicy(latency_p99=0.05),
        max_workers=4,
        shed_policy="degrade",
        queue_high_fraction=0.1,
    )

    def run(rate: float, burst: float):
        serve = ServeConfig(workers=1, control=control)
        workload = generate_workload(spec(rate, burst), lsp.space)
        return ServeEngine(lsp, config, serve).run(workload)

    # ---- off-peak: the armed controller never actuates -----------------
    calm = run(rate=10.0, burst=1.0)
    baseline = ServeEngine(lsp, config, ServeConfig(workers=1)).run(
        generate_workload(spec(10.0, 1.0), lsp.space)
    )
    print(f"off-peak: {calm.completed}/{calm.queries} served at 10 qps, "
          f"p99 {calm.latency_p99 * 1e3:.1f} ms")
    idle = calm.control is None and calm.to_dict() == baseline.to_dict()
    print(f"controller idle, report byte-identical to control=None: {idle}\n")

    # ---- peak: a 4x flash crowd through one worker ---------------------
    peak = run(rate=PEAK_RATE, burst=4.0)
    control_section = peak.control
    assert control_section is not None and peak.failed == 0
    print(f"flash crowd: {QUERIES} queries at {PEAK_RATE:.0f} qps (4x burst), "
          f"starting from 1 worker")
    print(f"survived: {peak.completed} completed, {peak.rejected} shed, "
          f"0 failed; p99 {peak.latency_p99 * 1e3:.1f} ms")
    workers = control_section["workers"]
    print(f"control: workers {workers['initial']} -> {workers['final']}, "
          f"policy {control_section['policy']['initial']} -> "
          f"{control_section['policy']['final']}, "
          f"{control_section['degraded']} degraded / "
          f"{control_section['shed']} shed\n")

    print("control timeline:")
    for entry in control_section["timeline"]:
        burn = entry.get("signals", {}).get("burn")
        line = f"  tick {entry['tick']:>3}  {entry['action']:<15}"
        if burn is not None:
            line += f" burn {burn:6.2f}x"
        if "detail" in entry:
            line += f" -> {entry['detail']}"
        if "tenants" in entry:
            line += f"  [{', '.join(entry['tenants'])}]"
        if "count" in entry:
            line += f" x{entry['count']}"
        print(line)

    degraded = [
        o for o in peak.outcomes.values()
        if o.ok and o.degraded_k is not None
    ]
    if degraded:
        sample = degraded[0]
        quality = sample.partial_answer.quality
        print(f"\nbrownout answers are exact top-k prefixes: one degraded "
              f"query returned k'={sample.degraded_k} of k=4 with "
              f"guaranteed recall {quality.guaranteed_recall:.2f}")


if __name__ == "__main__":
    main()
