"""Dynamic databases: PPGNN vs precomputation-based schemes (Section 1).

The paper's first novelty: PPGNN computes candidate answers at query time,
so a POI insertion or deletion is visible to the very next query.  Schemes
that precompute answers for all possible queries — APNN's per-cell kNN
grid being the evaluated example — must rebuild that precomputation on
every update.  This example inserts a new POI and measures both effects.

Run:  python examples/dynamic_database.py
"""

from __future__ import annotations

import time


from repro import LSPServer, PPGNNConfig, run_single_user
from repro.baselines import APNNServer, run_apnn
from repro.datasets import POI, load_sequoia
from repro.geometry import Point


def main() -> None:
    pois = load_sequoia(10_000)
    user = Point(0.3123, 0.5531)
    config = PPGNNConfig(d=25, delta=25, k=4, keysize=256)

    lsp = LSPServer(list(pois), seed=4)
    apnn = APNNServer(list(pois), cells_per_side=32)

    print("Before the update:")
    ppgnn_before = run_single_user(lsp, user, config, seed=1)
    print(f"  PPGNN top answer : {lsp.engine.poi_by_id(ppgnn_before.answer_ids[0])}")
    start = time.perf_counter()
    apnn.precompute(k=config.k)
    print(f"  APNN precomputed {apnn.grid.cells_per_side ** 2} cells "
          f"in {time.perf_counter() - start:.2f} s")
    apnn_before = run_apnn(apnn, user, config, seed=1)
    print(f"  APNN top answer  : {apnn.engine.poi_by_id(apnn_before.answer_ids[0])}")

    # A new cafe opens right next to the user.
    newcomer = POI(999_999, Point(0.3124, 0.5530), "brand-new-cafe")
    print(f"\nInserting {newcomer} ...")
    lsp.engine.insert(newcomer)
    apnn.engine.insert(newcomer)

    print("\nAfter the update:")
    ppgnn_after = run_single_user(lsp, user, config, seed=2)
    found = ppgnn_after.answer_ids[0] == newcomer.poi_id
    print(f"  PPGNN sees the new cafe immediately : {found}")

    stale = run_apnn(apnn, user, config, seed=2)
    print(f"  APNN still serves the stale cache   : "
          f"{newcomer.poi_id not in stale.answer_ids}")

    dropped = apnn.invalidate()
    print(f"  APNN must drop {dropped} precomputed cell answers and rebuild:")
    start = time.perf_counter()
    apnn.precompute(k=config.k)
    rebuild = time.perf_counter() - start
    fresh = run_apnn(apnn, user, config, seed=3)
    print(f"    rebuild took {rebuild:.2f} s; fresh answer now includes the "
          f"cafe: {newcomer.poi_id in fresh.answer_ids}")
    print("\nPPGNN's per-query work is higher, but updates are free — the")
    print("trade the paper argues is right for dynamic POI databases.")


if __name__ == "__main__":
    main()
