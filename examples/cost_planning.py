"""Capacity planning with the exact cost model (Table 2, sharpened).

Before deploying, an operator wants to know what a query will cost on the
wire for a given parameter choice — without running the protocol.  The
`repro.analysis` cost model predicts communication *byte-exactly* from the
message definitions (tests assert equality with the simulated ledger).

This example sweeps the privacy parameters, prints the predicted bills,
and picks the cheapest protocol variant under a byte budget.

Run:  python examples/cost_planning.py
"""

from __future__ import annotations

from repro.analysis import predict_naive_comm, predict_opt_comm, predict_ppgnn_comm
from repro.bench.harness import format_bytes


def main() -> None:
    n, k, keysize = 8, 8, 1024
    print(f"Predicted communication per query (n={n}, k={k}, {keysize}-bit keys)\n")

    print(f"{'delta':>6} | {'PPGNN':>10} | {'PPGNN-OPT':>10} | {'Naive':>10}")
    print("-" * 46)
    for delta in (25, 50, 100, 200, 400):
        ppgnn = predict_ppgnn_comm(n=n, d=25, delta=delta, k=k, keysize=keysize)
        opt = predict_opt_comm(n=n, d=25, delta=delta, k=k, keysize=keysize)
        naive = predict_naive_comm(n=n, delta=delta, k=k, keysize=keysize)
        print(
            f"{delta:>6} | {format_bytes(ppgnn.total):>10} | "
            f"{format_bytes(opt.total):>10} | {format_bytes(naive.total):>10}"
        )

    print("\nWhere the PPGNN bytes go at delta=100:")
    breakdown = predict_ppgnn_comm(n=n, d=25, delta=100, k=k, keysize=keysize)
    for label, value in (
        ("position broadcasts", breakdown.position_broadcasts),
        ("query request (indicator!)", breakdown.request),
        ("location-set uploads", breakdown.uploads),
        ("encrypted answer", breakdown.encrypted_answer),
        ("plaintext answer broadcast", breakdown.answer_broadcast),
    ):
        share = value / breakdown.total
        print(f"  {label:<28} {format_bytes(value):>10}  {share:>5.1%}")

    budget = 16 * 1024
    print(f"\nPicking the strongest Privacy II under a {format_bytes(budget)} budget:")
    best = None
    for delta in range(100, 2001, 100):
        cost = predict_opt_comm(n=n, d=25, delta=delta, k=k, keysize=keysize).total
        if cost <= budget:
            best = (delta, cost)
    if best:
        print(f"  PPGNN-OPT sustains delta = {best[0]} "
              f"at {format_bytes(best[1])} per query.")
    plain_best = None
    for delta in range(25, 2001, 25):
        cost = predict_ppgnn_comm(n=n, d=25, delta=delta, k=k, keysize=keysize).total
        if cost <= budget:
            plain_best = (delta, cost)
    if plain_best:
        print(f"  Plain PPGNN only reaches delta = {plain_best[0]} "
              f"({format_bytes(plain_best[1])}) — the Section 6 win, quantified.")


if __name__ == "__main__":
    main()
