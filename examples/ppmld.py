"""PPMLD via the black-box swap (Sections 1 and 9).

The paper claims its privacy machinery works for *any* group query because
query answering is a black box.  This example demonstrates it by solving
privacy-preserving meeting location determination (PPMLD): instead of
minimizing distance to the users' *current* locations, each user submits a
*preferred* meeting location, and the query returns the POIs minimizing
aggregate distance to the preferences — the semantics of Bilogrevic et al.
No protocol code changes: the preferred locations simply take the place of
the real locations in the location sets, and a custom aggregate shows that
even the cost function is pluggable.

Run:  python examples/ppmld.py
"""

from __future__ import annotations


from repro import LSPServer, PPGNNConfig, run_ppgnn
from repro.datasets import load_sequoia
from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.gnn.aggregate import Aggregate, get_aggregate, register_aggregate


def ensure_fairness_aggregate():
    """sum + max: total travel, with a penalty for the worst-off member.

    Monotone in every distance, so it drops into the MBM bound, the answer
    sanitation, and the inequality attack unchanged.
    """
    try:
        return get_aggregate("fair")
    except ConfigurationError:
        def combine(distances):
            values = list(distances)  # the iterable is consumed only once
            return float(sum(values)) + float(max(values))

        fair = Aggregate("fair", combine, lambda m: m.sum(axis=1) + m.max(axis=1))
        register_aggregate(fair)
        return fair


def main() -> None:
    ensure_fairness_aggregate()
    pois = load_sequoia(10_000)

    # Each user states a *preferred* meeting area (not their location!).
    preferences = [
        Point(0.21, 0.34),  # near the waterfront
        Point(0.25, 0.31),  # same neighbourhood
        Point(0.64, 0.70),  # across town
        Point(0.30, 0.40),  # midtown
        Point(0.28, 0.36),
    ]

    config = PPGNNConfig(
        d=15, delta=60, k=5, theta0=0.05, keysize=256, aggregate_name="fair"
    )
    lsp = LSPServer(pois, aggregate_name="fair", seed=9)

    print("PPMLD: 5 users negotiate a meeting place from private preferences")
    print(f"aggregate = sum + max (fairness), d={config.d}, delta={config.delta}\n")

    result = run_ppgnn(lsp, preferences, config, seed=17)

    print("Chosen meeting places (best first):")
    for rank, answer in enumerate(result.answers, start=1):
        poi = lsp.engine.poi_by_id(answer.poi_id)
        dists = [pref.distance_to(poi.location) for pref in preferences]
        print(f"  {rank}. {poi}  total={sum(dists):.3f}  worst={max(dists):.3f}")

    print("\nPrivacy guarantees carried over unchanged:")
    print(f"  each preference hidden among d={config.d} decoys (Privacy I)")
    print(f"  joint query hidden among {result.delta_prime} candidates (Privacy II)")
    print(f"  exactly {len(result.answers)} POIs disclosed (Privacy III)")
    print("  collusion-resistant via answer sanitation (Privacy IV)")


if __name__ == "__main__":
    main()
