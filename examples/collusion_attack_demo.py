"""The inequality attack, and how answer sanitation defeats it (Section 5).

Seven of eight users collude: they pool their own locations and the ranked
answer the group received, and carve out the region where the eighth user
must be.  Without sanitation the region can collapse to a sliver of the
city; with sanitation the LSP truncates the answer until the victim keeps
a guaranteed hiding region of at least theta0 of the space.

Run:  python examples/collusion_attack_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import LSPServer, PPGNNConfig, random_group, run_ppgnn
from repro.attacks import inequality_attack
from repro.datasets import load_sequoia


def attack_victim(result, group, victim_idx, lsp, label):
    answer_locations = [a.location for a in result.answers]
    known = [loc for i, loc in enumerate(group) if i != victim_idx]
    outcome = inequality_attack(
        answer_locations,
        known,
        lsp.space,
        lsp.aggregate,
        n_samples=30_000,
        rng=np.random.default_rng(99),
        true_target=group[victim_idx],
    )
    print(f"  {label}:")
    print(f"    POIs in the answer          : {len(result.answers)}")
    print(f"    victim's feasible region    : {outcome.theta_estimate:.3%} of the city")
    print(f"    region contains the victim  : {outcome.contains_target}")
    if outcome.feasible_box:
        box = outcome.feasible_box
        print(f"    bounding box of the region  : "
              f"({box.xmin:.3f}, {box.ymin:.3f}) - ({box.xmax:.3f}, {box.ymax:.3f})")
    return outcome


def main() -> None:
    theta0 = 0.05
    lsp = LSPServer(load_sequoia(10_000), seed=5)
    group = random_group(8, lsp.space, np.random.default_rng(2024))
    victim = 0

    base = dict(d=25, delta=100, k=8, keysize=256)
    sanitized_cfg = PPGNNConfig(theta0=theta0, **base)
    nas_cfg = PPGNNConfig(theta0=theta0, sanitize=False, **base)

    print(f"{len(group)} users; 7 collude against user {victim}; "
          f"theta0 = {theta0:.0%} of the space required.\n")

    nas_result = run_ppgnn(lsp, group, nas_cfg, seed=8)
    nas = attack_victim(nas_result, group, victim, lsp, "WITHOUT sanitation (PPGNN-NAS)")
    print()
    san_result = run_ppgnn(lsp, group, sanitized_cfg, seed=8)
    san = attack_victim(san_result, group, victim, lsp, "WITH sanitation (PPGNN)")

    print("\nVerdict:")
    print(f"  attack succeeds (region <= theta0) without sanitation : "
          f"{nas.succeeded(theta0)}")
    print(f"  attack succeeds with sanitation                       : "
          f"{san.succeeded(theta0)}")
    print(f"  sanitation kept {len(san_result.answers)} of "
          f"{len(nas_result.answers)} POIs — the price of Privacy IV.")


if __name__ == "__main__":
    main()
