"""Message-flow trace of one PPGNN round (Algorithms 1 and 2, live).

Prints the exact sequence of messages a group query produces — who sends
what to whom, in what sizes — for both PPGNN and PPGNN-OPT, making the
Section 6 savings directly visible in the transcript.

Run:  python examples/protocol_trace.py
"""

from __future__ import annotations

import numpy as np

from repro import LSPServer, PPGNNConfig, random_group, run_ppgnn, run_ppgnn_opt
from repro.datasets import load_sequoia
from repro.protocol.transcript import format_transcript


def main() -> None:
    lsp = LSPServer(load_sequoia(5_000), seed=6)
    group = random_group(4, lsp.space, np.random.default_rng(3))
    config = PPGNNConfig(d=10, delta=40, k=4, theta0=0.05, keysize=256)

    print(f"Group of {len(group)} users, d={config.d}, delta={config.delta}, "
          f"k={config.k}\n")

    result = run_ppgnn(lsp, group, config, seed=2)
    print("PPGNN message flow:")
    print(format_transcript(result.report))

    opt = run_ppgnn_opt(lsp, group, config, seed=2)
    print("\nPPGNN-OPT message flow (two small indicators instead of one long one):")
    print(format_transcript(opt.report))

    saved = result.report.total_comm_bytes - opt.report.total_comm_bytes
    print(f"\nPPGNN-OPT saves {saved} bytes on this round "
          f"({saved / result.report.total_comm_bytes:.0%}).")


if __name__ == "__main__":
    main()
