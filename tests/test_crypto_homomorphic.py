"""Tests for the homomorphic operators (Eqns 2-4, Theorem 3.1, Section 6)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.homomorphic import (
    OpCounter,
    encrypt_indicator,
    hom_add,
    hom_dot,
    hom_scalar_mul,
    matrix_select,
    nested_select,
)
from repro.crypto.paillier import generate_keypair
from repro.errors import CryptoError

small_ints = st.integers(min_value=0, max_value=2**32)


@pytest.fixture(scope="module")
def kp():
    return generate_keypair(128, seed=31337)


class TestHomomorphicAddition:
    @settings(max_examples=20, deadline=None)
    @given(small_ints, small_ints)
    def test_addition_property(self, a, b):
        sk, pk = generate_keypair(128, seed=31337)
        rng = random.Random(a ^ b)
        c = hom_add(pk.encrypt(a, rng=rng), pk.encrypt(b, rng=rng))
        assert sk.decrypt(c) == (a + b) % pk.n

    def test_addition_wraps_modulo_n(self, kp):
        sk, pk = kp
        big = pk.n - 1
        c = hom_add(pk.encrypt(big), pk.encrypt(2))
        assert sk.decrypt(c) == 1

    def test_mixed_levels_rejected(self, kp):
        _, pk = kp
        with pytest.raises(CryptoError):
            hom_add(pk.encrypt(1, s=1), pk.encrypt(1, s=2))

    def test_mixed_keys_rejected(self, kp):
        _, pk = kp
        other = generate_keypair(128, seed=999).public_key
        with pytest.raises(CryptoError):
            hom_add(pk.encrypt(1), other.encrypt(1))

    def test_operator_sugar(self, kp):
        sk, pk = kp
        assert sk.decrypt(pk.encrypt(2) + pk.encrypt(3)) == 5
        assert sk.decrypt(4 * pk.encrypt(3)) == 12


class TestScalarMultiplication:
    @settings(max_examples=20, deadline=None)
    @given(small_ints, st.integers(min_value=0, max_value=1000))
    def test_scalar_property(self, m, x):
        sk, pk = generate_keypair(128, seed=31337)
        c = hom_scalar_mul(x, pk.encrypt(m, rng=random.Random(m)))
        assert sk.decrypt(c) == (x * m) % pk.n

    def test_negative_scalar_wraps(self, kp):
        sk, pk = kp
        c = hom_scalar_mul(-1, pk.encrypt(5))
        assert sk.decrypt(c) == pk.n - 5

    def test_zero_scalar(self, kp):
        sk, pk = kp
        assert sk.decrypt(hom_scalar_mul(0, pk.encrypt(77))) == 0


class TestDotProduct:
    def test_dot_product_value(self, kp):
        sk, pk = kp
        rng = random.Random(1)
        xs = [3, 0, 7, 2]
        vs = [10, 20, 30, 40]
        c = hom_dot(xs, [pk.encrypt(v, rng=rng) for v in vs])
        assert sk.decrypt(c) == sum(x * v for x, v in zip(xs, vs, strict=True))

    def test_zero_scalars_are_skipped(self, kp):
        _, pk = kp
        counter = OpCounter()
        hom_dot([0, 0, 5], [pk.encrypt(v) for v in (1, 2, 3)], counter)
        assert counter.scalar_muls == 1  # only the non-zero term costs work

    def test_length_mismatch(self, kp):
        _, pk = kp
        with pytest.raises(CryptoError):
            hom_dot([1], [pk.encrypt(1), pk.encrypt(2)])

    def test_empty_rejected(self, kp):
        with pytest.raises(CryptoError):
            hom_dot([], [])


class TestPrivateSelection:
    """Theorem 3.1: A (x) [v] extracts exactly the hot column."""

    def test_selects_each_column(self, kp):
        sk, pk = kp
        matrix = [[11, 21, 31], [12, 22, 32], [13, 23, 33]]
        for hot in range(3):
            indicator = encrypt_indicator(pk, 3, hot, rng=random.Random(hot))
            selected = matrix_select(matrix, indicator)
            assert [sk.decrypt(c) for c in selected] == [row[hot] for row in matrix]

    def test_large_entries_near_n(self, kp):
        sk, pk = kp
        # Answer encodings approach N; selection must not overflow.
        big = pk.n - 1
        matrix = [[big, 5]]
        indicator = encrypt_indicator(pk, 2, 0, rng=random.Random(0))
        assert sk.decrypt(matrix_select(matrix, indicator)[0]) == big

    def test_ragged_matrix_rejected(self, kp):
        _, pk = kp
        indicator = encrypt_indicator(pk, 2, 0)
        with pytest.raises(CryptoError):
            matrix_select([[1, 2], [3]], indicator)

    def test_indicator_bounds(self, kp):
        _, pk = kp
        with pytest.raises(CryptoError):
            encrypt_indicator(pk, 3, 3)
        with pytest.raises(CryptoError):
            encrypt_indicator(pk, 3, -1)

    def test_counter_tracks_encryptions(self, kp):
        _, pk = kp
        counter = OpCounter()
        encrypt_indicator(pk, 5, 2, counter=counter)
        assert counter.encryptions == 5


class TestNestedSelection:
    """Section 6: two-phase selection over blocks."""

    def test_selects_across_blocks(self, kp):
        sk, pk = kp
        rng = random.Random(7)
        # Matrix of 4 columns split into 2 blocks of 2; m = 2 rows.
        blocks_plain = [[[11, 21], [12, 22]], [[31, 41], [32, 42]]]
        for hot_block in range(2):
            for hot_within in range(2):
                inner = encrypt_indicator(pk, 2, hot_within, rng=rng)
                outer = encrypt_indicator(pk, 2, hot_block, s=2, rng=rng)
                phase1 = [matrix_select(b, inner) for b in blocks_plain]
                result = nested_select(phase1, outer)
                expected_col = [
                    blocks_plain[hot_block][row][hot_within] for row in range(2)
                ]
                assert [sk.decrypt_nested(c) for c in result] == expected_col

    def test_outer_must_be_level_two(self, kp):
        _, pk = kp
        inner = encrypt_indicator(pk, 2, 0)
        phase1 = [matrix_select([[1, 2]], inner)]
        with pytest.raises(CryptoError):
            nested_select(phase1, encrypt_indicator(pk, 1, 0, s=1))

    def test_block_count_mismatch(self, kp):
        _, pk = kp
        inner = encrypt_indicator(pk, 2, 0)
        phase1 = [matrix_select([[1, 2]], inner)]
        outer = encrypt_indicator(pk, 2, 0, s=2)
        with pytest.raises(CryptoError):
            nested_select(phase1, outer)

    def test_ragged_blocks_rejected(self, kp):
        _, pk = kp
        inner = encrypt_indicator(pk, 2, 0)
        phase1 = [
            matrix_select([[1, 2]], inner),
            matrix_select([[1, 2], [3, 4]], inner),
        ]
        outer = encrypt_indicator(pk, 2, 0, s=2)
        with pytest.raises(CryptoError):
            nested_select(phase1, outer)


class TestOpCounter:
    def test_merge_and_total(self):
        a = OpCounter(additions=1, scalar_muls=2, encryptions=3, decryptions=4)
        b = OpCounter(additions=10)
        a.merge(b)
        assert a.additions == 11
        assert a.total == 11 + 2 + 3 + 4
