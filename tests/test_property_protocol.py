"""Protocol-level property tests: random parameters, end-to-end exactness.

Hypothesis drives the whole stack — random group sizes, privacy
parameters, k, and locations — and asserts the protocol's fundamental
contract: with sanitation off, every variant returns exactly the plaintext
kGNN answer; with sanitation on, a non-empty prefix of it.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PPGNNConfig
from repro.core.group import run_ppgnn
from repro.core.lsp import LSPServer
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt
from repro.datasets.synthetic import uniform_pois
from repro.gnn.bruteforce import brute_force_kgnn

POIS = uniform_pois(300, seed=77)


@pytest.fixture(scope="module")
def shared_lsp():
    return LSPServer(POIS, sanitation_samples=600, seed=13)


protocol_params = st.tuples(
    st.integers(min_value=1, max_value=6),   # n
    st.integers(min_value=2, max_value=6),   # d
    st.integers(min_value=2, max_value=30),  # delta (clamped to >= d below)
    st.integers(min_value=1, max_value=10),  # k
    st.integers(min_value=0, max_value=10**6),  # seed
)


def truth_ids(lsp, locations, k):
    return [
        p.poi_id
        for _, p, _ in brute_force_kgnn(
            ((q.location, q) for q in POIS), locations, k, lsp.aggregate
        )
    ]


class TestProtocolContract:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(protocol_params)
    def test_nas_returns_exact_answer(self, shared_lsp, params):
        n, d, delta, k, seed = params
        delta = max(delta, d)
        if delta > d**n:
            return
        cfg = PPGNNConfig(
            d=d, delta=delta, k=k, keysize=128, sanitize=False,
            sanitation_samples=600, key_seed=5,
        )
        group = shared_lsp.space.sample_points(n, np.random.default_rng(seed))
        result = run_ppgnn(shared_lsp, group, cfg, seed=seed)
        assert list(result.answer_ids) == truth_ids(shared_lsp, group, k)
        assert result.delta_prime >= delta

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(protocol_params)
    def test_all_variants_agree(self, shared_lsp, params):
        n, d, delta, k, seed = params
        delta = max(delta, d)
        if delta > d**n:
            return
        cfg = PPGNNConfig(
            d=d, delta=delta, k=k, keysize=128, sanitize=False,
            sanitation_samples=600, key_seed=5,
        )
        group = shared_lsp.space.sample_points(n, np.random.default_rng(seed))
        plain = run_ppgnn(shared_lsp, group, cfg, seed=seed)
        opt = run_ppgnn_opt(shared_lsp, group, cfg, seed=seed)
        naive = run_naive(shared_lsp, group, cfg, seed=seed)
        assert plain.answer_ids == opt.answer_ids == naive.answer_ids

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(protocol_params)
    def test_sanitized_prefix_properties(self, shared_lsp, params):
        n, d, delta, k, seed = params
        delta = max(delta, d)
        if delta > d**n or n < 2:
            return
        cfg = PPGNNConfig(
            d=d, delta=delta, k=k, keysize=128, theta0=0.05,
            sanitation_samples=600, key_seed=5,
        )
        group = shared_lsp.space.sample_points(n, np.random.default_rng(seed))
        result = run_ppgnn(shared_lsp, group, cfg, seed=seed)
        truth = truth_ids(shared_lsp, group, k)
        assert 1 <= len(result.answers) <= k
        assert list(result.answer_ids) == truth[: len(result.answers)]
