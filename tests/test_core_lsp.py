"""Direct tests of the LSP request handlers and their diagnostics."""

import random

import numpy as np
import pytest

from repro.core.common import group_keypair
from repro.core.lsp import LSPServer, QueryStats
from repro.crypto.homomorphic import encrypt_indicator
from repro.geometry.point import Point
from repro.partition.layout import GroupLayout
from repro.partition.solver import solve_partition
from repro.protocol.messages import (
    GroupQueryRequest,
    LocationSetUpload,
    SingleQueryRequest,
)
from repro.protocol.metrics import LSP, CostLedger


@pytest.fixture()
def keys(fast_config):
    return group_keypair(fast_config)


def build_request(keys, fast_config, sets, theta0=None, hot=0):
    n = len(sets)
    params = solve_partition(n, fast_config.d, fast_config.delta)
    indicator = encrypt_indicator(
        keys.public_key, params.delta_prime, hot, rng=random.Random(1)
    )
    request = GroupQueryRequest(
        k=fast_config.k,
        public_key=keys.public_key,
        subgroup_sizes=params.subgroup_sizes,
        segment_sizes=params.segment_sizes,
        indicator=tuple(indicator),
        theta0=theta0,
    )
    uploads = [LocationSetUpload(i, tuple(s)) for i, s in enumerate(sets)]
    return request, uploads, params


def make_sets(n, d, seed):
    rng = np.random.default_rng(seed)
    return [
        [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, (d, 2))]
        for _ in range(n)
    ]


class TestGroupHandler:
    def test_selected_answer_matches_requested_candidate(
        self, lsp, fast_config, keys
    ):
        """Hand-built indicator: the decrypted answer must be exactly the
        kGNN answer of the candidate at the hot index."""
        sets = make_sets(3, fast_config.d, seed=3)
        request, uploads, params = build_request(keys, fast_config, sets, hot=5)
        encrypted = lsp.answer_group_query(request, uploads, CostLedger())
        from repro.encoding.answers import AnswerCodec

        codec = AnswerCodec(fast_config.keysize, fast_config.k, lsp.space)
        decoded = codec.decode(
            [keys.secret_key.decrypt(c) for c in encrypted.ciphertexts]
        )
        layout = GroupLayout(params)
        candidate = layout.candidate_at(sets, 5)
        expected = [p.poi_id for p in lsp.engine.query(fast_config.k, candidate)]
        assert [a.poi_id for a in decoded] == expected

    def test_stats_without_sanitation(self, lsp, fast_config, keys):
        sets = make_sets(3, fast_config.d, seed=4)
        request, uploads, params = build_request(keys, fast_config, sets)
        lsp.answer_group_query(request, uploads, CostLedger())
        stats = lsp.last_stats
        assert isinstance(stats, QueryStats)
        assert stats.candidate_count == params.delta_prime
        assert stats.sanitation_samples == 0
        assert stats.sanitized_answer_lengths == (fast_config.k,) * params.delta_prime

    def test_stats_with_sanitation(self, lsp, fast_config, keys):
        sets = make_sets(3, fast_config.d, seed=5)
        request, uploads, params = build_request(
            keys, fast_config, sets, theta0=0.05
        )
        lsp.answer_group_query(request, uploads, CostLedger())
        stats = lsp.last_stats
        assert stats.sanitation_samples == 1500  # the fixture override
        assert len(stats.sanitized_answer_lengths) == params.delta_prime
        assert all(1 <= t <= fast_config.k for t in stats.sanitized_answer_lengths)

    def test_lsp_clock_charged(self, lsp, fast_config, keys):
        sets = make_sets(3, fast_config.d, seed=6)
        request, uploads, _ = build_request(keys, fast_config, sets)
        ledger = CostLedger()
        lsp.answer_group_query(request, uploads, ledger)
        assert ledger.report().lsp_cost_seconds > 0
        assert ledger.report().ops_by_role[LSP].scalar_muls > 0


class TestSingleHandler:
    def test_answers_each_location_independently(self, lsp, fast_config, keys):
        d = fast_config.d
        locations = tuple(make_sets(1, d, seed=7)[0])
        from repro.encoding.answers import AnswerCodec

        codec = AnswerCodec(fast_config.keysize, fast_config.k, lsp.space)
        for hot in (0, d // 2, d - 1):
            request = SingleQueryRequest(
                k=fast_config.k,
                public_key=keys.public_key,
                locations=locations,
                indicator=tuple(
                    encrypt_indicator(keys.public_key, d, hot, rng=random.Random(hot))
                ),
            )
            encrypted = lsp.answer_single_query(request, CostLedger())
            decoded = codec.decode(
                [keys.secret_key.decrypt(c) for c in encrypted.ciphertexts]
            )
            expected = [
                p.poi_id for p in lsp.engine.query(fast_config.k, [locations[hot]])
            ]
            assert [a.poi_id for a in decoded] == expected

    def test_sanitation_plan_uses_server_constants(self, medium_pois):
        server = LSPServer(
            medium_pois, gamma=0.01, eta=0.1, phi=0.2, sanitation_samples=None
        )
        sanitizer = server._sanitizer(0.05)
        from repro.stats.hypothesis import required_sample_size

        assert sanitizer.plan.n_samples == required_sample_size(
            0.05, gamma=0.01, eta=0.1, phi=0.2
        )
