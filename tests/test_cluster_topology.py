"""Cluster building blocks: partitioning, routing, fault plans, merging."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterTopology,
    HashRing,
    ReplicaFault,
    ShardFaultPlan,
    ShardAnswer,
    merge_answers,
)
from repro.cluster.faults import ShardFaultState
from repro.core.lsp import LSPServer
from repro.datasets.synthetic import clustered_pois
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.gnn.aggregate import get_aggregate
from repro.metrics.quality import estimate_partial_quality
from repro.partition.spatial import partition_pois


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def pois(space):
    return clustered_pois(300, space, seed=11)


class TestPartition:
    @pytest.mark.parametrize("strategy", ["spatial", "round-robin"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_disjoint_and_exhaustive(self, pois, strategy, shards):
        cells = partition_pois(pois, shards, strategy)
        assert len(cells) == shards
        ids = [p.poi_id for cell in cells for p in cell]
        assert sorted(ids) == sorted(p.poi_id for p in pois)
        assert len(ids) == len(set(ids))
        assert all(cells)  # no empty shard

    def test_spatial_is_balanced(self, pois):
        cells = partition_pois(pois, 4, "spatial")
        counts = [len(c) for c in cells]
        assert max(counts) - min(counts) <= 1

    def test_deterministic_across_calls(self, pois):
        one = partition_pois(pois, 5, "spatial")
        two = partition_pois(list(reversed(pois)), 5, "spatial")
        assert one == two

    def test_rejects_bad_inputs(self, pois, space):
        with pytest.raises(ConfigurationError):
            partition_pois(pois, 0)
        with pytest.raises(ConfigurationError):
            partition_pois(pois[:2], 3)
        with pytest.raises(ConfigurationError):
            partition_pois(pois, 2, "random")
        with pytest.raises(ConfigurationError):
            partition_pois([pois[0], pois[0]], 2)


class TestHashRing:
    def test_preference_is_a_permutation(self):
        ring = HashRing(shards=4, replicas=3)
        for shard in range(4):
            for group in range(10):
                pref = ring.preference("tenant-0", group, shard)
                assert sorted(pref) == [0, 1, 2]

    def test_route_is_first_preference(self):
        ring = HashRing(shards=2, replicas=2)
        assert ring.route("t", 3, 1) == ring.preference("t", 3, 1)[0]

    def test_deterministic_across_instances(self):
        a = HashRing(shards=3, replicas=2, virtual_nodes=8)
        b = HashRing(shards=3, replicas=2, virtual_nodes=8)
        for shard in range(3):
            assert a.preference("x", 7, shard) == b.preference("x", 7, shard)

    def test_spreads_keys_across_replicas(self):
        ring = HashRing(shards=1, replicas=4, virtual_nodes=32)
        primaries = {ring.route("t", group, 0) for group in range(64)}
        assert len(primaries) > 1

    def test_rejects_unknown_shard(self):
        with pytest.raises(ConfigurationError):
            HashRing(2, 1).preference("t", 0, 2)


class TestShardFaultPlan:
    def test_kill_after_counts_served_subqueries(self):
        plan = ShardFaultPlan.killing({(0, 0): 2})
        state = ShardFaultState(plan=plan)
        assert state.available(0, 0, seq=0)
        state.record_served(0, 0)
        state.record_served(0, 0)
        assert not state.available(0, 0, seq=2)
        assert state.available(0, 1, seq=2)  # other replica untouched

    def test_flap_windows_recover(self):
        plan = ShardFaultPlan(
            replicas={(1, 0): ReplicaFault(down=((3, 5),))}
        )
        state = ShardFaultState(plan=plan)
        assert state.available(1, 0, seq=2)
        assert not state.available(1, 0, seq=3)
        assert not state.available(1, 0, seq=4)
        assert state.available(1, 0, seq=5)

    def test_slow_start_window(self):
        plan = ShardFaultPlan(
            replicas={(0, 1): ReplicaFault(slow_start=1, slow_factor=4.0)}
        )
        state = ShardFaultState(plan=plan)
        assert state.service_factor(0, 1) == 4.0
        state.record_served(0, 1)
        assert state.service_factor(0, 1) == 1.0

    def test_jitter_is_deterministic_and_bounded(self):
        plan = ShardFaultPlan(seed=9, jitter_seconds=0.5)
        a = plan.jitter(3, 1, 0)
        assert a == plan.jitter(3, 1, 0)
        assert 0.0 <= a < 0.5
        assert plan.jitter(3, 1, 0) != plan.jitter(4, 1, 0)

    def test_plan_pickles(self):
        import pickle

        plan = ShardFaultPlan.killing({(0, 0): 1}, seed=2)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReplicaFault(kill_after=-1)
        with pytest.raises(ConfigurationError):
            ReplicaFault(slow_factor=0.5)
        with pytest.raises(ConfigurationError):
            ReplicaFault(down=((4, 4),))
        with pytest.raises(ConfigurationError):
            ShardFaultPlan(replicas={(-1, 0): ReplicaFault()})


class TestTopologyAndMerge:
    def test_coverage_is_poi_weighted(self, pois):
        topo = ClusterTopology.build(pois, ClusterConfig(shards=3))
        lost = 0
        expected = (topo.total_pois - topo.poi_count(lost)) / topo.total_pois
        assert topo.coverage([lost]) == pytest.approx(expected)
        assert topo.coverage([]) == 1.0
        with pytest.raises(ConfigurationError):
            topo.coverage([99])

    @pytest.mark.parametrize("aggregate_name", ["sum", "max"])
    def test_merge_equals_plaintext_gnn(self, pois, space, aggregate_name):
        """Local exact top-k lists merge to the global exact top-k."""
        k = 4
        aggregate = get_aggregate(aggregate_name)
        locations = (Point(0.2, 0.3), Point(0.7, 0.6))
        cells = partition_pois(pois, 3, "spatial")
        answers = []
        for shard, cell in enumerate(cells):
            lsp = LSPServer(list(cell), space=space, aggregate_name=aggregate_name)
            local = lsp.engine.query(k, list(locations))
            answers.append(
                ShardAnswer(
                    shard_id=shard,
                    replica=0,
                    answer_ids=tuple(p.poi_id for p in local),
                    comm_bytes=0,
                    simulated_seconds=0.0,
                )
            )
        poi_map = {p.poi_id: p for p in pois}
        merged = merge_answers(answers, locations, aggregate, k, poi_map)
        single = LSPServer(list(pois), space=space, aggregate_name=aggregate_name)
        expected = tuple(p.poi_id for p in single.engine.query(k, list(locations)))
        assert merged == expected

    def test_merge_rejects_unknown_poi(self, pois):
        answers = [
            ShardAnswer(
                shard_id=0,
                replica=0,
                answer_ids=(10**9,),
                comm_bytes=0,
                simulated_seconds=0.0,
            )
        ]
        with pytest.raises(ConfigurationError):
            merge_answers(
                answers,
                (Point(0.5, 0.5),),
                get_aggregate("sum"),
                2,
                {p.poi_id: p for p in pois},
            )


class TestPartialQuality:
    def test_expected_recall_equals_coverage(self):
        q = estimate_partial_quality(covered_pois=75, total_pois=100, k=5)
        assert q.coverage == pytest.approx(0.75)
        assert q.expected_recall == pytest.approx(0.75)
        assert not q.complete

    def test_guaranteed_recall_pigeonhole(self):
        # Only 2 POIs are lost, so at least k - 2 of the top-5 survive.
        q = estimate_partial_quality(covered_pois=98, total_pois=100, k=5)
        assert q.guaranteed_recall == pytest.approx(3 / 5)
        # Losing more POIs than k guarantees nothing.
        q = estimate_partial_quality(covered_pois=50, total_pois=100, k=5)
        assert q.guaranteed_recall == 0.0

    def test_full_coverage_is_complete(self):
        q = estimate_partial_quality(covered_pois=10, total_pois=10, k=3)
        assert q.complete
        assert q.expected_recall == 1.0
        assert q.guaranteed_recall == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            estimate_partial_quality(5, 0, 1)
        with pytest.raises(ConfigurationError):
            estimate_partial_quality(11, 10, 1)
        with pytest.raises(ConfigurationError):
            estimate_partial_quality(5, 10, 0)


class TestClusterConfigValidation:
    def test_defaults_are_valid(self):
        ClusterConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"replicas": 0},
            {"quorum": 0.0},
            {"quorum": 1.5},
            {"partition": "zigzag"},
            {"virtual_nodes": 0},
            {"hedge_factor": 1.0},
            {"failover_backoff_seconds": -0.1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterConfig(**kwargs)
