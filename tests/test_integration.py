"""Cross-cutting integration tests: black-box query swap, dynamic database,
larger key sizes, and the public package surface."""

import numpy as np
import pytest

from repro import (
    LSPServer,
    PPGNNConfig,
    random_group,
    run_ppgnn,
    run_ppgnn_opt,
    run_single_user,
)
from repro.datasets import POI, load_sequoia
from repro.geometry.point import Point


class TestPublicSurface:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        """The README/docstring quick start must actually run."""
        lsp = LSPServer(load_sequoia(500), sanitation_samples=800, seed=0)
        group = random_group(3, lsp.space, np.random.default_rng(7))
        cfg = PPGNNConfig(
            d=5, delta=15, k=4, keysize=128, sanitation_samples=800, key_seed=1
        )
        result = run_ppgnn(lsp, group, cfg, seed=42)
        assert 1 <= len(result.answers) <= 4
        assert result.report.total_comm_bytes > 0


class TestBlackBoxSwap:
    def test_custom_aggregate_flows_through_protocol(self, medium_pois):
        """Novelty 4: the protocol treats query answering as a black box —
        a custom monotone aggregate works end to end."""
        from repro.gnn.aggregate import Aggregate, get_aggregate, register_aggregate

        try:
            get_aggregate("euclidean-norm")
        except Exception:
            register_aggregate(
                Aggregate(
                    "euclidean-norm",
                    lambda ds: float(sum(d * d for d in ds)) ** 0.5,
                    lambda m: (m * m).sum(axis=1) ** 0.5,
                )
            )
        lsp = LSPServer(
            medium_pois, aggregate_name="euclidean-norm",
            sanitation_samples=800, seed=3,
        )
        cfg = PPGNNConfig(
            d=4, delta=12, k=4, keysize=128, aggregate_name="euclidean-norm",
            sanitation_samples=800, key_seed=1,
        )
        group = random_group(3, lsp.space, np.random.default_rng(11))
        result = run_ppgnn(lsp, group, cfg.without_sanitation(), seed=5)
        # Verify against a direct engine query with the same aggregate.
        expected = [p.poi_id for p in lsp.engine.query(4, group)]
        assert list(result.answer_ids) == expected


class TestDynamicDatabase:
    def test_insert_is_visible_to_next_query(self, medium_pois):
        """Novelty 1: no precomputation — updates take effect immediately."""
        lsp = LSPServer(list(medium_pois), sanitation_samples=800, seed=4)
        cfg = PPGNNConfig(
            d=4, delta=12, k=1, keysize=128, sanitize=False,
            sanitation_samples=800, key_seed=1,
        )
        user = Point(0.345678, 0.876543)
        before = run_single_user(lsp, user, cfg, seed=1)
        hot_dog_stand = POI(999_999, user, "popup")
        lsp.engine.insert(hot_dog_stand)
        after = run_single_user(lsp, user, cfg, seed=2)
        assert after.answer_ids[0] == 999_999
        assert before.answer_ids[0] != 999_999

    def test_delete_is_visible_to_next_query(self, medium_pois):
        lsp = LSPServer(list(medium_pois), sanitation_samples=800, seed=5)
        cfg = PPGNNConfig(
            d=4, delta=12, k=1, keysize=128, sanitize=False,
            sanitation_samples=800, key_seed=1,
        )
        user = medium_pois[50].location
        first = run_single_user(lsp, user, cfg, seed=1)
        assert first.answer_ids[0] == 50
        lsp.engine.delete(medium_pois[50])
        second = run_single_user(lsp, user, cfg, seed=2)
        assert second.answer_ids[0] != 50


class TestKeySizes:
    @pytest.mark.parametrize("keysize", [256, 512])
    def test_protocol_works_at_larger_keys(self, medium_pois, keysize):
        lsp = LSPServer(medium_pois, sanitation_samples=600, seed=6)
        cfg = PPGNNConfig(
            d=3, delta=9, k=3, keysize=keysize, sanitize=False,
            sanitation_samples=600, key_seed=2,
        )
        group = random_group(3, lsp.space, np.random.default_rng(13))
        plain = run_ppgnn(lsp, group, cfg, seed=9)
        opt = run_ppgnn_opt(lsp, group, cfg, seed=9)
        assert plain.answer_ids == opt.answer_ids
        expected = [p.poi_id for p in lsp.engine.query(3, group)]
        assert list(plain.answer_ids) == expected

    def test_ciphertext_bytes_scale_with_keysize(self, medium_pois):
        lsp = LSPServer(medium_pois, sanitation_samples=600, seed=7)
        group = random_group(3, lsp.space, np.random.default_rng(14))
        reports = {}
        for keysize in (128, 256):
            cfg = PPGNNConfig(
                d=3, delta=9, k=3, keysize=keysize, sanitize=False,
                sanitation_samples=600, key_seed=2,
            )
            reports[keysize] = run_ppgnn(lsp, group, cfg, seed=1).report
        from repro.protocol.metrics import COORDINATOR, LSP

        small = reports[128].link_bytes(COORDINATOR, LSP)
        large = reports[256].link_bytes(COORDINATOR, LSP)
        assert large > 1.5 * small  # indicator bytes dominate and double
