"""Tests for the R-tree split strategies (quadratic vs linear)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bruteforce import BruteForceIndex
from repro.index.rtree import RTree


def random_points(count, seed):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, (count, 2))]


class TestLinearSplit:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            RTree(split="cubic")

    @pytest.mark.parametrize("split", ["quadratic", "linear"])
    def test_queries_correct_under_both_strategies(self, split):
        points = random_points(400, seed=9)
        tree = RTree(max_entries=6, split=split)
        oracle = BruteForceIndex()
        for i, p in enumerate(points):
            tree.insert(p, i)
            oracle.insert(p, i)
        assert len(tree) == 400
        for rect in [Rect(0.1, 0.1, 0.4, 0.4), Rect(0.0, 0.0, 1.0, 1.0)]:
            got = sorted(i for _, i in tree.range_query(rect))
            want = sorted(i for _, i in oracle.range_query(rect))
            assert got == want

    @pytest.mark.parametrize("split", ["quadratic", "linear"])
    def test_knn_correct_under_both_strategies(self, split):
        from repro.gnn.knn import best_first_knn

        points = random_points(300, seed=10)
        tree = RTree(max_entries=6, split=split)
        oracle = BruteForceIndex()
        for i, p in enumerate(points):
            tree.insert(p, i)
            oracle.insert(p, i)
        q = Point(0.37, 0.61)
        got = [i for _, i in best_first_knn(tree, q, 15)]
        want = [i for _, i in oracle.nearest(q, 15)]
        assert got == want

    def test_linear_split_handles_identical_rects(self):
        tree = RTree(max_entries=4, split="linear")
        p = Point(0.5, 0.5)
        for i in range(30):
            tree.insert(p, i)
        assert len(tree) == 30
        assert len(tree.range_query(Rect.from_point(p))) == 30

    def test_quadratic_builds_tighter_trees(self):
        """Quadratic's pairwise waste search should not produce *more*
        total overlap area than the linear heuristic on clustered data."""

        def total_leaf_area(tree):
            total = 0.0
            stack = [tree.root]
            while stack:
                node = stack.pop()
                if node.mbr is not None and node.is_leaf:
                    total += node.mbr.area
                stack.extend([] if node.is_leaf else node.children)
            return total

        from repro.datasets.synthetic import clustered_pois

        pois = clustered_pois(1500, seed=12)
        quad = RTree(max_entries=8, split="quadratic")
        linear = RTree(max_entries=8, split="linear")
        for poi in pois:
            quad.insert(poi.location, poi)
            linear.insert(poi.location, poi)
        assert total_leaf_area(quad) <= total_leaf_area(linear) * 1.25
