"""Tests for kNN, MBM kGNN, and the query engine against the brute-force oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.poi import POI
from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import MAX, MIN, SUM
from repro.gnn.bruteforce import brute_force_kgnn
from repro.gnn.engine import GNNQueryEngine
from repro.gnn.knn import best_first_knn
from repro.gnn.mbm import mbm_kgnn
from repro.index.bruteforce import BruteForceIndex
from repro.index.rtree import RTree

coord = st.floats(min_value=0, max_value=1, allow_nan=False)
query_points = st.lists(st.builds(Point, coord, coord), min_size=1, max_size=6)


@pytest.fixture(scope="module")
def tree_and_pois():
    pois = uniform_pois(300, seed=5)
    tree = RTree(max_entries=8)
    tree.bulk_load((p.location, p) for p in pois)
    return tree, pois


class TestBestFirstKNN:
    def test_matches_oracle(self, tree_and_pois):
        tree, pois = tree_and_pois
        oracle = BruteForceIndex()
        for p in pois:
            oracle.insert(p.location, p)
        for seed in range(10):
            q = Point(*np.random.default_rng(seed).uniform(0, 1, 2))
            got = [item.poi_id for _, item in best_first_knn(tree, q, 15)]
            want = [item.poi_id for _, item in oracle.nearest(q, 15)]
            assert got == want

    def test_results_sorted_by_distance(self, tree_and_pois):
        tree, _ = tree_and_pois
        q = Point(0.3, 0.7)
        dists = [p.distance_to(q) for p, _ in best_first_knn(tree, q, 20)]
        assert dists == sorted(dists)

    def test_k_larger_than_database(self):
        tree = RTree()
        tree.bulk_load([(Point(0.1, 0.1), "a"), (Point(0.9, 0.9), "b")])
        assert len(best_first_knn(tree, Point(0, 0), 10)) == 2

    def test_invalid_k(self, tree_and_pois):
        tree, _ = tree_and_pois
        with pytest.raises(ConfigurationError):
            best_first_knn(tree, Point(0, 0), 0)

    def test_empty_tree(self):
        assert best_first_knn(RTree(), Point(0, 0), 3) == []


class TestMBM:
    @pytest.mark.parametrize("aggregate", [SUM, MAX, MIN], ids=lambda a: a.name)
    def test_matches_bruteforce_all_aggregates(self, tree_and_pois, aggregate):
        tree, pois = tree_and_pois
        rng = np.random.default_rng(17)
        for _ in range(8):
            n = int(rng.integers(1, 7))
            locations = [Point(*rng.uniform(0, 1, 2)) for _ in range(n)]
            got = mbm_kgnn(tree, locations, 10, aggregate)
            want = brute_force_kgnn(
                ((p.location, p) for p in pois), locations, 10, aggregate
            )
            assert [g[1].poi_id for g in got] == [w[1].poi_id for w in want]
            assert [g[2] for g in got] == pytest.approx([w[2] for w in want])

    @settings(max_examples=25, deadline=None)
    @given(query_points)
    def test_property_sum_matches_oracle(self, locations):
        pois = uniform_pois(60, seed=23)
        tree = RTree(max_entries=4)
        tree.bulk_load((p.location, p) for p in pois)
        got = mbm_kgnn(tree, locations, 5, SUM)
        want = brute_force_kgnn(((p.location, p) for p in pois), locations, 5, SUM)
        assert [g[1].poi_id for g in got] == [w[1].poi_id for w in want]

    def test_scores_ascending(self, tree_and_pois):
        tree, _ = tree_and_pois
        locations = [Point(0.2, 0.2), Point(0.8, 0.8)]
        scores = [s for _, _, s in mbm_kgnn(tree, locations, 12, SUM)]
        assert scores == sorted(scores)

    def test_single_location_equals_knn(self, tree_and_pois):
        tree, _ = tree_and_pois
        q = Point(0.4, 0.6)
        via_mbm = [item.poi_id for _, item, _ in mbm_kgnn(tree, [q], 10, SUM)]
        via_knn = [item.poi_id for _, item in best_first_knn(tree, q, 10)]
        assert via_mbm == via_knn

    def test_empty_locations_rejected(self, tree_and_pois):
        tree, _ = tree_and_pois
        with pytest.raises(ConfigurationError):
            mbm_kgnn(tree, [], 5, SUM)


class TestEngine:
    def test_query_caps_k_at_database_size(self):
        engine = GNNQueryEngine(uniform_pois(5, seed=1))
        assert len(engine.query(100, [Point(0.5, 0.5)])) == 5

    def test_empty_database_rejected(self):
        with pytest.raises(ConfigurationError):
            GNNQueryEngine([])

    def test_duplicate_ids_rejected(self):
        pois = [POI(1, Point(0, 0)), POI(1, Point(1, 1))]
        with pytest.raises(ConfigurationError):
            GNNQueryEngine(pois)

    def test_poi_by_id(self):
        pois = uniform_pois(10, seed=2)
        engine = GNNQueryEngine(pois)
        assert engine.poi_by_id(3) is pois[3]
        with pytest.raises(ConfigurationError):
            engine.poi_by_id(999)

    def test_dynamic_insert_changes_answers(self):
        engine = GNNQueryEngine(uniform_pois(50, seed=3))
        q = Point(0.123, 0.456)
        new_poi = POI(10_000, q, "pop-up")
        before = engine.query(1, [q])
        engine.insert(new_poi)
        after = engine.query(1, [q])
        assert after[0].poi_id == 10_000
        assert before[0].poi_id != 10_000

    def test_dynamic_delete(self):
        pois = uniform_pois(50, seed=4)
        engine = GNNQueryEngine(pois)
        q = pois[7].location
        assert engine.query(1, [q])[0].poi_id == 7
        assert engine.delete(pois[7])
        assert engine.query(1, [q])[0].poi_id != 7
        assert not engine.delete(pois[7])

    def test_insert_duplicate_id_rejected(self):
        pois = uniform_pois(10, seed=5)
        engine = GNNQueryEngine(pois)
        with pytest.raises(ConfigurationError):
            engine.insert(POI(3, Point(0.5, 0.5)))

    def test_query_scored_consistent(self):
        engine = GNNQueryEngine(uniform_pois(80, seed=6))
        locations = [Point(0.1, 0.1), Point(0.9, 0.9), Point(0.5, 0.2)]
        plain = engine.query(6, locations)
        scored = engine.query_scored(6, locations)
        assert [p.poi_id for p in plain] == [p.poi_id for p, _ in scored]
        assert [s for _, s in scored] == sorted(s for _, s in scored)
