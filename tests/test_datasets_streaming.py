"""Tests for the streaming million-POI generators."""

import pytest

from repro.datasets import (
    POI_STREAM_KINDS,
    stream_clustered,
    stream_geo_skewed,
    stream_pois,
    stream_uniform,
)
from repro.errors import ConfigurationError
from repro.geometry.rect import Rect
from repro.geometry.space import LocationSpace

STREAMS = {
    "uniform": stream_uniform,
    "clustered": stream_clustered,
    "geo-skew": stream_geo_skewed,
}


@pytest.mark.parametrize("kind", POI_STREAM_KINDS)
class TestEveryKind:
    def test_count_and_ids(self, kind):
        pois = list(stream_pois(kind, 500, seed=1))
        assert len(pois) == 500
        assert [p.poi_id for p in pois] == list(range(500))

    def test_chunk_size_invariance(self, kind):
        """POI i is identical no matter how the stream is chunked."""
        fn = STREAMS[kind]
        small = list(fn(333, seed=9, chunk_size=100))
        large = list(fn(333, seed=9, chunk_size=10_000))
        assert [(p.poi_id, p.location) for p in small] == [
            (p.poi_id, p.location) for p in large
        ]

    def test_deterministic_in_seed(self, kind):
        fn = STREAMS[kind]
        a = [p.location for p in fn(200, seed=4)]
        b = [p.location for p in fn(200, seed=4)]
        c = [p.location for p in fn(200, seed=5)]
        assert a == b
        assert a != c

    def test_bounds_respected(self, kind):
        space = LocationSpace(Rect(10.0, -5.0, 20.0, 5.0))
        pois = list(stream_pois(kind, 400, space=space, seed=2))
        assert all(space.bounds.contains_point(p.location) for p in pois)

    def test_zero_count(self, kind):
        assert list(stream_pois(kind, 0, seed=1)) == []


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            list(stream_pois("gaussian", 10))

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            list(stream_uniform(-1))

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            list(stream_uniform(10, chunk_size=0))


class TestShapes:
    def test_clustered_is_denser_than_uniform(self):
        """Clustered data concentrates: the densest small cell holds far
        more points than the uniform expectation."""
        space = LocationSpace.unit_square()
        pois = list(stream_clustered(4_000, space=space, seed=3))
        g = 10
        counts: dict[tuple[int, int], int] = {}
        for p in pois:
            cell = (int(p.location.x * g) % g, int(p.location.y * g) % g)
            counts[cell] = counts.get(cell, 0) + 1
        assert max(counts.values()) > 3 * (4_000 / (g * g))

    def test_streaming_is_lazy(self):
        """Taking a prefix must not materialize the remaining chunks."""
        from itertools import islice

        stream = stream_uniform(10_000_000, seed=1, chunk_size=1_000)
        head = list(islice(stream, 5))
        assert len(head) == 5
        assert [p.poi_id for p in head] == [0, 1, 2, 3, 4]
