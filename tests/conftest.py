"""Shared fixtures.

Key sizes here are deliberately small (128/256 bits): prime generation and
ciphertext exponentiation dominate test time, and none of the tested
properties depend on the modulus size.  Production defaults (512/1024) are
exercised by dedicated slow-marked tests and the benchmarks.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.crypto.paillier import KeyPair, generate_keypair
from repro.datasets.poi import POI
from repro.datasets.synthetic import clustered_pois, uniform_pois
from repro.geometry.space import LocationSpace


@pytest.fixture(scope="session")
def keypair() -> KeyPair:
    """A cached 256-bit key pair shared by crypto tests."""
    return generate_keypair(256, seed=12345)


@pytest.fixture(scope="session")
def tiny_keypair() -> KeyPair:
    """A 128-bit pair for tests that stress many operations."""
    return generate_keypair(128, seed=54321)


@pytest.fixture(scope="session")
def space() -> LocationSpace:
    return LocationSpace.unit_square()


@pytest.fixture(scope="session")
def small_pois(space) -> list[POI]:
    """200 uniform POIs for index/query unit tests."""
    return uniform_pois(200, space, seed=7)


@pytest.fixture(scope="session")
def medium_pois(space) -> list[POI]:
    """2000 clustered POIs for protocol integration tests."""
    return clustered_pois(2000, space, seed=11)


@pytest.fixture()
def lsp(medium_pois) -> LSPServer:
    """A fresh LSP per test (sanitation RNG state must not leak across tests)."""
    return LSPServer(medium_pois, sanitation_samples=1500, seed=99)


@pytest.fixture(scope="session")
def fast_config() -> PPGNNConfig:
    """Small parameters that keep a full protocol round under ~100 ms."""
    return PPGNNConfig(
        d=6,
        delta=18,
        k=6,
        keysize=128,
        sanitation_samples=1500,
        key_seed=7,
    )


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(2024)


@pytest.fixture()
def nprng() -> np.random.Generator:
    return np.random.default_rng(2024)
