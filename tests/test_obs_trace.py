"""The logical-tick tracer: spans, export, merging, validation, rendering."""

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.obs import (
    Span,
    Tracer,
    merge_span_groups,
    parse_jsonl,
    render_span_tree,
    slowest_path,
    validate_spans,
)


def _tree(tracer: Tracer) -> None:
    with tracer.span("root", protocol="ppgnn"):
        with tracer.span("child-a"):
            with tracer.span("leaf"):
                pass
        with tracer.span("child-b", cost=100.0):
            pass


class TestTracer:
    def test_parenting_and_finish_order(self):
        tracer = Tracer()
        _tree(tracer)
        spans = tracer.spans()
        assert [s.name for s in spans] == ["leaf", "child-a", "child-b", "root"]
        by_name = {s.name: s for s in spans}
        assert by_name["root"].parent_id is None
        assert by_name["child-a"].parent_id == by_name["root"].span_id
        assert by_name["leaf"].parent_id == by_name["child-a"].span_id

    def test_logical_clock_is_deterministic(self):
        a, b = Tracer(), Tracer()
        _tree(a)
        _tree(b)
        assert a.export_jsonl() == b.export_jsonl()

    def test_ticks_count_enclosed_events(self):
        tracer = Tracer()
        _tree(tracer)
        root = tracer.spans()[-1]
        # 8 events total: root's own start/end bracket the other 6.
        assert root.start == 0 and root.end == 7
        assert root.ticks == 7

    def test_ring_buffer_eviction_never_orphans(self):
        tracer = Tracer(capacity=3)
        _tree(tracer)
        assert tracer.dropped == 1  # "leaf" fell out
        validate_spans(tracer.spans())

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)

    def test_set_attrs_after_open(self):
        tracer = Tracer()
        with tracer.span("x") as span:
            span.set(count=3)
        assert tracer.spans()[0].attrs == {"count": 3}


class TestJsonl:
    def test_round_trip(self):
        tracer = Tracer()
        _tree(tracer)
        parsed = parse_jsonl(tracer.export_jsonl())
        assert [s.to_dict() for s in parsed] == [
            s.to_dict() for s in tracer.spans()
        ]

    def test_blank_lines_ignored(self):
        tracer = Tracer()
        _tree(tracer)
        padded = "\n" + tracer.export_jsonl().replace("\n", "\n\n") + "\n"
        assert len(parse_jsonl(padded)) == 4

    def test_bad_line_reported_with_number(self):
        with pytest.raises(ReproError, match="line 2"):
            parse_jsonl('{"span_id": 1, "name": "a", "start": 0}\nnot json')


class TestTruncatedAndInterleaved:
    """Regressions for killed-run tails and interleaved-process writes."""

    def _trace_text(self) -> str:
        tracer = Tracer()
        _tree(tracer)
        return tracer.export_jsonl()

    def test_truncated_tail_names_the_recovery_flag(self):
        text = self._trace_text()
        cut = text[: len(text) - 20]  # kill mid-way through the last line
        with pytest.raises(ReproError, match="--allow-truncated"):
            parse_jsonl(cut)

    def test_allow_truncated_drops_only_the_tail(self):
        text = self._trace_text()
        cut = text[: len(text) - 20]
        spans = parse_jsonl(cut, allow_truncated_tail=True)
        # The root finished last, so its line is the one lost.
        assert [s.name for s in spans] == ["leaf", "child-a", "child-b"]

    def test_midfile_garbage_raises_even_with_allow_truncated(self):
        lines = self._trace_text().splitlines()
        lines[1] = lines[1][:-15]  # corrupt a middle line, keep the tail
        with pytest.raises(ReproError, match="line 2"):
            parse_jsonl("\n".join(lines), allow_truncated_tail=True)

    def test_valid_json_non_span_line_blamed_on_interleaving(self):
        text = self._trace_text() + "\n[1, 2, 3]\n" + self._trace_text()
        with pytest.raises(ReproError, match="interleaved"):
            parse_jsonl(text)

    def test_wrong_field_types_named(self):
        bad = '{"span_id": 1, "name": "a", "start": "zero"}'
        with pytest.raises(ReproError, match="'start'"):
            parse_jsonl(bad + "\n" + bad)
        with pytest.raises(ReproError, match="'name'"):
            parse_jsonl('{"span_id": 1, "name": 5, "start": 0}\n' + bad)

    def test_trailing_blank_lines_do_not_mask_truncation(self):
        text = self._trace_text()
        cut = text[: len(text) - 20] + "\n\n"
        spans = parse_jsonl(cut, allow_truncated_tail=True)
        assert len(spans) == 3


class TestMergeSpanGroups:
    def _group(self, offset: int = 0) -> list[Span]:
        tracer = Tracer()
        with tracer.span(f"root-{offset}"):
            with tracer.span("inner"):
                pass
        return tracer.spans()

    def test_ids_remapped_without_collision(self):
        merged = merge_span_groups([self._group(0), self._group(1)])
        ids = [s.span_id for s in merged]
        assert len(ids) == len(set(ids)) == 4
        validate_spans(merged)

    def test_group_order_is_deterministic(self):
        a = merge_span_groups([self._group(0), self._group(1)])
        b = merge_span_groups([self._group(0), self._group(1)])
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    def test_roots_reparented(self):
        merged = merge_span_groups([self._group()], parent_id=99)
        roots = [s for s in merged if s.name.startswith("root")]
        assert roots[0].parent_id == 99

    def test_empty_groups_skipped(self):
        assert merge_span_groups([[], self._group(), []]) == merge_span_groups(
            [self._group()]
        )


class TestValidation:
    def test_duplicate_id_rejected(self):
        spans = [Span(1, None, "a", 0, 1), Span(1, None, "b", 2, 3)]
        with pytest.raises(ReproError, match="duplicate"):
            validate_spans(spans)

    def test_missing_parent_rejected(self):
        with pytest.raises(ReproError, match="missing parent"):
            validate_spans([Span(1, 7, "a", 0, 1)])

    def test_cycle_rejected(self):
        spans = [Span(1, 2, "a", 0, 1), Span(2, 1, "b", 2, 3)]
        with pytest.raises(ReproError, match="cycle"):
            validate_spans(spans)


class TestSlowestPathAndRender:
    def test_slowest_path_follows_explicit_cost(self):
        tracer = Tracer()
        _tree(tracer)
        names = [s.name for s in slowest_path(tracer.spans())]
        # child-b carries cost=100, dwarfing child-a's ticks.
        assert names == ["root", "child-b"]

    def test_render_marks_hot_path_and_footer(self):
        tracer = Tracer()
        _tree(tracer)
        text = render_span_tree(tracer.spans())
        assert "* root" in text
        assert "*   child-b" in text
        assert "  child-a" in text  # not marked
        assert text.endswith("slowest path: root -> child-b")

    def test_render_shows_sorted_attrs(self):
        tracer = Tracer()
        with tracer.span("x", b=2, a=1):
            pass
        assert "[a=1 b=2]" in render_span_tree(tracer.spans())

    def test_empty_forest_renders_empty(self):
        assert slowest_path([]) == []
        assert render_span_tree([]) == ""
