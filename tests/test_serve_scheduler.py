"""Scheduling policies: ordering, bounded queues, fairness."""

import pytest

from repro.errors import ConfigurationError, QueueFullError
from repro.serve.scheduler import make_scheduler
from repro.serve.workload import QueryJob


def job(job_id: int, tenant: str = "t0") -> QueryJob:
    return QueryJob(
        job_id=job_id,
        tenant=tenant,
        group_id=0,
        protocol="ppgnn",
        k=3,
        seed=job_id,
        arrival_time=float(job_id),
    )


class TestBoundedQueue:
    @pytest.mark.parametrize("policy", ["fifo", "shortest-cost", "fair-share"])
    def test_overflow_raises_typed_backpressure(self, policy):
        scheduler = make_scheduler(policy, capacity=2)
        scheduler.submit(job(0), 1.0)
        scheduler.submit(job(1), 1.0)
        with pytest.raises(QueueFullError) as err:
            scheduler.submit(job(2), 1.0)
        assert err.value.depth == 2 and err.value.capacity == 2
        # A pop frees a slot again.
        assert scheduler.pop() is not None
        scheduler.submit(job(2), 1.0)

    def test_unknown_policy_and_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("lifo", 4)
        with pytest.raises(ConfigurationError):
            make_scheduler("fifo", 0)

    @pytest.mark.parametrize("policy", ["fifo", "shortest-cost", "fair-share"])
    def test_empty_pop_returns_none(self, policy):
        assert make_scheduler(policy, 4).pop() is None


class TestFIFO:
    def test_serves_in_arrival_order(self):
        scheduler = make_scheduler("fifo", 8)
        for i, cost in enumerate([5.0, 1.0, 3.0]):
            scheduler.submit(job(i), cost)
        assert [scheduler.pop().job_id for _ in range(3)] == [0, 1, 2]


class TestShortestCost:
    def test_serves_cheapest_first(self):
        scheduler = make_scheduler("shortest-cost", 8)
        for i, cost in enumerate([5.0, 1.0, 3.0]):
            scheduler.submit(job(i), cost)
        assert [scheduler.pop().job_id for _ in range(3)] == [1, 2, 0]

    def test_ties_break_on_job_id(self):
        scheduler = make_scheduler("shortest-cost", 8)
        for i in (2, 0, 1):
            scheduler.submit(job(i), 1.0)
        assert [scheduler.pop().job_id for _ in range(3)] == [0, 1, 2]


class TestFairShare:
    def test_alternates_between_tenants(self):
        scheduler = make_scheduler("fair-share", 8)
        for i in range(4):
            scheduler.submit(job(i, tenant="a"), 1.0)
        scheduler.submit(job(4, tenant="b"), 1.0)
        scheduler.submit(job(5, tenant="b"), 1.0)
        order = [scheduler.pop() for _ in range(6)]
        tenants = [j.tenant for j in order]
        # After each tenant has been served once, service alternates until
        # b drains — a never gets two in a row while b still waits.
        assert tenants[:4] in (["a", "b", "a", "b"], ["b", "a", "b", "a"])
        assert [j.job_id for j in order if j.tenant == "a"] == [0, 1, 2, 3]

    def test_expensive_tenant_yields(self):
        scheduler = make_scheduler("fair-share", 8)
        scheduler.submit(job(0, tenant="heavy"), 10.0)
        scheduler.submit(job(1, tenant="heavy"), 10.0)
        scheduler.submit(job(2, tenant="light"), 1.0)
        scheduler.submit(job(3, tenant="light"), 1.0)
        first = scheduler.pop()  # min served cost, tie broken by name
        rest = [scheduler.pop().tenant for _ in range(3)]
        # Once heavy has been served 10.0, light's two cheap jobs both go
        # before heavy's second.
        assert first.tenant == "heavy"
        assert rest == ["light", "light", "heavy"]
