"""Unit and property tests for repro.geometry.rect."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


points = st.builds(Point, coord, coord)


class TestRectConstruction:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ConfigurationError):
            Rect(0, 1, 1, 0)

    def test_from_point_is_degenerate(self):
        r = Rect.from_point(Point(2, 3))
        assert r.area == 0.0
        assert r.contains_point(Point(2, 3))

    def test_from_points_bounds_all(self):
        pts = [Point(0, 0), Point(2, 1), Point(-1, 3)]
        r = Rect.from_points(pts)
        assert all(r.contains_point(p) for p in pts)
        assert r == Rect(-1, 0, 2, 3)

    def test_from_points_empty_raises(self):
        with pytest.raises(ConfigurationError):
            Rect.from_points([])

    def test_from_center(self):
        r = Rect.from_center(Point(1, 1), 0.5, 2.0)
        assert r == Rect(0.5, -1.0, 1.5, 3.0)
        with pytest.raises(ConfigurationError):
            Rect.from_center(Point(0, 0), -1, 0)


class TestRectGeometry:
    def test_measures(self):
        r = Rect(0, 0, 2, 3)
        assert r.width == 2 and r.height == 3
        assert r.area == 6 and r.perimeter == 10
        assert r.center == Point(1, 1.5)

    def test_containment_boundary_inclusive(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(1, 1))
        assert not r.contains_point(Point(1.0001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert not Rect(1, 1, 2, 2).contains_rect(outer)

    def test_intersects_touching_edges(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))

    def test_clip(self):
        assert Rect(0, 0, 2, 2).clip(Rect(1, 1, 3, 3)) == Rect(1, 1, 2, 2)
        with pytest.raises(ConfigurationError):
            Rect(0, 0, 1, 1).clip(Rect(5, 5, 6, 6))


class TestRectProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rects(), rects())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(rects(), points)
    def test_point_in_rect_iff_in_union_with_it(self, r, p):
        u = r.union(Rect.from_point(p))
        assert u.contains_point(p)

    @given(rects(), rects())
    def test_intersection_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_clip_inside_both(self, a, b):
        if a.intersects(b):
            c = a.clip(b)
            assert a.contains_rect(c) and b.contains_rect(c)
