"""Chaos tests: every scripted deviation is detected or provably harmless.

The adversaries in :mod:`repro.attacks.malicious` produce forgeries the
transport layer cannot object to (their checksums are valid); the
assertion here is the guard's contract: each deviation either raises a
typed :class:`~repro.errors.GuardError` naming the offending round and
party, or the run completes with answers *byte-identical* to the honest
run (the only two harmless cases being ciphertext rerandomization and
envelope replay).
"""

from __future__ import annotations

import pytest

from repro.attacks.malicious import (
    LSP_DEVIATIONS,
    CheatingLSP,
    MaliciousChannel,
    corrupt_position,
    duplicate_user_id,
    nan_location,
    outside_location,
    short_set,
)
from repro.core.group import run_ppgnn
from repro.core.lsp import LSPServer
from repro.core.opt import run_ppgnn_opt
from repro.errors import (
    ConfigurationError,
    GuardError,
    InboundValidationError,
    ProtocolStateError,
)
from repro.guard.guard import ProtocolGuard
from repro.transport.session import ResilientSession

GUARD = ProtocolGuard()


@pytest.fixture(scope="module")
def locations(space):
    import numpy as np

    return space.sample_points(3, np.random.default_rng(42))


@pytest.fixture(scope="module")
def honest_answers(medium_pois, fast_config, locations):
    lsp = LSPServer(medium_pois, sanitation_samples=1500, seed=99)
    return run_ppgnn(lsp, locations, fast_config, seed=7, guard=GUARD).answers


def fresh_lsp(medium_pois):
    return LSPServer(medium_pois, sanitation_samples=1500, seed=99)


class TestCheatingLSP:
    def test_unknown_deviation_rejected(self, lsp):
        with pytest.raises(ConfigurationError, match="unknown deviation"):
            CheatingLSP(lsp, "made-up")

    @pytest.mark.parametrize(
        "deviation", [d for d in LSP_DEVIATIONS if d != "rerandomize"]
    )
    def test_cheats_detected_and_attributed(
        self, medium_pois, fast_config, locations, deviation
    ):
        cheater = CheatingLSP(fresh_lsp(medium_pois), deviation, seed=3)
        with pytest.raises(InboundValidationError) as info:
            run_ppgnn(cheater, locations, fast_config, seed=7, guard=GUARD)
        assert info.value.party == "lsp"

    def test_rerandomize_is_harmless(
        self, medium_pois, fast_config, locations, honest_answers
    ):
        # Semantic security: every ciphertext byte changes, the decrypted
        # answer must not.
        cheater = CheatingLSP(fresh_lsp(medium_pois), "rerandomize", seed=3)
        result = run_ppgnn(cheater, locations, fast_config, seed=7, guard=GUARD)
        assert result.answers == honest_answers

    @pytest.mark.parametrize(
        "deviation",
        ["extra_ciphertext", "empty_answer", "non_unit_value", "wrong_level"],
    )
    def test_cheats_detected_on_opt_path(
        self, medium_pois, fast_config, locations, deviation
    ):
        cheater = CheatingLSP(fresh_lsp(medium_pois), deviation, seed=3)
        with pytest.raises(InboundValidationError) as info:
            run_ppgnn_opt(cheater, locations, fast_config, seed=7, guard=GUARD)
        assert info.value.party == "lsp"

    def test_unguarded_run_cannot_tell(self, medium_pois, fast_config, locations):
        # The control experiment: without the guard, a rerandomizing LSP
        # passes silently — the guard adds the detection, not the protocol.
        cheater = CheatingLSP(fresh_lsp(medium_pois), "rerandomize", seed=3)
        result = run_ppgnn(cheater, locations, fast_config, seed=7)
        assert len(result.answers) > 0


class TestCheatingMembers:
    def _run(self, medium_pois, fast_config, locations, channel):
        session = ResilientSession(
            fresh_lsp(medium_pois), fast_config, seed=7, channel=channel, guard=GUARD
        )
        return session.query(locations)

    @pytest.mark.parametrize(
        "mutator_factory, expected_party",
        [
            (nan_location, "user:1"),
            (outside_location, "user:1"),
            (short_set, "user:1"),
        ],
    )
    def test_poisoned_uploads_detected(
        self, medium_pois, fast_config, locations, mutator_factory, expected_party
    ):
        channel = MaliciousChannel(mutator_factory(1))
        with pytest.raises(InboundValidationError) as info:
            self._run(medium_pois, fast_config, locations, channel)
        assert info.value.party == expected_party
        assert channel.forged == 1

    def test_impersonation_detected(self, medium_pois, fast_config, locations):
        # Member 1 claims member 0's id: the LSP state machine sees a
        # duplicate upload and rejects before the candidate matrix forms.
        channel = MaliciousChannel(duplicate_user_id(1, victim_id=0))
        with pytest.raises(ProtocolStateError, match="duplicate"):
            self._run(medium_pois, fast_config, locations, channel)

    def test_forged_position_detected(self, medium_pois, fast_config, locations):
        channel = MaliciousChannel(corrupt_position(1))
        with pytest.raises(InboundValidationError, match="position"):
            self._run(medium_pois, fast_config, locations, channel)

    def test_replay_is_harmless(
        self, medium_pois, fast_config, locations, honest_answers
    ):
        # Verbatim duplicates are absorbed by the transport's sequence
        # numbers; the guarded protocol result is byte-identical.
        session = ResilientSession(
            fresh_lsp(medium_pois),
            fast_config,
            seed=7,
            channel=MaliciousChannel(replay=True),
            guard=GUARD,
        )
        result = session.query(locations)
        assert result.answers == honest_answers
        assert session.transport_stats.duplicates_discarded > 0

    def test_every_deviation_raises_a_guard_error(
        self, medium_pois, fast_config, locations
    ):
        # The blanket contract: nothing escapes as an untyped exception.
        for factory in (nan_location, outside_location, short_set):
            with pytest.raises(GuardError):
                self._run(
                    medium_pois, fast_config, locations, MaliciousChannel(factory(2))
                )
