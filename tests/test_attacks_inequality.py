"""Tests for the inequality attack (Section 5.1)."""

import numpy as np
import pytest

from repro.attacks.inequality import inequality_attack
from repro.core.sanitize import AnswerSanitizer
from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.gnn.aggregate import SUM
from repro.gnn.engine import GNNQueryEngine
from repro.stats.hypothesis import SanitationTestPlan


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def engine():
    return GNNQueryEngine(uniform_pois(1200, seed=33))


def group_of(n, seed):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, (n, 2))]


class TestAttackMechanics:
    def test_empty_answer_rejected(self, space):
        with pytest.raises(ConfigurationError):
            inequality_attack([], [], space, SUM)

    def test_single_poi_gives_whole_space(self, space):
        """One POI carries no ranking information: theta = 1."""
        result = inequality_attack(
            [Point(0.5, 0.5)], [Point(0.2, 0.2)], space, SUM,
            n_samples=2000, rng=np.random.default_rng(0),
        )
        assert result.theta_estimate == 1.0

    def test_region_always_contains_true_target(self, space, engine):
        """The inequalities are sound: the victim satisfies all of them."""
        for seed in range(6):
            group = group_of(5, seed)
            pois = engine.query(8, group)
            answer = [p.location for p in pois]
            for target_idx in range(len(group)):
                known = [l for i, l in enumerate(group) if i != target_idx]
                result = inequality_attack(
                    answer, known, space, SUM,
                    n_samples=500,
                    rng=np.random.default_rng(seed),
                    true_target=group[target_idx],
                )
                assert result.contains_target

    def test_more_pois_shrink_the_region(self, space, engine):
        """Each extra inequality can only cut the feasible region down."""
        group = group_of(6, 7)
        pois = engine.query(8, group)
        answer = [p.location for p in pois]
        known = group[1:]
        rng_seed = 11
        thetas = []
        for t in range(1, len(answer) + 1):
            result = inequality_attack(
                answer[:t], known, space, SUM,
                n_samples=4000, rng=np.random.default_rng(rng_seed),
            )
            thetas.append(result.theta_estimate)
        assert all(a >= b for a, b in zip(thetas, thetas[1:], strict=False))

    def test_feasible_box_bounds_samples(self, space, engine):
        group = group_of(4, 2)
        pois = engine.query(6, group)
        result = inequality_attack(
            [p.location for p in pois], group[1:], space, SUM,
            n_samples=2000, rng=np.random.default_rng(3),
        )
        if result.samples_inside:
            assert result.feasible_box is not None
            assert space.bounds.contains_rect(result.feasible_box)

    def test_succeeded_semantics(self, space):
        result = inequality_attack(
            [Point(0.5, 0.5)], [], space, SUM,
            n_samples=100, rng=np.random.default_rng(0),
        )
        assert not result.succeeded(0.5)  # theta = 1 > theta0


class TestSanitationDefeatsAttack:
    def test_sanitized_answers_resist_collusion(self, space, engine):
        """The end-to-end Privacy IV property (Theorem 5.2): after
        sanitation, every colluding majority's feasible region for the
        victim exceeds theta0 (with the test's confidence)."""
        theta0 = 0.05
        plan = SanitationTestPlan.from_parameters(theta0, n_samples_override=4000)
        sanitizer = AnswerSanitizer(space, SUM, plan, np.random.default_rng(5))
        failures = 0
        trials = 0
        for seed in range(8):
            group = group_of(6, 100 + seed)
            pois = engine.query(8, group)
            prefix = sanitizer.sanitize(pois, group).prefix
            answer = [p.location for p in prefix]
            for target_idx in range(len(group)):
                known = [l for i, l in enumerate(group) if i != target_idx]
                attack = inequality_attack(
                    answer, known, space, SUM,
                    n_samples=4000, rng=np.random.default_rng(seed),
                )
                trials += 1
                if attack.succeeded(theta0):
                    failures += 1
        # gamma = 0.05 bounds the per-test false-safe rate; allow sampling noise.
        assert failures / trials <= 0.15

    def test_unsanitized_answers_are_attackable(self, space, engine):
        """Without sanitation a distant group leaks: some victim's region
        collapses below theta0 for at least one configuration."""
        theta0 = 0.05
        attackable = 0
        for seed in range(8):
            group = group_of(6, 200 + seed)
            pois = engine.query(8, group)
            answer = [p.location for p in pois]
            for target_idx in range(len(group)):
                known = [l for i, l in enumerate(group) if i != target_idx]
                attack = inequality_attack(
                    answer, known, space, SUM,
                    n_samples=3000, rng=np.random.default_rng(seed),
                )
                if attack.succeeded(theta0):
                    attackable += 1
        assert attackable > 0
