"""The metrics registry: instruments, snapshots, merge semantics."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3

    def test_histogram_bucket_assignment(self):
        hist = Histogram(buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 4.0, 100.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]  # <=1: {0.5, 1.0}; <=2: {1.5}; <=5: {4.0}
        assert hist.overflow == 1
        assert hist.count == 5
        assert hist.mean == pytest.approx(107.0 / 5)

    def test_histogram_buckets_must_be_sorted_non_empty(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=())
        with pytest.raises(ConfigurationError):
            Histogram(buckets=(2.0, 1.0))

    def test_empty_histogram_mean(self):
        assert Histogram().mean == 0.0


class TestRegistryAndSnapshot:
    def test_create_on_first_use_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc(3)
        registry.counter("a.count").inc(1)
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(0.002)
        snapshot = registry.snapshot()
        restored = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict()))
        )
        assert restored.to_dict() == snapshot.to_dict()

    def test_to_dict_sorts_names(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        assert list(registry.snapshot().to_dict()["counters"]) == ["a", "z"]

    def test_names_property(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(1)
        assert registry.snapshot().names == {"c", "g", "h"}

    def test_snapshot_is_a_frozen_copy(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        registry.counter("c").inc()
        assert snapshot.counters["c"] == 1
        assert registry.snapshot().counters["c"] == 2


class TestMergeSemantics:
    def _snapshot(self, count, gauge, observations):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(count)
        registry.gauge("depth").set(gauge)
        hist = registry.histogram("lat")
        for value in observations:
            hist.observe(value)
        return registry.snapshot()

    def test_counters_add_gauges_max_histograms_add(self):
        merged = MetricsRegistry()
        merged.merge_snapshot(self._snapshot(3, 5, [0.002, 0.2]))
        merged.merge_snapshot(self._snapshot(4, 2, [0.004]))
        result = merged.snapshot()
        assert result.counters["jobs"] == 7
        assert result.gauges["depth"] == 5  # max, not sum
        hist = result.histograms["lat"]
        assert hist["count"] == 3
        assert hist["total"] == pytest.approx(0.206)

    def test_merge_order_independent_totals(self):
        a, b = self._snapshot(1, 9, [0.1]), self._snapshot(2, 3, [0.5, 5.0])
        left, right = MetricsRegistry(), MetricsRegistry()
        left.merge_snapshot(a)
        left.merge_snapshot(b)
        right.merge_snapshot(b)
        right.merge_snapshot(a)
        assert left.snapshot().to_dict() == right.snapshot().to_dict()

    def test_bucket_layout_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("lat", buckets=DEFAULT_BUCKETS).observe(0.5)
        with pytest.raises(ConfigurationError, match="bucket layouts differ"):
            registry.merge_snapshot(other.snapshot())

    def test_merge_into_empty_registry_reproduces(self):
        snapshot = self._snapshot(2, 4, [0.01])
        registry = MetricsRegistry()
        registry.merge_snapshot(snapshot)
        assert registry.snapshot().to_dict() == snapshot.to_dict()
