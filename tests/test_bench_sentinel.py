"""The performance sentinel: classification, store, comparator, env gate."""

import json

import pytest

from repro.bench.sentinel import (
    BASELINE_SCHEMA_VERSION,
    BaselineRecord,
    BaselineStore,
    BenchSentinel,
    classify_metric,
    compare_metrics,
    compare_to_baseline,
    render_markdown,
    serving_report_metrics,
)
from repro.errors import ConfigurationError, PerfRegressionError, ReproError


class TestClassifyMetric:
    def test_exact_vs_timing(self):
        assert classify_metric("ops.encryptions").kind == "exact"
        assert classify_metric("comm.bytes_total").kind == "exact"
        assert classify_metric("time.user_seconds").kind == "timing"
        assert classify_metric("latency.p95_seconds").kind == "timing"
        assert classify_metric("throughput_qps").kind == "timing"

    def test_directions(self):
        assert classify_metric("ops.scalar_muls").direction == "lower"
        assert classify_metric("cache.hits").direction == "higher"
        assert classify_metric("serve.completed").direction == "higher"
        assert classify_metric("answers.count").direction == "fixed"


class TestCompareMetrics:
    def test_exact_zero_tolerance(self):
        deltas = compare_metrics({"ops.muls": 100}, {"ops.muls": 101})
        assert deltas[0].status == "regressed"
        deltas = compare_metrics({"ops.muls": 100}, {"ops.muls": 99})
        assert deltas[0].status == "improved"

    def test_timing_tolerance_window(self):
        base, cur = {"wall_seconds": 1.0}, {"wall_seconds": 1.2}
        assert compare_metrics(base, cur, 0.25)[0].status == "neutral"
        assert compare_metrics(base, cur, 0.1)[0].status == "regressed"
        faster = compare_metrics({"wall_seconds": 1.0}, {"wall_seconds": 0.5}, 0.25)
        assert faster[0].status == "improved"

    def test_higher_better_direction(self):
        up = compare_metrics({"cache.hits": 10}, {"cache.hits": 12})
        assert up[0].status == "improved"
        down = compare_metrics({"cache.hits": 10}, {"cache.hits": 8})
        assert down[0].status == "regressed"

    def test_fixed_metrics_regress_in_both_directions(self):
        for current in (1, 3):
            deltas = compare_metrics({"answers.count": 2}, {"answers.count": current})
            assert deltas[0].status == "regressed"

    def test_added_and_removed_are_not_failures(self):
        deltas = {
            d.name: d
            for d in compare_metrics({"ops.old": 1}, {"ops.new": 2})
        }
        assert deltas["ops.old"].status == "removed"
        assert deltas["ops.new"].status == "added"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_metrics({}, {}, rel_tolerance=-0.1)


class TestBaselineStore:
    def test_round_trip(self, tmp_path):
        store = BaselineStore(tmp_path)
        record = BaselineRecord(
            experiment="ppgnn",
            metrics={"ops.muls": 42, "time.wall_seconds": 0.5},
            git_sha="abc123",
            keysize=128,
            config={"seed": 7},
        )
        path = store.save(record)
        assert path == tmp_path / "ppgnn.json"
        loaded = store.load("ppgnn")
        assert loaded == record
        assert store.experiments() == ["ppgnn"]

    def test_missing_baseline_names_the_fix(self, tmp_path):
        with pytest.raises(ReproError, match="--record"):
            BaselineStore(tmp_path).load("nope")

    def test_schema_mismatch_refused(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.save(BaselineRecord("exp", {"ops.x": 1}))
        data = json.loads(store.path("exp").read_text())
        data["schema_version"] = BASELINE_SCHEMA_VERSION + 1
        store.path("exp").write_text(json.dumps(data))
        with pytest.raises(ReproError, match="re-record"):
            store.load("exp")

    def test_garbage_file_reported(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.directory.mkdir(exist_ok=True)
        store.path("bad").write_text("{not json")
        with pytest.raises(ReproError, match="does not parse"):
            store.load("bad")


class TestComparison:
    def test_ok_gates_only_on_exact(self):
        baseline = BaselineRecord(
            "exp", {"ops.muls": 100, "wall_seconds": 1.0}, git_sha="old"
        )
        comparison = compare_to_baseline(
            baseline, {"ops.muls": 100, "wall_seconds": 10.0}, 0.25, "new"
        )
        assert comparison.ok  # timing regressed, exact did not
        assert len(comparison.timing_regressions) == 1
        worse = compare_to_baseline(
            baseline, {"ops.muls": 101, "wall_seconds": 1.0}, 0.25, "new"
        )
        assert not worse.ok
        assert [d.name for d in worse.exact_regressions] == ["ops.muls"]

    def test_markdown_report(self):
        baseline = BaselineRecord("exp", {"ops.muls": 100}, git_sha="oldsha")
        good = compare_to_baseline(baseline, {"ops.muls": 100}, 0.25, "newsha")
        bad = compare_to_baseline(baseline, {"ops.muls": 200}, 0.25, "newsha")
        passing = render_markdown([good])
        failing = render_markdown([good, bad])
        assert "Verdict: PASS" in passing
        assert "Verdict: FAIL" in failing
        assert "`ops.muls`" in failing and "regressed" in failing
        assert "oldsha" in failing and "newsha" in failing


class TestServingReportMetrics:
    def test_extracts_counters_and_sections(self):
        report = {
            "completed": 24, "failed": 1, "rejected": 0,
            "comm_bytes_total": 35940,
            "makespan_seconds": 0.57,
            "cache": {"hits": 80, "misses": 112},
            "pool": {"pooled": 190},
            "transport": {"retransmissions": 2, "corrupt_rejected": 0},
            "latency": {"p95": 0.027},
            "obs": {"metrics": {"counters": {"crypto.encryptions": 190}}},
        }
        metrics = serving_report_metrics(report)
        assert metrics["serve.completed"] == 24
        assert metrics["cache.hits"] == 80
        assert metrics["transport.retransmissions"] == 2
        assert metrics["latency.p95_seconds"] == 0.027
        assert metrics["ops.crypto.encryptions"] == 190

    def test_tolerates_missing_obs(self):
        metrics = serving_report_metrics(
            {"completed": 1, "latency": {}, "cache": {}, "pool": {}}
        )
        assert metrics["serve.completed"] == 1
        assert not any(name.startswith("ops.") for name in metrics)


class TestBenchSentinel:
    def test_disarmed_by_default(self, tmp_path, monkeypatch):
        for var in ("REPRO_BENCH_RECORD_BASELINE", "REPRO_BENCH_CHECK_BASELINE"):
            monkeypatch.delenv(var, raising=False)
        sentinel = BenchSentinel.from_env(tmp_path)
        assert not sentinel.armed
        assert sentinel.gate("exp", {"ops.x": 1}) is None
        assert not (tmp_path / "exp.json").exists()

    def test_record_then_check_cycle(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RECORD_BASELINE", "1")
        monkeypatch.delenv("REPRO_BENCH_CHECK_BASELINE", raising=False)
        recorder = BenchSentinel.from_env(tmp_path)
        assert recorder.gate("exp", {"ops.x": 5}, keysize=128).ok
        assert (tmp_path / "exp.json").exists()

        monkeypatch.delenv("REPRO_BENCH_RECORD_BASELINE")
        monkeypatch.setenv("REPRO_BENCH_CHECK_BASELINE", "1")
        checker = BenchSentinel.from_env(tmp_path)
        assert checker.gate("exp", {"ops.x": 5}).ok
        with pytest.raises(PerfRegressionError, match="ops.x"):
            checker.gate("exp", {"ops.x": 6})

    def test_record_and_check_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            BenchSentinel(BaselineStore(tmp_path), record=True, check=True)

    def test_env_overrides(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BASELINE_DIR", str(tmp_path / "alt"))
        monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "0.5")
        sentinel = BenchSentinel.from_env(tmp_path)
        assert sentinel.store.directory == tmp_path / "alt"
        assert sentinel.rel_tolerance == 0.5
