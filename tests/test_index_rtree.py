"""Tests for the R-tree: structure, queries, bulk load, deletion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bruteforce import BruteForceIndex
from repro.index.rtree import RTree

coord = st.floats(min_value=0, max_value=1, allow_nan=False)
point_lists = st.lists(st.tuples(coord, coord), min_size=1, max_size=120)


def make_points(pairs):
    return [Point(x, y) for x, y in pairs]


def check_invariants(tree: RTree):
    """Every node's MBR must tightly bound its content; leaves at one depth."""
    depths = set()

    def visit(node, depth):
        if node.is_leaf:
            depths.add(depth)
            if node.points:
                mbr = Rect.from_points(node.points)
                assert node.mbr == mbr
        else:
            assert node.children
            union = node.children[0].mbr
            for child in node.children[1:]:
                union = union.union(child.mbr)
                assert node.mbr.contains_rect(child.mbr)
            assert node.mbr == union
            for child in node.children:
                visit(child, depth + 1)

    visit(tree.root, 0)
    assert len(depths) <= 1  # balanced


class TestRTreeConstruction:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RTree(max_entries=3)
        with pytest.raises(ConfigurationError):
            RTree(max_entries=8, min_entries=5)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert not tree
        assert tree.range_query(Rect(0, 0, 1, 1)) == []

    def test_insert_and_count(self, small_pois):
        tree = RTree(max_entries=8)
        for poi in small_pois:
            tree.insert(poi.location, poi)
        assert len(tree) == len(small_pois)
        check_invariants(tree)

    def test_height_grows_with_size(self, small_pois):
        tree = RTree(max_entries=4)
        for poi in small_pois:
            tree.insert(poi.location, poi)
        assert tree.height >= 3

    def test_entries_iteration_complete(self, small_pois):
        tree = RTree(max_entries=8)
        for poi in small_pois:
            tree.insert(poi.location, poi)
        ids = sorted(p.poi_id for _, p in tree.entries())
        assert ids == sorted(p.poi_id for p in small_pois)

    def test_duplicate_locations_supported(self):
        tree = RTree(max_entries=4)
        p = Point(0.5, 0.5)
        for i in range(20):
            tree.insert(p, i)
        assert len(tree) == 20
        assert len(tree.range_query(Rect.from_point(p))) == 20


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self, small_pois):
        bulk = RTree(max_entries=8)
        bulk.bulk_load((p.location, p) for p in small_pois)
        assert len(bulk) == len(small_pois)
        check_invariants(bulk)
        ids = sorted(p.poi_id for _, p in bulk.entries())
        assert ids == sorted(p.poi_id for p in small_pois)

    def test_bulk_load_empty(self):
        tree = RTree()
        tree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_replaces_content(self, small_pois):
        tree = RTree()
        tree.insert(Point(0, 0), "old")
        tree.bulk_load((p.location, p) for p in small_pois[:10])
        assert len(tree) == 10
        assert all(item != "old" for _, item in tree.entries())

    def test_bulk_load_is_shallower_than_inserts(self):
        rng = np.random.default_rng(0)
        pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, (2000, 2))]
        bulk = RTree(max_entries=16)
        bulk.bulk_load((p, i) for i, p in enumerate(pts))
        incremental = RTree(max_entries=16)
        for i, p in enumerate(pts):
            incremental.insert(p, i)
        assert bulk.height <= incremental.height
        check_invariants(bulk)


class TestRangeQuery:
    @settings(max_examples=30, deadline=None)
    @given(point_lists, coord, coord, coord, coord)
    def test_range_matches_bruteforce(self, pairs, x1, y1, x2, y2):
        rect = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        tree = RTree(max_entries=4)
        oracle = BruteForceIndex()
        for i, p in enumerate(make_points(pairs)):
            tree.insert(p, i)
            oracle.insert(p, i)
        got = sorted(item for _, item in tree.range_query(rect))
        want = sorted(item for _, item in oracle.range_query(rect))
        assert got == want


class TestDeletion:
    def test_delete_existing(self, small_pois):
        tree = RTree(max_entries=6)
        for poi in small_pois:
            tree.insert(poi.location, poi)
        victim = small_pois[37]
        assert tree.delete(victim.location, victim)
        assert len(tree) == len(small_pois) - 1
        remaining = {p.poi_id for _, p in tree.entries()}
        assert victim.poi_id not in remaining
        check_invariants(tree)

    def test_delete_missing_returns_false(self, small_pois):
        tree = RTree()
        tree.bulk_load((p.location, p) for p in small_pois)
        assert not tree.delete(Point(0.123456, 0.654321), "ghost")
        assert len(tree) == len(small_pois)

    def test_delete_everything(self, small_pois):
        subset = small_pois[:40]
        tree = RTree(max_entries=4)
        for poi in subset:
            tree.insert(poi.location, poi)
        for poi in subset:
            assert tree.delete(poi.location, poi)
        assert len(tree) == 0

    def test_queries_correct_after_mixed_workload(self, small_pois):
        tree = RTree(max_entries=5)
        oracle = BruteForceIndex()
        alive = []
        for i, poi in enumerate(small_pois):
            tree.insert(poi.location, poi)
            alive.append(poi)
            if i % 3 == 2:
                victim = alive.pop(len(alive) // 2)
                assert tree.delete(victim.location, victim)
        for poi in alive:
            oracle.insert(poi.location, poi)
        rect = Rect(0.2, 0.2, 0.8, 0.8)
        got = sorted(p.poi_id for _, p in tree.range_query(rect))
        want = sorted(p.poi_id for _, p in oracle.range_query(rect))
        assert got == want
        check_invariants(tree)
