"""Tests for offline nonce precomputation."""

import random
import time

import pytest

from repro.crypto.noncepool import NoncePool, encrypt_with_pool, pooled_indicator
from repro.crypto.paillier import generate_keypair
from repro.errors import ConfigurationError, CryptoError


@pytest.fixture(scope="module")
def kp():
    return generate_keypair(256, seed=2468)


class TestNoncePool:
    def test_refill_and_take(self, kp):
        _, pk = kp
        pool = NoncePool(pk)
        assert pool.available() == 0
        pool.refill(5, rng=random.Random(1))
        assert pool.available() == 5
        assert pool.take() is not None
        assert pool.available() == 4
        assert pool.take(s=2) is None  # level 2 never filled

    def test_negative_refill_rejected(self, kp):
        _, pk = kp
        with pytest.raises(ConfigurationError):
            NoncePool(pk).refill(-1)

    def test_pooled_ciphertexts_decrypt_correctly(self, kp):
        sk, pk = kp
        pool = NoncePool(pk)
        pool.refill(10, rng=random.Random(2))
        for m in (0, 1, 424242, pk.n - 1):
            c = encrypt_with_pool(pool, m)
            assert sk.decrypt(c) == m

    def test_pooled_ciphertexts_are_randomized(self, kp):
        _, pk = kp
        pool = NoncePool(pk)
        pool.refill(2, rng=random.Random(3))
        a = encrypt_with_pool(pool, 7)
        b = encrypt_with_pool(pool, 7)
        assert a.value != b.value

    def test_dry_pool_falls_back_online(self, kp):
        sk, pk = kp
        pool = NoncePool(pk)  # never refilled
        c = encrypt_with_pool(pool, 99, rng=random.Random(4))
        assert sk.decrypt(c) == 99

    def test_level_two_support(self, kp):
        sk, pk = kp
        pool = NoncePool(pk)
        pool.refill(2, s=2, rng=random.Random(5))
        c = encrypt_with_pool(pool, 31337, s=2)
        assert c.s == 2
        assert sk.decrypt(c) == 31337

    def test_plaintext_validation(self, kp):
        _, pk = kp
        pool = NoncePool(pk)
        with pytest.raises(CryptoError):
            encrypt_with_pool(pool, pk.n)

    def test_pooled_indicator_selects_correctly(self, kp):
        sk, pk = kp
        from repro.crypto.homomorphic import matrix_select

        pool = NoncePool(pk)
        pool.refill(6, rng=random.Random(6))
        indicator = pooled_indicator(pool, 6, 4)
        matrix = [[10, 20, 30, 40, 50, 60]]
        assert sk.decrypt(matrix_select(matrix, indicator)[0]) == 50

    def test_pooled_indicator_bounds(self, kp):
        _, pk = kp
        with pytest.raises(CryptoError):
            pooled_indicator(NoncePool(pk), 3, 3)

    def test_wrong_key_pool_rejected(self, kp):
        _, pk = kp
        _, other_pk = generate_keypair(256, seed=1357)
        pool = NoncePool(other_pk)
        pool.refill(3, rng=random.Random(9))
        with pytest.raises(CryptoError, match="different public key"):
            encrypt_with_pool(pool, 5, public_key=pk)
        with pytest.raises(CryptoError, match="different public key"):
            pooled_indicator(pool, 3, 1, public_key=pk)

    def test_wrong_key_rejected_even_when_dry(self, kp):
        # The online fallback would use the *pool's* key, which is still
        # not the one the caller asked for — dryness must not mask it.
        _, pk = kp
        _, other_pk = generate_keypair(256, seed=1357)
        pool = NoncePool(other_pk)
        with pytest.raises(CryptoError, match="different public key"):
            encrypt_with_pool(pool, 5, public_key=pk)

    def test_matching_key_expectation_passes(self, kp):
        sk, pk = kp
        pool = NoncePool(pk)
        pool.refill(1, rng=random.Random(10))
        c = encrypt_with_pool(pool, 77, public_key=pk)
        assert sk.decrypt(c) == 77
        # And the dry-pool fallback still honors a matching expectation.
        d = encrypt_with_pool(pool, 78, rng=random.Random(11), public_key=pk)
        assert sk.decrypt(d) == 78

    def test_online_phase_is_faster_with_pool(self, kp):
        """The point of the exercise: query-time encryption gets cheaper."""
        _, pk = kp
        pool = NoncePool(pk)
        pool.refill(60, rng=random.Random(7))
        rng = random.Random(8)

        start = time.perf_counter()
        for i in range(60):
            encrypt_with_pool(pool, i)
        pooled_time = time.perf_counter() - start

        start = time.perf_counter()
        for i in range(60):
            pk.encrypt(i, rng=rng)
        online_time = time.perf_counter() - start

        assert pooled_time < online_time
