"""Tests for offline nonce precomputation."""

import random
import time

import pytest

from repro.crypto.noncepool import NoncePool, encrypt_with_pool, pooled_indicator
from repro.crypto.paillier import generate_keypair
from repro.errors import ConfigurationError, CryptoError


@pytest.fixture(scope="module")
def kp():
    return generate_keypair(256, seed=2468)


class TestNoncePool:
    def test_refill_and_take(self, kp):
        _, pk = kp
        pool = NoncePool(pk)
        assert pool.available() == 0
        pool.refill(5, rng=random.Random(1))
        assert pool.available() == 5
        assert pool.take() is not None
        assert pool.available() == 4
        assert pool.take(s=2) is None  # level 2 never filled

    def test_negative_refill_rejected(self, kp):
        _, pk = kp
        with pytest.raises(ConfigurationError):
            NoncePool(pk).refill(-1)

    def test_pooled_ciphertexts_decrypt_correctly(self, kp):
        sk, pk = kp
        pool = NoncePool(pk)
        pool.refill(10, rng=random.Random(2))
        for m in (0, 1, 424242, pk.n - 1):
            c = encrypt_with_pool(pool, m)
            assert sk.decrypt(c) == m

    def test_pooled_ciphertexts_are_randomized(self, kp):
        _, pk = kp
        pool = NoncePool(pk)
        pool.refill(2, rng=random.Random(3))
        a = encrypt_with_pool(pool, 7)
        b = encrypt_with_pool(pool, 7)
        assert a.value != b.value

    def test_dry_pool_falls_back_online(self, kp):
        sk, pk = kp
        pool = NoncePool(pk)  # never refilled
        c = encrypt_with_pool(pool, 99, rng=random.Random(4))
        assert sk.decrypt(c) == 99

    def test_level_two_support(self, kp):
        sk, pk = kp
        pool = NoncePool(pk)
        pool.refill(2, s=2, rng=random.Random(5))
        c = encrypt_with_pool(pool, 31337, s=2)
        assert c.s == 2
        assert sk.decrypt(c) == 31337

    def test_plaintext_validation(self, kp):
        _, pk = kp
        pool = NoncePool(pk)
        with pytest.raises(CryptoError):
            encrypt_with_pool(pool, pk.n)

    def test_pooled_indicator_selects_correctly(self, kp):
        sk, pk = kp
        from repro.crypto.homomorphic import matrix_select

        pool = NoncePool(pk)
        pool.refill(6, rng=random.Random(6))
        indicator = pooled_indicator(pool, 6, 4)
        matrix = [[10, 20, 30, 40, 50, 60]]
        assert sk.decrypt(matrix_select(matrix, indicator)[0]) == 50

    def test_pooled_indicator_bounds(self, kp):
        _, pk = kp
        with pytest.raises(CryptoError):
            pooled_indicator(NoncePool(pk), 3, 3)

    def test_wrong_key_pool_rejected(self, kp):
        _, pk = kp
        _, other_pk = generate_keypair(256, seed=1357)
        pool = NoncePool(other_pk)
        pool.refill(3, rng=random.Random(9))
        with pytest.raises(CryptoError, match="different public key"):
            encrypt_with_pool(pool, 5, public_key=pk)
        with pytest.raises(CryptoError, match="different public key"):
            pooled_indicator(pool, 3, 1, public_key=pk)

    def test_wrong_key_rejected_even_when_dry(self, kp):
        # The online fallback would use the *pool's* key, which is still
        # not the one the caller asked for — dryness must not mask it.
        _, pk = kp
        _, other_pk = generate_keypair(256, seed=1357)
        pool = NoncePool(other_pk)
        with pytest.raises(CryptoError, match="different public key"):
            encrypt_with_pool(pool, 5, public_key=pk)

    def test_matching_key_expectation_passes(self, kp):
        sk, pk = kp
        pool = NoncePool(pk)
        pool.refill(1, rng=random.Random(10))
        c = encrypt_with_pool(pool, 77, public_key=pk)
        assert sk.decrypt(c) == 77
        # And the dry-pool fallback still honors a matching expectation.
        d = encrypt_with_pool(pool, 78, rng=random.Random(11), public_key=pk)
        assert sk.decrypt(d) == 78

    def test_online_phase_is_faster_with_pool(self, kp):
        """The point of the exercise: query-time encryption gets cheaper."""
        _, pk = kp
        pool = NoncePool(pk)
        pool.refill(60, rng=random.Random(7))
        rng = random.Random(8)

        start = time.perf_counter()
        for i in range(60):
            encrypt_with_pool(pool, i)
        pooled_time = time.perf_counter() - start

        start = time.perf_counter()
        for i in range(60):
            pk.encrypt(i, rng=rng)
        online_time = time.perf_counter() - start

        assert pooled_time < online_time


class TestPoolStatsAndSharing:
    """Counters plus the never-reuse property of shared pools."""

    def test_stats_count_pooled_and_dry_takes(self, kp):
        _, pk = kp
        pool = NoncePool(pk)
        pool.refill(3, rng=random.Random(2))
        assert pool.stats.precomputed == 3 and pool.stats.refills == 1
        for _ in range(3):
            assert pool.take() is not None
        assert pool.take() is None
        assert pool.stats.pooled == 3 and pool.stats.dry == 1
        assert pool.stats.hit_rate == pytest.approx(0.75)

    def test_registry_shares_one_pool_per_key(self, kp):
        from repro.crypto.noncepool import NoncePoolRegistry

        _, pk = kp
        registry = NoncePoolRegistry(seed=9, chunk=8)
        a = registry.ensure(pk, 4)
        b = registry.pool_for(pk)
        assert a is b
        assert a.available() >= 4  # chunked refill tops up past the ask
        other = generate_keypair(128, seed=31).public_key
        assert registry.pool_for(other) is not a
        assert registry.stats.precomputed == a.stats.precomputed

    def test_registry_refills_are_deterministic(self, kp):
        from repro.crypto.noncepool import NoncePoolRegistry

        _, pk = kp

        def drain(seed):
            registry = NoncePoolRegistry(seed=seed, chunk=4)
            pool = registry.ensure(pk, 4)
            return [pool.take() for _ in range(4)]

        assert drain(5) == drain(5)
        assert drain(5) != drain(6)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_shared_pool_never_reuses_a_nonce(self, kp, seed):
        """Interleaved sessions draining one pool never share a factor.

        Simulates many concurrent sessions taking from (and occasionally
        refilling) one shared pool in a random interleaving; every factor
        handed out must be globally unique and every pooled ciphertext must
        still decrypt to its plaintext.
        """
        sk, pk = kp
        pool = NoncePool(pk)
        rng = random.Random(seed)
        pool.refill(6, rng=rng)
        handed_out = []
        original_take = pool.take

        def spying_take(s=1):
            factor = original_take(s)
            if factor is not None:
                handed_out.append(factor)
            return factor

        pool.take = spying_take
        ciphertexts = []
        plaintexts = []
        for step in range(60):
            if pool.available() < 2 and rng.random() < 0.5:
                pool.refill(rng.randrange(1, 5), rng=rng)
            m = rng.randrange(1 << 32)
            c = encrypt_with_pool(pool, m, rng=rng, public_key=pk)
            ciphertexts.append(c)
            plaintexts.append(m)
        assert len(handed_out) > 0
        assert len(set(handed_out)) == len(handed_out), "a pooled factor was reused"
        for m, c in zip(plaintexts, ciphertexts, strict=True):
            assert sk.decrypt(c) == m


class TestFastRefillPaths:
    """Refill kernels: windowed for public pools, CRT-split for key owners."""

    def test_refill_values_identical_across_kernels(self, kp):
        from repro.crypto import fastexp

        sk, pk = kp
        factors = {}
        for name, pool_args, flag in (
            ("slow", (pk,), False),
            ("windowed", (pk,), True),
            ("crt", (pk, sk), True),
        ):
            with fastexp.forced(flag):
                pool = NoncePool(*pool_args)
                pool.refill(4, rng=random.Random(77))
                factors[name] = [pool.take() for _ in range(4)]
        assert factors["slow"] == factors["windowed"] == factors["crt"]

    def test_stats_track_which_kernel_ran(self, kp):
        from repro.crypto import fastexp

        sk, pk = kp
        with fastexp.forced(True):
            public_pool = NoncePool(pk)
            public_pool.refill(3, rng=random.Random(1))
            assert public_pool.stats.windowed == 3
            assert public_pool.stats.crt_split == 0
            assert public_pool.stats.fast_muls > 0

            owner_pool = NoncePool(pk, sk)
            owner_pool.refill(2, rng=random.Random(1))
            assert owner_pool.stats.crt_split == 2
            assert owner_pool.stats.windowed == 0

            merged = type(owner_pool.stats)()
            merged.merge(public_pool.stats)
            merged.merge(owner_pool.stats)
            assert merged.windowed == 3 and merged.crt_split == 2
            assert merged.fast_muls == (
                public_pool.stats.fast_muls + owner_pool.stats.fast_muls
            )

    def test_slow_refill_ledgers_binary_estimate(self, kp):
        from repro.crypto import fastexp
        from repro.crypto.fastexp import binary_pow_cost

        _, pk = kp
        with fastexp.forced(False):
            pool = NoncePool(pk)
            pool.refill(2, rng=random.Random(1))
            assert pool.stats.fast_muls == 2 * binary_pow_cost(pk.n)

    def test_mismatched_secret_key_rejected(self, kp):
        _, pk = kp
        other = generate_keypair(128, seed=4321)
        with pytest.raises(CryptoError):
            NoncePool(pk, other.secret_key)
        pool = NoncePool(pk)
        with pytest.raises(CryptoError):
            pool.attach_secret_key(other.secret_key)

    def test_registry_attaches_secret_key_once(self, kp):
        from repro.crypto.noncepool import NoncePoolRegistry

        sk, pk = kp
        registry = NoncePoolRegistry(seed=3)
        pool = registry.pool_for(pk)
        assert pool.secret_key is None
        assert registry.pool_for(pk, sk) is pool
        assert pool.secret_key is sk


class TestPackedEncryption:
    def test_roundtrip_spends_one_factor(self, kp):
        from repro.crypto.noncepool import decrypt_packed, encrypt_packed

        sk, pk = kp
        pool = NoncePool(pk)
        pool.refill(2, rng=random.Random(5))
        fields = [17, 0, 255, 3]
        c = encrypt_packed(pool, fields, 8)
        assert decrypt_packed(sk, c, 8, len(fields)) == fields
        assert pool.available() == 1  # one factor for four fields

    def test_capacity_enforced(self, kp):
        from repro.crypto.noncepool import encrypt_packed, packed_capacity

        _, pk = kp
        pool = NoncePool(pk)
        capacity = packed_capacity(pk, 8)
        assert capacity == (pk.key_bits - 1) // 8
        with pytest.raises(CryptoError):
            encrypt_packed(pool, [0] * (capacity + 1), 8)

    def test_level_two_capacity_doubles(self, kp):
        from repro.crypto.noncepool import decrypt_packed, encrypt_packed, packed_capacity

        sk, pk = kp
        assert packed_capacity(pk, 8, s=2) > packed_capacity(pk, 8)
        pool = NoncePool(pk)
        fields = list(range(20))
        c = encrypt_packed(pool, fields, 8, s=2)
        assert decrypt_packed(sk, c, 8, len(fields)) == fields
