"""The serving engine: identity with direct sessions, determinism, faults."""

import numpy as np
import pytest

from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.core.session import QuerySession
from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.space import LocationSpace
from repro.serve import ServeConfig, ServeEngine, WorkloadSpec, generate_workload
from repro.transport.faults import FaultPlan

SAMPLES = 8  # small Monte-Carlo override keeps sanitation fast


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def pois(space):
    return uniform_pois(200, space, np.random.default_rng(7))


@pytest.fixture(scope="module")
def config():
    return PPGNNConfig(d=4, delta=8, k=3, keysize=128, sanitation_samples=SAMPLES)


@pytest.fixture
def make_lsp(pois, space):
    def build():
        return LSPServer(pois, space=space, sanitation_samples=SAMPLES)

    return build


MIXED = WorkloadSpec(
    queries=16,
    rate_qps=10.0,
    protocol_mix={"ppgnn": 1.0, "ppgnn-opt": 1.0, "naive": 1.0},
    group_size_mix={2: 1.0, 3: 1.0},
    k_mix={3: 1.0},
    tenants=("a", "b"),
    groups=4,
    repeat_fraction=0.3,
    seed=5,
)


class TestByteIdentity:
    @pytest.mark.parametrize("protocol", ["ppgnn", "ppgnn-opt", "naive"])
    def test_engine_equals_direct_session(self, protocol, make_lsp, config, space):
        """A one-query engine run is byte-identical to a bare QuerySession."""
        spec = WorkloadSpec(
            queries=1,
            protocol_mix={protocol: 1.0},
            group_size_mix={3: 1.0},
            k_mix={config.k: 1.0},
            groups=1,
            seed=9,
        )
        workload = generate_workload(spec, space)
        job = workload.jobs[0]
        engine = ServeEngine(
            make_lsp(),
            config,
            ServeConfig(workers=1, nonce_pool=False, knn_cache_size=None),
        )
        outcome = engine.run(workload).outcomes[job.job_id]

        lsp = make_lsp()
        lsp.reset_rng(job.seed)
        session = QuerySession(lsp=lsp, config=config, protocol=protocol, seed=job.seed)
        direct = session.query(workload.groups[0].locations, seed=job.seed)
        assert outcome.ok
        assert outcome.answer_ids == direct.answer_ids
        assert outcome.comm_bytes == direct.report.total_comm_bytes

    def test_pooled_cached_run_same_answers(self, make_lsp, config, space):
        """Nonce pools and the kNN cache are transparent to answers."""
        workload = generate_workload(MIXED, space)
        bare = ServeEngine(
            make_lsp(),
            config,
            ServeConfig(workers=2, nonce_pool=False, knn_cache_size=None),
        ).run(workload)
        shared = ServeEngine(
            make_lsp(),
            config,
            ServeConfig(workers=2, nonce_pool=True, knn_cache_size=64),
        ).run(workload)
        assert bare.answers_digest == shared.answers_digest
        assert shared.cache["hits"] > 0
        assert shared.pool["pooled"] > 0


class TestDeterminism:
    def test_two_runs_identical_reports(self, make_lsp, config, space):
        serve = ServeConfig(workers=3, policy="shortest-cost", knn_cache_size=64)
        one = ServeEngine(make_lsp(), config, serve).run(generate_workload(MIXED, space))
        two = ServeEngine(make_lsp(), config, serve).run(generate_workload(MIXED, space))
        assert one.to_dict() == two.to_dict()
        assert one.wall_seconds != 0.0  # real work actually happened

    def test_serial_and_process_reports_match(self, make_lsp, config, space):
        """The executor only changes wall-clock, never the report."""
        workload = generate_workload(MIXED, space)
        serial = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2, executor="serial")
        ).run(workload)
        process = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2, executor="process")
        ).run(workload)
        a, b = serial.to_dict(), process.to_dict()
        assert a.pop("executor") == "serial"
        assert b.pop("executor") == "process"
        assert a == b

    def test_report_json_serializable(self, make_lsp, config, space):
        import json

        report = ServeEngine(make_lsp(), config, ServeConfig(workers=2)).run(
            generate_workload(MIXED, space)
        )
        json.dumps(report.to_dict(include_wall=True))


class TestSchedulingAndBackpressure:
    def test_queue_overflow_counted_as_rejections(self, make_lsp, config, space):
        spec = WorkloadSpec(queries=12, rate_qps=1000.0, groups=2, seed=2)
        report = ServeEngine(
            make_lsp(), config, ServeConfig(workers=1, queue_capacity=2)
        ).run(generate_workload(spec, space))
        assert report.rejected > 0
        assert report.completed + report.rejected == report.queries
        assert all(r.error_type == "QueueFullError" for r in report.rejections)

    def test_tenant_quota_rejects_flood(self, make_lsp, config, space):
        spec = WorkloadSpec(
            queries=12, rate_qps=1000.0, tenants=("solo",), groups=2, seed=2
        )
        report = ServeEngine(
            make_lsp(), config, ServeConfig(workers=1, tenant_quota=2)
        ).run(generate_workload(spec, space))
        assert report.rejected > 0
        assert all(r.error_type == "AdmissionRejectedError" for r in report.rejections)
        assert report.per_tenant["solo"]["rejected"] == report.rejected

    def test_closed_loop_never_overflows(self, make_lsp, config, space):
        """Closed-loop arrivals self-limit to the client concurrency."""
        spec = WorkloadSpec(
            queries=10, arrival="closed", concurrency=3, groups=2, seed=4
        )
        report = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2, queue_capacity=3)
        ).run(generate_workload(spec, space))
        assert report.rejected == 0
        assert report.completed == 10
        assert report.max_queue_depth <= 3

    def test_shortest_cost_prefers_cheap_jobs(self, make_lsp, config, space):
        """Under contention, SJF's mean latency beats FIFO's."""
        spec = WorkloadSpec(
            queries=12,
            rate_qps=1000.0,  # everything arrives at once
            protocol_mix={"ppgnn-opt": 1.0, "naive": 1.0},
            groups=4,
            seed=11,
        )
        workload = generate_workload(spec, space)
        fifo = ServeEngine(
            make_lsp(), config, ServeConfig(workers=1, policy="fifo")
        ).run(workload)
        sjf = ServeEngine(
            make_lsp(), config, ServeConfig(workers=1, policy="shortest-cost")
        ).run(workload)
        assert sjf.latency_mean <= fifo.latency_mean
        assert sjf.answers_digest == fifo.answers_digest  # policy never alters answers


class TestFaultTolerance:
    def test_fleet_survives_fault_injection(self, make_lsp, config, space):
        plan = FaultPlan.uniform(0.05, seed=3)
        serve = ServeConfig(workers=2, faults=plan, guard=True)
        report = ServeEngine(make_lsp(), config, serve).run(
            generate_workload(MIXED, space)
        )
        assert report.completed + report.failed == report.queries
        assert report.retransmissions > 0  # the faults actually bit
        again = ServeEngine(make_lsp(), config, serve).run(
            generate_workload(MIXED, space)
        )
        assert report.to_dict() == again.to_dict()

    def test_faults_cross_process_boundary(self, make_lsp, config, space):
        """Fault plans must survive pickling into pool workers."""
        spec = WorkloadSpec(queries=4, rate_qps=5.0, groups=2, seed=8)
        serve = ServeConfig(
            workers=2, executor="process", faults=FaultPlan.uniform(0.03, seed=6)
        )
        report = ServeEngine(make_lsp(), config, serve).run(
            generate_workload(spec, space)
        )
        assert report.completed + report.failed == 4

    def test_fault_free_answers_match_faulty_answers(self, make_lsp, config, space):
        """Retries may cost bytes but never change what a query answers."""
        spec = WorkloadSpec(queries=6, rate_qps=5.0, groups=2, seed=8)
        workload = generate_workload(spec, space)
        clean = ServeEngine(make_lsp(), config, ServeConfig(workers=1)).run(workload)
        faulty = ServeEngine(
            make_lsp(),
            config,
            ServeConfig(workers=1, faults=FaultPlan.uniform(0.03, seed=6)),
        ).run(workload)
        for job_id, outcome in faulty.outcomes.items():
            if outcome.ok:
                assert outcome.answer_ids == clean.outcomes[job_id].answer_ids


class TestConfigValidation:
    def test_bad_serve_config(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(executor="threads")
        with pytest.raises(ConfigurationError):
            ServeConfig(policy="lifo")
        with pytest.raises(ConfigurationError):
            ServeConfig(queue_capacity=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(tenant_quota=0)
