"""Tests for the partition-parameter solver (Eqns 7-10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InfeasibleError
from repro.partition.solver import (
    PartitionParameters,
    solve_partition,
    solve_partition_brute_force,
)


class TestPartitionParameters:
    def test_derived_properties(self):
        p = PartitionParameters((2, 2), (2, 2), 8)
        assert p.alpha == 2 and p.beta == 2
        assert p.n == 4 and p.d == 4

    def test_inconsistent_delta_prime_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionParameters((2, 2), (2, 2), 9)

    def test_empty_or_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionParameters((), (1,), 1)
        with pytest.raises(ConfigurationError):
            PartitionParameters((1,), (0,), 0)


class TestSolveKnownCases:
    def test_paper_example(self):
        """Figure 3: n=4, d=4, delta=8 -> two subgroups, segments (2,2)."""
        p = solve_partition(4, 4, 8)
        assert p.alpha == 2
        assert p.segment_sizes == (2, 2)
        assert p.delta_prime == 8

    def test_single_user_case(self):
        """Section 4.1: n=1, delta=d -> alpha=1, beta=d, unit segments."""
        p = solve_partition(1, 25, 25)
        assert p.alpha == 1
        assert p.delta_prime == 25
        assert p.segment_sizes == (1,) * 25

    def test_paper_default_setting(self):
        """(n=8, d=25, delta=100): delta' lands within a few of delta."""
        p = solve_partition(8, 25, 100)
        assert 100 <= p.delta_prime <= 102

    def test_constraints_always_hold(self):
        for n, d, delta in [(2, 5, 20), (4, 10, 50), (8, 25, 100), (16, 25, 200)]:
            p = solve_partition(n, d, delta)
            assert p.delta_prime >= delta  # Eqn (8)
            assert sum(p.segment_sizes) == d  # Eqn (9)
            assert p.alpha <= n  # Eqn (10)
            assert p.beta <= d
            assert sum(p.subgroup_sizes) == n

    def test_delta_equals_one_lower_bound(self):
        # Trivial privacy: with delta <= d, alpha=1 and delta'=d is optimal.
        p = solve_partition(5, 10, 10)
        assert p.delta_prime == 10 and p.alpha == 1

    def test_delta_at_maximum(self):
        # delta = d^n forces the single-segment full cartesian product.
        p = solve_partition(2, 4, 16)
        assert p.delta_prime == 16
        assert p.segment_sizes == (4,)

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleError):
            solve_partition(2, 3, 10)  # 3^2 = 9 < 10

    def test_input_validation(self):
        for bad in [(0, 5, 5), (2, 0, 5), (2, 5, 0)]:
            with pytest.raises(ConfigurationError):
                solve_partition(*bad)

    def test_subgroups_balanced(self):
        p = solve_partition(7, 6, 30)
        sizes = p.subgroup_sizes
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_and_cached(self):
        assert solve_partition(6, 12, 60) is solve_partition(6, 12, 60)


class TestSolverOptimality:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=2, max_value=120),
    )
    def test_matches_bruteforce_optimum(self, n, d, delta):
        if delta > d**n:
            return
        fast = solve_partition(n, d, delta)
        slow = solve_partition_brute_force(n, d, delta)
        assert fast.delta_prime == slow.delta_prime

    def test_delta_prime_monotone_in_delta(self):
        """A stricter Privacy II requirement cannot shrink delta'."""
        previous = 0
        for delta in range(25, 201, 25):
            current = solve_partition(8, 25, delta).delta_prime
            assert current >= previous
            previous = current

    def test_gap_small_on_paper_grid(self):
        """Section 8.3 claims delta' - delta averages ~1 on their grid."""
        gaps = []
        for n in (2, 8, 16, 32):
            for d in (25, 50):
                for delta in (50, 100, 150, 200):
                    gaps.append(solve_partition(n, d, delta).delta_prime - delta)
        assert sum(gaps) / len(gaps) <= 2.0
