"""Tests for the uniform grid index."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bruteforce import BruteForceIndex
from repro.index.grid import GridIndex


@pytest.fixture()
def grid(space):
    return GridIndex(space, cells_per_side=4)


class TestCellGeometry:
    def test_invalid_construction(self, space):
        with pytest.raises(ConfigurationError):
            GridIndex(space, 0)

    def test_cell_of_interior_points(self, grid):
        assert grid.cell_of(Point(0.1, 0.1)) == (0, 0)
        assert grid.cell_of(Point(0.9, 0.1)) == (3, 0)
        assert grid.cell_of(Point(0.6, 0.6)) == (2, 2)

    def test_boundary_points_clamp_inward(self, grid):
        assert grid.cell_of(Point(1.0, 1.0)) == (3, 3)
        assert grid.cell_of(Point(0.0, 0.0)) == (0, 0)

    def test_outside_point_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            grid.cell_of(Point(1.5, 0.5))

    def test_cell_rect_partition(self, grid):
        # The 16 cell rects must tile the unit square exactly.
        total_area = sum(grid.cell_rect(c, r).area for c, r in grid.all_cells())
        assert abs(total_area - 1.0) < 1e-12

    def test_cell_center_inside_cell(self, grid):
        for c, r in grid.all_cells():
            assert grid.cell_rect(c, r).contains_point(grid.cell_center(c, r))

    def test_cell_rect_range_validation(self, grid):
        with pytest.raises(ConfigurationError):
            grid.cell_rect(4, 0)

    def test_cell_of_center_roundtrip(self, grid):
        for cell in grid.all_cells():
            assert grid.cell_of(grid.cell_center(*cell)) == cell


class TestGridQueries:
    def test_insert_and_bucket(self, grid, small_pois):
        for poi in small_pois:
            grid.insert(poi.location, poi)
        assert len(grid) == len(small_pois)
        # Buckets partition the entries.
        bucketed = sum(len(grid.bucket(c, r)) for c, r in grid.all_cells())
        assert bucketed == len(small_pois)

    def test_range_query_matches_bruteforce(self, space, small_pois):
        grid = GridIndex(space, 7)
        oracle = BruteForceIndex()
        for poi in small_pois:
            grid.insert(poi.location, poi)
            oracle.insert(poi.location, poi)
        for rect in [
            Rect(0.0, 0.0, 0.3, 0.3),
            Rect(0.25, 0.25, 0.75, 0.75),
            Rect(0.0, 0.0, 1.0, 1.0),
            Rect(0.5, 0.5, 0.5001, 0.5001),
        ]:
            got = sorted(p.poi_id for _, p in grid.range_query(rect))
            want = sorted(p.poi_id for _, p in oracle.range_query(rect))
            assert got == want

    def test_range_query_outside_space(self, grid, small_pois):
        for poi in small_pois[:5]:
            grid.insert(poi.location, poi)
        assert grid.range_query(Rect(2.0, 2.0, 3.0, 3.0)) == []

    def test_entries_iterates_all(self, grid, small_pois):
        for poi in small_pois[:20]:
            grid.insert(poi.location, poi)
        assert len(list(grid.entries())) == 20
