"""Workload generation: determinism, mixes, repeats, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry.space import LocationSpace
from repro.serve.costs import CostModel
from repro.serve.workload import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival="bursty")
        with pytest.raises(ConfigurationError):
            WorkloadSpec(rate_qps=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival="closed", concurrency=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(protocol_mix={"ppgnn": 0.0})
        with pytest.raises(ConfigurationError):
            WorkloadSpec(protocol_mix={"quantum": 1.0})
        with pytest.raises(ConfigurationError):
            WorkloadSpec(repeat_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(groups=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(tenants=())


class TestGeneration:
    def test_same_spec_same_workload(self, space):
        spec = WorkloadSpec(
            queries=30,
            protocol_mix={"ppgnn": 1.0, "naive": 1.0},
            group_size_mix={2: 1.0, 4: 1.0},
            tenants=("a", "b", "c"),
            groups=5,
            repeat_fraction=0.3,
            seed=17,
        )
        one = generate_workload(spec, space)
        two = generate_workload(spec, space)
        assert one.jobs == two.jobs
        assert one.groups == two.groups

    def test_different_seeds_differ(self, space):
        base = dict(queries=30, groups=5, repeat_fraction=0.0)
        one = generate_workload(WorkloadSpec(seed=1, **base), space)
        two = generate_workload(WorkloadSpec(seed=2, **base), space)
        assert one.jobs != two.jobs

    def test_arrivals_strictly_increase(self, space):
        workload = generate_workload(WorkloadSpec(queries=40, rate_qps=5.0), space)
        times = [job.arrival_time for job in workload.jobs]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_groups_round_robin_tenants(self, space):
        workload = generate_workload(
            WorkloadSpec(queries=1, tenants=("x", "y"), groups=4), space
        )
        assert [g.tenant for g in workload.groups] == ["x", "y", "x", "y"]

    def test_repeats_are_verbatim(self, space):
        spec = WorkloadSpec(queries=60, groups=3, repeat_fraction=0.5, seed=3)
        workload = generate_workload(spec, space)
        repeats = [job for job in workload.jobs if job.repeat_of is not None]
        assert repeats  # probability of zero repeats in 60 draws is negligible
        for job in repeats:
            original = workload.jobs[job.repeat_of]
            assert original.repeat_of is None  # repeat_of always names the root
            assert (job.group_id, job.protocol, job.k, job.seed) == (
                original.group_id,
                original.protocol,
                original.k,
                original.seed,
            )

    def test_fresh_jobs_have_unique_seeds(self, space):
        workload = generate_workload(WorkloadSpec(queries=50, groups=4), space)
        seeds = [job.seed for job in workload.jobs]
        assert len(set(seeds)) == len(seeds)

    def test_mix_draws_respect_support(self, space):
        spec = WorkloadSpec(
            queries=40,
            protocol_mix={"ppgnn-opt": 1.0},
            group_size_mix={2: 1.0},
            k_mix={4: 2.0, 6: 1.0},
            groups=3,
        )
        workload = generate_workload(spec, space)
        assert {job.protocol for job in workload.jobs} == {"ppgnn-opt"}
        assert {job.k for job in workload.jobs} <= {4, 6}
        assert all(len(g.locations) == 2 for g in workload.groups)


class TestCostModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(encryption_seconds=0.0)

    def test_opt_is_predicted_cheaper_than_naive(self):
        from repro.core.config import PPGNNConfig

        model = CostModel()
        config = PPGNNConfig(d=4, delta=16, k=3, keysize=128)
        naive = model.predict_seconds("naive", 3, config)
        ppgnn = model.predict_seconds("ppgnn", 3, config)
        assert naive > 0 and ppgnn > 0

    def test_keysize_scaling_is_cubic(self):
        from dataclasses import replace

        from repro.core.config import PPGNNConfig

        model = CostModel(kgnn_seconds=1e-12)  # isolate the crypto term
        small = PPGNNConfig(d=4, delta=8, k=3, keysize=128)
        large = replace(small, keysize=256)
        ratio = model.predict_seconds("ppgnn", 2, large) / model.predict_seconds(
            "ppgnn", 2, small
        )
        # Per-op cost scales by (256/128)^3 = 8, but a wider key also packs
        # more POIs per answer ciphertext (m shrinks), so the round-level
        # ratio lands strictly between linear and cubic.
        assert 2.0 < ratio <= 8.0

    def test_unknown_protocol_rejected(self):
        from repro.core.config import PPGNNConfig

        with pytest.raises(ConfigurationError):
            CostModel().predict_seconds("psst", 2, PPGNNConfig(d=4, delta=8, k=3))
