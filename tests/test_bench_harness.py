"""Tests for the benchmark harness utilities."""

import warnings

import numpy as np
import pytest

from repro.bench.harness import (
    BenchSettings,
    MeasuredCosts,
    average_runs,
    format_bytes,
    format_seconds,
    measure_protocol,
    print_series_table,
)
from repro.core.group import random_group, run_ppgnn


class TestSettings:
    def test_defaults(self):
        s = BenchSettings()
        assert s.pois == 20_000 and s.keysize == 256

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_POIS", "500")
        monkeypatch.setenv("REPRO_BENCH_KEYSIZE", "128")
        monkeypatch.setenv("REPRO_BENCH_REPEATS", "2")
        monkeypatch.setenv("REPRO_BENCH_SAMPLES", "100")
        s = BenchSettings.from_env()
        assert (s.pois, s.keysize, s.repeats, s.sanitation_samples) == (500, 128, 2, 100)

    def test_samples_zero_means_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SAMPLES", "0")
        assert BenchSettings.from_env().sanitation_samples is None


class TestMeasurement:
    def test_measure_protocol_averages_runs(self, lsp, fast_config):
        group = random_group(3, lsp.space, np.random.default_rng(5))
        measured = measure_protocol(
            lambda seed: run_ppgnn(lsp, group, fast_config, seed=seed),
            repeats=3,
        )
        assert measured.comm_bytes > 0
        assert measured.user_seconds > 0
        assert measured.lsp_seconds > 0
        assert len(measured.answer_lengths) == 3
        assert 0 < measured.mean_answer_length <= fast_config.k

    def test_average_runs_arithmetic(self, lsp, fast_config):
        group = random_group(3, lsp.space, np.random.default_rng(6))
        a = run_ppgnn(lsp, group, fast_config, seed=1).report
        b = run_ppgnn(lsp, group, fast_config, seed=2).report
        averaged = average_runs([a, b], [4, 2])
        assert averaged.comm_bytes == pytest.approx(
            (a.total_comm_bytes + b.total_comm_bytes) / 2
        )
        assert averaged.mean_answer_length == 3


class TestDegenerateInputs:
    def test_average_runs_of_zero_runs_warns_and_zeroes(self):
        with pytest.warns(RuntimeWarning, match="zero runs"):
            averaged = average_runs([], [])
        assert averaged.comm_bytes == 0.0
        assert averaged.user_seconds == 0.0
        assert averaged.lsp_seconds == 0.0
        assert averaged.answer_lengths == []

    def test_mean_answer_length_of_empty_point_warns(self):
        costs = MeasuredCosts(comm_bytes=0.0, user_seconds=0.0, lsp_seconds=0.0)
        with pytest.warns(RuntimeWarning, match="no recorded answers"):
            assert costs.mean_answer_length == 0.0

    def test_populated_point_does_not_warn(self):
        costs = MeasuredCosts(
            comm_bytes=1.0, user_seconds=0.0, lsp_seconds=0.0, answer_lengths=[2, 4]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert costs.mean_answer_length == 3.0


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.00 MiB"

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.50 s"
        assert format_seconds(0.0042) == "4.20 ms"

    def test_print_series_table_runs(self, capsys):
        print_series_table(
            "Demo", "k", [2, 4], {"ppgnn": ["1 B", "2 B"], "opt": ["3 B", "4 B"]}
        )
        out = capsys.readouterr().out
        assert "Demo" in out and "ppgnn" in out and "4 B" in out
