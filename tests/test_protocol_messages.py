"""Tests for message wire sizes — the paper's communication cost model."""

import pytest

from repro.crypto.homomorphic import encrypt_indicator
from repro.crypto.paillier import generate_keypair
from repro.encoding.answers import DecodedAnswer
from repro.errors import ProtocolError
from repro.geometry.point import Point
from repro.protocol.messages import (
    EncryptedAnswer,
    GenericMessage,
    GroupQueryRequest,
    LocationSetUpload,
    OptGroupQueryRequest,
    PlaintextAnswerBroadcast,
    PositionAssignment,
    SingleQueryRequest,
)


@pytest.fixture(scope="module")
def kp():
    return generate_keypair(256, seed=404)


class TestElementarySizes:
    def test_position_assignment(self):
        assert PositionAssignment(3).byte_size == 4

    def test_location_set_upload(self):
        """L_l = 16 bytes per location plus the user id."""
        locations = tuple(Point(0.1 * i, 0.2 * i) for i in range(25))
        assert LocationSetUpload(0, locations).byte_size == 4 + 16 * 25

    def test_generic_message(self):
        assert GenericMessage("blob", 123).byte_size == 123

    def test_plaintext_broadcast(self):
        answers = tuple(DecodedAnswer(i, Point(0, 0)) for i in range(5))
        assert PlaintextAnswerBroadcast(answers).byte_size == 4 + 8 * 5


class TestCiphertextSizes:
    def test_eps1_indicator_size(self, kp):
        """Each eps_1 ciphertext is 2 * keysize / 8 = 64 bytes at 256 bits."""
        _, pk = kp
        indicator = tuple(encrypt_indicator(pk, 10, 0))
        request = SingleQueryRequest(
            k=8,
            public_key=pk,
            locations=tuple(Point(0, 0) for _ in range(10)),
            indicator=indicator,
        )
        expected = 4 + 32 + 10 * 16 + 10 * 64
        assert request.byte_size == expected

    def test_group_request_size(self, kp):
        _, pk = kp
        indicator = tuple(encrypt_indicator(pk, 8, 0))
        request = GroupQueryRequest(
            k=8,
            public_key=pk,
            subgroup_sizes=(2, 2),
            segment_sizes=(2, 2),
            indicator=indicator,
            theta0=0.05,
        )
        expected = 4 + 32 + 4 * 4 + 8 * 64 + 8
        assert request.byte_size == expected

    def test_opt_request_eps2_costs_1_5x(self, kp):
        """An eps_2 ciphertext is 3 * keysize / 8 = 96 bytes at 256 bits."""
        _, pk = kp
        inner = tuple(encrypt_indicator(pk, 4, 0, s=1))
        outer = tuple(encrypt_indicator(pk, 2, 0, s=2))
        request = OptGroupQueryRequest(
            k=8,
            public_key=pk,
            subgroup_sizes=(2, 2),
            segment_sizes=(2, 2),
            inner_indicator=inner,
            outer_indicator=outer,
            theta0=0.05,
        )
        expected = 4 + 32 + 16 + 4 * 64 + 2 * 96 + 8
        assert request.byte_size == expected

    def test_opt_request_level_validation(self, kp):
        _, pk = kp
        eps1 = tuple(encrypt_indicator(pk, 2, 0, s=1))
        eps2 = tuple(encrypt_indicator(pk, 2, 0, s=2))
        with pytest.raises(ProtocolError):
            OptGroupQueryRequest(8, pk, (1,), (1, 1), eps2, eps2, None)
        with pytest.raises(ProtocolError):
            OptGroupQueryRequest(8, pk, (1,), (1, 1), eps1, eps1, None)

    def test_encrypted_answer_size(self, kp):
        _, pk = kp
        answer = EncryptedAnswer(tuple(encrypt_indicator(pk, 3, 0)))
        assert answer.byte_size == 3 * 64

    def test_opt_indicators_smaller_than_plain_for_large_delta(self, kp):
        """The Section 6 premise: sqrt-sized indicators beat a linear one."""
        _, pk = kp
        delta_prime = 64
        plain = sum(c.byte_size for c in encrypt_indicator(pk, delta_prime, 0))
        inner = sum(c.byte_size for c in encrypt_indicator(pk, 8, 0, s=1))
        outer = sum(c.byte_size for c in encrypt_indicator(pk, 8, 0, s=2))
        assert inner + outer < plain
