"""Tests for the candidate-query layout and the query index (Eqn 12)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.partition.layout import GroupLayout
from repro.partition.solver import solve_partition


@pytest.fixture()
def layout():
    # The running example of Figures 3-4: n=4, d=4, delta=8.
    return GroupLayout(solve_partition(4, 4, 8))


def label_sets(n, d):
    """Distinguishable location-set stand-ins."""
    return [[f"u{u}l{j}" for j in range(d)] for u in range(n)]


class TestStructure:
    def test_basic_shape(self, layout):
        assert layout.n == 4 and layout.d == 4
        assert layout.alpha == 2 and layout.beta == 2
        assert layout.delta_prime == 8

    def test_segment_offsets(self, layout):
        assert layout.segment_offset(0) == 0
        assert layout.segment_offset(1) == 2

    def test_subgroup_assignment_by_user_id(self, layout):
        # First n_1 users in subgroup 0, the rest in subgroup 1 (Section 4.2).
        assert [layout.subgroup_of_user(i) for i in range(4)] == [0, 0, 1, 1]
        with pytest.raises(ConfigurationError):
            layout.subgroup_of_user(4)

    def test_users_of_subgroup(self, layout):
        assert list(layout.users_of_subgroup(0)) == [0, 1]
        assert list(layout.users_of_subgroup(1)) == [2, 3]
        with pytest.raises(ConfigurationError):
            layout.users_of_subgroup(2)


class TestQueryIndex:
    def test_paper_example_4_2(self, layout):
        """Example 4.2: seg=2, x=(2,1) (1-based) -> query index 7 (1-based).

        0-based: segment 1, positions (1, 0) -> index 6.
        """
        assert layout.query_index(1, (1, 0)) == 6

    def test_all_indexes_bijective(self, layout):
        seen = set()
        for segment in range(layout.beta):
            size = layout.params.segment_sizes[segment]
            for x1 in range(size):
                for x2 in range(size):
                    seen.add(layout.query_index(segment, (x1, x2)))
        assert seen == set(range(layout.delta_prime))

    def test_position_of_index_inverse(self, layout):
        for qi in range(layout.delta_prime):
            segment, positions = layout.position_of_index(qi)
            assert layout.query_index(segment, positions) == qi

    def test_validation(self, layout):
        with pytest.raises(ConfigurationError):
            layout.query_index(5, (0, 0))
        with pytest.raises(ConfigurationError):
            layout.query_index(0, (0,))
        with pytest.raises(ConfigurationError):
            layout.query_index(0, (9, 0))
        with pytest.raises(ConfigurationError):
            layout.position_of_index(8)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=2, max_value=60),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_index_roundtrip_property(self, n, d, delta, qi_seed):
        if delta > d**n:
            return
        layout = GroupLayout(solve_partition(n, d, delta))
        qi = qi_seed % layout.delta_prime
        segment, positions = layout.position_of_index(qi)
        assert layout.query_index(segment, positions) == qi


class TestCandidateEnumeration:
    def test_count_and_uniqueness(self, layout):
        sets = label_sets(4, 4)
        candidates = list(layout.enumerate_candidates(sets))
        assert len(candidates) == 8
        assert len(set(candidates)) == 8

    def test_matches_figure_3(self, layout):
        """Candidates of segment 1 combine subgroup slots exactly as Fig 3c."""
        sets = label_sets(4, 4)
        candidates = list(layout.enumerate_candidates(sets))
        # First candidate: everyone at position 0.
        assert candidates[0] == ("u0l0", "u1l0", "u2l0", "u3l0")
        # Second: subgroup 0 at segment-0 position 0, subgroup 1 at position 1.
        assert candidates[1] == ("u0l0", "u1l0", "u2l1", "u3l1")
        # Candidate 4 opens segment 1 (positions 2..3).
        assert candidates[4] == ("u0l2", "u1l2", "u2l2", "u3l2")

    def test_candidate_at_random_access(self, layout):
        sets = label_sets(4, 4)
        candidates = list(layout.enumerate_candidates(sets))
        for qi, expected in enumerate(candidates):
            assert layout.candidate_at(sets, qi) == expected

    def test_each_user_contributes_own_location(self, layout):
        sets = label_sets(4, 4)
        for candidate in layout.enumerate_candidates(sets):
            for user, value in enumerate(candidate):
                assert value.startswith(f"u{user}l")

    def test_wrong_set_count_rejected(self, layout):
        with pytest.raises(ConfigurationError):
            list(layout.enumerate_candidates(label_sets(3, 4)))

    def test_wrong_set_length_rejected(self, layout):
        sets = label_sets(4, 4)
        sets[2] = sets[2][:3]
        with pytest.raises(ConfigurationError):
            list(layout.enumerate_candidates(sets))


class TestPlacement:
    def test_real_query_lands_at_query_index(self, layout):
        sets = label_sets(4, 4)
        rng = random.Random(5)
        candidates = list(layout.enumerate_candidates(sets))
        for _ in range(100):
            plan = layout.plan_placement(rng)
            real = tuple(
                sets[u][plan.absolute_positions[layout.subgroup_of_user(u)]]
                for u in range(4)
            )
            assert candidates[plan.query_index] == real

    def test_placement_positions_within_segment(self, layout):
        rng = random.Random(6)
        for _ in range(50):
            plan = layout.plan_placement(rng)
            size = layout.params.segment_sizes[plan.segment]
            offset = layout.segment_offset(plan.segment)
            for x, pos in zip(plan.relative_positions, plan.absolute_positions, strict=True):
                assert 0 <= x < size
                assert pos == offset + x

    def test_slot_distribution_uniform(self):
        """Theorem 4.3 (Privacy I): every slot equally likely (prob 1/d).

        Segments are drawn with probability proportional to size, positions
        uniformly within — the absolute slot must be uniform over [0, d).
        """
        layout = GroupLayout(solve_partition(4, 6, 20))
        rng = random.Random(7)
        counts = Counter()
        trials = 12_000
        for _ in range(trials):
            plan = layout.plan_placement(rng)
            counts[plan.absolute_positions[0]] += 1
        expected = trials / layout.d
        for slot in range(layout.d):
            assert 0.8 * expected < counts[slot] < 1.2 * expected
