"""Unit tests for the per-role protocol state machines."""

from __future__ import annotations

import pytest

from repro.errors import GuardError, ProtocolError, ProtocolStateError
from repro.guard.state import (
    ANSWERED,
    DONE,
    IDLE,
    POSITIONED,
    UPLOADING,
    coordinator_machine,
    lsp_machine,
    member_machine,
)


class TestCoordinatorMachine:
    def test_happy_path(self):
        m = coordinator_machine()
        assert m.state == IDLE
        m.advance("plan")
        m.advance("send_position")
        m.advance("send_position")  # one per user: self-loop
        m.advance("send_request")
        m.advance("recv_answer")
        m.advance("decrypt")
        m.advance("broadcast")
        m.advance("finish")
        assert m.state == DONE
        assert m.history[0] == "plan"

    def test_answer_before_request_rejected(self):
        m = coordinator_machine()
        m.advance("plan")
        with pytest.raises(ProtocolStateError, match="recv_answer"):
            m.advance("recv_answer")

    def test_second_answer_rejected(self):
        m = coordinator_machine()
        m.advance("plan")
        m.advance("send_request")
        m.advance("recv_answer")
        with pytest.raises(ProtocolStateError):
            m.advance("recv_answer", party="lsp")

    def test_error_names_round_and_party(self):
        m = coordinator_machine(round_id=3)
        try:
            m.advance("recv_answer", party="lsp")
        except ProtocolStateError as exc:
            assert exc.round_id == 3
            assert exc.party == "lsp"
            assert "round 3" in str(exc)
            assert "lsp" in str(exc)
        else:
            pytest.fail("expected ProtocolStateError")

    def test_error_lists_legal_events(self):
        m = coordinator_machine()
        with pytest.raises(ProtocolStateError, match="plan"):
            m.advance("finish")

    def test_is_a_protocol_error(self):
        m = coordinator_machine()
        with pytest.raises(GuardError):
            m.advance("finish")
        with pytest.raises(ProtocolError):
            m.advance("finish")

    def test_require(self):
        m = coordinator_machine()
        m.require(IDLE, "planning")
        with pytest.raises(ProtocolStateError, match="decryption"):
            m.require(ANSWERED, "decryption")


class TestMemberMachine:
    def test_happy_path(self):
        m = member_machine(2)
        m.advance("recv_position")
        m.advance("upload")
        m.advance("recv_broadcast")
        assert m.state == DONE

    def test_replayed_position_rejected(self):
        m = member_machine(0)
        m.advance("recv_position")
        assert m.state == POSITIONED
        with pytest.raises(ProtocolStateError, match="recv_position"):
            m.advance("recv_position", party="coordinator")

    def test_upload_without_position_rejected(self):
        m = member_machine(1)
        with pytest.raises(ProtocolStateError):
            m.advance("upload")

    def test_role_names_the_user(self):
        assert member_machine(4).role == "user:4"


class TestLSPMachine:
    def _requested(self, n=3):
        m = lsp_machine(n)
        m.advance("recv_request", party="coordinator")
        return m

    def test_happy_path(self):
        m = self._requested(3)
        for uid in (0, 1, 2):
            m.recv_upload(uid)
        m.ready_to_answer()
        assert m.state == ANSWERED

    def test_upload_before_request_rejected(self):
        m = lsp_machine(2)
        with pytest.raises(ProtocolStateError):
            m.recv_upload(0)

    def test_duplicate_user_id_rejected(self):
        m = self._requested(3)
        m.recv_upload(1)
        with pytest.raises(ProtocolStateError, match="duplicate"):
            m.recv_upload(1)

    def test_out_of_range_user_id_rejected(self):
        m = self._requested(3)
        with pytest.raises(ProtocolStateError, match="outside"):
            m.recv_upload(7)
        with pytest.raises(ProtocolStateError, match="outside"):
            m.recv_upload(-1)

    def test_answer_with_missing_uploads_rejected(self):
        m = self._requested(3)
        m.recv_upload(0)
        with pytest.raises(ProtocolStateError, match="1 of 3"):
            m.ready_to_answer()
        assert m.state == UPLOADING  # the failed attempt must not advance

    def test_violation_attributed_to_offending_user(self):
        m = self._requested(2)
        m.recv_upload(0)
        try:
            m.recv_upload(0)
        except ProtocolStateError as exc:
            assert exc.party == "user:0"
        else:
            pytest.fail("expected ProtocolStateError")
