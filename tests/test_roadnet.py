"""Tests for the road-network substrate and its protocol integration."""

import networkx as nx
import numpy as np
import pytest

from repro.core.config import PPGNNConfig
from repro.core.group import run_ppgnn
from repro.core.lsp import LSPServer
from repro.core.single import run_single_user
from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError, ProtocolError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.gnn.aggregate import MAX, SUM
from repro.roadnet import RoadNetwork, RoadNetworkEngine


@pytest.fixture(scope="module")
def network():
    return RoadNetwork.grid(nodes_per_side=10, seed=3)


@pytest.fixture(scope="module")
def road_engine(network):
    return RoadNetworkEngine(uniform_pois(300, seed=8), network)


class TestRoadNetwork:
    def test_grid_shape(self, network):
        assert network.graph.number_of_nodes() == 100
        assert nx.is_connected(network.graph)

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            RoadNetwork.grid(nodes_per_side=1)
        with pytest.raises(ConfigurationError):
            RoadNetwork.grid(drop_fraction=1.0)

    def test_disconnected_graph_rejected(self):
        g = nx.Graph()
        g.add_node(0, point=Point(0, 0))
        g.add_node(1, point=Point(1, 1))
        with pytest.raises(ConfigurationError):
            RoadNetwork(g, LocationSpace.unit_square())

    def test_node_without_point_rejected(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ConfigurationError):
            RoadNetwork(g, LocationSpace.unit_square())

    def test_snap_returns_nearest_node(self, network):
        rng = np.random.default_rng(4)
        for _ in range(20):
            p = network.space.sample_point(rng)
            snapped = network.snap(p)
            best = min(
                network.graph.nodes,
                key=lambda n: network.node_point(n).distance_to(p),
            )
            assert network.node_point(snapped).distance_to(p) == pytest.approx(
                network.node_point(best).distance_to(p)
            )

    def test_distance_symmetric_and_metric(self, network):
        rng = np.random.default_rng(5)
        pts = [network.space.sample_point(rng) for _ in range(4)]
        for a in pts:
            assert network.distance(a, a) == 0.0
            for b in pts:
                assert network.distance(a, b) == pytest.approx(network.distance(b, a))

    def test_road_distance_at_least_euclidean_between_nodes(self, network):
        """Shortest path over straight edges cannot beat the straight line."""
        nodes = list(network.graph.nodes)[:10]
        for a in nodes:
            table = network.distances_from(a)
            for b in nodes:
                euclid = network.node_point(a).distance_to(network.node_point(b))
                assert table[b] >= euclid - 1e-9

    def test_dijkstra_cache(self, network):
        network.clear_cache()
        first = network.distances_from(0)
        assert network.distances_from(0) is first
        network.clear_cache()
        assert network.distances_from(0) is not first

    def test_dropped_edges_lengthen_detours(self):
        dense = RoadNetwork.grid(nodes_per_side=8, drop_fraction=0.0, seed=1)
        sparse = RoadNetwork.grid(nodes_per_side=8, drop_fraction=0.3, seed=1)
        total_dense = sum(dense.distances_from(0).values())
        total_sparse = sum(sparse.distances_from(0).values())
        assert total_sparse > total_dense


class TestRoadNetworkEngine:
    def test_query_matches_manual_ranking(self, road_engine, network):
        locations = [Point(0.2, 0.3), Point(0.7, 0.8)]
        got = [p.poi_id for p in road_engine.query(5, locations)]
        scored = sorted(
            (
                (
                    SUM(network.distance(loc, poi.location) for loc in locations),
                    poi.location,
                    poi.poi_id,
                )
                for poi in (road_engine.poi_by_id(i) for i in road_engine._by_id)
            ),
        )
        assert got == [pid for _, _, pid in scored[:5]]

    def test_differs_from_euclidean_sometimes(self, network):
        """The road metric must change at least one answer vs Euclidean."""
        from repro.gnn.engine import GNNQueryEngine

        pois = uniform_pois(300, seed=8)
        road = RoadNetworkEngine(pois, network)
        euclid = GNNQueryEngine(pois)
        rng = np.random.default_rng(6)
        diffs = 0
        for _ in range(10):
            locs = [network.space.sample_point(rng) for _ in range(3)]
            if [p.poi_id for p in road.query(8, locs)] != [
                p.poi_id for p in euclid.query(8, locs)
            ]:
                diffs += 1
        assert diffs > 0

    def test_max_aggregate(self, network):
        engine = RoadNetworkEngine(uniform_pois(100, seed=9), network, aggregate=MAX)
        answer = engine.query(3, [Point(0.1, 0.1), Point(0.9, 0.9)])
        assert len(answer) == 3

    def test_dynamic_updates(self, road_engine, network):
        from repro.datasets.poi import POI

        poi = POI(888_888, Point(0.5, 0.5), "roadside")
        road_engine.insert(poi)
        assert road_engine.poi_by_id(888_888) is poi
        assert road_engine.delete(poi)
        assert not road_engine.delete(poi)

    def test_validation(self, network):
        with pytest.raises(ConfigurationError):
            RoadNetworkEngine([], network)
        engine = RoadNetworkEngine(uniform_pois(10, seed=1), network)
        with pytest.raises(ConfigurationError):
            engine.query(0, [Point(0.5, 0.5)])
        with pytest.raises(ConfigurationError):
            engine.query(3, [])


class TestProtocolIntegration:
    def test_ppgnn_nas_over_road_network(self, road_engine):
        """The black-box swap: the full group protocol over road distance."""
        lsp = LSPServer(engine=road_engine, seed=2)
        cfg = PPGNNConfig(
            d=4, delta=12, k=4, keysize=128, sanitize=False, key_seed=3
        )
        group = [Point(0.2, 0.2), Point(0.8, 0.3), Point(0.5, 0.9)]
        result = run_ppgnn(lsp, group, cfg, seed=4)
        expected = [p.poi_id for p in road_engine.query(4, group)]
        assert list(result.answer_ids) == expected

    def test_single_user_over_road_network(self, road_engine):
        lsp = LSPServer(engine=road_engine, seed=2)
        cfg = PPGNNConfig(d=4, delta=4, k=3, keysize=128, sanitize=False, key_seed=3)
        user = Point(0.33, 0.66)
        result = run_single_user(lsp, user, cfg, seed=5)
        expected = [p.poi_id for p in road_engine.query(3, [user])]
        assert list(result.answer_ids) == expected

    def test_sanitation_supported_for_road_metric(self, road_engine):
        """Full PPGNN (with Privacy IV) runs over the road metric."""
        lsp = LSPServer(engine=road_engine, sanitation_samples=800, seed=2)
        cfg = PPGNNConfig(
            d=4, delta=12, k=6, keysize=128, key_seed=3, sanitation_samples=800
        )
        group = [Point(0.1, 0.1), Point(0.9, 0.2), Point(0.5, 0.95)]
        result = run_ppgnn(lsp, group, cfg, seed=6)
        expected = [p.poi_id for p in road_engine.query(6, group)]
        assert 1 <= len(result.answers) <= 6
        assert list(result.answer_ids) == expected[: len(result.answers)]

    def test_sanitation_rejected_for_unknown_engines(self, road_engine):
        class OpaqueEngine:
            aggregate = road_engine.aggregate

            def query(self, k, locations):
                return road_engine.query(k, locations)

            def poi_by_id(self, poi_id):
                return road_engine.poi_by_id(poi_id)

        lsp = LSPServer(engine=OpaqueEngine(), seed=2)
        cfg = PPGNNConfig(d=4, delta=12, k=4, keysize=128, key_seed=3)
        group = [Point(0.2, 0.2), Point(0.8, 0.3)]
        with pytest.raises(ProtocolError):
            run_ppgnn(lsp, group, cfg, seed=6)

    def test_engine_and_pois_mutually_exclusive(self, road_engine):
        with pytest.raises(ProtocolError):
            LSPServer(pois=uniform_pois(5, seed=1), engine=road_engine)

    def test_empty_pois_rejected(self):
        with pytest.raises(ProtocolError):
            LSPServer(pois=[])
