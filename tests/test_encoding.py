"""Tests for bit packing and the answer codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.poi import POI
from repro.datasets.synthetic import uniform_pois
from repro.encoding.answers import AnswerCodec
from repro.encoding.packing import (
    join_bitstream,
    pack_fields,
    pack_uniform,
    split_bitstream,
    unpack_fields,
    unpack_uniform,
)
from repro.errors import ConfigurationError, EncodingError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        widths = [4, 8, 16, 1]
        values = [15, 200, 65535, 1]
        assert unpack_fields(pack_fields(values, widths), widths) == values

    def test_value_too_wide_rejected(self):
        with pytest.raises(EncodingError):
            pack_fields([16], [4])

    def test_length_mismatch(self):
        with pytest.raises(EncodingError):
            pack_fields([1, 2], [4])

    def test_stray_bits_detected(self):
        with pytest.raises(EncodingError):
            unpack_fields(1 << 10, [4, 4])

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=40), st.integers(min_value=0)), min_size=1, max_size=10))
    def test_roundtrip_property(self, spec):
        widths = [w for w, _ in spec]
        values = [v % (1 << w) for w, v in spec]
        assert unpack_fields(pack_fields(values, widths), widths) == values

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=2**200), st.integers(min_value=8, max_value=64))
    def test_bitstream_roundtrip(self, stream, chunk_bits):
        count = max(1, -(-stream.bit_length() // chunk_bits))
        chunks = split_bitstream(stream, chunk_bits, count)
        assert join_bitstream(chunks, chunk_bits) == stream

    def test_bitstream_overflow_detected(self):
        with pytest.raises(EncodingError):
            split_bitstream(1 << 64, 32, 2)

    def test_chunk_value_validation(self):
        with pytest.raises(EncodingError):
            join_bitstream([1 << 8], 8)


@pytest.fixture(scope="module")
def codec():
    return AnswerCodec(keysize=256, k=8, space=LocationSpace.unit_square())


@pytest.fixture(scope="module")
def pois():
    return uniform_pois(100, seed=13)


class TestAnswerCodec:
    def test_shape_constants(self, codec):
        assert codec.poi_bits == 64  # the paper's 8 bytes per POI
        assert codec.chunk_bits == 255
        # header 16 + 8 * 64 = 528 bits over 255-bit chunks -> 3 integers.
        assert codec.m == 3

    def test_paper_pois_per_integer(self):
        """With 1024-bit keys, 15 POIs fit one integer (Section 8.2)."""
        codec = AnswerCodec(keysize=1024, k=8, space=LocationSpace.unit_square())
        assert codec.pois_per_integer == 15

    def test_encode_produces_m_integers_below_modulus(self, codec, pois):
        out = codec.encode(pois[:8])
        assert len(out) == codec.m
        assert all(0 <= x < (1 << codec.chunk_bits) for x in out)

    def test_roundtrip_ids_exact(self, codec, pois):
        for count in (0, 1, 5, 8):
            decoded = codec.decode(codec.encode(pois[:count]))
            assert [d.poi_id for d in decoded] == [p.poi_id for p in pois[:count]]

    def test_roundtrip_locations_quantized(self, codec, pois):
        decoded = codec.decode(codec.encode(pois[:8]))
        for d, p in zip(decoded, pois[:8], strict=True):
            assert d.location.distance_to(p.location) < 1e-5

    def test_shorter_answers_padded(self, codec, pois):
        """Sanitized answers (t < k) must encode to the same m integers."""
        full = codec.encode(pois[:8])
        short = codec.encode(pois[:2])
        assert len(full) == len(short) == codec.m

    def test_too_many_pois_rejected(self, codec, pois):
        with pytest.raises(EncodingError):
            codec.encode(pois[:9])

    def test_oversized_poi_id_rejected(self, codec):
        giant = POI((1 << 24), Point(0.5, 0.5))
        with pytest.raises(EncodingError):
            codec.encode([giant])

    def test_decode_validates_length(self, codec):
        with pytest.raises(EncodingError):
            codec.decode([0])

    def test_decode_validates_count_header(self, codec):
        bogus = [9999] + [0] * (codec.m - 1)  # count=9999 > k
        with pytest.raises(EncodingError):
            codec.decode(bogus)

    def test_zero_vector_decodes_to_empty(self, codec):
        assert codec.decode([0] * codec.m) == []

    def test_keysize_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            AnswerCodec(keysize=64, k=1, space=LocationSpace.unit_square())

    def test_count_field_width_validation(self):
        with pytest.raises(ConfigurationError):
            AnswerCodec(
                keysize=1024, k=70000, space=LocationSpace.unit_square(), count_bits=16
            )

    def test_quantization_boundaries(self, codec):
        for p in (Point(0, 0), Point(1, 1), Point(0, 1), Point(1, 0)):
            xq, yq = codec.quantize_point(p)
            back = codec.dequantize_point(xq, yq)
            assert back.distance_to(p) < 1e-5

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=2**32))
    def test_roundtrip_property(self, count, seed):
        space = LocationSpace.unit_square()
        codec = AnswerCodec(keysize=256, k=8, space=space)
        pois = uniform_pois(count, space, seed=seed % 1000)
        decoded = codec.decode(codec.encode(pois))
        assert [d.poi_id for d in decoded] == [p.poi_id for p in pois]


class TestUniformPacking:
    def test_roundtrip(self):
        values = [0, 1, 255, 128, 7]
        packed = pack_uniform(values, 8)
        assert unpack_uniform(packed, 8, len(values)) == values

    def test_matches_pack_fields(self):
        values = [3, 1, 4, 1, 5]
        assert pack_uniform(values, 6) == pack_fields(values, [6] * 5)

    def test_width_and_range_validated(self):
        with pytest.raises(EncodingError):
            pack_uniform([1], 0)
        with pytest.raises(EncodingError):
            pack_uniform([256], 8)
        with pytest.raises(EncodingError):
            unpack_uniform(1 << 16, 8, 2)
        with pytest.raises(EncodingError):
            unpack_uniform(-1, 8, 1)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1023), max_size=12),
    )
    def test_roundtrip_property(self, values):
        packed = pack_uniform(values, 10)
        assert unpack_uniform(packed, 10, len(values)) == values
