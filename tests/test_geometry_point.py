"""Unit and property tests for repro.geometry.point."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
points = st.builds(Point, finite, finite)


class TestPointBasics:
    def test_distance_matches_pythagoras(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == 25.0

    def test_translate(self):
        assert Point(1, 2).translate(0.5, -1) == Point(1.5, 1)

    def test_as_tuple_and_iter(self):
        p = Point(3.0, 7.0)
        assert p.as_tuple() == (3.0, 7.0)
        assert list(p) == [3.0, 7.0]

    def test_points_are_hashable_and_equal_by_value(self):
        assert {Point(1, 2), Point(1, 2)} == {Point(1, 2)}

    def test_is_finite(self):
        assert Point(0.0, -1e300).is_finite
        assert not Point(math.nan, 0.0).is_finite
        assert not Point(0.0, math.nan).is_finite
        assert not Point(math.inf, 0.0).is_finite
        assert not Point(0.0, -math.inf).is_finite

    def test_lexicographic_ordering(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)


class TestPointProperties:
    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert math.isclose(a.distance_to(b), b.distance_to(a), abs_tol=1e-12)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9

    @given(points, points)
    def test_squared_distance_consistency(self, a, b):
        assert math.isclose(
            a.squared_distance_to(b), a.distance_to(b) ** 2, rel_tol=1e-9, abs_tol=1e-9
        )

    @given(points, finite, finite)
    def test_translate_roundtrip(self, p, dx, dy):
        q = p.translate(dx, dy).translate(-dx, -dy)
        assert math.isclose(q.x, p.x, abs_tol=1e-6)
        assert math.isclose(q.y, p.y, abs_tol=1e-6)
