"""Tests for the seeded LSH candidate generator."""

import pytest

from repro.datasets import stream_clustered
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bruteforce import BruteForceIndex
from repro.spatial import LSHIndex


def _entries(count, seed=4):
    return [(poi.location, poi) for poi in stream_clustered(count, seed=seed)]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LSHIndex(tables=0)
        with pytest.raises(ConfigurationError):
            LSHIndex(hashes=0)
        with pytest.raises(ConfigurationError):
            LSHIndex(bucket_width=0.0)
        with pytest.raises(ConfigurationError):
            LSHIndex(probes=-1)

    def test_deterministic_in_seed(self):
        entries = _entries(500)
        q = Point(0.4, 0.6)
        a = LSHIndex(seed=3)
        a.bulk_load(entries)
        b = LSHIndex(seed=3)
        b.bulk_load(entries)
        assert [i.poi_id for _, i in a.candidate_entries(q)] == [
            i.poi_id for _, i in b.candidate_entries(q)
        ]

    def test_different_seeds_differ(self):
        entries = _entries(500)
        q = Point(0.4, 0.6)
        a = LSHIndex(seed=3)
        a.bulk_load(entries)
        b = LSHIndex(seed=4)
        b.bulk_load(entries)
        assert [i.poi_id for _, i in a.candidate_entries(q)] != [
            i.poi_id for _, i in b.candidate_entries(q)
        ]


class TestCandidates:
    def test_candidates_are_a_strict_subset(self):
        entries = _entries(4_000)
        index = LSHIndex(seed=1)
        index.bulk_load(entries)
        cands = index.candidate_entries(Point(0.5, 0.5))
        ids = [i.poi_id for _, i in cands]
        assert 0 < len(ids) < len(entries)
        assert len(ids) == len(set(ids)), "candidates must be deduplicated"

    def test_recall_at_k_reasonable(self):
        entries = _entries(3_000)
        index = LSHIndex(seed=1)
        index.bulk_load(entries)
        oracle = BruteForceIndex()
        oracle.bulk_load(entries)
        total = 0.0
        queries = [Point(0.1 * i % 1.0, 0.07 * i % 1.0) for i in range(1, 21)]
        for q in queries:
            want = {i.poi_id for _, i in oracle.nearest(q, 8)}
            got = {i.poi_id for _, i in index.candidate_entries(q)}
            total += len(want & got) / 8
        assert total / len(queries) >= 0.6

    def test_more_probes_never_lose_candidates(self):
        entries = _entries(1_000)
        narrow = LSHIndex(seed=2, probes=0)
        narrow.bulk_load(entries)
        wide = LSHIndex(seed=2, probes=3)
        wide.bulk_load(entries)
        q = Point(0.37, 0.73)
        narrow_ids = {i.poi_id for _, i in narrow.candidate_entries(q)}
        wide_ids = {i.poi_id for _, i in wide.candidate_entries(q)}
        assert narrow_ids <= wide_ids


class TestExactOperations:
    def test_range_query_is_exact(self):
        entries = _entries(800)
        index = LSHIndex(seed=1)
        index.bulk_load(entries)
        rect = Rect(0.25, 0.25, 0.75, 0.75)
        got = sorted(i.poi_id for _, i in index.range_query(rect))
        want = sorted(i.poi_id for p, i in entries if rect.contains_point(p))
        assert got == want

    def test_generic_knn_fallback_is_exact(self):
        # LSH has no nearest() of its own; best_first_knn must fall back to
        # the exhaustive scan and stay exact.
        from repro.gnn.knn import best_first_knn

        entries = _entries(800)
        index = LSHIndex(seed=1)
        index.bulk_load(entries)
        oracle = BruteForceIndex()
        oracle.bulk_load(entries)
        q = Point(0.61, 0.13)
        assert [i.poi_id for _, i in best_first_knn(index, q, 10)] == [
            i.poi_id for _, i in oracle.nearest(q, 10)
        ]

    def test_traversal_roots_absent(self):
        index = LSHIndex(seed=1)
        index.bulk_load(_entries(50))
        assert index.traversal_roots() is None


class TestInsertConsistency:
    def test_insert_matches_bulk_on_fixed_width(self):
        entries = _entries(300)
        bulk = LSHIndex(seed=6, bucket_width=0.1)
        bulk.bulk_load(entries)
        incremental = LSHIndex(seed=6, bucket_width=0.1)
        for p, item in entries:
            incremental.insert(p, item)
        q = Point(0.5, 0.5)
        assert sorted(i.poi_id for _, i in bulk.candidate_entries(q)) == sorted(
            i.poi_id for _, i in incremental.candidate_entries(q)
        )
        assert len(bulk) == len(incremental) == len(entries)

    def test_auto_width_pinned_by_first_insert(self):
        index = LSHIndex(seed=6)
        index.insert(Point(0.1, 0.1), "a")
        index.insert(Point(0.9, 0.9), "b")
        assert len(index) == 2
        # Both entries remain findable through the exact paths.
        assert {i for _, i in index.range_query(Rect(0.0, 0.0, 1.0, 1.0))} == {
            "a",
            "b",
        }
