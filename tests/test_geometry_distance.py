"""Tests for distance functions, including the R-tree pruning bounds."""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.distance import (
    distance_matrix,
    euclidean,
    maxdist_point_rect,
    mindist_point_rect,
    pairwise_distances,
    squared_euclidean,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect

coord = st.floats(min_value=-50, max_value=50, allow_nan=False)
points = st.builds(Point, coord, coord)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


class TestScalarDistances:
    def test_euclidean(self):
        assert euclidean(Point(0, 0), Point(3, 4)) == 5.0

    def test_squared(self):
        assert squared_euclidean(Point(1, 1), Point(4, 5)) == 25.0

    def test_mindist_inside_is_zero(self):
        assert mindist_point_rect(Point(0.5, 0.5), Rect(0, 0, 1, 1)) == 0.0

    def test_mindist_axis_aligned(self):
        assert mindist_point_rect(Point(2, 0.5), Rect(0, 0, 1, 1)) == 1.0

    def test_mindist_corner(self):
        assert math.isclose(
            mindist_point_rect(Point(2, 2), Rect(0, 0, 1, 1)), math.sqrt(2)
        )

    def test_maxdist_is_farthest_corner(self):
        # From the origin corner, the far corner of the unit square.
        assert math.isclose(
            maxdist_point_rect(Point(0, 0), Rect(0, 0, 1, 1)), math.sqrt(2)
        )


class TestBoundProperties:
    @given(points, rects())
    def test_mindist_le_maxdist(self, p, r):
        assert mindist_point_rect(p, r) <= maxdist_point_rect(p, r) + 1e-12

    @given(points, rects(), st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    def test_bounds_bracket_any_interior_point(self, p, r, tx, ty):
        q = Point(r.xmin + tx * r.width, r.ymin + ty * r.height)
        d = euclidean(p, q)
        assert mindist_point_rect(p, r) <= d + 1e-9
        assert d <= maxdist_point_rect(p, r) + 1e-9

    @given(points, points)
    def test_mindist_to_degenerate_rect_is_distance(self, p, q):
        r = Rect.from_point(q)
        assert math.isclose(
            mindist_point_rect(p, r), euclidean(p, q), rel_tol=1e-9, abs_tol=1e-9
        )
        assert math.isclose(
            maxdist_point_rect(p, r), euclidean(p, q), rel_tol=1e-9, abs_tol=1e-9
        )


class TestVectorized:
    def test_pairwise_matches_scalar(self):
        xs = np.array([0.0, 1.0, 2.0])
        ys = np.array([0.0, 1.0, 2.0])
        target = Point(1.0, 0.0)
        out = pairwise_distances(xs, ys, target)
        expected = [euclidean(Point(x, y), target) for x, y in zip(xs, ys, strict=True)]
        assert np.allclose(out, expected)

    def test_distance_matrix_matches_scalar(self):
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 1, 20)
        ys = rng.uniform(0, 1, 20)
        targets = [Point(0.1, 0.9), Point(0.5, 0.5), Point(0.9, 0.1)]
        mat = distance_matrix(xs, ys, targets)
        assert mat.shape == (20, 3)
        for i in range(20):
            for j, t in enumerate(targets):
                assert math.isclose(
                    mat[i, j], euclidean(Point(xs[i], ys[i]), t), rel_tol=1e-12
                )
