"""Error-path coverage: every exception class fires from a real code path.

Also pins the hierarchy contracts callers rely on (`except ReproError`
catches everything; a lost member is both a transport and a protocol
failure) and a property-style check that transcript rendering preserves
byte totals under the run-collapsing it performs.
"""

import random
import re

import pytest

from repro.errors import (
    ConfigurationError,
    CryptoError,
    EncodingError,
    GroupMemberLostError,
    InfeasibleError,
    ProtocolError,
    ReproError,
    RetryExhaustedError,
    TransportError,
)

ALL_ERRORS = [
    ConfigurationError,
    CryptoError,
    EncodingError,
    GroupMemberLostError,
    InfeasibleError,
    ProtocolError,
    RetryExhaustedError,
    TransportError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error", ALL_ERRORS)
    def test_everything_is_a_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_member_lost_is_transport_and_protocol(self):
        error = GroupMemberLostError("user:3", 3, 5)
        assert isinstance(error, TransportError)
        assert isinstance(error, ProtocolError)
        assert error.user_index == 3

    def test_retry_exhausted_carries_link(self):
        error = RetryExhaustedError(("coordinator", "lsp"), 7)
        assert error.link == ("coordinator", "lsp")
        assert error.attempts == 7
        assert isinstance(error, TransportError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)


class TestRaisedFromRealPaths:
    """One genuine trigger per class — no error is dead code."""

    def test_configuration_error(self):
        from repro.core.config import PPGNNConfig

        with pytest.raises(ConfigurationError):
            PPGNNConfig(d=1)

    def test_infeasible_error(self):
        from repro.partition.solver import solve_partition

        with pytest.raises(InfeasibleError):
            solve_partition(n=2, d=2, delta=5)  # delta > d**n = 4

    def test_crypto_error(self):
        from repro.crypto.serialization import deserialize_public_key

        with pytest.raises(CryptoError):
            deserialize_public_key(b"NOPE\x00\x01\x00\x00\x00\x01\x05")

    def test_encoding_error(self):
        from repro.encoding.packing import pack_fields

        with pytest.raises(EncodingError):
            pack_fields([300], [8])  # 300 does not fit 8 bits

    def test_protocol_error(self):
        from repro.core.lsp import LSPServer

        with pytest.raises(ProtocolError):
            LSPServer(pois=[])

    def test_transport_error(self):
        from repro.transport.envelope import Envelope
        from repro.protocol.messages import PositionAssignment

        with pytest.raises(TransportError):
            Envelope(("a", "b"), -1, PositionAssignment(0), 0)

    def test_retry_exhausted_error(self):
        from repro.protocol.messages import PositionAssignment
        from repro.protocol.metrics import CostLedger
        from repro.transport.channel import FaultyChannel
        from repro.transport.faults import FaultPlan, LinkFaults
        from repro.transport.retry import RetryPolicy
        from repro.transport.transport import Transport

        transport = Transport(
            FaultyChannel(FaultPlan(default=LinkFaults(drop=0.999), seed=0)),
            RetryPolicy(max_attempts=2),
        )
        with pytest.raises(RetryExhaustedError):
            for seq in range(20):
                transport.deliver(
                    CostLedger(), "coordinator", "lsp", PositionAssignment(seq)
                )

    def test_group_member_lost_error(self):
        from repro.protocol.messages import PositionAssignment
        from repro.protocol.metrics import CostLedger
        from repro.transport.channel import FaultyChannel
        from repro.transport.faults import FaultPlan
        from repro.transport.retry import RetryPolicy
        from repro.transport.transport import Transport

        transport = Transport(
            FaultyChannel(FaultPlan(kill={"user:5": 0})),
            RetryPolicy(max_attempts=2),
        )
        with pytest.raises(GroupMemberLostError):
            transport.deliver(
                CostLedger(), "coordinator", "user:5", PositionAssignment(0)
            )


class TestTranscriptCollapseProperty:
    """format_transcript merges runs of identical messages; the rendered
    per-line byte totals and the final total must both equal the report's
    exact byte count, whatever the message sequence."""

    PARTIES = ("user", "coordinator", "lsp")

    def _random_report(self, rng: random.Random):
        from repro.protocol.messages import GenericMessage
        from repro.protocol.metrics import CostLedger

        ledger = CostLedger()
        for _ in range(rng.randrange(1, 60)):
            sender = rng.choice(self.PARTIES)
            receiver = rng.choice([p for p in self.PARTIES if p != sender])
            kind = rng.choice(("A", "B", "C"))
            # Repeats with the same kind/link exercise the collapsing path.
            for _ in range(rng.randrange(1, 4)):
                ledger.record(sender, receiver, GenericMessage(kind, rng.randrange(1, 500)))
        return ledger.report()

    @pytest.mark.parametrize("seed", range(25))
    def test_byte_totals_preserved(self, seed):
        from repro.protocol.transcript import format_transcript

        report = self._random_report(random.Random(seed))
        rendered = format_transcript(report)
        sizes = [int(match) for match in re.findall(r"\((\d+) B\)", rendered)]
        assert sum(sizes) == report.total_comm_bytes
        total_line = rendered.splitlines()[-1]
        assert total_line.split()[-2] == str(report.total_comm_bytes)

    def test_empty_transcript(self):
        from repro.protocol.metrics import CostLedger
        from repro.protocol.transcript import format_transcript

        assert "no messages" in format_transcript(CostLedger().report())
