"""The serving engine with a scatter–gather cluster threaded underneath."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ShardFaultPlan
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.space import LocationSpace
from repro.serve import (
    ServeConfig,
    ServeEngine,
    ServingReport,
    WorkloadSpec,
    generate_workload,
)

SAMPLES = 8


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def pois(space):
    return uniform_pois(200, space, np.random.default_rng(7))


@pytest.fixture(scope="module")
def config():
    return PPGNNConfig(
        d=4, delta=8, k=3, keysize=128,
        sanitize=False, sanitation_samples=SAMPLES,
    )


@pytest.fixture
def make_lsp(pois, space):
    def build():
        return LSPServer(pois, space=space, sanitation_samples=SAMPLES)

    return build


MIXED = WorkloadSpec(
    queries=10,
    rate_qps=10.0,
    protocol_mix={"ppgnn": 1.0, "ppgnn-opt": 1.0, "naive": 1.0},
    group_size_mix={2: 1.0, 3: 1.0},
    k_mix={3: 1.0},
    tenants=("a", "b"),
    groups=3,
    repeat_fraction=0.2,
    seed=5,
)

CLUSTER = ClusterConfig(shards=3, replicas=2, quorum=0.5)


class TestHealthyClusterIdentity:
    def test_cluster_answers_equal_single_lsp(self, make_lsp, config, space):
        """With every shard healthy, the merge reproduces the single-LSP run."""
        workload = generate_workload(MIXED, space)
        single = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2)
        ).run(workload)
        clustered = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2, cluster=CLUSTER)
        ).run(workload)
        for job_id, outcome in single.outcomes.items():
            shard_outcome = clustered.outcomes[job_id]
            assert shard_outcome.answer_ids == outcome.answer_ids
            assert not shard_outcome.partial
            assert shard_outcome.coverage == 1.0

    def test_serial_and_process_cluster_reports_match(
        self, make_lsp, config, space
    ):
        workload = generate_workload(MIXED, space)
        serial = ServeEngine(
            make_lsp(),
            config,
            ServeConfig(workers=3, executor="serial", cluster=CLUSTER),
        ).run(workload)
        process = ServeEngine(
            make_lsp(),
            config,
            ServeConfig(workers=3, executor="process", cluster=CLUSTER),
        ).run(workload)
        a, b = serial.to_dict(), process.to_dict()
        assert a.pop("executor") == "serial"
        assert b.pop("executor") == "process"
        assert a == b
        assert serial.cluster == process.cluster

    def test_report_carries_cluster_section(self, make_lsp, config, space):
        report = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2, cluster=CLUSTER)
        ).run(generate_workload(MIXED, space))
        section = report.cluster
        assert section is not None
        assert section["shards"] == 3
        assert section["replicas"] == 2
        assert section["subqueries"] == 3 * report.completed
        assert section["partial_answers"] == 0
        assert section["coverage_min"] == 1.0
        assert set(section["per_shard"]) == {"0", "1", "2"}
        assert section["load_imbalance"] >= 1.0

    def test_report_round_trips_cluster_section(self, make_lsp, config, space):
        report = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2, cluster=CLUSTER)
        ).run(generate_workload(MIXED, space))
        again = ServingReport.from_dict(report.to_dict())
        assert again.cluster == report.cluster

    def test_no_cluster_key_when_cluster_is_none(self, make_lsp, config, space):
        """cluster=None keeps the report shape (and pinned digests) untouched."""
        report = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2)
        ).run(generate_workload(MIXED, space))
        assert report.cluster is None
        assert "cluster" not in report.to_dict()
        for outcome in report.outcomes.values():
            assert not outcome.partial
            assert outcome.coverage == 1.0
            assert outcome.lost_shards == ()


class TestDegradedCluster:
    def test_killed_shard_yields_partial_outcomes(self, make_lsp, config, space):
        faults = ShardFaultPlan.killing({(1, 0): 0, (1, 1): 0}, seed=3)
        cluster = ClusterConfig(shards=3, replicas=2, quorum=0.5, faults=faults)
        report = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2, cluster=cluster)
        ).run(generate_workload(MIXED, space))
        partials = [o for o in report.outcomes.values() if o.partial]
        assert partials and len(partials) == report.completed
        for outcome in partials:
            assert outcome.lost_shards == (1,)
            assert 0.0 < outcome.coverage < 1.0
            assert outcome.expected_recall == pytest.approx(outcome.coverage)
        assert report.cluster["partial_answers"] == len(partials)
        assert report.cluster["shards_lost"] == len(partials)
        assert report.cluster["coverage_min"] < 1.0
        assert 0.0 < report.cluster["mean_expected_recall"] < 1.0

    def test_partial_outcomes_change_the_digest(self, make_lsp, config, space):
        """Degraded answers are first-class: the digest pins their coverage."""
        workload = generate_workload(MIXED, space)
        healthy = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2, cluster=CLUSTER)
        ).run(workload)
        faults = ShardFaultPlan.killing({(1, 0): 0, (1, 1): 0}, seed=3)
        degraded = ServeEngine(
            make_lsp(),
            config,
            ServeConfig(
                workers=2,
                cluster=ClusterConfig(
                    shards=3, replicas=2, quorum=0.5, faults=faults
                ),
            ),
        ).run(workload)
        assert healthy.answers_digest != degraded.answers_digest

    def test_below_quorum_jobs_fail_typed(self, make_lsp, config, space):
        kills = {(s, r): 0 for s in (0, 1) for r in (0, 1)}
        cluster = ClusterConfig(
            shards=3, replicas=2, quorum=0.9,
            faults=ShardFaultPlan.killing(kills, seed=3),
        )
        report = ServeEngine(
            make_lsp(), config, ServeConfig(workers=2, cluster=cluster)
        ).run(generate_workload(MIXED, space))
        assert report.completed == 0
        assert report.failed == report.queries
        for outcome in report.outcomes.values():
            assert outcome.error_type == "ShardLostError"


class TestClusterConfigValidation:
    def test_process_executor_rejects_more_shards_than_workers(self):
        """Satellite 2: only the process executor is capacity-bound."""
        with pytest.raises(ConfigurationError, match="exceed"):
            ServeConfig(
                workers=2,
                executor="process",
                cluster=ClusterConfig(shards=3),
            )

    def test_serial_executor_allows_more_shards_than_workers(self):
        ServeConfig(
            workers=2, executor="serial", cluster=ClusterConfig(shards=3)
        )

    def test_engine_rejects_sanitized_cluster_config(self, make_lsp, space):
        sanitized = PPGNNConfig(
            d=4, delta=8, k=3, keysize=128,
            sanitize=True, sanitation_samples=SAMPLES,
        )
        with pytest.raises(ConfigurationError, match="sanitize"):
            ServeEngine(
                make_lsp(),
                sanitized,
                ServeConfig(workers=2, cluster=ClusterConfig(shards=2)),
            )

    def test_rejects_non_cluster_object(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(workers=2, cluster=object())
