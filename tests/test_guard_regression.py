"""Guard no-op guarantee: ``guard=None`` stays byte-for-byte identical.

The fixture values below were captured from the runners *before* the
guard subsystem existed.  Two invariants are pinned:

1. ``guard=None`` (the default) reproduces the pre-guard cost reports and
   answers exactly — the hardening layer added zero bytes, zero messages,
   and zero behavioral drift to the trusting path (mirroring the
   ``transport=None`` contract of the transport layer).
2. An *armed* guard over honest parties produces the same answers and
   the same per-link byte counts — validation observes the round, it
   never perturbs it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PPGNNConfig
from repro.core.group import run_ppgnn
from repro.core.lsp import LSPServer
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt
from repro.datasets.synthetic import clustered_pois
from repro.geometry.space import LocationSpace
from repro.guard.guard import ProtocolGuard

# Captured before the guard subsystem was introduced, at
# PPGNNConfig(d=4, delta=8, k=3, keysize=256, key_seed=5,
# sanitation_samples=400), 2000 clustered POIs (seed 11), an LSP with
# sanitation_samples=400/seed=99, three locations from default_rng(42),
# and runner seed 7.
PRE_GUARD_FIXTURE = {
    "ppgnn": {
        "total_comm_bytes": 908,
        "comm_bytes_by_link": {
            ("coordinator", "user"): 68,
            ("coordinator", "lsp"): 572,
            ("user", "lsp"): 204,
            ("lsp", "coordinator"): 64,
        },
        "query_index": 1,
    },
    "ppgnn-opt": {
        "total_comm_bytes": 876,
        "comm_bytes_by_link": {
            ("coordinator", "user"): 68,
            ("coordinator", "lsp"): 508,
            ("user", "lsp"): 204,
            ("lsp", "coordinator"): 96,
        },
        "query_index": 1,
    },
    "naive": {
        "total_comm_bytes": 1120,
        "comm_bytes_by_link": {
            ("coordinator", "user"): 68,
            ("coordinator", "lsp"): 592,
            ("user", "lsp"): 396,
            ("lsp", "coordinator"): 64,
        },
        "query_index": 2,
    },
}

MESSAGES_BY_LINK = {
    ("coordinator", "user"): 5,
    ("coordinator", "lsp"): 1,
    ("user", "lsp"): 3,
    ("lsp", "coordinator"): 1,
}

EXPECTED_ANSWERS = [
    (446, 0.738387812030613, 0.7038361585961901),
    (1592, 0.7312733948453854, 0.6837345921846315),
    (1537, 0.7396943470900985, 0.659903201964571),
]

RUNNERS = {"ppgnn": run_ppgnn, "ppgnn-opt": run_ppgnn_opt, "naive": run_naive}


@pytest.fixture(scope="module")
def fixture_setup():
    space = LocationSpace.unit_square()
    pois = clustered_pois(2000, space, seed=11)
    config = PPGNNConfig(
        d=4, delta=8, k=3, keysize=256, key_seed=5, sanitation_samples=400
    )
    locations = space.sample_points(3, np.random.default_rng(42))
    return pois, config, locations


def _fresh_lsp(pois):
    return LSPServer(pois, sanitation_samples=400, seed=99)


def _flatten(result):
    return [(a.poi_id, a.location.x, a.location.y) for a in result.answers]


@pytest.mark.parametrize("protocol", sorted(RUNNERS))
def test_default_path_matches_pre_guard_capture(fixture_setup, protocol):
    pois, config, locations = fixture_setup
    result = RUNNERS[protocol](_fresh_lsp(pois), locations, config, seed=7)
    expected = PRE_GUARD_FIXTURE[protocol]
    assert result.report.total_comm_bytes == expected["total_comm_bytes"]
    assert dict(result.report.comm_bytes_by_link) == expected["comm_bytes_by_link"]
    assert dict(result.report.messages_by_link) == MESSAGES_BY_LINK
    assert result.query_index == expected["query_index"]
    assert result.delta_prime == 8
    assert result.m == 1
    assert _flatten(result) == EXPECTED_ANSWERS


@pytest.mark.parametrize("protocol", sorted(RUNNERS))
def test_armed_guard_is_observationally_transparent(fixture_setup, protocol):
    pois, config, locations = fixture_setup
    runner = RUNNERS[protocol]
    bare = runner(_fresh_lsp(pois), locations, config, seed=7)
    guarded = runner(
        _fresh_lsp(pois), locations, config, seed=7, guard=ProtocolGuard()
    )
    assert _flatten(guarded) == _flatten(bare)
    assert dict(guarded.report.comm_bytes_by_link) == dict(
        bare.report.comm_bytes_by_link
    )
    assert dict(guarded.report.messages_by_link) == dict(
        bare.report.messages_by_link
    )
    assert guarded.query_index == bare.query_index
    assert [e.kind for e in guarded.report.transcript] == [
        e.kind for e in bare.report.transcript
    ]
