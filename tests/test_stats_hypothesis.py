"""Tests for the sanitation hypothesis-testing machinery (Section 5.3)."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import ConfigurationError
from repro.stats.hypothesis import (
    SanitationTestPlan,
    normal_quantile,
    rejection_threshold,
    required_sample_size,
)


class TestNormalQuantile:
    @pytest.mark.parametrize("p", [0.001, 0.01, 0.05, 0.2, 0.5, 0.8, 0.95, 0.99, 0.999])
    def test_matches_scipy(self, p):
        assert normal_quantile(p) == pytest.approx(
            scipy_stats.norm.ppf(p), abs=1e-8
        )

    def test_known_critical_values(self):
        assert normal_quantile(0.95) == pytest.approx(1.6449, abs=1e-4)
        assert normal_quantile(0.8) == pytest.approx(0.8416, abs=1e-4)

    def test_symmetry(self):
        assert normal_quantile(0.3) == pytest.approx(-normal_quantile(0.7), abs=1e-9)

    def test_domain_validation(self):
        for p in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ConfigurationError):
                normal_quantile(p)


class TestSampleSize:
    def test_eqn17_against_manual_computation(self):
        """Fleiss formula with the paper's defaults at theta0 = 0.05."""
        theta0, gamma, eta, phi = 0.05, 0.05, 0.2, 0.1
        theta1 = theta0 * (1 + phi)
        z_g = scipy_stats.norm.ppf(1 - gamma)
        z_e = scipy_stats.norm.ppf(1 - eta)
        expected = math.ceil(
            (
                (z_g * math.sqrt(theta0 * (1 - theta0)) + z_e * math.sqrt(theta1 * (1 - theta1)))
                / (theta1 - theta0)
            )
            ** 2
        )
        assert required_sample_size(theta0) == expected

    def test_stronger_privacy_needs_fewer_samples(self):
        """Figure 6l's explanation: larger theta0 -> smaller N_H."""
        sizes = [required_sample_size(t) for t in (0.01, 0.02, 0.05, 0.1)]
        assert sizes == sorted(sizes, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_sample_size(0.0)
        with pytest.raises(ConfigurationError):
            required_sample_size(0.95, phi=0.5)  # theta1 >= 1
        with pytest.raises(ConfigurationError):
            required_sample_size(0.05, gamma=0.7)


class TestRejectionThreshold:
    def test_eqn16_value(self):
        n, theta0, gamma = 10_000, 0.05, 0.05
        z = scipy_stats.norm.ppf(1 - gamma)
        expected = n * theta0 + z * math.sqrt(n * theta0 * (1 - theta0))
        assert rejection_threshold(n, theta0, gamma) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rejection_threshold(0, 0.05)
        with pytest.raises(ConfigurationError):
            rejection_threshold(100, 1.5)


class TestSanitationTestPlan:
    def test_from_parameters_defaults(self):
        plan = SanitationTestPlan.from_parameters(0.05)
        assert plan.n_samples == required_sample_size(0.05)
        assert plan.threshold == pytest.approx(
            rejection_threshold(plan.n_samples, 0.05)
        )

    def test_override_changes_samples_and_threshold(self):
        plan = SanitationTestPlan.from_parameters(0.05, n_samples_override=500)
        assert plan.n_samples == 500
        assert plan.threshold == pytest.approx(rejection_threshold(500, 0.05))

    def test_is_safe_semantics(self):
        plan = SanitationTestPlan.from_parameters(0.05, n_samples_override=1000)
        assert plan.is_safe(1000)
        assert not plan.is_safe(0)
        assert not plan.is_safe(int(plan.threshold))

    def test_type_i_error_calibration(self):
        """Empirically: with theta exactly theta0, the safe verdict (reject
        H0) must occur with probability <= ~gamma."""
        theta0, gamma = 0.1, 0.05
        plan = SanitationTestPlan.from_parameters(theta0, gamma=gamma, n_samples_override=2000)
        rng = np.random.default_rng(0)
        false_safes = sum(
            plan.is_safe(int(rng.binomial(plan.n_samples, theta0)))
            for _ in range(2000)
        )
        assert false_safes / 2000 < gamma + 0.02

    def test_power_at_theta1(self):
        """With theta = theta1 = theta0(1+phi) and the Eqn-17 sample size,
        the test must reject H0 with probability >= 1 - eta."""
        theta0, eta, phi = 0.05, 0.2, 0.1
        plan = SanitationTestPlan.from_parameters(theta0, eta=eta, phi=phi)
        theta1 = theta0 * (1 + phi)
        rng = np.random.default_rng(1)
        safes = sum(
            plan.is_safe(int(rng.binomial(plan.n_samples, theta1)))
            for _ in range(1000)
        )
        assert safes / 1000 > 1 - eta - 0.05
