"""Crash-safe session checkpoints: round trips, resume equality, rejection."""

from __future__ import annotations

import pytest

from repro.core.session import QuerySession, SessionTotals
from repro.errors import CheckpointError, CryptoError, ReproError
from repro.guard.checkpoint import checkpoint_session, restore_session
from repro.transport.session import ResilientSession


@pytest.fixture()
def locations(space, nprng):
    return space.sample_points(3, nprng)


class TestRoundTrip:
    def test_fresh_session_round_trips(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, protocol="ppgnn-opt", seed=31)
        restored = QuerySession.restore(session.checkpoint(), lsp)
        assert restored.protocol == "ppgnn-opt"
        assert restored.seed == 31
        assert restored.config == fast_config
        assert restored.totals == SessionTotals()
        assert restored.max_history == session.max_history

    def test_totals_survive(self, lsp, fast_config, locations):
        session = QuerySession(lsp, fast_config)
        session.query(locations)
        restored = QuerySession.restore(session.checkpoint(), lsp)
        assert restored.totals == session.totals
        assert restored.history == []  # history is deliberately not durable

    def test_checkpoint_is_deterministic(self, lsp, fast_config):
        a = QuerySession(lsp, fast_config, seed=5).checkpoint()
        b = QuerySession(lsp, fast_config, seed=5).checkpoint()
        assert a == b

    def test_none_fields_round_trip(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, max_history=None)
        restored = QuerySession.restore(session.checkpoint(), lsp)
        assert restored.max_history is None

    def test_negative_seed_round_trips(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, seed=-12)
        assert QuerySession.restore(session.checkpoint(), lsp).seed == -12


class TestResumeEquality:
    def test_killed_session_resumes_to_identical_totals(
        self, medium_pois, fast_config, locations
    ):
        from repro.core.lsp import LSPServer

        def fresh_lsp():
            return LSPServer(medium_pois, sanitation_samples=1500, seed=99)

        uninterrupted = QuerySession(fresh_lsp(), fast_config, seed=3)
        straight_answers = [
            uninterrupted.query(locations).answers for _ in range(4)
        ]

        doomed = QuerySession(fresh_lsp(), fast_config, seed=3)
        for _ in range(2):
            doomed.query(locations)
        blob = doomed.checkpoint()
        del doomed  # the crash

        resumed = QuerySession.restore(blob, fresh_lsp())
        resumed_answers = [resumed.query(locations).answers for _ in range(2)]

        # Deterministic totals match exactly; CPU seconds are wall-clock
        # measurements and can only be compared loosely.
        assert resumed.totals.queries == uninterrupted.totals.queries
        assert resumed.totals.comm_bytes == uninterrupted.totals.comm_bytes
        assert (
            resumed.totals.answers_returned
            == uninterrupted.totals.answers_returned
        )
        assert resumed.totals.user_seconds > 0
        assert resumed.totals.lsp_seconds > 0
        assert resumed_answers == straight_answers[2:]

    def test_restore_as_resilient_session(self, lsp, fast_config, locations):
        base = QuerySession(lsp, fast_config, seed=9)
        base.query(locations)
        restored = ResilientSession.restore(base.checkpoint(), lsp)
        assert isinstance(restored, ResilientSession)
        assert restored.totals.queries == 1
        result = restored.query(locations)
        assert len(result.answers) > 0


class TestRejection:
    def _blob(self, lsp, fast_config):
        return QuerySession(lsp, fast_config).checkpoint()

    def test_bad_magic(self, lsp, fast_config):
        blob = self._blob(lsp, fast_config)
        with pytest.raises(CryptoError, match="magic"):
            restore_session(b"XXXX" + blob[4:], lsp)

    def test_unsupported_version(self, lsp, fast_config):
        blob = self._blob(lsp, fast_config)
        with pytest.raises(CryptoError, match="version"):
            restore_session(blob[:4] + b"\x00\x63" + blob[6:], lsp)

    def test_truncated(self, lsp, fast_config):
        blob = self._blob(lsp, fast_config)
        with pytest.raises(CryptoError):
            restore_session(blob[: len(blob) // 2], lsp)
        with pytest.raises(CryptoError):
            restore_session(b"RP", lsp)

    def test_trailing_bytes(self, lsp, fast_config):
        blob = self._blob(lsp, fast_config)
        with pytest.raises(CryptoError, match="trailing"):
            restore_session(blob + b"\x00", lsp)

    def test_negative_cost_totals(self, lsp, fast_config):
        session = QuerySession(
            lsp, fast_config, totals=SessionTotals(user_seconds=-1.0)
        )
        with pytest.raises(CheckpointError, match="negative"):
            restore_session(session.checkpoint(), lsp)

    def test_answers_without_queries(self, lsp, fast_config):
        session = QuerySession(
            lsp, fast_config, totals=SessionTotals(answers_returned=3)
        )
        with pytest.raises(CheckpointError, match="without queries"):
            restore_session(session.checkpoint(), lsp)

    def test_every_single_byte_truncation_is_typed(self, lsp, fast_config):
        blob = self._blob(lsp, fast_config)
        for cut in range(len(blob)):
            with pytest.raises(ReproError):
                restore_session(blob[:cut], lsp)
