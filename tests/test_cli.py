"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(args):
    return main(args)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--protocol", "carrier-pigeon"])


class TestInfo:
    def test_info_output(self, capsys):
        assert run_cli(["info"]) == 0
        out = capsys.readouterr().out
        assert "EDBT 2018" in out
        assert "d=25" in out


class TestSolve:
    def test_solve_paper_example(self, capsys):
        assert run_cli(["solve", "--n", "4", "--d", "4", "--delta", "8"]) == 0
        out = capsys.readouterr().out
        assert "delta' (candidates): 8" in out
        assert "(2, 2)" in out

    def test_solve_infeasible_is_reported(self, capsys):
        assert run_cli(["solve", "--n", "2", "--d", "3", "--delta", "100"]) == 2
        assert "error:" in capsys.readouterr().err


class TestQuery:
    COMMON = [
        "--pois", "400", "--d", "4", "--delta", "12", "--k", "3",
        "--keysize", "128", "--seed", "3",
    ]

    @pytest.mark.parametrize("protocol", ["ppgnn", "opt", "naive", "nas"])
    def test_group_query_protocols(self, capsys, protocol):
        code = run_cli(["query", "--n", "3", "--protocol", protocol, *self.COMMON])
        assert code == 0
        out = capsys.readouterr().out
        assert "answer (" in out
        assert "communication" in out

    def test_single_user_query(self, capsys):
        assert run_cli(["query", "--n", "1", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "candidate queries : 4" in out

    def test_max_aggregate(self, capsys):
        code = run_cli(
            ["query", "--n", "2", "--aggregate", "max", *self.COMMON]
        )
        assert code == 0


class TestAttack:
    def test_attack_demo_runs(self, capsys):
        code = run_cli(
            [
                "attack", "--pois", "400", "--n", "4", "--d", "4",
                "--delta", "12", "--k", "4", "--keysize", "128",
                "--samples", "2000", "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "without sanitation" in out
        assert "with sanitation" in out


class TestServeBench:
    ARGS = [
        "serve-bench", "--pois", "300", "--queries", "8", "--groups", "3",
        "--keysize", "128", "--seed", "3",
    ]

    def test_serve_bench_runs_and_reports(self, capsys):
        assert run_cli(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "served 8/8 queries" in out
        assert "simulated throughput" in out
        assert "kNN cache" in out

    def test_serve_bench_records_json(self, capsys, tmp_path):
        import json

        assert run_cli([*self.ARGS, "--record", str(tmp_path)]) == 0
        document = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert document["keysize"] == 128
        assert document["config"]["queries"] == 8
        assert document["results"]["completed"] == 8
        assert "wall_seconds" in document["results"]

    def test_serve_bench_json_output(self, capsys):
        import json

        assert run_cli([*self.ARGS, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["completed"] == 8
        assert report["answers_digest"]

    def test_serve_bench_with_faults(self, capsys):
        assert run_cli([*self.ARGS, "--fault-rate", "0.05"]) == 0
        assert "served 8/8" in capsys.readouterr().out

    def test_serve_bench_obs_embeds_metrics(self, capsys):
        import json

        assert run_cli([*self.ARGS, "--obs", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "crypto.encryptions" in report["obs"]["metrics"]["counters"]
        assert report["obs"]["spans"]

    def test_serve_bench_trace_out_writes_parseable_jsonl(self, capsys, tmp_path):
        from repro.obs import parse_jsonl, validate_spans

        trace = tmp_path / "serve.jsonl"
        assert run_cli([*self.ARGS, "--trace-out", str(trace)]) == 0
        spans = parse_jsonl(trace.read_text())
        assert spans
        validate_spans(spans)


class TestTrace:
    ARGS = [
        "trace", "--pois", "300", "--n", "3", "--d", "3", "--delta", "6",
        "--k", "3", "--keysize", "128", "--seed", "4",
    ]

    def test_live_trace_renders_tree_and_metrics(self, capsys):
        assert run_cli(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "round.ppgnn" in out
        assert "slowest path:" in out
        assert "crypto.encryptions" in out

    def test_trace_round_trips_through_file(self, capsys, tmp_path):
        trace = tmp_path / "q.jsonl"
        assert run_cli([*self.ARGS, "--out", str(trace)]) == 0
        live = capsys.readouterr().out
        assert run_cli(["trace", "--input", str(trace)]) == 0
        rendered = capsys.readouterr().out
        assert rendered.strip() in live

    def test_trace_bad_input_reports_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert run_cli(["trace", "--input", str(bad)]) == 2
        assert "line 1" in capsys.readouterr().err

    def test_trace_truncated_tail_recoverable(self, capsys, tmp_path):
        trace = tmp_path / "q.jsonl"
        assert run_cli([*self.ARGS, "--out", str(trace)]) == 0
        capsys.readouterr()
        text = trace.read_text().rstrip("\n")
        trace.write_text(text[:-20])  # kill the run mid-write
        assert run_cli(["trace", "--input", str(trace)]) == 2
        assert "--allow-truncated" in capsys.readouterr().err
        code = run_cli(["trace", "--input", str(trace), "--allow-truncated"])
        assert code == 0


class TestAnalyze:
    TRACE_ARGS = [
        "trace", "--pois", "300", "--n", "3", "--d", "3", "--delta", "6",
        "--k", "3", "--keysize", "128", "--seed", "4",
    ]
    SERVE_ARGS = [
        "serve-bench", "--pois", "300", "--queries", "8", "--groups", "3",
        "--keysize", "128", "--seed", "3", "--obs",
    ]

    def test_analyze_trace_renders_phases(self, capsys, tmp_path):
        trace = tmp_path / "q.jsonl"
        assert run_cli([*self.TRACE_ARGS, "--out", str(trace)]) == 0
        capsys.readouterr()
        assert run_cli(["analyze", "--input", str(trace)]) == 0
        out = capsys.readouterr().out
        for phase in ("crypto", "transport", "queue", "compute"):
            assert phase in out
        assert "critical path:" in out
        assert "per-protocol phase shares:" in out

    def test_analyze_report_with_slo(self, capsys, tmp_path):
        assert run_cli([*self.SERVE_ARGS, "--record", str(tmp_path)]) == 0
        capsys.readouterr()
        report = str(tmp_path / "BENCH_serve.json")
        code = run_cli(
            ["analyze", "--report", report, "--slo-p95", "1e6",
             "--error-budget", "1.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queue delay:" in out
        assert "slo evaluation:" in out
        assert "per-query ops" in out

    def test_analyze_slo_violation_exits_nonzero(self, capsys, tmp_path):
        assert run_cli([*self.SERVE_ARGS, "--record", str(tmp_path)]) == 0
        capsys.readouterr()
        report = str(tmp_path / "BENCH_serve.json")
        code = run_cli(["analyze", "--report", report, "--slo-p95", "1e-12"])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_analyze_rejects_non_report_json(self, capsys, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"hello": "world"}')
        assert run_cli(["analyze", "--report", str(bogus)]) == 2
        assert "no serving report" in capsys.readouterr().err


class TestPerfCheck:
    ARGS = [
        "perf-check", "--pois", "300", "--n", "3", "--keysize", "128",
        "--protocols", "ppgnn",
    ]

    def _record(self, tmp_path):
        code = run_cli([*self.ARGS, "--record", "--baseline-dir", str(tmp_path)])
        assert code == 0
        return tmp_path / "ppgnn.json"

    def test_record_then_unchanged_check_exits_zero(self, capsys, tmp_path):
        self._record(tmp_path)
        capsys.readouterr()
        assert run_cli([*self.ARGS, "--baseline-dir", str(tmp_path)]) == 0
        assert "0 exact regression(s)" in capsys.readouterr().out

    def test_exact_counter_regression_exits_nonzero(self, capsys, tmp_path):
        import json

        path = self._record(tmp_path)
        document = json.loads(path.read_text())
        document["metrics"]["ops.modmuls_estimated"] -= 1  # baseline was cheaper
        path.write_text(json.dumps(document))
        capsys.readouterr()
        report = tmp_path / "verdict.md"
        code = run_cli(
            [*self.ARGS, "--baseline-dir", str(tmp_path),
             "--report-out", str(report)]
        )
        assert code == 1
        assert "regressed ops.modmuls_estimated" in capsys.readouterr().out
        assert "Verdict: FAIL" in report.read_text()

    def test_missing_baseline_is_a_clear_error(self, capsys, tmp_path):
        assert run_cli([*self.ARGS, "--baseline-dir", str(tmp_path)]) == 2
        assert "--record" in capsys.readouterr().err

    def test_workload_mismatch_refused(self, capsys, tmp_path):
        import json

        path = self._record(tmp_path)
        document = json.loads(path.read_text())
        document["config"]["pois"] = 999
        path.write_text(json.dumps(document))
        capsys.readouterr()
        assert run_cli([*self.ARGS, "--baseline-dir", str(tmp_path)]) == 2
        assert "re-record" in capsys.readouterr().err

    def test_baselines_stamp_provenance(self, tmp_path):
        import json

        document = json.loads(self._record(tmp_path).read_text())
        assert document["keysize"] == 128
        assert document["config"]["seed"] == 7
        assert document["metrics"]["ops.modmuls_estimated"] > 0
        assert document["metrics"]["protocol.rounds"] >= 1


class TestCryptoMicroSuite:
    ARGS = ["perf-check", "--suite", "crypto", "--keysize", "256", "--seed", "9"]

    def test_record_then_check_round_trips(self, capsys, tmp_path):
        code = run_cli([*self.ARGS, "--record", "--baseline-dir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "crypto-256.json").exists()
        capsys.readouterr()
        assert run_cli([*self.ARGS, "--baseline-dir", str(tmp_path)]) == 0
        assert "0 exact regression(s)" in capsys.readouterr().out

    def test_counter_regression_fails_the_gate(self, capsys, tmp_path):
        import json

        assert (
            run_cli([*self.ARGS, "--record", "--baseline-dir", str(tmp_path)])
            == 0
        )
        path = tmp_path / "crypto-256.json"
        document = json.loads(path.read_text())
        document["metrics"]["ops.encrypt.bigint_muls"] -= 1
        path.write_text(json.dumps(document))
        capsys.readouterr()
        assert run_cli([*self.ARGS, "--baseline-dir", str(tmp_path)]) == 1
        assert "regressed ops.encrypt.bigint_muls" in capsys.readouterr().out

    def test_digest_is_fixed_direction(self, capsys, tmp_path):
        import json

        assert (
            run_cli([*self.ARGS, "--record", "--baseline-dir", str(tmp_path)])
            == 0
        )
        path = tmp_path / "crypto-256.json"
        document = json.loads(path.read_text())
        document["metrics"]["answers.digest_mod"] += 1  # either direction fails
        path.write_text(json.dumps(document))
        capsys.readouterr()
        assert run_cli([*self.ARGS, "--baseline-dir", str(tmp_path)]) == 1

    def test_slow_baseline_improves_with_fast_paths(self, capsys, tmp_path):
        from repro.crypto import fastexp

        with fastexp.forced(False):
            assert (
                run_cli([*self.ARGS, "--record", "--baseline-dir", str(tmp_path)])
                == 0
            )
        capsys.readouterr()
        with fastexp.forced(True):
            assert run_cli([*self.ARGS, "--baseline-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "improved  ops.encrypt.bigint_muls" in out
        assert "improved  ops.dot.bigint_muls" in out
        assert "improved  ops.rerandomize.bigint_muls" in out
        assert "0 exact regression(s)" in out
