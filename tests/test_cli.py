"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(args):
    return main(args)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--protocol", "carrier-pigeon"])


class TestInfo:
    def test_info_output(self, capsys):
        assert run_cli(["info"]) == 0
        out = capsys.readouterr().out
        assert "EDBT 2018" in out
        assert "d=25" in out


class TestSolve:
    def test_solve_paper_example(self, capsys):
        assert run_cli(["solve", "--n", "4", "--d", "4", "--delta", "8"]) == 0
        out = capsys.readouterr().out
        assert "delta' (candidates): 8" in out
        assert "(2, 2)" in out

    def test_solve_infeasible_is_reported(self, capsys):
        assert run_cli(["solve", "--n", "2", "--d", "3", "--delta", "100"]) == 2
        assert "error:" in capsys.readouterr().err


class TestQuery:
    COMMON = [
        "--pois", "400", "--d", "4", "--delta", "12", "--k", "3",
        "--keysize", "128", "--seed", "3",
    ]

    @pytest.mark.parametrize("protocol", ["ppgnn", "opt", "naive", "nas"])
    def test_group_query_protocols(self, capsys, protocol):
        code = run_cli(["query", "--n", "3", "--protocol", protocol, *self.COMMON])
        assert code == 0
        out = capsys.readouterr().out
        assert "answer (" in out
        assert "communication" in out

    def test_single_user_query(self, capsys):
        assert run_cli(["query", "--n", "1", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "candidate queries : 4" in out

    def test_max_aggregate(self, capsys):
        code = run_cli(
            ["query", "--n", "2", "--aggregate", "max", *self.COMMON]
        )
        assert code == 0


class TestAttack:
    def test_attack_demo_runs(self, capsys):
        code = run_cli(
            [
                "attack", "--pois", "400", "--n", "4", "--d", "4",
                "--delta", "12", "--k", "4", "--keysize", "128",
                "--samples", "2000", "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "without sanitation" in out
        assert "with sanitation" in out


class TestServeBench:
    ARGS = [
        "serve-bench", "--pois", "300", "--queries", "8", "--groups", "3",
        "--keysize", "128", "--seed", "3",
    ]

    def test_serve_bench_runs_and_reports(self, capsys):
        assert run_cli(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "served 8/8 queries" in out
        assert "simulated throughput" in out
        assert "kNN cache" in out

    def test_serve_bench_records_json(self, capsys, tmp_path):
        import json

        assert run_cli([*self.ARGS, "--record", str(tmp_path)]) == 0
        document = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert document["keysize"] == 128
        assert document["config"]["queries"] == 8
        assert document["results"]["completed"] == 8
        assert "wall_seconds" in document["results"]

    def test_serve_bench_json_output(self, capsys):
        import json

        assert run_cli([*self.ARGS, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["completed"] == 8
        assert report["answers_digest"]

    def test_serve_bench_with_faults(self, capsys):
        assert run_cli([*self.ARGS, "--fault-rate", "0.05"]) == 0
        assert "served 8/8" in capsys.readouterr().out
