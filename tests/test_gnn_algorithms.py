"""Tests for the SPM and MQM group-kNN algorithms against MBM/brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import clustered_pois, uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import MAX, MIN, SUM, Aggregate
from repro.gnn.bruteforce import brute_force_kgnn
from repro.gnn.engine import GNNQueryEngine
from repro.gnn.knn import incremental_nearest
from repro.gnn.mqm import mqm_kgnn
from repro.gnn.spm import centroid, spm_kgnn
from repro.index.rtree import RTree

coord = st.floats(min_value=0, max_value=1, allow_nan=False)
query_points = st.lists(st.builds(Point, coord, coord), min_size=1, max_size=5)


@pytest.fixture(scope="module")
def tree_and_pois():
    pois = uniform_pois(400, seed=19)
    tree = RTree(max_entries=8)
    tree.bulk_load((p.location, p) for p in pois)
    return tree, pois


class TestIncrementalNearest:
    def test_yields_all_in_order(self, tree_and_pois):
        tree, pois = tree_and_pois
        q = Point(0.4, 0.6)
        stream = list(incremental_nearest(tree, q))
        assert len(stream) == len(pois)
        dists = [d for d, _, _ in stream]
        assert dists == sorted(dists)

    def test_prefix_matches_knn(self, tree_and_pois):
        from repro.gnn.knn import best_first_knn

        tree, _ = tree_and_pois
        q = Point(0.8, 0.1)
        stream = incremental_nearest(tree, q)
        prefix = [item.poi_id for _, _, item in (next(stream) for _ in range(12))]
        full = [item.poi_id for _, item in best_first_knn(tree, q, 12)]
        assert prefix == full

    def test_empty_tree(self):
        assert list(incremental_nearest(RTree(), Point(0, 0))) == []


class TestSPM:
    def test_centroid(self):
        assert centroid([Point(0, 0), Point(2, 4)]) == Point(1, 2)

    @pytest.mark.parametrize("aggregate", [SUM, MAX, MIN], ids=lambda a: a.name)
    def test_matches_bruteforce(self, tree_and_pois, aggregate):
        tree, pois = tree_and_pois
        rng = np.random.default_rng(23)
        for _ in range(6):
            n = int(rng.integers(1, 6))
            locations = [Point(*rng.uniform(0, 1, 2)) for _ in range(n)]
            got = spm_kgnn(tree, locations, 8, aggregate)
            want = brute_force_kgnn(
                ((p.location, p) for p in pois), locations, 8, aggregate
            )
            assert [g[1].poi_id for g in got] == [w[1].poi_id for w in want]

    def test_custom_aggregate_rejected(self, tree_and_pois):
        tree, _ = tree_and_pois
        opaque = Aggregate("spm-opaque", lambda ds: sum(ds), lambda m: m.sum(axis=1))
        with pytest.raises(ConfigurationError):
            spm_kgnn(tree, [Point(0.5, 0.5)], 3, opaque)

    def test_validation(self, tree_and_pois):
        tree, _ = tree_and_pois
        with pytest.raises(ConfigurationError):
            spm_kgnn(tree, [], 3, SUM)
        with pytest.raises(ConfigurationError):
            spm_kgnn(tree, [Point(0.5, 0.5)], 0, SUM)

    @settings(max_examples=20, deadline=None)
    @given(query_points)
    def test_property_sum(self, locations):
        pois = uniform_pois(80, seed=31)
        tree = RTree(max_entries=4)
        tree.bulk_load((p.location, p) for p in pois)
        got = spm_kgnn(tree, locations, 5, SUM)
        want = brute_force_kgnn(((p.location, p) for p in pois), locations, 5, SUM)
        assert [g[1].poi_id for g in got] == [w[1].poi_id for w in want]


class TestMQM:
    @pytest.mark.parametrize("aggregate", [SUM, MAX, MIN], ids=lambda a: a.name)
    def test_matches_bruteforce(self, tree_and_pois, aggregate):
        tree, pois = tree_and_pois
        rng = np.random.default_rng(29)
        for _ in range(6):
            n = int(rng.integers(1, 6))
            locations = [Point(*rng.uniform(0, 1, 2)) for _ in range(n)]
            got = mqm_kgnn(tree, locations, 8, aggregate)
            want = brute_force_kgnn(
                ((p.location, p) for p in pois), locations, 8, aggregate
            )
            assert [g[1].poi_id for g in got] == [w[1].poi_id for w in want]

    def test_custom_monotone_aggregate_supported(self, tree_and_pois):
        """Unlike SPM, MQM needs only monotonicity."""
        tree, pois = tree_and_pois

        def squares(ds):
            return float(sum(d * d for d in ds))

        opaque = Aggregate("mqm-squares", squares, lambda m: (m * m).sum(axis=1))
        locations = [Point(0.2, 0.2), Point(0.7, 0.6)]
        got = mqm_kgnn(tree, locations, 6, opaque)
        want = brute_force_kgnn(
            ((p.location, p) for p in pois), locations, 6, opaque
        )
        assert [g[1].poi_id for g in got] == [w[1].poi_id for w in want]

    def test_k_exceeds_database(self):
        pois = uniform_pois(5, seed=3)
        tree = RTree()
        tree.bulk_load((p.location, p) for p in pois)
        got = mqm_kgnn(tree, [Point(0.5, 0.5)], 50, SUM)
        assert len(got) == 5

    def test_validation(self, tree_and_pois):
        tree, _ = tree_and_pois
        with pytest.raises(ConfigurationError):
            mqm_kgnn(tree, [], 3, SUM)

    @settings(max_examples=20, deadline=None)
    @given(query_points)
    def test_property_max(self, locations):
        pois = uniform_pois(80, seed=37)
        tree = RTree(max_entries=4)
        tree.bulk_load((p.location, p) for p in pois)
        got = mqm_kgnn(tree, locations, 5, MAX)
        want = brute_force_kgnn(((p.location, p) for p in pois), locations, 5, MAX)
        assert [g[1].poi_id for g in got] == [w[1].poi_id for w in want]


class TestEngineAlgorithmSelection:
    @pytest.mark.parametrize("algorithm", ["mbm", "spm", "mqm"])
    def test_all_algorithms_agree(self, algorithm):
        pois = clustered_pois(600, seed=41)
        engine = GNNQueryEngine(pois, algorithm=algorithm)
        reference = GNNQueryEngine(pois)  # mbm
        rng = np.random.default_rng(43)
        for _ in range(4):
            locations = [Point(*rng.uniform(0, 1, 2)) for _ in range(3)]
            assert [p.poi_id for p in engine.query(7, locations)] == [
                p.poi_id for p in reference.query(7, locations)
            ]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            GNNQueryEngine(uniform_pois(10, seed=1), algorithm="quantum")
