"""Tests for the answer sanitation (Sections 5.2-5.3)."""

import numpy as np
import pytest

from repro.core.sanitize import AnswerSanitizer
from repro.datasets.synthetic import uniform_pois
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.gnn.aggregate import MAX, MIN, SUM, Aggregate
from repro.gnn.engine import GNNQueryEngine
from repro.stats.hypothesis import SanitationTestPlan


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def engine():
    return GNNQueryEngine(uniform_pois(800, seed=21))


def make_sanitizer(space, aggregate=SUM, theta0=0.05, samples=2500, seed=0):
    plan = SanitationTestPlan.from_parameters(theta0, n_samples_override=samples)
    return AnswerSanitizer(space, aggregate, plan, np.random.default_rng(seed))


def spread_group(n, seed=3):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, (n, 2))]


class TestSanitizeBasics:
    def test_prefix_is_a_prefix(self, space, engine):
        sanitizer = make_sanitizer(space)
        group = spread_group(6)
        pois = engine.query(8, group)
        outcome = sanitizer.sanitize(pois, group)
        assert list(outcome.prefix) == pois[: len(outcome.prefix)]

    def test_prefix_never_empty(self, space, engine):
        """t = 1 has no inequalities and is always safe (Section 5.2)."""
        sanitizer = make_sanitizer(space, theta0=0.99)  # brutally strict
        group = spread_group(4)
        pois = engine.query(8, group)
        outcome = sanitizer.sanitize(pois, group)
        assert len(outcome.prefix) >= 1

    def test_single_user_passthrough(self, space, engine):
        """No Privacy IV with n = 1: the full answer returns unsanitized."""
        sanitizer = make_sanitizer(space)
        target = Point(0.4, 0.4)
        pois = engine.query(8, [target])
        outcome = sanitizer.sanitize(pois, [target])
        assert list(outcome.prefix) == pois

    def test_single_poi_passthrough(self, space, engine):
        sanitizer = make_sanitizer(space)
        group = spread_group(4)
        pois = engine.query(1, group)
        assert list(sanitizer.sanitize(pois, group).prefix) == pois

    def test_overall_is_min_over_targets(self, space, engine):
        sanitizer = make_sanitizer(space)
        group = spread_group(5)
        pois = engine.query(8, group)
        outcome = sanitizer.sanitize(pois, group)
        assert len(outcome.prefix) == min(outcome.safe_lengths)
        assert len(outcome.safe_lengths) == len(group)


class TestSanitizeSemantics:
    def test_stricter_theta_shortens_prefix(self, space, engine):
        """Figure 7c: larger theta0 -> fewer POIs returned (monotone trend)."""
        group = spread_group(8, seed=5)
        pois = engine.query(8, group)
        lengths = []
        for theta0 in (0.01, 0.05, 0.2, 0.5):
            sanitizer = make_sanitizer(space, theta0=theta0, seed=1)
            lengths.append(len(sanitizer.sanitize(pois, group).prefix))
        assert lengths == sorted(lengths, reverse=True)

    def test_close_group_keeps_more_than_strict_theta(self, space, engine):
        """A tiny theta0 should allow several POIs through."""
        group = spread_group(8, seed=5)
        pois = engine.query(8, group)
        sanitizer = make_sanitizer(space, theta0=0.01, seed=1)
        assert len(sanitizer.sanitize(pois, group).prefix) >= 2

    @pytest.mark.parametrize("aggregate", [SUM, MAX, MIN], ids=lambda a: a.name)
    def test_all_builtin_aggregates_supported(self, space, aggregate, engine):
        engine_local = GNNQueryEngine(uniform_pois(800, seed=21), aggregate=aggregate)
        sanitizer = make_sanitizer(space, aggregate=aggregate)
        group = spread_group(4, seed=9)
        pois = engine_local.query(6, group)
        outcome = sanitizer.sanitize(pois, group)
        assert 1 <= len(outcome.prefix) <= 6

    def test_generic_aggregate_fallback_matches_decomposable(self, space, engine):
        """A sum aggregate without partial/merge must sanitize identically."""
        opaque_sum = Aggregate(
            "opaque-sum", lambda ds: float(sum(ds)), lambda m: m.sum(axis=1)
        )
        group = spread_group(5, seed=13)
        pois = engine.query(8, group)
        plan = SanitationTestPlan.from_parameters(0.05, n_samples_override=2500)
        xs, ys = space.sample_arrays(2500, np.random.default_rng(42))
        fast = AnswerSanitizer(space, SUM, plan, np.random.default_rng(0))
        slow = AnswerSanitizer(space, opaque_sum, plan, np.random.default_rng(0))
        out_fast = fast._sanitize_with_samples(pois, group, xs, ys)
        out_slow = slow._sanitize_with_samples(pois, group, xs, ys)
        assert out_fast == out_slow


class TestEarlyStopAgainstBatch:
    def test_same_prefix_on_shared_samples(self, space, engine):
        """The incremental (paper) path and the batched path must truncate
        identically when fed the same Monte-Carlo samples."""
        for seed in range(6):
            group = spread_group(5, seed=seed)
            pois = engine.query(8, group)
            sanitizer = make_sanitizer(space, samples=1500)
            xs, ys = space.sample_arrays(1500, np.random.default_rng(100 + seed))
            incremental = sanitizer._sanitize_incremental(pois, group, xs, ys)
            batched = sanitizer._sanitize_with_samples(pois, group, xs, ys)
            assert incremental.prefix == batched.prefix
            assert min(incremental.safe_lengths) == min(batched.safe_lengths)

    def test_default_mode_is_early_stop(self, space):
        assert make_sanitizer(space).early_stop

    def test_prefix_invariant_holds_in_both_modes(self, space, engine):
        group = spread_group(6, seed=21)
        pois = engine.query(8, group)
        for early_stop in (True, False):
            plan = SanitationTestPlan.from_parameters(0.05, n_samples_override=1200)
            sanitizer = AnswerSanitizer(
                space, SUM, plan, np.random.default_rng(3), early_stop=early_stop
            )
            outcome = sanitizer.sanitize(pois, group)
            assert len(outcome.prefix) == min(outcome.safe_lengths)


class TestVectorizedAgainstScalar:
    def test_identical_on_shared_samples(self, space, engine):
        """The numpy path must equal the pure-Python reference bit-for-bit."""
        group = spread_group(4, seed=17)
        pois = engine.query(6, group)
        sanitizer = make_sanitizer(space, samples=400)
        xs, ys = space.sample_arrays(400, np.random.default_rng(8))
        vectorized = sanitizer._sanitize_with_samples(pois, group, xs, ys)
        scalar = sanitizer.sanitize_scalar(pois, group, xs, ys)
        assert vectorized == scalar

    def test_scalar_validates_sample_count(self, space, engine):
        from repro.errors import ConfigurationError

        group = spread_group(3)
        pois = engine.query(4, group)
        sanitizer = make_sanitizer(space, samples=400)
        xs, ys = space.sample_arrays(10, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            sanitizer.sanitize_scalar(pois, group, xs, ys)
