"""Integration tests of the four privacy properties (Definition 2.2).

These check observable protocol behaviour, not cryptographic reductions:
Privacy I/II via indistinguishability of what the LSP receives, Privacy III
via the information content of what users receive, and Privacy IV via the
inequality attack run against returned answers.
"""

import random
from collections import Counter

import numpy as np
import pytest

from repro.attacks.inequality import inequality_attack
from repro.core.common import build_location_set
from repro.core.config import PPGNNConfig
from repro.core.group import random_group, run_ppgnn
from repro.crypto.homomorphic import encrypt_indicator
from repro.crypto.paillier import generate_keypair
from repro.gnn.aggregate import SUM
from repro.partition.layout import GroupLayout
from repro.partition.solver import solve_partition


class TestPrivacyI:
    """Each user's real location is one of d equally likely slots."""

    def test_dummies_and_real_same_distribution_support(self, space, nprng):
        real = space.sample_point(nprng)
        location_set = build_location_set(real, 3, 10, space, nprng)
        assert len(location_set) == 10
        assert location_set[3] == real
        assert all(space.contains(l) for l in location_set)

    def test_slot_choice_uniform_over_d(self):
        """Theorem 4.3: P(slot) = (d_seg / d) * (1 / d_seg) = 1 / d."""
        layout = GroupLayout(solve_partition(8, 25, 100))
        rng = random.Random(1)
        counts = Counter(
            layout.plan_placement(rng).absolute_positions[0] for _ in range(25_000)
        )
        expected = 25_000 / 25
        assert all(0.8 * expected < counts[s] < 1.2 * expected for s in range(25))

    def test_real_location_outside_space_rejected(self, space, nprng):
        from repro.errors import ConfigurationError
        from repro.geometry.point import Point

        with pytest.raises(ConfigurationError):
            build_location_set(Point(2.0, 2.0), 0, 5, space, nprng)


class TestPrivacyII:
    """The real query hides among delta' >= delta candidates behind a
    semantically secure indicator."""

    def test_indicator_ciphertexts_lack_visible_structure(self):
        """The hot entry's ciphertext must not repeat across positions —
        semantic security makes Enc(1) and Enc(0) indistinguishable without
        the secret key; at minimum all ciphertext values must be distinct."""
        _, pk = generate_keypair(128, seed=2)
        indicator = encrypt_indicator(pk, 12, 5, rng=random.Random(3))
        values = [c.value for c in indicator]
        assert len(set(values)) == len(values)

    def test_query_index_spans_all_candidates(self):
        """Over many runs the real query occupies every candidate slot."""
        layout = GroupLayout(solve_partition(4, 4, 8))
        rng = random.Random(4)
        seen = {layout.plan_placement(rng).query_index for _ in range(600)}
        assert seen == set(range(8))

    def test_lsp_generates_at_least_delta_candidates(self, lsp, fast_config):
        group = random_group(4, lsp.space, np.random.default_rng(1))
        run_ppgnn(lsp, group, fast_config, seed=1)
        assert lsp.last_stats.candidate_count >= fast_config.delta


class TestPrivacyIII:
    """Users learn exactly the requested answer — k POIs, nothing more."""

    def test_answer_contains_at_most_k_pois(self, lsp, fast_config):
        group = random_group(4, lsp.space, np.random.default_rng(2))
        result = run_ppgnn(lsp, group, fast_config, seed=2)
        assert len(result.answers) <= fast_config.k

    def test_returned_bytes_bounded_by_m_ciphertexts(self, lsp, fast_config):
        """The LSP -> coordinator payload is exactly m ciphertexts — it
        cannot smuggle the other delta' - 1 answers."""
        from repro.protocol.metrics import COORDINATOR, LSP

        group = random_group(4, lsp.space, np.random.default_rng(3))
        result = run_ppgnn(lsp, group, fast_config, seed=3)
        l_e = 2 * fast_config.keysize // 8
        assert result.report.link_bytes(LSP, COORDINATOR) == result.m * l_e

    def test_decoded_answer_pois_exist_in_database(self, lsp, fast_config):
        group = random_group(4, lsp.space, np.random.default_rng(4))
        result = run_ppgnn(lsp, group, fast_config, seed=4)
        for answer in result.answers:
            poi = lsp.engine.poi_by_id(answer.poi_id)
            assert poi.location.distance_to(answer.location) < 1e-4


class TestPrivacyIV:
    """Under full collusion, the victim hides in >= theta0 of the space."""

    @pytest.mark.parametrize("target_idx", [0, 2, 3])
    def test_collusion_attack_on_protocol_output(self, lsp, target_idx):
        theta0 = 0.05
        cfg = PPGNNConfig(
            d=6, delta=18, k=8, keysize=128, theta0=theta0,
            sanitation_samples=4000, key_seed=7,
        )
        failures = 0
        trials = 0
        for seed in range(5):
            group = random_group(4, lsp.space, np.random.default_rng(50 + seed))
            result = run_ppgnn(lsp, group, cfg, seed=seed)
            answer_locations = [a.location for a in result.answers]
            known = [l for i, l in enumerate(group) if i != target_idx]
            attack = inequality_attack(
                answer_locations, known, lsp.space, SUM,
                n_samples=4000, rng=np.random.default_rng(seed),
                true_target=group[target_idx],
            )
            assert attack.contains_target
            trials += 1
            if attack.succeeded(theta0):
                failures += 1
        # Type I error is bounded by gamma = 0.05 per test; tolerate noise.
        assert failures <= 1

    def test_nas_variant_documented_leak(self, lsp):
        """PPGNN-NAS makes no Privacy IV claim: with spread-out groups the
        attack succeeds for at least one configuration."""
        cfg = PPGNNConfig(
            d=6, delta=18, k=8, keysize=128, sanitize=False,
            sanitation_samples=2000, key_seed=7,
        )
        theta0 = 0.05
        attackable = 0
        for seed in range(6):
            group = random_group(6, lsp.space, np.random.default_rng(400 + seed))
            result = run_ppgnn(lsp, group, cfg, seed=seed)
            answer_locations = [a.location for a in result.answers]
            attack = inequality_attack(
                answer_locations, group[1:], lsp.space, SUM,
                n_samples=3000, rng=np.random.default_rng(seed),
            )
            if attack.succeeded(theta0):
                attackable += 1
        assert attackable > 0
