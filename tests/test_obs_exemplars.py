"""Histogram exemplars and the serve.job span plumbing behind them.

The contract has two halves: with ``ServeConfig(exemplars=True)`` every
latency observation may carry the span id of its job, per-bucket keeping
the worst observation; with exemplars off (the default) the serving
report — answers digest and every byte — is identical to a pre-exemplar
run, enforced against the pinned regression fixture.
"""

import hashlib
import json

import pytest

from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.datasets.synthetic import clustered_pois
from repro.errors import ConfigurationError, ReproError
from repro.geometry.space import LocationSpace
from repro.obs import Histogram, MetricsRegistry, render_exemplars
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.workload import WorkloadSpec, generate_workload

from tests.test_obs_regression import (
    EXPECTED_ANSWERS_DIGEST,
    EXPECTED_REPORT_SHA256,
)


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def config():
    return PPGNNConfig(
        d=3, delta=6, k=3, keysize=128, key_seed=5, sanitation_samples=16
    )


@pytest.fixture(scope="module")
def workload(space):
    spec = WorkloadSpec(
        queries=12,
        rate_qps=50.0,
        protocol_mix={"ppgnn": 1.0, "ppgnn-opt": 1.0, "naive": 1.0},
        group_size_mix={2: 1.0, 3: 1.0},
        k_mix={3: 1.0},
        tenants=("t0", "t1"),
        groups=4,
        repeat_fraction=0.25,
        seed=21,
    )
    return generate_workload(spec, space)


def _run(space, config, workload, **serve_kwargs):
    lsp = LSPServer(
        clustered_pois(500, space, seed=11), sanitation_samples=16, seed=99
    )
    return ServeEngine(
        lsp, config, ServeConfig(workers=2, **serve_kwargs)
    ).run(workload)


class TestHistogramExemplars:
    def test_keeps_worst_per_bucket(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(0.5, exemplar=7)
        hist.observe(0.9, exemplar=8)
        hist.observe(0.2, exemplar=9)
        hist.observe(5.0, exemplar=10)
        hist.observe(100.0, exemplar=11)  # overflow bucket
        data = hist.to_dict()
        assert data["exemplars"] == {
            "0": {"value": 0.9, "span": 8},
            "1": {"value": 5.0, "span": 10},
            "2": {"value": 100.0, "span": 11},
        }

    def test_order_invariant(self):
        a, b = Histogram(buckets=(1.0,)), Histogram(buckets=(1.0,))
        samples = [(0.5, 3), (0.9, 1), (0.9, 2), (0.1, 9)]
        for value, span in samples:
            a.observe(value, exemplar=span)
        for value, span in reversed(samples):
            b.observe(value, exemplar=span)
        assert a.to_dict() == b.to_dict()

    def test_no_exemplars_key_without_exemplars(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        assert "exemplars" not in hist.to_dict()

    def test_merge_snapshot_carries_exemplars(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0,)).observe(0.4, exemplar=5)
        target = MetricsRegistry()
        target.histogram("h", buckets=(1.0,)).observe(0.9, exemplar=2)
        target.merge_snapshot(source.snapshot())
        merged = target.snapshot().histograms["h"]
        assert merged["exemplars"] == {"0": {"value": 0.9, "span": 2}}
        assert merged["count"] == 2


class TestServeConfigValidation:
    def test_exemplars_require_obs(self):
        with pytest.raises(ConfigurationError, match="obs=True"):
            ServeConfig(workers=1, exemplars=True)

    def test_trace_capacity_requires_obs(self):
        with pytest.raises(ConfigurationError, match="obs=True"):
            ServeConfig(workers=1, trace_capacity=16)

    def test_trace_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            ServeConfig(workers=1, obs=True, trace_capacity=0)


class TestExemplarsOffByteIdentical:
    def test_pinned_fixture_digests_unmoved(self, space, config, workload):
        report = _run(space, config, workload, obs=False)
        assert report.answers_digest == EXPECTED_ANSWERS_DIGEST
        sha = hashlib.sha256(
            json.dumps(report.to_dict(), sort_keys=True).encode()
        ).hexdigest()
        assert sha == EXPECTED_REPORT_SHA256

    def test_obs_without_exemplars_emits_neither_key_nor_span(
        self, space, config, workload
    ):
        report = _run(space, config, workload, obs=True).to_dict()
        histograms = report["obs"]["metrics"]["histograms"]
        assert all("exemplars" not in h for h in histograms.values())
        assert all(s["name"] != "serve.job" for s in report["obs"]["spans"])
        assert (
            "serve.exemplars.recorded"
            not in report["obs"]["metrics"]["counters"]
        )


class TestExemplarsOn:
    @pytest.fixture(scope="class")
    def reports(self, space, config, workload):
        plain = _run(space, config, workload, obs=True)
        exemplared = _run(space, config, workload, obs=True, exemplars=True)
        return plain, exemplared

    def test_answers_and_report_body_identical(self, reports):
        plain, exemplared = reports
        assert exemplared.answers_digest == plain.answers_digest
        a, b = plain.to_dict(), exemplared.to_dict()
        a.pop("obs"), b.pop("obs")
        assert a == b

    def test_latency_histogram_totals_bit_identical(self, reports):
        plain, exemplared = reports
        a = plain.to_dict()["obs"]["metrics"]["histograms"][
            "serve.latency_seconds"
        ]
        b = dict(
            exemplared.to_dict()["obs"]["metrics"]["histograms"][
                "serve.latency_seconds"
            ]
        )
        b.pop("exemplars")
        assert a == b

    def test_exemplars_resolve_to_serve_job_spans(self, reports):
        _, exemplared = reports
        data = exemplared.to_dict()
        spans = {s["span_id"]: s for s in data["obs"]["spans"]}
        latency = data["obs"]["metrics"]["histograms"]["serve.latency_seconds"]
        assert latency["exemplars"]
        for entry in latency["exemplars"].values():
            span = spans[entry["span"]]
            assert span["name"] == "serve.job"
            assert "job_id" in span["attrs"]

    def test_recorded_counter_counts_planned_jobs(self, reports):
        _, exemplared = reports
        counters = exemplared.to_dict()["obs"]["metrics"]["counters"]
        assert counters["serve.exemplars.recorded"] == 12

    def test_exemplar_run_is_deterministic(self, space, config, workload):
        a = _run(space, config, workload, obs=True, exemplars=True)
        b = _run(space, config, workload, obs=True, exemplars=True)
        assert a.to_dict() == b.to_dict()


class TestRenderExemplars:
    def test_renders_span_subtree_with_slowest_path(
        self, space, config, workload
    ):
        report = _run(space, config, workload, obs=True, exemplars=True)
        rendered = render_exemplars(report.to_dict())
        assert "serve.latency_seconds" in rendered
        assert "serve.job" in rendered
        assert "slowest path:" in rendered

    def test_refuses_report_without_obs(self, space, config, workload):
        report = _run(space, config, workload, obs=False)
        with pytest.raises(ReproError, match="no obs payload"):
            render_exemplars(report.to_dict())

    def test_refuses_report_without_exemplars(self, space, config, workload):
        report = _run(space, config, workload, obs=True)
        with pytest.raises(ReproError, match="off by default"):
            render_exemplars(report.to_dict())
