"""Tests for the k-d tree index."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bruteforce import BruteForceIndex
from repro.index.kdtree import KDTree

coord = st.floats(min_value=0, max_value=1, allow_nan=False)
point_sets = st.lists(
    st.tuples(coord, coord), min_size=1, max_size=100, unique=True
)


def build_pair(pairs):
    kd = KDTree()
    oracle = BruteForceIndex()
    entries = [(Point(x, y), i) for i, (x, y) in enumerate(pairs)]
    kd.bulk_load(entries)
    for p, i in entries:
        oracle.insert(p, i)
    return kd, oracle


class TestConstruction:
    def test_empty(self):
        kd = KDTree()
        assert len(kd) == 0
        assert kd.nearest(Point(0, 0), 3) == []
        assert kd.range_query(Rect(0, 0, 1, 1)) == []

    def test_bulk_load_and_entries(self, small_pois):
        kd = KDTree()
        kd.bulk_load((p.location, p) for p in small_pois)
        assert len(kd) == len(small_pois)
        ids = sorted(p.poi_id for _, p in kd.entries())
        assert ids == sorted(p.poi_id for p in small_pois)

    def test_insert_goes_to_overflow(self, small_pois):
        kd = KDTree()
        kd.bulk_load((p.location, p) for p in small_pois[:50])
        kd.insert(small_pois[50].location, small_pois[50])
        assert kd.overflow_size == 1
        assert len(kd) == 51

    def test_rebuild_folds_overflow(self, small_pois):
        kd = KDTree()
        kd.bulk_load((p.location, p) for p in small_pois[:50])
        for poi in small_pois[50:60]:
            kd.insert(poi.location, poi)
        kd.rebuild()
        assert kd.overflow_size == 0
        assert len(kd) == 60


class TestQueries:
    @settings(max_examples=40, deadline=None)
    @given(point_sets, coord, coord, coord, coord)
    def test_range_matches_oracle(self, pairs, x1, y1, x2, y2):
        rect = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        kd, oracle = build_pair(pairs)
        got = sorted(i for _, i in kd.range_query(rect))
        want = sorted(i for _, i in oracle.range_query(rect))
        assert got == want

    @settings(max_examples=40, deadline=None)
    @given(point_sets, coord, coord, st.integers(min_value=1, max_value=12))
    def test_knn_matches_oracle(self, pairs, qx, qy, k):
        """kNN is exact: the distance sequence equals the oracle's, and the
        identities match whenever no exact distance ties exist (best-first
        search does not define a global order among tied points)."""
        kd, oracle = build_pair(pairs)
        q = Point(qx, qy)
        got = kd.nearest(q, k)
        want = oracle.nearest(q, k)
        got_dists = [p.distance_to(q) for p, _ in got]
        want_dists = [p.distance_to(q) for p, _ in want]
        assert got_dists == want_dists
        boundary = want_dists[-1] if want_dists else None
        all_dists = sorted(p.distance_to(q) for p, _ in oracle.entries())
        ties = all_dists.count(boundary) > 1 if boundary is not None else False
        if len(set(all_dists)) == len(all_dists) and not ties:
            assert [i for _, i in got] == [i for _, i in want]

    def test_knn_includes_overflow(self, small_pois):
        kd = KDTree()
        kd.bulk_load((p.location, p) for p in small_pois[:50])
        target = Point(0.123456, 0.654321)
        from repro.datasets.poi import POI

        newcomer = POI(9999, target, "new")
        kd.insert(target, newcomer)
        assert kd.nearest(target, 1)[0][1] is newcomer

    def test_large_scale_agreement(self):
        rng = np.random.default_rng(5)
        entries = [
            (Point(float(x), float(y)), i)
            for i, (x, y) in enumerate(rng.uniform(0, 1, (3000, 2)))
        ]
        kd = KDTree()
        kd.bulk_load(entries)
        oracle = BruteForceIndex()
        for p, i in entries:
            oracle.insert(p, i)
        for seed in range(5):
            q = Point(*np.random.default_rng(seed).uniform(0, 1, 2))
            assert [i for _, i in kd.nearest(q, 20)] == [
                i for _, i in oracle.nearest(q, 20)
            ]
