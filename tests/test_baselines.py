"""Tests for the APNN, IPPF, and GLP baselines."""

import numpy as np
import pytest

from repro.baselines.apnn import APNNServer, run_apnn
from repro.baselines.glp import run_glp
from repro.baselines.ippf import candidate_superset, cloak_rectangle, run_ippf
from repro.core.config import PPGNNConfig
from repro.core.group import random_group
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.bruteforce import brute_force_kgnn
from repro.protocol.metrics import LSP, USER


def truth_ids(lsp, locations, k):
    entries = list(lsp.engine.tree.entries())
    return [p.poi_id for _, p, _ in brute_force_kgnn(entries, locations, k, lsp.aggregate)]


@pytest.fixture()
def group(lsp):
    return random_group(5, lsp.space, np.random.default_rng(77))


class TestAPNN:
    @pytest.fixture()
    def server(self, medium_pois):
        return APNNServer(medium_pois, cells_per_side=16)

    def test_invalid_grid(self, medium_pois):
        with pytest.raises(ConfigurationError):
            APNNServer(medium_pois, cells_per_side=1)

    def test_cloak_contains_user_cell(self, server):
        for location in (Point(0.02, 0.02), Point(0.5, 0.5), Point(0.99, 0.99)):
            cells = server.cloak_cells(location, 5)
            assert len(cells) == 25
            assert server.grid.cell_of(location) in cells

    def test_cloak_side_validation(self, server):
        with pytest.raises(ConfigurationError):
            server.cloak_cells(Point(0.5, 0.5), 0)
        with pytest.raises(ConfigurationError):
            server.cloak_cells(Point(0.5, 0.5), 17)

    def test_answer_is_cell_center_knn(self, server, fast_config):
        """The approximation the paper criticizes: kNN of the cell center."""
        location = Point(0.31, 0.64)
        result = run_apnn(server, location, fast_config, seed=1)
        cell = server.grid.cell_of(location)
        expected = [p.poi_id for p in server.engine.query(
            fast_config.k, [server.grid.cell_center(*cell)]
        )]
        assert list(result.answer_ids) == expected

    def test_precompute_and_invalidate(self, medium_pois):
        server = APNNServer(medium_pois, cells_per_side=4)
        assert server.precompute(k=3) == 16
        assert server.invalidate() == 16
        assert server.invalidate() == 0

    def test_lazy_cache_reused(self, server, fast_config):
        run_apnn(server, Point(0.5, 0.5), fast_config, seed=1)
        cached = len(server._cache)
        run_apnn(server, Point(0.5, 0.5), fast_config, seed=2)
        assert len(server._cache) == cached

    def test_lsp_does_no_kgnn_at_query_time(self, server, fast_config):
        """After warmup the LSP cost is pure selection (Figure 5f's story)."""
        run_apnn(server, Point(0.4, 0.4), fast_config, seed=1)  # warm cache
        result = run_apnn(server, Point(0.4, 0.4), fast_config, seed=2)
        assert result.report.ops_by_role[LSP].scalar_muls > 0

    def test_default_cloak_matches_d(self, server):
        cfg = PPGNNConfig(d=25, delta=100, keysize=128, key_seed=7)
        result = run_apnn(server, Point(0.5, 0.5), cfg, seed=1)
        assert result.extras["cloak_cells"] == 25


class TestIPPF:
    def test_cloak_rect_contains_user(self, space):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = space.sample_point(rng)
            rect = cloak_rectangle(p, 1e-4, space, rng)
            assert rect.contains_point(p)
            assert space.bounds.contains_rect(rect)

    def test_cloak_area_fraction(self, space):
        rng = np.random.default_rng(1)
        rect = cloak_rectangle(Point(0.5, 0.5), 0.01, space, rng)
        assert rect.area == pytest.approx(0.01, rel=0.01)

    def test_cloak_validation(self, space):
        with pytest.raises(ConfigurationError):
            cloak_rectangle(Point(0.5, 0.5), 0.0, space, np.random.default_rng(0))

    def test_superset_contains_truth(self, lsp, group):
        """Soundness: the candidate set must contain the exact kGNN answer
        for every placement of users inside their cloaks — in particular
        the real one."""
        rng = np.random.default_rng(2)
        rects = [cloak_rectangle(p, 1e-4, lsp.space, rng) for p in group]
        candidates = candidate_superset(lsp, rects, 8)
        candidate_ids = {p.poi_id for p in candidates}
        assert set(truth_ids(lsp, group, 8)) <= candidate_ids

    def test_answer_exact_after_filtering(self, lsp, fast_config, group):
        result = run_ippf(lsp, group, fast_config, seed=3)
        assert list(result.answer_ids) == truth_ids(lsp, group, fast_config.k)

    def test_candidate_count_reported(self, lsp, fast_config, group):
        result = run_ippf(lsp, group, fast_config, seed=4)
        assert result.extras["candidate_count"] >= fast_config.k

    def test_bigger_cloaks_more_candidates(self, lsp, fast_config, group):
        small = run_ippf(lsp, group, fast_config, area_fraction=1e-6, seed=5)
        large = run_ippf(lsp, group, fast_config, area_fraction=1e-2, seed=5)
        assert large.extras["candidate_count"] > small.extras["candidate_count"]

    def test_intra_group_chain_traffic(self, lsp, fast_config, group):
        """The filter chain hops the candidate list through the group."""
        result = run_ippf(lsp, group, fast_config, seed=6)
        assert result.report.link_bytes(USER, USER) > 0

    def test_requires_group(self, lsp, fast_config):
        with pytest.raises(ConfigurationError):
            run_ippf(lsp, [Point(0.5, 0.5)], fast_config)

    def test_no_cryptography_used(self, lsp, fast_config, group):
        result = run_ippf(lsp, group, fast_config, seed=7)
        assert result.report.ops_by_role[USER].encryptions == 0
        assert result.report.ops_by_role[LSP].scalar_muls == 0


class TestGLP:
    def test_answer_is_centroid_knn(self, lsp, fast_config, group):
        result = run_glp(lsp, group, fast_config, seed=1)
        centroid = result.extras["centroid"]
        expected_centroid = Point(
            sum(p.x for p in group) / len(group),
            sum(p.y for p in group) / len(group),
        )
        assert centroid.distance_to(expected_centroid) < 1e-6
        expected = [p.poi_id for p in lsp.engine.query(fast_config.k, [centroid])]
        assert list(result.answer_ids) == expected

    def test_quadratic_share_traffic(self, lsp, fast_config):
        """Doubling n roughly quadruples the intra-group ciphertext bytes."""
        rng = np.random.default_rng(5)
        small_group = random_group(4, lsp.space, rng)
        big_group = random_group(8, lsp.space, rng)
        small = run_glp(lsp, small_group, fast_config, seed=2)
        big = run_glp(lsp, big_group, fast_config, seed=2)
        ratio = big.report.link_bytes(USER, USER) / small.report.link_bytes(USER, USER)
        assert 3.0 < ratio < 5.0

    def test_lsp_sees_plaintext_query(self, lsp, fast_config, group):
        """Privacy II violation: the LSP-bound message is tiny plaintext."""
        result = run_glp(lsp, group, fast_config, seed=3)
        from repro.protocol.metrics import COORDINATOR

        assert result.report.link_bytes(COORDINATOR, LSP) <= 24

    def test_requires_group(self, lsp, fast_config):
        with pytest.raises(ConfigurationError):
            run_glp(lsp, [Point(0.5, 0.5)], fast_config)

    def test_approximate_not_exact_in_general(self, lsp, fast_config):
        """Over several random groups the centroid answer must diverge from
        the exact kGNN at least once (it is an approximation)."""
        diverged = False
        for seed in range(6):
            group = random_group(6, lsp.space, np.random.default_rng(300 + seed))
            result = run_glp(lsp, group, fast_config, seed=seed)
            if list(result.answer_ids) != truth_ids(lsp, group, fast_config.k):
                diverged = True
                break
        assert diverged
