"""Tests for PPGNNConfig validation and derivation."""

import pytest

from repro.core.config import PPGNNConfig
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_match_table3(self):
        cfg = PPGNNConfig()
        assert cfg.d == 25 and cfg.delta == 100
        assert cfg.k == 8 and cfg.theta0 == 0.05
        assert (cfg.gamma, cfg.eta, cfg.phi) == (0.05, 0.2, 0.1)

    def test_d_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            PPGNNConfig(d=1)

    def test_delta_ge_d(self):
        with pytest.raises(ConfigurationError):
            PPGNNConfig(d=25, delta=10)

    def test_k_positive(self):
        with pytest.raises(ConfigurationError):
            PPGNNConfig(k=0)

    def test_theta0_domain(self):
        with pytest.raises(ConfigurationError):
            PPGNNConfig(theta0=0.0)
        with pytest.raises(ConfigurationError):
            PPGNNConfig(theta0=1.5)
        assert PPGNNConfig(theta0=1.0).theta0 == 1.0

    def test_sanitize_requires_theta0(self):
        with pytest.raises(ConfigurationError):
            PPGNNConfig(theta0=None, sanitize=True)
        assert PPGNNConfig(theta0=None, sanitize=False).theta0 is None

    def test_keysize_floor(self):
        with pytest.raises(ConfigurationError):
            PPGNNConfig(keysize=32)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ConfigurationError):
            PPGNNConfig(aggregate_name="harmonic-mean")


class TestDerivedConfigs:
    def test_for_single_user(self):
        cfg = PPGNNConfig(d=25, delta=100).for_single_user()
        assert cfg.delta == cfg.d == 25
        assert cfg.theta0 is None and not cfg.sanitize

    def test_without_sanitation(self):
        cfg = PPGNNConfig().without_sanitation()
        assert not cfg.sanitize
        assert cfg.theta0 == 0.05  # parameter survives; protocol ignores it

    def test_aggregate_resolution(self):
        assert PPGNNConfig(aggregate_name="max").aggregate.name == "max"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PPGNNConfig().d = 30
