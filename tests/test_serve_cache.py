"""Cache correctness: cached kGNN results must equal uncached ones."""

import random

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.space import LocationSpace
from repro.gnn.engine import GNNQueryEngine
from repro.serve.cache import CacheStats, KnnLRUCache, knn_cache_key


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def pois(space):
    return uniform_pois(400, space, np.random.default_rng(11))


class TestKnnLRUCache:
    def test_lru_eviction_order(self):
        cache = KnnLRUCache(2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == 1  # refreshes "a"
        cache.store("c", 3)  # evicts "b", the least recently used
        assert cache.lookup("b") is None
        assert cache.lookup("a") == 1 and cache.lookup("c") == 3
        assert cache.stats.evictions == 1

    def test_counters_and_hit_rate(self):
        cache = KnnLRUCache(4)
        assert cache.lookup("x") is None
        cache.store("x", 42)
        assert cache.lookup("x") == 42
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            KnnLRUCache(0)

    def test_stats_merge(self):
        a, b = CacheStats(hits=1, misses=2), CacheStats(hits=3, misses=4, evictions=5)
        a.merge(b)
        assert (a.hits, a.misses, a.evictions) == (4, 6, 5)


class TestEngineCaching:
    def test_cached_results_identical_under_eviction_pressure(self, pois, space):
        """Random queries with repeats, tiny capacity: hits == uncached."""
        plain = GNNQueryEngine(pois)
        cached = GNNQueryEngine(pois)
        cached.set_knn_cache(KnnLRUCache(8))  # far smaller than the query mix
        rng = random.Random(99)
        nprng = np.random.default_rng(99)
        history = []
        for _ in range(120):
            if history and rng.random() < 0.5:
                k, group = history[rng.randrange(len(history))]
            else:
                k = rng.randrange(1, 6)
                group = tuple(space.sample_points(rng.randrange(1, 4), nprng))
                history.append((k, group))
            expected = plain.query(k, group)
            got = cached.query(k, group)
            assert [p.poi_id for p in got] == [p.poi_id for p in expected]
        stats = cached.knn_cache.stats
        assert stats.hits > 0 and stats.misses > 0 and stats.evictions > 0

    def test_mutation_invalidates_entries(self, pois, space):
        engine = GNNQueryEngine(pois)
        engine.set_knn_cache(KnnLRUCache(16))
        group = tuple(space.sample_points(2, np.random.default_rng(5)))
        before = engine.query(3, group)
        victim = before[0]
        assert engine.delete(victim)
        after = engine.query(3, group)
        assert victim.poi_id not in [p.poi_id for p in after]
        engine.insert(victim)
        again = engine.query(3, group)
        assert [p.poi_id for p in again] == [p.poi_id for p in before]

    def test_key_distinguishes_k_and_locations(self, space):
        group = tuple(space.sample_points(2, np.random.default_rng(1)))
        base = knn_cache_key(0, "mbm", "sum", 3, group)
        assert knn_cache_key(0, "mbm", "sum", 4, group) != base
        assert knn_cache_key(1, "mbm", "sum", 3, group) != base
        assert knn_cache_key(0, "mbm", "max", 3, group) != base
        assert knn_cache_key(0, "mbm", "sum", 3, group[:1]) != base
