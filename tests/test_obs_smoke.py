"""The obs-smoke contract: a traced serving run plus targeted error
scenarios must publish every metric OBSERVABILITY.md documents, and the
exported trace must parse and form a well-formed (acyclic) span forest.

Run directly by the ``obs-smoke`` CI job.
"""

import json
import re
from pathlib import Path

import pytest

from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.crypto.paillier import generate_keypair
from repro.datasets.synthetic import clustered_pois
from repro.errors import (
    DeadlineExceededError,
    GuardError,
    RetryExhaustedError,
)
from repro.geometry.space import LocationSpace
from repro.guard.guard import ProtocolGuard
from repro.obs import Observability, parse_jsonl, render_span_tree, validate_spans
from repro.partition.layout import GroupLayout
from repro.partition.solver import solve_partition
from repro.protocol.messages import PositionAssignment
from repro.protocol.metrics import CostLedger
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.workload import WorkloadSpec, generate_workload
from repro.transport.channel import FaultyChannel
from repro.transport.faults import FaultPlan, LinkFaults
from repro.transport.retry import RetryPolicy
from repro.transport.transport import NETWORK, Transport

DOC = Path(__file__).resolve().parent.parent / "OBSERVABILITY.md"


def documented_metric_names() -> set[str]:
    """Every name in OBSERVABILITY.md's canonical metric table."""
    names = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        match = re.match(r"\|\s*`([a-z0-9_.]+)`\s*\|", line)
        if match:
            names.add(match.group(1))
    return names


@pytest.fixture(scope="module")
def served_report():
    """20 queries, guard armed, faults on — the main publishing scenario."""
    space = LocationSpace.unit_square()
    lsp = LSPServer(
        clustered_pois(400, space, seed=11), sanitation_samples=16, seed=99
    )
    config = PPGNNConfig(
        d=3, delta=6, k=3, keysize=128, key_seed=5, sanitation_samples=16
    )
    spec = WorkloadSpec(
        queries=20,
        rate_qps=40.0,
        protocol_mix={"ppgnn": 1.0, "ppgnn-opt": 1.0, "naive": 1.0},
        group_size_mix={2: 1.0, 3: 1.0},
        k_mix={3: 1.0},
        tenants=("t0", "t1"),
        groups=5,
        repeat_fraction=0.2,
        seed=33,
    )
    serve = ServeConfig(
        workers=2,
        obs=True,
        guard=True,
        faults=FaultPlan.uniform(0.08, seed=7),
    )
    return ServeEngine(lsp, config, serve).run(generate_workload(spec, space))


def _guard_scenarios() -> Observability:
    """Drive a round guard into a deadline miss and a state violation."""
    obs = Observability()
    keypair = generate_keypair(128, seed=54321)
    space = LocationSpace.unit_square()
    guard = ProtocolGuard(deadline_seconds=1.0, obs=obs)

    def arm():
        return guard.begin(
            layout=GroupLayout(solve_partition(2, 3, 6)),
            public_key=keypair.public_key,
            space=space,
            ledger=ledger,
            k=3,
            answer_m=2,
        )

    # Deadline miss: network clock already past budget when a hook ticks.
    ledger = CostLedger()
    rg = arm()
    rg.planned()
    ledger.times[NETWORK] = 5.0
    with pytest.raises(DeadlineExceededError):
        rg.position_delivered(0, PositionAssignment(position=1))

    # State violation: planning twice is out of choreography.
    ledger = CostLedger()
    rg = arm()
    rg.planned()
    with pytest.raises(GuardError):
        rg.planned()
    return obs


def _cluster_scenario() -> Observability:
    """A degraded scatter–gather job publishes every ``cluster.*`` counter.

    Shard 2 is fully dead (failovers, a lost shard, a partial answer);
    shard 0's primary replica is slow enough to hedge, and the fast
    secondary wins the race.
    """
    from repro.cluster import ClusterConfig, ReplicaFault, ShardFaultPlan
    from repro.cluster.scatter import ClusterRunner
    from repro.serve.workload import GroupProfile, QueryJob

    obs = Observability()
    space = LocationSpace.unit_square()
    lsp = LSPServer(
        clustered_pois(120, space, seed=11), sanitation_samples=8, seed=99
    )
    config = PPGNNConfig(
        d=3, delta=6, k=3, keysize=128, key_seed=5,
        sanitize=False, sanitation_samples=8,
    )
    group = GroupProfile(
        group_id=0,
        tenant="t0",
        locations=tuple(p.location for p in clustered_pois(2, space, seed=4)),
    )
    job = QueryJob(
        job_id=0, tenant="t0", group_id=0, protocol="ppgnn",
        k=3, seed=17, arrival_time=0.0,
    )
    probe = ClusterRunner(lsp, config, ClusterConfig(shards=3, replicas=2))
    slow_primary = probe.ring.route(job.tenant, job.group_id, 0)
    plan = ShardFaultPlan(
        replicas={
            (2, 0): ReplicaFault(kill_after=0),
            (2, 1): ReplicaFault(kill_after=0),
            (0, slow_primary): ReplicaFault(slow_start=5, slow_factor=10.0),
        }
    )
    runner = ClusterRunner(
        lsp,
        config,
        ClusterConfig(
            shards=3, replicas=2, quorum=0.5, faults=plan, hedge_factor=2.0
        ),
        obs=obs,
    )
    outcome = runner.run_job(job, group)
    assert outcome.partial and outcome.lost_shards == (2,)
    assert runner.stats.hedge_wins > 0 and runner.stats.failovers > 0
    return obs


def _exhaustion_scenario() -> Observability:
    """A dead link defeats the retry budget."""
    obs = Observability()
    plan = FaultPlan(default=LinkFaults(drop=0.99), seed=1)
    transport = Transport(
        channel=FaultyChannel(plan),
        policy=RetryPolicy(max_attempts=2, base_backoff_seconds=0.0),
        obs=obs,
    )
    with pytest.raises(RetryExhaustedError):
        transport.deliver(
            CostLedger(), "coordinator", "lsp", PositionAssignment(position=0)
        )
    return obs


def _budget_scenario() -> Observability:
    """A dead link drains the *session* retry budget (not max_attempts)."""
    obs = Observability()
    plan = FaultPlan(default=LinkFaults(drop=0.99), seed=2)
    transport = Transport(
        channel=FaultyChannel(plan),
        policy=RetryPolicy(
            max_attempts=10, base_backoff_seconds=0.0, retry_budget=2
        ),
        obs=obs,
    )
    with pytest.raises(RetryExhaustedError) as excinfo:
        transport.deliver(
            CostLedger(), "coordinator", "lsp", PositionAssignment(position=0)
        )
    assert excinfo.value.retry_budget == 2
    return obs


def _breaker_scenario() -> Observability:
    """Drive one breaker through open → short-circuit → half-open probe."""
    from repro.serve.control import BreakerBoard

    obs = Observability()
    board = BreakerBoard(2, 4, obs=obs)
    board.failure(0, 0, 0)
    board.failure(0, 0, 1)  # second consecutive failure: opens
    assert board.state(0, 0) == "open"
    assert not board.allow(0, 0, 2)  # short-circuited while open
    assert board.allow(0, 0, 6)  # probe_after elapsed: half-open probe
    board.success(0, 0)
    assert board.state(0, 0) == "closed"
    return obs


def _control_scenario() -> set[str]:
    """An overloaded control-loop run publishes every ``control.*`` counter.

    An unmeetable p99 budget guarantees the burn crosses every
    escalation threshold on the first tick that sees a completion, so
    the loop scales up, switches policy, enters brownout, and degrades
    later arrivals — regardless of the host's exact cost-model numbers.
    """
    from repro.obs.analyze import SLOPolicy
    from repro.serve.control import ControlConfig

    space = LocationSpace.unit_square()
    lsp = LSPServer(
        clustered_pois(200, space, seed=11), sanitation_samples=16, seed=99
    )
    config = PPGNNConfig(
        d=3, delta=6, k=4, keysize=128, key_seed=5, sanitation_samples=16
    )
    spec = WorkloadSpec(
        queries=16,
        rate_qps=200.0,
        protocol_mix={"ppgnn": 1.0},
        group_size_mix={2: 1.0},
        k_mix={4: 1.0},
        tenants=("t0", "t1"),
        groups=4,
        seed=33,
    )
    control = ControlConfig(
        tick_seconds=0.01,
        window_seconds=0.04,
        slo=SLOPolicy(latency_p99=1e-6),
        max_workers=2,
        shed_policy="degrade",
    )
    serve = ServeConfig(workers=1, obs=True, control=control)
    report = ServeEngine(lsp, config, serve).run(generate_workload(spec, space))
    assert report.control is not None, "the loop must actuate under overload"
    assert report.failed == 0
    metrics = report.obs["metrics"]
    return (
        set(metrics["counters"])
        | set(metrics["gauges"])
        | set(metrics["histograms"])
    )


def _small_serve(queries: int, **serve_kwargs) -> "ServingReport":
    """A tiny traced serving run for targeted metric scenarios."""
    space = LocationSpace.unit_square()
    lsp = LSPServer(
        clustered_pois(120, space, seed=11), sanitation_samples=8, seed=99
    )
    config = PPGNNConfig(
        d=3, delta=6, k=3, keysize=128, key_seed=5,
        sanitize=False, sanitation_samples=8,
    )
    spec = WorkloadSpec(
        queries=queries,
        rate_qps=40.0,
        protocol_mix={"ppgnn": 1.0},
        group_size_mix={2: 1.0},
        k_mix={3: 1.0},
        tenants=("t0",),
        groups=2,
        seed=33,
    )
    serve = ServeConfig(workers=1, obs=True, **serve_kwargs)
    return ServeEngine(lsp, config, serve).run(generate_workload(spec, space))


def _dropped_spans_scenario() -> set[str]:
    """A tiny trace ring buffer overflows → ``obs.trace.spans_dropped``."""
    report = _small_serve(6, trace_capacity=4)
    counters = report.obs["metrics"]["counters"]
    assert counters["obs.trace.spans_dropped"] > 0
    return set(counters)


def _exemplars_scenario() -> set[str]:
    """Exemplar recording publishes ``serve.exemplars.recorded`` and
    attaches span ids to latency histogram buckets."""
    report = _small_serve(6, exemplars=True)
    metrics = report.obs["metrics"]
    assert metrics["counters"]["serve.exemplars.recorded"] == 6
    latency = metrics["histograms"]["serve.latency_seconds"]
    assert latency["exemplars"], "exemplar run must attach span ids"
    span_ids = {span["span_id"] for span in report.obs["spans"]}
    for entry in latency["exemplars"].values():
        assert entry["span"] in span_ids
    return set(metrics["counters"])


class TestObsSmoke:
    def test_twenty_queries_complete(self, served_report):
        assert served_report.queries == 20
        assert served_report.completed + served_report.failed == 20
        assert served_report.obs is not None

    def test_trace_jsonl_parses_and_is_acyclic(self, served_report, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        with trace_path.open("w", encoding="utf-8") as fh:
            for span in served_report.obs["spans"]:
                fh.write(json.dumps(span, sort_keys=True) + "\n")
        spans = parse_jsonl(trace_path.read_text(encoding="utf-8"))
        assert spans, "a 20-query traced run must export spans"
        validate_spans(spans)  # duplicate ids, missing parents, cycles
        assert render_span_tree(spans)  # renders without raising

    def test_span_names_cover_the_protocol_layers(self, served_report):
        names = {span["name"] for span in served_report.obs["spans"]}
        assert "session.query" in names
        assert names & {"round.ppgnn", "round.ppgnn-opt", "round.naive"}
        assert "coordinator.decrypt" in names
        assert "transport.send" in names

    def test_every_documented_metric_is_published(self, served_report):
        documented = documented_metric_names()
        assert len(documented) >= 35, "metric table went missing from the doc"
        metrics = served_report.obs["metrics"]
        published = (
            set(metrics["counters"])
            | set(metrics["gauges"])
            | set(metrics["histograms"])
        )
        published |= _guard_scenarios().snapshot().names
        published |= _exhaustion_scenario().snapshot().names
        published |= _budget_scenario().snapshot().names
        published |= _cluster_scenario().snapshot().names
        published |= _breaker_scenario().snapshot().names
        published |= _control_scenario()
        published |= _dropped_spans_scenario()
        published |= _exemplars_scenario()
        missing = documented - published
        assert not missing, f"documented but never published: {sorted(missing)}"

    def test_no_undocumented_metrics_leak(self, served_report):
        """The doc table is the registry of record — additions go there."""
        documented = documented_metric_names()
        metrics = served_report.obs["metrics"]
        published = (
            set(metrics["counters"])
            | set(metrics["gauges"])
            | set(metrics["histograms"])
        )
        undocumented = published - documented
        assert not undocumented, f"published but not documented: {sorted(undocumented)}"

    def test_faulty_run_published_transport_reliability_metrics(self, served_report):
        counters = served_report.obs["metrics"]["counters"]
        assert counters["transport.messages"] > 0
        assert counters["transport.retries"] > 0
        assert counters["transport.corrupt_rejected"] > 0
        assert counters["guard.rounds"] > 0

    def test_latency_histogram_observed_every_planned_job(self, served_report):
        hist = served_report.obs["metrics"]["histograms"]["serve.latency_seconds"]
        assert hist["count"] == served_report.completed + served_report.failed
