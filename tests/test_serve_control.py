"""Closed-loop overload control (`repro.serve.control`).

Pins SERVING.md's "Overload & degradation model": config validation,
the controller's escalation / hysteresis state machine, shed/degrade
admission accounting, the circuit-breaker state machine, scheduler
drain exactness, and the engine-level contracts — typed sheds, quality
scored brownout answers, serial ≡ multiprocessing control timelines,
and byte-identity with ``control=None`` when the loop never triggers.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ShardFaultPlan
from repro.cluster.scatter import ClusterStats
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.datasets.synthetic import clustered_pois
from repro.errors import (
    AdmissionRejectedError,
    BackpressureError,
    ConfigurationError,
    OverloadSheddedError,
    QueueFullError,
)
from repro.geometry.space import LocationSpace
from repro.obs.analyze import SLOPolicy
from repro.serve import ServeConfig, ServeEngine, WorkloadSpec, generate_workload
from repro.serve.control import (
    SHED_POLICIES,
    BreakerBoard,
    CircuitBreaker,
    ControlConfig,
    OverloadController,
)
from repro.serve.scheduler import POLICIES, make_scheduler
from repro.serve.workload import QueryJob

SAMPLES = 8


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def pois(space):
    return clustered_pois(200, space, seed=7)


@pytest.fixture(scope="module")
def config():
    return PPGNNConfig(
        d=4, delta=8, k=4, keysize=128, key_seed=1, sanitation_samples=SAMPLES
    )


@pytest.fixture(scope="module")
def cluster_config():
    # The cluster merge needs unsanitized per-shard answers (NAS).
    return PPGNNConfig(
        d=4, delta=8, k=4, keysize=128, key_seed=1,
        sanitize=False, sanitation_samples=SAMPLES,
    )


@pytest.fixture(scope="module")
def lsp(pois):
    return LSPServer(pois, sanitation_samples=SAMPLES, seed=99)


def overload_spec(seed=5, queries=60, rate=2000.0):
    """A flash crowd: 4x the base rate through the middle half."""
    span = queries / rate
    return WorkloadSpec(
        queries=queries,
        rate_qps=rate,
        protocol_mix={"ppgnn": 1.0},
        group_size_mix={2: 1.0},
        k_mix={4: 1.0},
        tenants=("t0", "t1", "t2"),
        groups=6,
        seed=seed,
        burst_multiplier=4.0,
        burst_start=0.25 * span,
        burst_duration=0.5 * span,
    )


def hair_trigger_control(**overrides):
    """A control config that escalates on the first measured completion."""
    options = dict(
        tick_seconds=0.002,
        window_seconds=0.008,
        slo=SLOPolicy(latency_p99=1e-6),
        max_workers=4,
    )
    options.update(overrides)
    return ControlConfig(**options)


def job(job_id=0, tenant="t0", k=4, group_id=0):
    return QueryJob(
        job_id=job_id, tenant=tenant, group_id=group_id,
        protocol="ppgnn", k=k, seed=17, arrival_time=0.0,
    )


# --------------------------------------------------------------- validation


class TestControlConfig:
    def test_defaults_are_valid(self):
        cfg = ControlConfig()
        assert cfg.shed_policy in SHED_POLICIES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tick_seconds": 0.0},
            {"window_seconds": -1.0},
            {"min_workers": 0},
            {"max_workers": 0},
            {"min_workers": 4, "max_workers": 2},
            {"scale_up_burn": 0.0},
            {"scale_down_burn": -0.1},
            {"scale_down_burn": 1.0, "scale_up_burn": 1.0},
            {"policy_switch_burn": 0.0},
            {"brownout_burn": 0.0},
            {"hysteresis_ticks": 0},
            {"pressure_policy": "lifo"},
            {"shed_policy": "drop"},
            {"brownout_k": 0},
            {"retry_after_ticks": 0},
            {"queue_high_fraction": 0.0},
            {"queue_high_fraction": 1.5},
            {"breaker_failures": 0},
            {"breaker_probe_after": 0},
            {"retry_budget": -1},
        ],
    )
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ControlConfig(**kwargs)

    def test_serve_config_rejects_non_control_objects(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(control=42)

    def test_serve_config_accepts_control(self):
        assert ServeConfig(control=ControlConfig()).control is not None


class TestTypedErrors:
    def test_shed_error_taxonomy(self):
        err = OverloadSheddedError("t0", retry_after_tick=9, burn_rate=2.5)
        assert isinstance(err, AdmissionRejectedError)
        assert isinstance(err, BackpressureError)
        assert err.retry_after_tick == 9
        assert err.burn_rate == 2.5
        assert err.tenant == "t0"
        # Shedding is a load decision, not a quota one.
        assert err.in_flight == 0 and err.limit == 0
        assert "retry after control tick 9" in str(err)

    def test_queue_full_carries_depth_and_capacity(self):
        err = QueueFullError(12, 12)
        assert err.depth == 12 and err.capacity == 12


# --------------------------------------------------- controller state machine


def make_controller(cfg=None, workers=2, policy="fifo", capacity=10):
    return OverloadController(
        cfg or ControlConfig(max_workers=4),
        workers=workers,
        policy=policy,
        queue_capacity=capacity,
    )


class TestControllerStateMachine:
    def test_idle_ticks_leave_no_trace(self):
        controller = make_controller()
        for tick in range(5):
            assert controller.on_tick(0.25 * (tick + 1), 0) == []
        assert controller.tick_index == 5
        assert not controller.acted
        assert controller.timeline == []

    def test_queue_depth_is_a_leading_indicator(self):
        """Scale-up fires on queue burn alone, before any completion."""
        cfg = ControlConfig(max_workers=3, queue_high_fraction=0.5)
        controller = make_controller(cfg)
        actions = controller.on_tick(0.25, 5)  # depth 5 of 10 => burn 1.0
        assert ("scale_up", 3) in actions
        assert controller.workers == 3
        assert controller.acted

    def test_full_escalation_in_one_tick(self):
        """Brownout, policy switch, and scale-up are independent levers."""
        cfg = ControlConfig(max_workers=3)
        controller = make_controller(cfg)
        controller.on_arrival(0.1, "t0")
        controller.on_arrival(0.2, "t1")
        actions = controller.on_tick(0.25, 10)  # burn 2.0 crosses all three
        assert ("policy", "shortest-cost") in actions
        assert ("scale_up", 3) in actions
        assert controller.brownout_active
        assert controller.brownouts == 1
        kinds = [entry["action"] for entry in controller.timeline]
        assert kinds == ["brownout_enter", "policy_switch", "scale_up"]

    def test_deescalation_relaxes_one_lever_per_calm_streak(self):
        cfg = ControlConfig(max_workers=3, hysteresis_ticks=2)
        controller = make_controller(cfg)
        controller.on_arrival(0.1, "t0")
        controller.on_tick(0.25, 10)  # escalate everything
        assert controller.brownout_active and controller.workers == 3
        assert controller.policy == "shortest-cost"

        relaxations = []
        for tick in range(8):  # 8 calm ticks = 4 streaks of 2
            controller.on_tick(0.5 + 0.25 * tick, 0)
            relaxations = [
                e["action"] for e in controller.timeline
                if e["action"].startswith(("brownout_exit", "policy_revert",
                                           "scale_down"))
            ]
        assert relaxations == ["brownout_exit", "policy_revert", "scale_down"]
        assert not controller.brownout_active
        assert controller.policy == "fifo"
        assert controller.workers == 2  # back to initial = min_workers

    def test_hysteresis_band_freezes_the_calm_streak(self):
        """Mid-band pressure resets calm ticks: no relaxation happens."""
        cfg = ControlConfig(
            max_workers=3, hysteresis_ticks=2,
            scale_up_burn=1.0, scale_down_burn=0.5,
        )
        controller = make_controller(cfg)
        controller.on_tick(0.25, 10)  # escalate (scale_up)
        assert controller.workers == 3
        # Alternate calm / mid-band: the streak never reaches 2.
        for tick in range(6):
            depth = 0 if tick % 2 == 0 else 4  # burn 0.0 then 0.8
            controller.on_tick(0.5 + 0.25 * tick, depth)
        assert controller.workers == 3
        assert controller.scale_downs == 0

    def test_tenant_selection_scales_with_overshoot(self):
        controller = make_controller()
        for index, tenant in enumerate(["a", "a", "a", "b", "b", "c", "d"]):
            controller.on_arrival(0.01 * index, tenant)
        # burn 1.5 => half of 4 tenants; heaviest first, ties by name.
        assert controller._select_tenants(1.5) == ("a", "b")
        # burn >= 2.0 => everyone.
        assert controller._select_tenants(2.5) == ("a", "b", "c", "d")
        # Entering brownout always sheds at least one tenant.
        assert controller._select_tenants(1.0) == ("a",)

    def test_admission_reject_policy(self):
        cfg = ControlConfig(shed_policy="reject", retry_after_ticks=4)
        controller = make_controller(cfg)
        controller.on_arrival(0.1, "t0")
        controller.on_tick(0.25, 10)
        assert controller.brownout_active
        decision, retry_after = controller.admission(job(tenant="t0"))
        assert decision == "shed"
        assert retry_after == controller.tick_index + 4
        assert controller.shed == 1
        assert controller.per_tenant["t0"]["shed"] == 1
        # A tenant outside the shed set is untouched.
        assert controller.admission(job(tenant="zz"))[0] == "admit"
        # Sheds never feed the organic error-rate window.
        assert len(controller._rejections) == 0

    def test_admission_degrade_policy(self):
        controller = make_controller(ControlConfig(shed_policy="degrade"))
        controller.on_arrival(0.1, "t0")
        controller.on_tick(0.25, 10)
        decision, k_prime = controller.admission(job(tenant="t0", k=4))
        assert (decision, k_prime) == ("degrade", 2)  # default k // 2
        assert controller.degraded == 1
        assert controller.per_tenant["t0"]["degraded"] == 1

    def test_admission_degrade_respects_explicit_brownout_k(self):
        controller = make_controller(
            ControlConfig(shed_policy="degrade", brownout_k=3)
        )
        controller.on_arrival(0.1, "t0")
        controller.on_tick(0.25, 10)
        assert controller.admission(job(tenant="t0", k=4)) == ("degrade", 3)
        # k' >= k would be a no-op: admit at full quality instead.
        assert controller.admission(job(tenant="t0", k=3)) == ("admit", None)

    def test_admission_off_policy_never_sheds(self):
        controller = make_controller(ControlConfig(shed_policy="off"))
        controller.on_arrival(0.1, "t0")
        controller.on_tick(0.25, 10)
        assert not controller.brownout_active
        assert controller.admission(job(tenant="t0")) == ("admit", None)

    def test_metric_counts_names(self):
        controller = make_controller()
        assert set(controller.metric_counts()) == {
            "control.ticks", "control.scale_ups", "control.scale_downs",
            "control.policy_switches", "control.brownouts",
            "control.shed", "control.degraded",
        }

    def test_report_section_shape(self):
        controller = make_controller()
        controller.on_arrival(0.1, "t0")
        controller.on_tick(0.25, 10)
        controller.admission(job(tenant="t0"))
        section = controller.report_section()
        assert section["workers"] == {
            "initial": 2, "final": 3, "min": 2, "max": 4
        }
        assert section["policy"] == {"initial": "fifo", "final": "shortest-cost"}
        assert section["brownouts"] == 1
        assert "breakers" not in section
        # Aggregated shedding flushed into the timeline on demand.
        assert any(e["action"] == "degrade" for e in section["timeline"])

        stats = ClusterStats(breaker_opens=2, breaker_short_circuits=5)
        with_breakers = controller.report_section(stats)
        assert with_breakers["breakers"] == {
            "opens": 2, "probes": 0, "short_circuits": 5
        }


# ------------------------------------------------------------------ breakers


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(2, 8)
        assert not breaker.record_failure(0)
        assert breaker.record_failure(1)  # second consecutive: opens
        assert breaker.open
        assert breaker.allow(2) == (False, False)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(2, 8)
        breaker.record_failure(0)
        breaker.record_success()
        assert not breaker.record_failure(1)  # streak restarted
        assert not breaker.open

    def test_half_open_probe_after_sequence_steps(self):
        breaker = CircuitBreaker(1, 4)
        breaker.record_failure(3)  # opens at seq 3
        assert breaker.allow(6) == (False, False)
        assert breaker.allow(7) == (True, True)  # 3 + 4: one probe through

    def test_failed_probe_reopens_from_the_probe(self):
        breaker = CircuitBreaker(1, 4)
        breaker.record_failure(3)
        assert breaker.allow(7)[1]  # probe
        assert breaker.record_failure(7)  # probe failed: re-opens at 7
        assert breaker.allow(10) == (False, False)
        assert breaker.allow(11) == (True, True)

    def test_successful_probe_closes(self):
        breaker = CircuitBreaker(1, 4)
        breaker.record_failure(3)
        breaker.record_success()
        assert not breaker.open
        assert breaker.allow(4) == (True, False)


class TestBreakerBoard:
    def test_accounting_lands_in_cluster_stats(self):
        stats = ClusterStats()
        board = BreakerBoard(2, 4, stats=stats)
        board.failure(0, 1, 0)
        board.failure(0, 1, 1)
        assert stats.breaker_opens == 1
        assert board.state(0, 1) == "open"
        assert not board.allow(0, 1, 2)
        assert stats.breaker_short_circuits == 1
        assert board.allow(0, 1, 5)  # probe
        assert stats.breaker_probes == 1
        board.success(0, 1)
        assert board.state(0, 1) == "closed"
        # Other replicas are independent.
        assert board.state(0, 0) == "closed"
        assert board.allow(0, 0, 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerBoard(0, 4)
        with pytest.raises(ConfigurationError):
            BreakerBoard(2, 0)


# ----------------------------------------------------------- scheduler drain


class TestSchedulerDrain:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_drain_returns_exactly_the_queued_entries(self, policy):
        scheduler = make_scheduler(policy, 16)
        submitted = []
        for index in range(6):
            queued = job(job_id=index, tenant=f"t{index % 2}", group_id=index)
            cost = 0.01 * (6 - index)
            scheduler.submit(queued, cost)
            submitted.append((queued, cost))
        entries = scheduler.drain()
        assert sorted(entries, key=lambda e: e[0].job_id) == submitted
        assert len(scheduler) == 0
        assert scheduler.pop() is None

    @pytest.mark.parametrize("source", POLICIES)
    @pytest.mark.parametrize("target", POLICIES)
    def test_drain_and_rebuild_preserves_the_job_set(self, source, target):
        """The engine's policy switch loses no queued job."""
        scheduler = make_scheduler(source, 16)
        for index in range(5):
            scheduler.submit(job(job_id=index, group_id=index), 0.01 * index)
        entries = scheduler.drain()
        rebuilt = make_scheduler(target, 16)
        for queued, cost in sorted(entries, key=lambda e: e[0].job_id):
            rebuilt.submit(queued, cost)
        drained = {queued.job_id for queued, _ in rebuilt.drain()}
        assert drained == set(range(5))


# -------------------------------------------------- plan-phase shed auditing


class TestPlanPhaseShedding:
    """plan() is pure simulation: shedding audits run without any crypto."""

    def test_reject_policy_sheds_typed_with_retry_after(self, lsp, config, space):
        control = hair_trigger_control(shed_policy="reject")
        engine = ServeEngine(lsp, config, ServeConfig(workers=1, control=control))
        workload = generate_workload(overload_spec(), space)
        planned, rejected, _ = engine.plan(workload)
        assert rejected, "a 4x flash crowd against one worker must shed"
        assert len(planned) + len(rejected) == len(workload.jobs)
        for rejection in rejected:
            assert rejection.error_type == "OverloadSheddedError"
            assert rejection.retry_after is not None
            assert rejection.retry_after > 0
        controller = engine._controller
        assert controller.shed == len(rejected)
        per_tenant = sum(
            counts["shed"] for counts in controller.per_tenant.values()
        )
        assert per_tenant == len(rejected)

    def test_degrade_policy_plans_at_reduced_k(self, lsp, config, space):
        control = hair_trigger_control(shed_policy="degrade")
        engine = ServeEngine(lsp, config, ServeConfig(workers=1, control=control))
        planned, rejected, _ = engine.plan(generate_workload(overload_spec(), space))
        assert rejected == []  # degrade admits everyone
        degraded = [p for p in planned if p.job.brownout_k is not None]
        assert degraded, "brownout must degrade some admitted jobs"
        for slot in degraded:
            assert slot.job.brownout_k == 2  # k // 2 of k=4
        assert engine._controller.degraded == len(degraded)

    def test_calm_plan_is_identical_to_no_control(self, lsp, config, space):
        spec = WorkloadSpec(
            queries=12, rate_qps=5.0, protocol_mix={"ppgnn": 1.0},
            group_size_mix={2: 1.0}, k_mix={4: 1.0}, groups=4, seed=3,
        )
        workload = generate_workload(spec, space)
        calm = ControlConfig(tick_seconds=0.25, max_workers=4)
        with_control = ServeEngine(
            lsp, config, ServeConfig(workers=2, control=calm)
        ).plan(workload)
        without = ServeEngine(lsp, config, ServeConfig(workers=2)).plan(workload)
        assert with_control == without


# ------------------------------------------------------ engine-level contracts


def run_report(lsp, config, space, *, seed, executor="serial", control=None,
               cluster=None, workers=1, queries=24, rate=2000.0):
    serve = ServeConfig(
        workers=workers, executor=executor, control=control, cluster=cluster,
    )
    workload = generate_workload(overload_spec(seed=seed, queries=queries,
                                               rate=rate), space)
    return ServeEngine(lsp, config, serve).run(workload)


class TestControlDeterminism:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_serial_and_process_control_timelines_match(
        self, seed, lsp, config, space
    ):
        """Identical seeds give identical reports — executor aside."""
        control = hair_trigger_control()
        serial = run_report(
            lsp, config, space, seed=seed, executor="serial", control=control
        ).to_dict()
        process = run_report(
            lsp, config, space, seed=seed, executor="process", control=control
        ).to_dict()
        assert serial.pop("executor") == "serial"
        assert process.pop("executor") == "process"
        assert serial == process

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_calm_workload_is_byte_identical_to_no_control(
        self, seed, lsp, config, space
    ):
        """A configured-but-idle controller leaves no trace at all."""
        spec = WorkloadSpec(
            queries=8, rate_qps=4.0, protocol_mix={"ppgnn": 1.0},
            group_size_mix={2: 1.0}, k_mix={4: 1.0}, groups=4, seed=seed,
        )
        workload = generate_workload(spec, space)
        calm = ControlConfig(tick_seconds=0.5, max_workers=4)
        with_control = ServeEngine(
            lsp, config, ServeConfig(workers=2, control=calm)
        ).run(workload)
        without = ServeEngine(lsp, config, ServeConfig(workers=2)).run(workload)
        assert with_control.control is None
        assert json.dumps(with_control.to_dict(), sort_keys=True) == json.dumps(
            without.to_dict(), sort_keys=True
        )


class TestOverloadAcceptance:
    """ISSUE 7's acceptance scenario: a seeded flash crowd at 4x the
    sustainable rate with one shard killed."""

    @pytest.fixture(scope="class")
    def report_and_slo(self, pois, cluster_config, space):
        lsp = LSPServer(pois, sanitation_samples=SAMPLES, seed=99)
        slo = SLOPolicy(latency_p99=0.25)
        control = ControlConfig(
            tick_seconds=0.002,
            window_seconds=0.008,
            slo=slo,
            max_workers=4,
            shed_policy="degrade",
            # The queue is the leading indicator here: a handful of
            # waiting jobs against one worker is already deep overload.
            queue_high_fraction=0.05,
        )
        cluster = ClusterConfig(
            shards=3, replicas=2, quorum=0.5,
            faults=ShardFaultPlan.killing({(1, 0): 0, (1, 1): 0}, seed=3),
        )
        report = run_report(
            lsp, cluster_config, space, seed=21, control=control,
            cluster=cluster, workers=1, queries=24, rate=2000.0,
        )
        return report, slo

    def test_zero_unhandled_errors(self, report_and_slo):
        report, _ = report_and_slo
        assert report.failed == 0
        assert report.completed + report.rejected == report.queries

    def test_every_shed_is_typed(self, report_and_slo):
        report, _ = report_and_slo
        for rejection in report.rejections:
            assert rejection.error_type in (
                "OverloadSheddedError", "QueueFullError", "AdmissionRejectedError",
            )

    def test_control_loop_actuated(self, report_and_slo):
        report, _ = report_and_slo
        assert report.control is not None
        assert report.control["brownouts"] >= 1
        assert report.control["degraded"] > 0
        assert report.control["breakers"]["opens"] > 0

    def test_degraded_jobs_carry_quality_scored_partial_answers(
        self, report_and_slo
    ):
        report, _ = report_and_slo
        degraded = [
            o for o in report.outcomes.values()
            if o.ok and o.degraded_k is not None
        ]
        assert degraded
        for outcome in degraded:
            assert outcome.partial
            assert outcome.partial_answer is not None
            quality = outcome.partial_answer.quality
            assert 0.0 < quality.expected_recall <= outcome.degraded_k / 4
            assert len(outcome.answer_ids) == outcome.degraded_k

    def test_admitted_p99_within_slo(self, report_and_slo):
        report, slo = report_and_slo
        assert report.latency_p99 <= slo.latency_p99
