"""Serving over every index substrate: digest identity and recall marking."""

import numpy as np
import pytest

from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.space import LocationSpace
from repro.gnn.engine import APPROXIMATE_INDEX_KINDS
from repro.serve import ServeConfig, ServeEngine, WorkloadSpec, generate_workload

SAMPLES = 8


@pytest.fixture(scope="module")
def space():
    """Unit-square location space shared by every serve-index test."""
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def pois(space):
    """Small shared POI set (engine builds are per-test, POIs are not)."""
    return uniform_pois(150, space, np.random.default_rng(11))


@pytest.fixture(scope="module")
def config():
    return PPGNNConfig(d=4, delta=8, k=3, keysize=128, sanitation_samples=SAMPLES)


@pytest.fixture(scope="module")
def workload(space):
    spec = WorkloadSpec(
        queries=6,
        rate_qps=20.0,
        protocol_mix={"ppgnn": 1.0},
        group_size_mix={2: 1.0, 3: 1.0},
        k_mix={3: 1.0},
        groups=3,
        seed=17,
    )
    return generate_workload(spec, space)


def _report(pois, space, config, workload, index):
    lsp = LSPServer(pois, space=space, sanitation_samples=SAMPLES)
    engine = ServeEngine(
        lsp,
        config,
        ServeConfig(workers=1, nonce_pool=False, knn_cache_size=None, index=index),
    )
    return engine.run(workload)


class TestExactDigestIdentity:
    @pytest.mark.parametrize("kind", ["kdtree", "grid", "bruteforce"])
    def test_exact_kind_matches_rtree_digest(
        self, kind, pois, space, config, workload
    ):
        reference = _report(pois, space, config, workload, "rtree")
        got = _report(pois, space, config, workload, kind)
        assert got.answers_digest == reference.answers_digest
        assert all(o.ok for o in got.outcomes.values())


class TestApproximateServing:
    @pytest.mark.parametrize("kind", sorted(APPROXIMATE_INDEX_KINDS))
    def test_approximate_answers_marked_partial(
        self, kind, pois, space, config, workload
    ):
        report = _report(pois, space, config, workload, kind)
        for outcome in report.outcomes.values():
            assert outcome.ok
            assert outcome.partial, f"{kind} answers must be marked partial"
            assert outcome.partial_answer is not None
            quality = outcome.partial_answer.quality
            assert quality is not None
            assert 0.0 < quality.expected_recall <= 1.0
            assert quality.guaranteed_recall == 0.0


class TestConfigValidation:
    def test_unknown_index_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(index="quadtree")

    def test_approximate_with_cluster_rejected(self):
        from repro.cluster import ClusterConfig

        with pytest.raises(ConfigurationError):
            ServeConfig(index="lsh", cluster=ClusterConfig(shards=2))

    def test_exact_with_cluster_allowed(self):
        from repro.cluster import ClusterConfig

        cfg = ServeConfig(index="kdtree", cluster=ClusterConfig(shards=2))
        assert cfg.index == "kdtree"


class TestIndexMetrics:
    def test_index_counters_published(self, pois, space, config, workload):
        lsp = LSPServer(pois, space=space, sanitation_samples=SAMPLES)
        engine = ServeEngine(
            lsp,
            config,
            ServeConfig(
                workers=1,
                nonce_pool=False,
                knn_cache_size=None,
                index="rtree",
                obs=True,
            ),
        )
        report = engine.run(workload)
        counters = report.obs["metrics"]["counters"]
        assert counters.get("index.queries", 0) > 0
        assert counters.get("index.candidates_scored", 0) > 0
        assert "index.nodes_visited" in counters
