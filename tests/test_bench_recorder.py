"""Tests for the benchmark series recorder."""

import pytest

from repro.bench.recorder import SeriesRecorder


class TestSeriesRecorder:
    def test_record_creates_file(self, tmp_path, capsys):
        recorder = SeriesRecorder(tmp_path)
        recorder.record(
            "exp1", "Demo title", "k", [1, 2], {"proto": ["1 B", "2 B"]}
        )
        content = (tmp_path / "exp1.txt").read_text()
        assert "Demo title" in content
        assert "proto: ['1 B', '2 B']" in content
        assert "Demo title" in capsys.readouterr().out

    def test_first_write_truncates_then_appends(self, tmp_path):
        recorder = SeriesRecorder(tmp_path)
        (tmp_path / "exp2.txt").write_text("stale content from last run\n")
        recorder.record("exp2", "A", "x", [1], {"s": ["1"]})
        recorder.record("exp2", "B", "x", [1], {"s": ["2"]})
        content = (tmp_path / "exp2.txt").read_text()
        assert "stale" not in content
        assert "=== A ===" in content and "=== B ===" in content

    def test_notes_recorded(self, tmp_path):
        recorder = SeriesRecorder(tmp_path)
        recorder.record(
            "exp3", "T", "x", [1], {"s": ["1"]}, notes="caveat emptor"
        )
        assert "note: caveat emptor" in (tmp_path / "exp3.txt").read_text()

    def test_note_method(self, tmp_path, capsys):
        recorder = SeriesRecorder(tmp_path)
        recorder.note("exp4", "free-form line")
        assert "free-form line" in (tmp_path / "exp4.txt").read_text()
        assert "free-form line" in capsys.readouterr().out

    def test_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        SeriesRecorder(target)
        assert target.is_dir()


class TestRecordJson:
    def test_stamps_sha_keysize_and_config(self, tmp_path):
        import json

        recorder = SeriesRecorder(tmp_path)
        path = recorder.record_json(
            "serve",
            {"throughput_qps": 4.2},
            keysize=512,
            config={"workers": 4, "policy": "fifo"},
        )
        assert path == tmp_path / "BENCH_serve.json"
        document = json.loads(path.read_text())
        assert document["experiment"] == "serve"
        assert document["keysize"] == 512
        assert document["config"] == {"workers": 4, "policy": "fifo"}
        assert document["results"] == {"throughput_qps": 4.2}
        # tmp_path is outside any checkout, so the sha degrades gracefully.
        assert document["git_sha"] == "unknown"

    def test_overwrites_previous_run(self, tmp_path):
        import json

        recorder = SeriesRecorder(tmp_path)
        recorder.record_json("serve", {"run": 1})
        path = recorder.record_json("serve", {"run": 2})
        assert json.loads(path.read_text())["results"] == {"run": 2}

    def test_repo_checkout_yields_real_sha(self):
        from repro.bench.recorder import git_sha

        sha = git_sha(cwd=".")
        assert sha == "unknown" or (
            len(sha) == 40 and set(sha) <= set("0123456789abcdef")
        )

    def test_missing_config_defaults_empty(self, tmp_path):
        import json

        recorder = SeriesRecorder(tmp_path)
        document = json.loads(recorder.record_json("bare", [1, 2, 3]).read_text())
        assert document["config"] == {}
        assert document["keysize"] is None
        assert document["results"] == [1, 2, 3]

    def test_stamps_schema_version(self, tmp_path):
        import json

        from repro.bench.recorder import RECORD_SCHEMA_VERSION

        recorder = SeriesRecorder(tmp_path)
        document = json.loads(recorder.record_json("v", {"x": 1}).read_text())
        assert document["schema_version"] == RECORD_SCHEMA_VERSION

    def test_metrics_snapshot_rides_along(self, tmp_path):
        import json

        recorder = SeriesRecorder(tmp_path)
        snapshot = {"counters": {"crypto.encryptions": 9}}
        path = recorder.record_json("m", {"x": 1}, metrics=snapshot)
        assert json.loads(path.read_text())["metrics"] == snapshot
        # Omitted metrics leave the key out entirely.
        bare = recorder.record_json("m2", {"x": 1})
        assert "metrics" not in json.loads(bare.read_text())

    def test_refuses_cross_schema_overwrite(self, tmp_path):
        import json

        from repro.errors import ReproError

        recorder = SeriesRecorder(tmp_path)
        path = recorder.record_json("serve", {"run": 1})
        # Age the document back to the unversioned v1 layout.
        document = json.loads(path.read_text())
        del document["schema_version"]
        path.write_text(json.dumps(document))
        with pytest.raises(ReproError, match="force=True"):
            recorder.record_json("serve", {"run": 2})
        # Same-version overwrite still allowed, and force overrides.
        recorder.record_json("serve", {"run": 2}, force=True)
        recorder.record_json("serve", {"run": 3})
        assert json.loads(path.read_text())["results"] == {"run": 3}
