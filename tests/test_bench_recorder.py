"""Tests for the benchmark series recorder."""

from repro.bench.recorder import SeriesRecorder


class TestSeriesRecorder:
    def test_record_creates_file(self, tmp_path, capsys):
        recorder = SeriesRecorder(tmp_path)
        recorder.record(
            "exp1", "Demo title", "k", [1, 2], {"proto": ["1 B", "2 B"]}
        )
        content = (tmp_path / "exp1.txt").read_text()
        assert "Demo title" in content
        assert "proto: ['1 B', '2 B']" in content
        assert "Demo title" in capsys.readouterr().out

    def test_first_write_truncates_then_appends(self, tmp_path):
        recorder = SeriesRecorder(tmp_path)
        (tmp_path / "exp2.txt").write_text("stale content from last run\n")
        recorder.record("exp2", "A", "x", [1], {"s": ["1"]})
        recorder.record("exp2", "B", "x", [1], {"s": ["2"]})
        content = (tmp_path / "exp2.txt").read_text()
        assert "stale" not in content
        assert "=== A ===" in content and "=== B ===" in content

    def test_notes_recorded(self, tmp_path):
        recorder = SeriesRecorder(tmp_path)
        recorder.record(
            "exp3", "T", "x", [1], {"s": ["1"]}, notes="caveat emptor"
        )
        assert "note: caveat emptor" in (tmp_path / "exp3.txt").read_text()

    def test_note_method(self, tmp_path, capsys):
        recorder = SeriesRecorder(tmp_path)
        recorder.note("exp4", "free-form line")
        assert "free-form line" in (tmp_path / "exp4.txt").read_text()
        assert "free-form line" in capsys.readouterr().out

    def test_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        SeriesRecorder(target)
        assert target.is_dir()
