"""Failure paths for user-facing parameter mistakes across the stack."""

import numpy as np
import pytest

from repro.core.config import PPGNNConfig
from repro.core.group import random_group, run_ppgnn
from repro.errors import ConfigurationError, InfeasibleError


class TestProtocolParameterFailures:
    def test_infeasible_delta_surfaces_clearly(self, lsp):
        """delta > d^n cannot be partitioned; the run must fail with the
        paper's remedy (pick a larger d) in the message."""
        cfg = PPGNNConfig(
            d=3, delta=100, k=3, keysize=128, sanitize=False,
            sanitation_samples=500, key_seed=1,
        )
        group = random_group(2, lsp.space, np.random.default_rng(1))  # 3^2 < 100
        with pytest.raises(InfeasibleError, match="larger d"):
            run_ppgnn(lsp, group, cfg, seed=1)

    def test_same_delta_feasible_with_more_users(self, lsp):
        """The identical (d, delta) succeeds once n makes d^n large enough."""
        cfg = PPGNNConfig(
            d=3, delta=100, k=3, keysize=128, sanitize=False,
            sanitation_samples=500, key_seed=1,
        )
        group = random_group(5, lsp.space, np.random.default_rng(2))  # 3^5 = 243
        result = run_ppgnn(lsp, group, cfg, seed=2)
        assert result.delta_prime >= 100

    def test_user_outside_space_rejected(self, lsp, fast_config):
        from repro.geometry.point import Point

        group = [Point(5.0, 5.0), Point(0.5, 0.5)]
        with pytest.raises(ConfigurationError, match="outside"):
            run_ppgnn(lsp, group, fast_config, seed=3)

    def test_k_of_zero_rejected_at_config(self):
        with pytest.raises(ConfigurationError):
            PPGNNConfig(k=0)

    def test_keysize_too_small_for_answers(self, lsp):
        """A 64-bit modulus cannot hold even one POI slot; the codec must
        refuse before any ciphertext is built."""
        with pytest.raises(ConfigurationError):
            PPGNNConfig(d=4, delta=8, k=2, keysize=32)

    def test_group_larger_than_database_is_fine(self, lsp, fast_config):
        """n has no upper bound tied to the database; only k is capped."""
        group = random_group(12, lsp.space, np.random.default_rng(4))
        result = run_ppgnn(
            lsp, group, fast_config.without_sanitation(), seed=4
        )
        assert len(result.answers) == fast_config.k
