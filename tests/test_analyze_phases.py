"""Phase attribution, critical paths, and mod-mul estimates on real traces."""

import numpy as np
import pytest

from repro.core.common import group_keypair
from repro.core.group import random_group, run_ppgnn
from repro.obs import (
    PHASES,
    Observability,
    Tracer,
    attribute_phases,
    attribute_phases_by_protocol,
    classify_phase,
    critical_path,
    estimate_modmuls,
    normalized_ops,
    render_attribution,
    self_ticks,
)
from repro.obs.profile import profile_keypair


@pytest.fixture(scope="module")
def traced_run(medium_pois, fast_config):
    """One PPGNN query with tracing on, shared by the module."""
    from repro.core.lsp import LSPServer

    lsp = LSPServer(medium_pois, sanitation_samples=1500, seed=99)
    group = random_group(3, lsp.space, np.random.default_rng(5))
    obs = Observability()
    result = run_ppgnn(lsp, group, fast_config, seed=5, obs=obs)
    return obs, result


class TestClassify:
    def test_prefix_table(self):
        assert classify_phase("coordinator.decrypt") == "crypto"
        assert classify_phase("crypto.rerandomize") == "crypto"
        assert classify_phase("transport.send") == "transport"
        assert classify_phase("uploads") == "transport"
        assert classify_phase("queue.wait") == "queue"
        assert classify_phase("lsp.answer") == "compute"
        assert classify_phase("session.query") == "other"
        assert classify_phase("round.ppgnn") == "other"


class TestSelfTicks:
    def test_partitions_the_forest(self, traced_run):
        obs, _ = traced_run
        spans = obs.tracer.spans()
        own = self_ticks(spans)
        roots_total = sum(s.ticks for s in spans if s.parent_id is None)
        assert sum(own.values()) == roots_total

    def test_subtree_self_ticks_sum_to_span_duration(self, traced_run):
        obs, _ = traced_run
        spans = obs.tracer.spans()
        own = self_ticks(spans)
        children: dict[int, list] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)

        def subtree(span) -> int:
            return own[span.span_id] + sum(
                subtree(child) for child in children.get(span.span_id, [])
            )

        for span in spans:
            assert subtree(span) == span.ticks


class TestAttribution:
    def test_phase_totals_match_tracer_root_durations(self, traced_run):
        obs, _ = traced_run
        spans = obs.tracer.spans()
        breakdown = attribute_phases(spans)
        roots_total = sum(s.ticks for s in spans if s.parent_id is None)
        assert breakdown.total == roots_total
        # The known protocol structure: one encrypt + one decrypt self-tick
        # per round under crypto, the uploads leg under transport, the
        # LSP answer under compute.
        assert breakdown.ticks["crypto"] > 0
        assert breakdown.ticks["transport"] > 0
        assert breakdown.ticks["compute"] > 0

    def test_by_name_sums_match_phase_totals(self, traced_run):
        obs, _ = traced_run
        breakdown = attribute_phases(obs.tracer.spans())
        for phase, names in breakdown.by_name.items():
            assert sum(names.values()) == breakdown.ticks[phase]

    def test_per_protocol_covers_round_subtree(self, traced_run):
        obs, _ = traced_run
        spans = obs.tracer.spans()
        per_protocol = attribute_phases_by_protocol(spans)
        assert list(per_protocol) == ["ppgnn"]
        round_spans = [s for s in spans if s.name.startswith("round.")]
        assert per_protocol["ppgnn"].total == sum(s.ticks for s in round_spans)

    def test_render_lists_every_phase(self, traced_run):
        obs, _ = traced_run
        rendered = render_attribution(obs.tracer.spans())
        for phase in PHASES:
            assert phase in rendered
        assert "critical path:" in rendered


class TestCriticalPath:
    def test_bounded_by_forest_total(self, traced_run):
        obs, _ = traced_run
        spans = obs.tracer.spans()
        path, duration = critical_path(spans)
        assert path
        assert duration <= attribute_phases(spans).total
        # The path is a real root-to-leaf chain.
        assert path[0].parent_id is None
        for parent, child in zip(path, path[1:]):
            assert child.parent_id == parent.span_id

    def test_beats_greedy_on_adversarial_tree(self):
        # A heavy shallow child vs. a lighter child with a deep subtree:
        # greedy descent takes the heavy child and stops, the DP keeps
        # digging.  (Burn filler events inside spans to shape self times.)
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("heavy-leaf"):
                for _ in range(4):
                    with tracer.span("lsp.filler"):
                        pass
            with tracer.span("light-parent"):
                with tracer.span("deep"):
                    for _ in range(6):
                        with tracer.span("lsp.filler"):
                            pass
        spans = tracer.spans()
        _, duration = critical_path(spans)
        own = self_ticks(spans)
        by_id = {s.span_id: s for s in spans}

        def chain_total(leaf_name: str) -> int:
            leaf = max(
                (s for s in spans if s.name == leaf_name), key=lambda s: s.ticks
            )
            total, cursor = 0, leaf
            while cursor is not None:
                total += own[cursor.span_id]
                cursor = by_id.get(cursor.parent_id)
            return total

        assert duration >= chain_total("deep")
        assert duration >= chain_total("heavy-leaf")

    def test_empty_forest(self):
        assert critical_path([]) == ([], 0)


class TestOpCounts:
    def test_normalized_ops_divides_by_queries(self, traced_run):
        obs, _ = traced_run
        counters = obs.snapshot().counters
        ops = normalized_ops(counters, 2)
        for name, value in ops.items():
            assert value == counters[name] / 2

    def test_normalized_ops_rejects_zero_queries(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            normalized_ops({}, 0)

    def test_estimate_matches_profiler_exactly(self, fast_config, traced_run):
        # Replay the traced run's op mix through profiled keys: the
        # analytic estimate must equal the profiler's bigint-mul ledger
        # (both sides use the same square-and-multiply arithmetic).
        obs, _ = traced_run
        counters = obs.snapshot().counters
        keypair = group_keypair(fast_config)
        estimate = estimate_modmuls(counters, keypair)

        keys, profiler = profile_keypair(keypair)
        ciphertext = keys.public_key.encrypt(41)
        keys.secret_key.decrypt(ciphertext)
        ledger = profiler.to_dict()
        per_encrypt = ledger["encrypt"]["bigint_muls"]
        per_crt = ledger["decrypt.crt"]["bigint_muls"]
        assert estimate["encrypt"] == counters["crypto.encryptions"] * per_encrypt
        assert estimate["decrypt.crt"] == (
            counters["crypto.decryptions.crt"] * per_crt
        )
        # Window-table builds are ledgered under their own classes; the
        # total is the sum of every breakdown key.
        per_tables = ledger.get("encrypt.tables", {}).get("bigint_muls", 0)
        assert estimate["encrypt.tables"] == (
            counters["crypto.encryptions"] * per_tables
        )
        per_crt_tables = ledger.get("decrypt.crt.tables", {}).get("bigint_muls", 0)
        assert estimate["decrypt.crt.tables"] == (
            counters["crypto.decryptions.crt"] * per_crt_tables
        )
        assert estimate["total"] == (
            estimate["encrypt"]
            + estimate["encrypt.tables"]
            + estimate["decrypt.crt"]
            + estimate["decrypt.crt.tables"]
            + estimate["decrypt.generic"]
        )
