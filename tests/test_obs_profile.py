"""Profiled key wrappers: op accounting without behavioural drift."""

import random

import pytest

from repro.crypto.paillier import generate_keypair
from repro.obs import KeyProfiler, OpProfile, pow_mul_estimate, profile_keypair


@pytest.fixture()
def profiled():
    return profile_keypair(generate_keypair(128, seed=54321))


class TestPowMulEstimate:
    @pytest.mark.parametrize(
        ("exponent", "muls"),
        [
            (0, 0),
            (1, 0),
            (2, 1),  # one squaring
            (3, 2),  # one squaring + one multiply
            (0b1011, 5),  # 3 squarings + 2 multiplies
        ],
    )
    def test_square_and_multiply_counts(self, exponent, muls):
        got_muls, work = pow_mul_estimate(exponent, 64)
        assert got_muls == muls
        assert work == muls  # (64/64)^2 == 1

    def test_work_scales_quadratically_with_modulus(self):
        _, small = pow_mul_estimate(255, 64)
        _, large = pow_mul_estimate(255, 128)
        assert large == 4 * small


class TestProfiledKeys:
    def test_answers_identical_to_plain_keys(self, profiled):
        plain = generate_keypair(128, seed=54321)
        keys, _ = profiled
        rng_a, rng_b = random.Random(5), random.Random(5)
        for m in (0, 1, 12345):
            c_plain = plain.public_key.encrypt(m, rng=rng_a)
            c_prof = keys.public_key.encrypt(m, rng=rng_b)
            assert c_plain.value == c_prof.value
            assert keys.secret_key.decrypt(c_prof) == m

    def test_ciphertexts_interoperate_with_plain_keys(self, profiled):
        plain = generate_keypair(128, seed=54321)
        keys, _ = profiled
        c = plain.public_key.encrypt(7, rng=random.Random(1))
        # Profiled secret key accepts a ciphertext made under the plain pk.
        assert keys.secret_key.decrypt(c) == 7

    def test_encrypt_and_decrypt_paths_accounted(self, profiled):
        keys, profiler = profiled
        rng = random.Random(9)
        c = keys.public_key.encrypt(42, rng=rng)
        keys.secret_key.decrypt(c)
        assert profiler.ops["encrypt"].calls == 1
        assert profiler.ops["encrypt"].bigint_muls > 0
        assert profiler.ops["decrypt.crt"].calls == 1
        assert "decrypt.generic" not in profiler.ops

    def test_generic_fallback_accounted_separately(self, profiled):
        keys, profiler = profiled
        c = keys.public_key.encrypt(42, rng=random.Random(9))
        keys.secret_key.decrypt(c, use_crt=False)
        assert profiler.ops["decrypt.generic"].calls == 1
        assert "decrypt.crt" not in profiler.ops

    def test_crt_estimated_cheaper_than_generic(self, profiled):
        """The analytic model must agree that CRT halves the limb work."""
        keys, profiler = profiled
        rng = random.Random(3)
        c = keys.public_key.encrypt(5, rng=rng)
        keys.secret_key.decrypt(c)
        keys.secret_key.decrypt(c, use_crt=False)
        assert (
            profiler.ops["decrypt.crt"].mul_work
            < profiler.ops["decrypt.generic"].mul_work
        )

    def test_rerandomize_accounted(self, profiled):
        keys, profiler = profiled
        rng = random.Random(2)
        c = keys.public_key.encrypt(5, rng=rng)
        keys.public_key.rerandomize(c, rng)
        assert profiler.ops["rerandomize"].calls == 1

    def test_insecure_encrypt_cost_is_small(self, profiled):
        keys, profiler = profiled
        keys.public_key.encrypt(5, secure=False)
        assert profiler.ops["encrypt"].bigint_muls == 2  # 2s with s=1


class TestProfileSerialization:
    def test_wall_time_excluded_by_default(self):
        profile = OpProfile()
        profile.record(3, 12.0, 0.5)
        assert "wall_seconds" not in profile.to_dict()
        assert profile.to_dict(include_wall=True)["wall_seconds"] == 0.5

    def test_profiler_merge_and_sorted_dict(self):
        a, b = KeyProfiler(), KeyProfiler()
        a.profile("encrypt").record(1, 1.0, 0.0)
        b.profile("encrypt").record(2, 2.0, 0.0)
        b.profile("decrypt.crt").record(3, 3.0, 0.0)
        a.merge(b)
        data = a.to_dict()
        assert list(data) == ["decrypt.crt", "encrypt"]
        assert data["encrypt"]["calls"] == 2
        assert data["encrypt"]["bigint_muls"] == 3


class TestHandCountedOps:
    """Satellite fix: counters must equal hand-counted op costs."""

    def test_secure_encrypt_charges_chain_plus_binomial_plus_combine(self):
        from repro.crypto import fastexp

        keys, profiler = profile_keypair(generate_keypair(128, seed=54321))
        pk = keys.public_key
        with fastexp.forced(True):
            pk.encrypt(5, rng=random.Random(1))
            plan = pk.nonce_plan(1)
            # Hand count: windowed chain + 2s binomial muls + 1 combine.
            assert profiler.ops["encrypt"].bigint_muls == plan.chain_muls + 2 + 1
            # The odd-power table is charged apart from per-call work.
            assert profiler.ops["encrypt.tables"].bigint_muls == plan.table_muls

    def test_secure_encrypt_slow_path_uses_binary_model(self):
        from repro.crypto import fastexp

        keys, profiler = profile_keypair(generate_keypair(128, seed=54321))
        pk = keys.public_key
        with fastexp.forced(False):
            pk.encrypt(5, rng=random.Random(1))
            nonce_muls, _ = pow_mul_estimate(pk.n, 2 * pk.key_bits)
            assert profiler.ops["encrypt"].bigint_muls == nonce_muls + 2 + 1
            assert "encrypt.tables" not in profiler.ops

    def test_secure_encrypt_level_two_charges_two_s_binomial_muls(self):
        from repro.crypto import fastexp

        keys, profiler = profile_keypair(generate_keypair(128, seed=54321))
        pk = keys.public_key
        with fastexp.forced(True):
            pk.encrypt(5, s=2, rng=random.Random(1))
            plan = pk.nonce_plan(2)
            assert profiler.ops["encrypt"].bigint_muls == plan.chain_muls + 4 + 1

    def test_pooled_encrypt_not_charged_a_nonce_exponentiation(self):
        from repro.crypto.noncepool import NoncePool, encrypt_with_pool

        keys, profiler = profile_keypair(generate_keypair(128, seed=54321))
        pk = keys.public_key
        pool = NoncePool(pk)
        pool.refill(1, rng=random.Random(3))
        c = encrypt_with_pool(pool, 9)
        assert keys.secret_key.decrypt(c) == 9
        # Only the 2s binomial muls + 1 combine; the exponentiation was
        # paid offline by the refill.
        assert profiler.ops["encrypt.pooled"].bigint_muls == 3
        assert profiler.ops["encrypt.pooled"].calls == 1
        assert "encrypt" not in profiler.ops

    def test_rerandomize_charges_chain_plus_one(self):
        from repro.crypto import fastexp

        keys, profiler = profile_keypair(generate_keypair(128, seed=54321))
        pk = keys.public_key
        with fastexp.forced(True):
            c = pk.encrypt(5, rng=random.Random(1))
            pk.rerandomize(c, random.Random(2))
            plan = pk.nonce_plan(1)
            assert profiler.ops["rerandomize"].bigint_muls == plan.chain_muls + 1
            assert (
                profiler.ops["rerandomize.tables"].bigint_muls == plan.table_muls
            )

    def test_crt_decrypt_charges_windowed_prime_chains(self):
        from repro.crypto import fastexp

        keys, profiler = profile_keypair(generate_keypair(128, seed=54321))
        with fastexp.forced(True):
            c = keys.public_key.encrypt(5, rng=random.Random(1))
            keys.secret_key.decrypt(c)
            plan_p, plan_q = keys.secret_key.prime_plans()
            assert (
                profiler.ops["decrypt.crt"].bigint_muls
                == plan_p.chain_muls + plan_q.chain_muls
            )
            assert (
                profiler.ops["decrypt.crt.tables"].bigint_muls
                == plan_p.table_muls + plan_q.table_muls
            )

    def test_fast_encrypt_cheaper_than_binary_model(self):
        from repro.crypto import fastexp

        keys, _ = profile_keypair(generate_keypair(128, seed=54321))
        pk = keys.public_key
        with fastexp.forced(True):
            plan = pk.nonce_plan(1)
            binary, _ = pow_mul_estimate(pk.n, 2 * pk.key_bits)
            assert plan.per_call_muls < binary
