"""End-to-end tests for the protocol runners: single, group, OPT, naive.

Correctness baseline: with sanitation disabled, every protocol variant
must deliver exactly the plaintext kGNN answer (Definition 2.1); with
sanitation enabled, a prefix of it.
"""

import numpy as np
import pytest

from repro.core.group import random_group, run_ppgnn
from repro.core.naive import naive_partition, run_naive
from repro.core.opt import optimal_omega, paper_omega, run_ppgnn_opt
from repro.core.single import run_single_user, run_single_user_opt
from repro.errors import ConfigurationError
from repro.gnn.bruteforce import brute_force_kgnn
from repro.protocol.metrics import COORDINATOR, LSP, USER


def truth_ids(lsp, locations, k):
    entries = list(lsp.engine.tree.entries())
    return [p.poi_id for _, p, _ in brute_force_kgnn(entries, locations, k, lsp.aggregate)]


@pytest.fixture()
def group(lsp):
    return random_group(4, lsp.space, np.random.default_rng(8))


class TestSingleUser:
    def test_exact_answer(self, lsp, fast_config, group):
        result = run_single_user(lsp, group[0], fast_config, seed=1)
        assert list(result.answer_ids) == truth_ids(lsp, [group[0]], fast_config.k)

    def test_opt_matches_plain(self, lsp, fast_config, group):
        plain = run_single_user(lsp, group[0], fast_config, seed=1)
        opt = run_single_user_opt(lsp, group[0], fast_config, seed=1)
        assert plain.answer_ids == opt.answer_ids

    def test_delta_prime_equals_d(self, lsp, fast_config, group):
        result = run_single_user(lsp, group[0], fast_config, seed=2)
        assert result.delta_prime == fast_config.d

    def test_indicator_dominates_comm(self, lsp, fast_config, group):
        result = run_single_user(lsp, group[0], fast_config, seed=3)
        report = result.report
        assert report.link_bytes(COORDINATOR, LSP) > report.link_bytes(LSP, COORDINATOR)

    def test_no_intra_group_traffic(self, lsp, fast_config, group):
        result = run_single_user(lsp, group[0], fast_config, seed=4)
        assert result.report.intra_group_comm_bytes == 0

    def test_omega_override(self, lsp, fast_config, group):
        result = run_single_user_opt(lsp, group[0], fast_config, seed=5, omega=3)
        assert list(result.answer_ids) == truth_ids(lsp, [group[0]], fast_config.k)


class TestGroupProtocol:
    def test_sanitized_answer_is_truth_prefix(self, lsp, fast_config, group):
        result = run_ppgnn(lsp, group, fast_config, seed=1)
        truth = truth_ids(lsp, group, fast_config.k)
        assert list(result.answer_ids) == truth[: len(result.answer_ids)]
        assert result.protocol == "ppgnn"

    def test_nas_returns_full_answer(self, lsp, fast_config, group):
        result = run_ppgnn(lsp, group, fast_config.without_sanitation(), seed=1)
        assert list(result.answer_ids) == truth_ids(lsp, group, fast_config.k)
        assert result.protocol == "ppgnn-nas"

    def test_delta_prime_at_least_delta(self, lsp, fast_config, group):
        result = run_ppgnn(lsp, group, fast_config, seed=2)
        assert result.delta_prime >= fast_config.delta

    def test_lsp_ran_one_kgnn_per_candidate(self, lsp, fast_config, group):
        result = run_ppgnn(lsp, group, fast_config, seed=3)
        assert lsp.last_stats.kgnn_queries == result.delta_prime

    def test_costs_populated(self, lsp, fast_config, group):
        report = run_ppgnn(lsp, group, fast_config, seed=4).report
        assert report.user_cost_seconds > 0
        assert report.lsp_cost_seconds > 0
        assert report.total_comm_bytes > 0
        assert report.link_bytes(COORDINATOR, USER) > 0  # pos broadcasts
        assert report.ops_by_role[COORDINATOR].encryptions > 0
        assert report.ops_by_role[LSP].scalar_muls > 0

    def test_empty_group_rejected(self, lsp, fast_config):
        with pytest.raises(ConfigurationError):
            run_ppgnn(lsp, [], fast_config)

    def test_works_with_n_equal_one(self, lsp, fast_config, group):
        """The group machinery subsumes n = 1 (Section 4 'subsumes §3')."""
        cfg = fast_config.for_single_user()
        result = run_ppgnn(lsp, group[:1], cfg.without_sanitation(), seed=5)
        assert list(result.answer_ids) == truth_ids(lsp, group[:1], cfg.k)

    def test_deterministic_given_seeds(self, lsp, fast_config, group):
        lsp.reset_rng(3)
        a = run_ppgnn(lsp, group, fast_config, seed=6)
        lsp.reset_rng(3)
        b = run_ppgnn(lsp, group, fast_config, seed=6)
        assert a.answer_ids == b.answer_ids
        assert a.query_index == b.query_index

    @pytest.mark.parametrize("aggregate", ["sum", "max", "min"])
    def test_all_aggregates_end_to_end(self, medium_pois, fast_config, aggregate):
        from dataclasses import replace

        from repro.core.lsp import LSPServer

        lsp = LSPServer(
            medium_pois, aggregate_name=aggregate, sanitation_samples=1000, seed=1
        )
        cfg = replace(fast_config, aggregate_name=aggregate)
        group = random_group(3, lsp.space, np.random.default_rng(12))
        result = run_ppgnn(lsp, group, cfg.without_sanitation(), seed=7)
        assert list(result.answer_ids) == truth_ids(lsp, group, cfg.k)


class TestOptProtocol:
    def test_matches_plain_protocol(self, lsp, fast_config, group):
        lsp.reset_rng(9)
        plain = run_ppgnn(lsp, group, fast_config, seed=1)
        lsp.reset_rng(9)
        opt = run_ppgnn_opt(lsp, group, fast_config, seed=1)
        assert plain.answer_ids == opt.answer_ids
        assert opt.protocol == "ppgnn-opt"

    def test_every_omega_is_correct(self, lsp, fast_config, group):
        cfg = fast_config.without_sanitation()
        truth = truth_ids(lsp, group, cfg.k)
        for omega in (1, 2, 3, cfg.delta):
            result = run_ppgnn_opt(lsp, group, cfg, seed=2, omega=omega)
            assert list(result.answer_ids) == truth

    def test_omega_bounds_validated(self, lsp, fast_config, group):
        with pytest.raises(ConfigurationError):
            run_ppgnn_opt(lsp, group, fast_config, omega=0)

    def test_indicator_bytes_shrink_vs_plain(self, lsp, fast_config, group):
        """The Section 6 goal: OPT's coordinator->LSP traffic is smaller."""
        plain = run_ppgnn(lsp, group, fast_config, seed=3)
        opt = run_ppgnn_opt(lsp, group, fast_config, seed=3)
        assert opt.report.link_bytes(COORDINATOR, LSP) < plain.report.link_bytes(
            COORDINATOR, LSP
        )

    def test_opt_answer_costs_more_downstream(self, lsp, fast_config, group):
        """eps_2 answers are 1.5x larger than eps_1 answers."""
        plain = run_ppgnn(lsp, group, fast_config, seed=4)
        opt = run_ppgnn_opt(lsp, group, fast_config, seed=4)
        assert opt.report.link_bytes(LSP, COORDINATOR) > plain.report.link_bytes(
            LSP, COORDINATOR
        )


class TestOmegaChoice:
    def test_paper_omega_formula(self):
        assert paper_omega(8) == 2
        assert paper_omega(100) == 7
        assert paper_omega(1) == 1

    def test_optimal_omega_minimizes_cost(self):
        import math

        for delta_prime in (1, 2, 7, 8, 50, 100, 225):
            best = optimal_omega(delta_prime)

            def cost(w, dp=delta_prime):
                return 3 * w + 2 * math.ceil(dp / w)

            assert all(cost(best) <= cost(w) for w in range(1, delta_prime + 1))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_omega(0)
        with pytest.raises(ConfigurationError):
            paper_omega(0)


class TestNaive:
    def test_matches_ppgnn_answer(self, lsp, fast_config, group):
        """Without sanitation randomness, Naive and PPGNN answer identically."""
        cfg = fast_config.without_sanitation()
        ppgnn = run_ppgnn(lsp, group, cfg, seed=1)
        naive = run_naive(lsp, group, cfg, seed=1)
        assert naive.answer_ids == ppgnn.answer_ids
        assert naive.protocol == "naive"

    def test_sanitized_answer_is_truth_prefix(self, lsp, fast_config, group):
        result = run_naive(lsp, group, fast_config, seed=1)
        truth = truth_ids(lsp, group, fast_config.k)
        assert list(result.answer_ids) == truth[: len(result.answer_ids)]
        assert len(result.answer_ids) >= 1

    def test_partition_shape(self):
        params = naive_partition(5, 12)
        assert params.subgroup_sizes == (5,)
        assert params.segment_sizes == (1,) * 12
        assert params.delta_prime == 12

    def test_users_upload_delta_locations(self, lsp, fast_config, group):
        result = run_naive(lsp, group, fast_config, seed=2)
        report = result.report
        # Each of the n users ships delta locations (16 B each) + its id.
        expected = len(group) * (4 + 16 * fast_config.delta)
        assert report.link_bytes(USER, LSP) == expected

    def test_more_upload_than_ppgnn(self, lsp, fast_config, group):
        """The cost the paper criticizes: delta - d extra dummies per user."""
        ppgnn = run_ppgnn(lsp, group, fast_config, seed=3)
        naive = run_naive(lsp, group, fast_config, seed=3)
        assert naive.report.link_bytes(USER, LSP) > ppgnn.report.link_bytes(USER, LSP)
