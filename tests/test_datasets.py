"""Tests for POI records and dataset generators/loaders."""

import math

import pytest

from repro.datasets.poi import POI
from repro.datasets.sequoia import SEQUOIA_SIZE, load_sequoia, load_sequoia_file
from repro.datasets.synthetic import clustered_pois, uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.space import LocationSpace


class TestPOI:
    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            POI(-1, Point(0, 0))

    def test_str_forms(self):
        assert "cafe" in str(POI(1, Point(0.5, 0.25), "cafe"))
        assert "poi-2" in str(POI(2, Point(0, 0)))

    def test_frozen_and_hashable(self):
        p = POI(1, Point(0, 0), "x")
        assert {p, POI(1, Point(0, 0), "x")} == {p}

    @pytest.mark.parametrize(
        "bad",
        [
            Point(math.nan, 0.5),
            Point(0.5, math.nan),
            Point(math.inf, 0.0),
            Point(0.0, -math.inf),
        ],
    )
    def test_non_finite_location_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="non-finite"):
            POI(1, bad)


class TestSyntheticGenerators:
    def test_uniform_count_ids_and_bounds(self, space):
        pois = uniform_pois(500, space, seed=1)
        assert len(pois) == 500
        assert [p.poi_id for p in pois] == list(range(500))
        assert all(space.contains(p.location) for p in pois)

    def test_uniform_deterministic(self, space):
        assert uniform_pois(50, space, seed=9) == uniform_pois(50, space, seed=9)

    def test_uniform_zero_count(self):
        assert uniform_pois(0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_pois(-1)

    def test_clustered_bounds_and_determinism(self, space):
        a = clustered_pois(800, space, seed=3)
        b = clustered_pois(800, space, seed=3)
        assert a == b
        assert all(space.contains(p.location) for p in a)

    def test_clustered_is_actually_clustered(self, space):
        """Clustered data must concentrate: the densest 10% of grid cells
        hold far more points than under a uniform distribution."""
        from collections import Counter

        pois = clustered_pois(4000, space, seed=5, background_fraction=0.1)
        cells = Counter(
            (int(p.location.x * 10), int(p.location.y * 10)) for p in pois
        )
        top10 = sum(count for _, count in cells.most_common(10))
        assert top10 > 0.25 * 4000  # uniform would put ~10% in any 10 cells

    def test_clustered_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            clustered_pois(10, clusters=0)
        with pytest.raises(ConfigurationError):
            clustered_pois(10, background_fraction=1.5)


class TestSequoia:
    def test_default_surrogate_size(self):
        pois = load_sequoia(1000)
        assert len(pois) == 1000
        assert SEQUOIA_SIZE == 62_556

    def test_surrogate_deterministic(self):
        assert load_sequoia(200) == load_sequoia(200)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            load_sequoia(0)

    def test_file_loader_normalizes(self, tmp_path):
        raw = tmp_path / "sequoia.txt"
        raw.write_text("100 200 Alpha\n300 600 Beta Cafe\n200 400\n")
        pois = load_sequoia_file(raw)
        assert len(pois) == 3
        space = LocationSpace.unit_square()
        assert all(space.contains(p.location) for p in pois)
        # Extremes map onto the space bounds.
        assert pois[0].location == Point(0.0, 0.0)
        assert pois[1].location == Point(1.0, 1.0)
        assert pois[1].name == "Beta Cafe"
        assert pois[2].name == "sequoia-2"

    def test_file_loader_custom_space(self, tmp_path):
        raw = tmp_path / "sequoia.txt"
        raw.write_text("0 0 a\n10 10 b\n")
        target = LocationSpace(Rect(5, 5, 7, 9))
        pois = load_sequoia_file(raw, target)
        assert pois[0].location == Point(5, 5)
        assert pois[1].location == Point(7, 9)

    def test_file_loader_errors(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("only-one-field\n")
        with pytest.raises(ConfigurationError):
            load_sequoia_file(bad)
        bad.write_text("x y name\n")
        with pytest.raises(ConfigurationError):
            load_sequoia_file(bad)
        bad.write_text("\n\n")
        with pytest.raises(ConfigurationError):
            load_sequoia_file(bad)

    @pytest.mark.parametrize("poison", ["nan", "inf", "-inf", "NaN"])
    def test_file_loader_rejects_non_finite_rows(self, tmp_path, poison):
        # float() parses these strings happily; the loader must not.
        bad = tmp_path / "bad.txt"
        bad.write_text(f"1 2 ok\n{poison} 4 poisoned\n")
        with pytest.raises(ConfigurationError, match="bad.txt:2"):
            load_sequoia_file(bad)
        bad.write_text(f"1 2 ok\n3 {poison} poisoned\n")
        with pytest.raises(ConfigurationError, match="non-finite"):
            load_sequoia_file(bad)
