"""Tests for the sharded parallel STR bulk loader and the STR tiling."""

import pytest

from repro.datasets import stream_clustered, stream_uniform
from repro.errors import ConfigurationError
from repro.index.rtree import RTree, slice_leaf_chunks, str_slices
from repro.spatial import parallel_str_bulk_load, str_partition_tiles, tree_digest


def _entries(count, seed=7, clustered=False):
    stream = stream_clustered if clustered else stream_uniform
    return [(poi.location, poi) for poi in stream(count, seed=seed)]


class TestStrSlices:
    def test_slices_cover_input_in_order(self):
        pairs = sorted(_entries(500), key=lambda e: (e[0].x, e[0].y))
        slices = str_slices(pairs, 16)
        assert [p for chunk in slices for p in chunk] == pairs

    def test_empty_input_yields_no_slices(self):
        assert str_slices([], 16) == []

    def test_leaf_chunks_respect_capacity(self):
        pairs = _entries(300)
        for chunk in str_slices(sorted(pairs, key=lambda e: (e[0].x, e[0].y)), 8):
            for points, items in slice_leaf_chunks(chunk, 8):
                assert 1 <= len(points) <= 8
                assert len(points) == len(items)


class TestParallelBuildIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_any_worker_count_matches_serial(self, workers):
        entries = _entries(2_000, clustered=True)
        serial = RTree(max_entries=16)
        serial.bulk_load(entries)
        parallel = RTree(max_entries=16)
        parallel_str_bulk_load(parallel, entries, workers=workers)
        assert tree_digest(parallel) == tree_digest(serial)
        assert len(parallel) == len(serial) == len(entries)

    def test_more_workers_than_slices(self):
        # 40 entries at cap 16 -> 2 slices; 32 workers must not change the tree.
        entries = _entries(40)
        serial = RTree(max_entries=16)
        serial.bulk_load(entries)
        parallel = RTree(max_entries=16)
        parallel_str_bulk_load(parallel, entries, workers=32)
        assert tree_digest(parallel) == tree_digest(serial)

    def test_single_leaf_and_empty(self):
        entries = _entries(5)
        tree = RTree(max_entries=16)
        parallel_str_bulk_load(tree, entries, workers=4)
        assert len(tree) == 5
        empty = RTree(max_entries=16)
        parallel_str_bulk_load(empty, [], workers=4)
        assert len(empty) == 0

    def test_loaded_tree_answers_queries(self):
        entries = _entries(600)
        tree = RTree(max_entries=16)
        parallel_str_bulk_load(tree, entries, workers=4)
        from repro.geometry.rect import Rect

        got = {item.poi_id for _, item in tree.range_query(Rect(0.2, 0.2, 0.6, 0.6))}
        want = {
            item.poi_id
            for p, item in entries
            if Rect(0.2, 0.2, 0.6, 0.6).contains_point(p)
        }
        assert got == want

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_str_bulk_load(RTree(), _entries(10), workers=0)

    def test_digest_distinguishes_content(self):
        a = RTree(max_entries=16)
        a.bulk_load(_entries(100, seed=1))
        b = RTree(max_entries=16)
        b.bulk_load(_entries(100, seed=2))
        assert tree_digest(a) != tree_digest(b)


class TestStrPartitionTiles:
    @pytest.mark.parametrize("tiles", [1, 2, 5, 9, 16])
    def test_exact_tile_count_nonempty_exhaustive(self, tiles):
        entries = _entries(400, clustered=True)
        cells = str_partition_tiles(entries, tiles)
        assert len(cells) == tiles
        assert all(cells)
        ids = sorted(item.poi_id for cell in cells for _, item in cell)
        assert ids == sorted(item.poi_id for _, item in entries)

    def test_minimum_one_entry_per_tile(self):
        entries = _entries(7)
        cells = str_partition_tiles(entries, 7)
        assert [len(c) for c in cells] == [1] * 7

    def test_too_many_tiles_rejected(self):
        with pytest.raises(ConfigurationError):
            str_partition_tiles(_entries(3), 4)
        with pytest.raises(ConfigurationError):
            str_partition_tiles(_entries(3), 0)

    def test_deterministic_in_entry_order(self):
        entries = _entries(200)
        shuffled = list(reversed(entries))
        a = str_partition_tiles(entries, 6)
        b = str_partition_tiles(shuffled, 6)
        ids = lambda cells: [  # noqa: E731
            sorted(item.poi_id for _, item in cell) for cell in cells
        ]
        assert ids(a) == ids(b)


class TestPartitionStrategy:
    def test_str_strategy_registered(self):
        from repro.partition.spatial import PARTITION_STRATEGIES, partition_pois

        assert "str" in PARTITION_STRATEGIES
        pois = [item for _, item in _entries(120, clustered=True)]
        cells = partition_pois(pois, 4, strategy="str")
        assert len(cells) == 4
        assert all(cells)
        assert sorted(p.poi_id for cell in cells for p in cell) == sorted(
            p.poi_id for p in pois
        )
        # Cells come back id-sorted like the other strategies.
        for cell in cells:
            assert list(cell) == sorted(cell, key=lambda p: p.poi_id)
