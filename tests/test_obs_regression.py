"""Observability must be invisible when off and exact when on.

Three contracts:

1. ``obs=None`` (the default) is byte-identical to the pre-observability
   code: a pinned serving fixture's ``answers_digest`` and full-report
   SHA-256 must never move (the ``guard=None`` / ``transport=None``
   regression pattern).
2. ``obs=Observability()`` changes *observations only*: answers and comm
   bytes match the bare run for every protocol.
3. With tracing on, a round span's encryption / decryption / kGNN-query
   attributes equal ``CostModel.predict_ops`` exactly — the ISSUE's
   acceptance criterion tying traces to the cost model.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.config import PPGNNConfig
from repro.core.group import run_ppgnn
from repro.core.lsp import LSPServer
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt
from repro.datasets.synthetic import clustered_pois
from repro.geometry.space import LocationSpace
from repro.obs import Observability
from repro.serve.costs import CostModel
from repro.serve.engine import ServeConfig, ServeEngine, ServingReport
from repro.serve.workload import WorkloadSpec, generate_workload

# Pinned from the pre-observability serving engine (12-query fixture).
EXPECTED_ANSWERS_DIGEST = (
    "22ffdc8b6366ab98e6f29a79996e63086759d12b65a4bfae08f5be09c4bd795e"
)
EXPECTED_REPORT_SHA256 = (
    "e08461ed684a8aad064e5b0ee649c003cac31dfc39965f92d2e855bffd8bd461"
)

_RUNNERS = {
    "ppgnn": run_ppgnn,
    "ppgnn-opt": run_ppgnn_opt,
    "naive": run_naive,
}


@pytest.fixture(scope="module")
def space():
    return LocationSpace.unit_square()


@pytest.fixture(scope="module")
def config():
    return PPGNNConfig(
        d=3, delta=6, k=3, keysize=128, key_seed=5, sanitation_samples=16
    )


@pytest.fixture(scope="module")
def workload(space):
    spec = WorkloadSpec(
        queries=12,
        rate_qps=50.0,
        protocol_mix={"ppgnn": 1.0, "ppgnn-opt": 1.0, "naive": 1.0},
        group_size_mix={2: 1.0, 3: 1.0},
        k_mix={3: 1.0},
        tenants=("t0", "t1"),
        groups=4,
        repeat_fraction=0.25,
        seed=21,
    )
    return generate_workload(spec, space)


def _make_lsp(space):
    return LSPServer(
        clustered_pois(500, space, seed=11), sanitation_samples=16, seed=99
    )


def _run_fixture(space, config, workload, obs: bool):
    engine = ServeEngine(
        _make_lsp(space), config, ServeConfig(workers=2, obs=obs)
    )
    return engine.run(workload)


class TestObsNoneByteIdentical:
    def test_serving_fixture_digests_pinned(self, space, config, workload):
        report = _run_fixture(space, config, workload, obs=False)
        assert report.answers_digest == EXPECTED_ANSWERS_DIGEST
        sha = hashlib.sha256(
            json.dumps(report.to_dict(), sort_keys=True).encode()
        ).hexdigest()
        assert sha == EXPECTED_REPORT_SHA256
        assert report.obs is None
        assert "obs" not in report.to_dict()

    def test_obs_on_changes_observations_only(self, space, config, workload):
        bare = _run_fixture(space, config, workload, obs=False)
        observed = _run_fixture(space, config, workload, obs=True)
        assert observed.answers_digest == bare.answers_digest
        observed_dict = observed.to_dict()
        assert observed_dict.pop("obs") is not None
        assert observed_dict == bare.to_dict()

    def test_obs_run_is_deterministic(self, space, config, workload):
        a = _run_fixture(space, config, workload, obs=True)
        b = _run_fixture(space, config, workload, obs=True)
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("protocol", sorted(_RUNNERS))
    def test_direct_runs_match_per_protocol(self, protocol, space, config):
        rng = np.random.default_rng(42)
        locations = [space.sample_point(rng) for _ in range(3)]
        bare = _RUNNERS[protocol](
            _make_lsp(space), locations, config, seed=7
        )
        observed = _RUNNERS[protocol](
            _make_lsp(space), locations, config, seed=7, obs=Observability()
        )
        assert observed.answer_ids == bare.answer_ids
        assert (
            observed.report.total_comm_bytes == bare.report.total_comm_bytes
        )


class TestSpanOpsMatchCostModel:
    @pytest.mark.parametrize("protocol", sorted(_RUNNERS))
    @pytest.mark.parametrize("n", [2, 3])
    def test_round_span_counts_equal_predict_ops(
        self, protocol, n, space, config
    ):
        rng = np.random.default_rng(13 + n)
        locations = [space.sample_point(rng) for _ in range(n)]
        obs = Observability()
        _RUNNERS[protocol](_make_lsp(space), locations, config, seed=3, obs=obs)
        round_span = next(
            s for s in obs.tracer.spans() if s.name == f"round.{protocol}"
        )
        predicted = CostModel().predict_ops(protocol, n, config)
        assert round_span.attrs["encryptions"] == predicted["encryptions"]
        assert round_span.attrs["decryptions"] == predicted["decryptions"]
        assert round_span.attrs["kgnn_queries"] == predicted["kgnn_queries"]

    @pytest.mark.parametrize("protocol", sorted(_RUNNERS))
    def test_metric_counters_equal_predict_ops(self, protocol, space, config):
        rng = np.random.default_rng(29)
        locations = [space.sample_point(rng) for _ in range(3)]
        obs = Observability()
        _RUNNERS[protocol](_make_lsp(space), locations, config, seed=5, obs=obs)
        counters = obs.snapshot().counters
        predicted = CostModel().predict_ops(protocol, 3, config)
        assert counters["crypto.encryptions"] == predicted["encryptions"]
        decryptions = (
            counters["crypto.decryptions.crt"]
            + counters["crypto.decryptions.generic"]
        )
        assert decryptions == predicted["decryptions"]
        assert counters["lsp.kgnn_queries"] == predicted["kgnn_queries"]

    def test_predict_ops_unknown_protocol(self, config):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CostModel().predict_ops("bogus", 3, config)


class TestServingReportRoundTrip:
    def test_to_dict_from_dict_lossless(self, space, config, workload):
        report = _run_fixture(space, config, workload, obs=True)
        data = report.to_dict()
        restored = ServingReport.from_dict(json.loads(json.dumps(data)))
        assert restored.to_dict() == data

    def test_round_trip_with_wall_fields(self, space, config, workload):
        report = _run_fixture(space, config, workload, obs=False)
        data = report.to_dict(include_wall=True)
        restored = ServingReport.from_dict(data)
        assert restored.wall_seconds == report.wall_seconds
        assert restored.to_dict(include_wall=True) == data
