"""Tests for primality testing and prime generation."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.primes import (
    generate_distinct_primes,
    generate_prime,
    is_probable_prime,
)
from repro.errors import ConfigurationError

KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 100, 7917, 2**31, 561, 41041, 6601]  # incl. Carmichael


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites_including_carmichael(self, c):
        assert not is_probable_prime(c)

    @given(st.integers(min_value=2, max_value=2000), st.integers(min_value=2, max_value=2000))
    def test_products_are_composite(self, a, b):
        assert not is_probable_prime(a * b)

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime; exercises the random-witness path.
        assert is_probable_prime(2**127 - 1, rng=random.Random(0))

    def test_large_composite(self):
        assert not is_probable_prime((2**127 - 1) * (2**89 - 1), rng=random.Random(0))


class TestGeneratePrime:
    @pytest.mark.parametrize("bits", [8, 16, 32, 64, 128])
    def test_exact_bit_length(self, bits):
        p = generate_prime(bits, random.Random(1))
        assert p.bit_length() == bits
        assert is_probable_prime(p)

    def test_top_two_bits_set(self):
        # Required so that p*q has exactly 2*bits bits.
        p = generate_prime(32, random.Random(2))
        assert (p >> 30) & 0b11 == 0b11

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_prime(4, random.Random(0))

    def test_distinct_primes(self):
        p, q = generate_distinct_primes(64, random.Random(3))
        assert p != q
        assert (p * q).bit_length() == 128

    def test_deterministic_for_seed(self):
        assert generate_prime(48, random.Random(9)) == generate_prime(48, random.Random(9))
