"""Chaos tests: full protocol rounds over deliberately broken networks.

The acceptance bar: for every fault mix up to 20% per link, each protocol
either returns the byte-identical answer set it returns over a perfect
channel with the same seeds, or dies with a typed
:class:`~repro.errors.TransportError` subclass — never a wrong answer,
never a stray exception — and the retry traffic shows up in the report.
"""

import numpy as np
import pytest

from repro.core.group import random_group, run_ppgnn
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt
from repro.errors import GroupMemberLostError, TransportError
from repro.transport.channel import FaultyChannel, PerfectChannel
from repro.transport.faults import FaultPlan, LinkFaults
from repro.transport.retry import RetryPolicy
from repro.transport.session import ResilientSession
from repro.transport.transport import NETWORK, Transport

RUNNERS = {
    "ppgnn": run_ppgnn,
    "ppgnn-opt": run_ppgnn_opt,
    "naive": run_naive,
}

#: Generous attempt budget: at 20% loss per copy the chance of ten straight
#: failures on one message is ~1e-7, so the sweep is effectively abort-free
#: while still exercising the retry machinery constantly.
CHAOS_POLICY = RetryPolicy(max_attempts=10)


def perfect_run(lsp, runner, group, config, seed):
    lsp.reset_rng(1234)
    return runner(lsp, group, config, seed=seed, transport=Transport())


def faulty_run(lsp, runner, group, config, seed, plan):
    lsp.reset_rng(1234)
    transport = Transport(FaultyChannel(plan), CHAOS_POLICY)
    result = runner(lsp, group, config, seed=seed, transport=transport)
    return result, transport


class TestChaosSweep:
    @pytest.mark.parametrize("protocol", sorted(RUNNERS))
    @pytest.mark.parametrize("rate", [0.05, 0.1, 0.2])
    def test_answers_survive_uniform_chaos(self, lsp, fast_config, protocol, rate):
        runner = RUNNERS[protocol]
        group = random_group(4, lsp.space, np.random.default_rng(31))
        baseline = perfect_run(lsp, runner, group, fast_config, seed=5)
        for fault_seed in range(3):
            plan = FaultPlan.uniform(rate, seed=fault_seed)
            try:
                result, transport = faulty_run(
                    lsp, runner, group, fast_config, 5, plan
                )
            except TransportError:
                continue  # a typed abort is an allowed outcome
            assert result.answer_ids == baseline.answer_ids
            assert result.query_index == baseline.query_index
            if transport.stats.retransmissions:
                # Reliability is visible in the communication numbers.
                assert (
                    result.report.total_comm_bytes
                    > baseline.report.total_comm_bytes
                )

    @pytest.mark.parametrize("fault", ["drop", "duplicate", "reorder", "corrupt"])
    def test_each_fault_kind_alone(self, lsp, fast_config, fault):
        group = random_group(3, lsp.space, np.random.default_rng(7))
        baseline = perfect_run(lsp, run_ppgnn, group, fast_config, seed=2)
        plan = FaultPlan(default=LinkFaults(**{fault: 0.2}), seed=9)
        result, transport = faulty_run(lsp, run_ppgnn, group, fast_config, 2, plan)
        assert result.answer_ids == baseline.answer_ids
        if fault == "corrupt":
            assert transport.stats.corrupt_rejected > 0
            assert transport.stats.nacks_sent == transport.stats.corrupt_rejected

    def test_latency_accrues_to_network_clock(self, lsp, fast_config):
        group = random_group(3, lsp.space, np.random.default_rng(8))
        plan = FaultPlan(
            default=LinkFaults(latency_seconds=0.01, latency_jitter_seconds=0.005),
            seed=1,
        )
        result, transport = faulty_run(lsp, run_ppgnn, group, fast_config, 3, plan)
        network = result.report.time_by_role[NETWORK]
        assert network == pytest.approx(transport.stats.latency_seconds)
        # Simulated waiting never pollutes the paper's CPU cost series.
        assert result.report.user_cost_seconds < network + 10

    def test_fault_sequence_is_reproducible(self, lsp, fast_config):
        group = random_group(3, lsp.space, np.random.default_rng(9))
        plan = FaultPlan.uniform(0.15, seed=77)
        a, ta = faulty_run(lsp, run_ppgnn, group, fast_config, 4, plan)
        b, tb = faulty_run(lsp, run_ppgnn, group, fast_config, 4, plan)
        assert a.answer_ids == b.answer_ids
        assert ta.stats == tb.stats
        assert a.report.total_comm_bytes == b.report.total_comm_bytes


class TestResilientSession:
    def test_perfect_channel_matches_plain_session(self, lsp, fast_config):
        from repro.core.session import QuerySession

        group = random_group(3, lsp.space, np.random.default_rng(10))
        lsp.reset_rng(55)
        plain = QuerySession(lsp, fast_config, seed=6).query(group)
        lsp.reset_rng(55)
        resilient = ResilientSession(
            lsp, fast_config, seed=6, channel=PerfectChannel()
        ).query(group)
        assert resilient.answer_ids == plain.answer_ids

    def test_member_death_aborts_cleanly(self, lsp, fast_config):
        group = random_group(4, lsp.space, np.random.default_rng(11))
        session = ResilientSession(
            lsp,
            fast_config,
            seed=7,
            channel=FaultyChannel(FaultPlan(kill={"user:2": 1})),
            policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(GroupMemberLostError) as excinfo:
            session.query(group)
        assert excinfo.value.user_index == 2
        assert session.totals.queries == 0  # no half-counted query

    def test_regroup_recovers_with_survivors(self, lsp, fast_config):
        group = random_group(4, lsp.space, np.random.default_rng(12))
        session = ResilientSession(
            lsp,
            fast_config,
            seed=8,
            channel=FaultyChannel(FaultPlan(kill={"user:2": 1})),
            policy=RetryPolicy(max_attempts=3),
            allow_regroup=True,
        )
        result = session.query(group)
        assert session.regroups == 1
        assert len(result.answers) >= 1
        assert session.totals.queries == 1

    def test_regroup_answer_matches_survivor_group(self, lsp, fast_config):
        """The re-run is exactly a fresh n-1 round: same answer as running
        the survivors directly with the regroup seed."""
        from repro.transport.session import _REGROUP_SEED_STRIDE

        cfg = fast_config.without_sanitation()
        group = random_group(4, lsp.space, np.random.default_rng(13))
        session = ResilientSession(
            lsp,
            cfg,
            seed=9,
            channel=FaultyChannel(FaultPlan(kill={"user:1": 1})),
            policy=RetryPolicy(max_attempts=3),
            allow_regroup=True,
        )
        result = session.query(group)
        survivors = group[:1] + group[2:]
        direct = run_ppgnn(lsp, survivors, cfg, seed=9 + _REGROUP_SEED_STRIDE)
        assert result.answer_ids == direct.answer_ids

    def test_session_totals_include_retry_traffic(self, lsp, fast_config):
        group = random_group(3, lsp.space, np.random.default_rng(14))
        lsp.reset_rng(77)
        clean = ResilientSession(lsp, fast_config, seed=11)
        clean.query(group)
        lsp.reset_rng(77)
        noisy = ResilientSession(
            lsp,
            fast_config,
            seed=11,
            channel=FaultyChannel(FaultPlan.uniform(0.2, seed=2)),
            policy=CHAOS_POLICY,
        )
        noisy.query(group)
        assert noisy.transport_stats.retransmissions > 0
        assert noisy.totals.comm_bytes > clean.totals.comm_bytes

    def test_single_survivor_cannot_regroup(self, lsp, fast_config):
        group = random_group(1, lsp.space, np.random.default_rng(15))
        session = ResilientSession(
            lsp,
            fast_config.for_single_user(),
            seed=12,
            channel=FaultyChannel(FaultPlan(kill={"user:0": 0})),
            policy=RetryPolicy(max_attempts=2),
            allow_regroup=True,
        )
        with pytest.raises(GroupMemberLostError):
            session.query(group)
