"""Failure injection: malformed requests must be rejected, not mis-served.

The parties are semi-honest in the paper's model, but a production LSP
still validates its inputs — these tests feed structurally broken messages
into every request handler and assert clean :class:`ProtocolError`s (never
a wrong answer or an unhandled crash).
"""

import random

import pytest

from repro.core.common import group_keypair
from repro.crypto.homomorphic import encrypt_indicator
from repro.errors import ProtocolError
from repro.geometry.point import Point
from repro.partition.solver import solve_partition
from repro.protocol.messages import (
    GroupQueryRequest,
    LocationSetUpload,
    SingleQueryRequest,
)
from repro.protocol.metrics import CostLedger


@pytest.fixture()
def pk(fast_config):
    return group_keypair(fast_config).public_key


def make_uploads(n, d, space, ids=None):
    ids = list(range(n)) if ids is None else ids
    return [
        LocationSetUpload(uid, tuple(Point(0.1 * (j + 1), 0.5) for j in range(d)))
        for uid in ids
    ]


def make_group_request(pk, fast_config, n=4, indicator_length=None, segments=None):
    params = solve_partition(n, fast_config.d, fast_config.delta)
    length = indicator_length if indicator_length is not None else params.delta_prime
    return GroupQueryRequest(
        k=fast_config.k,
        public_key=pk,
        subgroup_sizes=params.subgroup_sizes,
        segment_sizes=segments or params.segment_sizes,
        indicator=tuple(encrypt_indicator(pk, length, 0, rng=random.Random(0))),
        theta0=None,
    )


class TestGroupRequestValidation:
    def test_indicator_length_mismatch(self, lsp, fast_config, pk):
        request = make_group_request(pk, fast_config, indicator_length=3)
        uploads = make_uploads(4, fast_config.d, lsp.space)
        with pytest.raises(ProtocolError):
            lsp.answer_group_query(request, uploads, CostLedger())

    def test_missing_upload(self, lsp, fast_config, pk):
        request = make_group_request(pk, fast_config)
        uploads = make_uploads(3, fast_config.d, lsp.space)
        with pytest.raises(ProtocolError):
            lsp.answer_group_query(request, uploads, CostLedger())

    def test_duplicate_user_ids(self, lsp, fast_config, pk):
        request = make_group_request(pk, fast_config)
        uploads = make_uploads(4, fast_config.d, lsp.space, ids=[0, 1, 2, 2])
        with pytest.raises(ProtocolError):
            lsp.answer_group_query(request, uploads, CostLedger())

    def test_gapped_user_ids(self, lsp, fast_config, pk):
        request = make_group_request(pk, fast_config)
        uploads = make_uploads(4, fast_config.d, lsp.space, ids=[0, 1, 2, 7])
        with pytest.raises(ProtocolError):
            lsp.answer_group_query(request, uploads, CostLedger())

    def test_wrong_location_set_length(self, lsp, fast_config, pk):
        request = make_group_request(pk, fast_config)
        uploads = make_uploads(4, fast_config.d - 1, lsp.space)
        from repro.errors import ConfigurationError

        with pytest.raises((ProtocolError, ConfigurationError)):
            lsp.answer_group_query(request, uploads, CostLedger())

    def test_uploads_accepted_in_any_order(self, lsp, fast_config, pk):
        """The LSP sorts by user id (Section 4.2) — order must not matter."""
        request = make_group_request(pk, fast_config)
        uploads = make_uploads(4, fast_config.d, lsp.space)
        forward = lsp.answer_group_query(request, uploads, CostLedger())
        backward = lsp.answer_group_query(
            request, list(reversed(uploads)), CostLedger()
        )
        sk = group_keypair(fast_config).secret_key
        assert [sk.decrypt(c) for c in forward.ciphertexts] == [
            sk.decrypt(c) for c in backward.ciphertexts
        ]


class TestSingleRequestValidation:
    def test_indicator_location_mismatch(self, lsp, fast_config, pk):
        request = SingleQueryRequest(
            k=fast_config.k,
            public_key=pk,
            locations=tuple(Point(0.1 * j, 0.2) for j in range(1, 6)),
            indicator=tuple(encrypt_indicator(pk, 3, 0, rng=random.Random(0))),
        )
        with pytest.raises(ProtocolError):
            lsp.answer_single_query(request, CostLedger())


class TestTwoPhaseValidation:
    def test_blocks_must_cover_candidates(self, lsp, fast_config, pk):
        inner = encrypt_indicator(pk, 2, 0, rng=random.Random(0))
        outer = encrypt_indicator(pk, 2, 0, s=2, rng=random.Random(0))
        columns = [[1], [2], [3], [4], [5]]  # 5 candidates > 2 * 2 slots
        with pytest.raises(ProtocolError):
            lsp._two_phase_select(columns, inner, outer, CostLedger())

    def test_empty_columns_rejected(self, lsp):
        with pytest.raises(ProtocolError):
            lsp._rows([])
