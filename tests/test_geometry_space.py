"""Tests for the bounded location space."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.space import LocationSpace


class TestLocationSpace:
    def test_unit_square_default(self):
        space = LocationSpace.unit_square()
        assert space.area == 1.0
        assert space.contains(Point(0.5, 0.5))
        assert not space.contains(Point(1.5, 0.5))

    def test_zero_area_rejected(self):
        with pytest.raises(ConfigurationError):
            LocationSpace(Rect(0, 0, 0, 1))

    def test_sampling_stays_inside(self):
        space = LocationSpace(Rect(-2, 3, 4, 10))
        rng = np.random.default_rng(0)
        for p in space.sample_points(500, rng):
            assert space.contains(p)

    def test_sample_arrays_shape_and_bounds(self):
        space = LocationSpace.unit_square()
        xs, ys = space.sample_arrays(1000, np.random.default_rng(1))
        assert xs.shape == ys.shape == (1000,)
        assert xs.min() >= 0 and xs.max() <= 1
        assert ys.min() >= 0 and ys.max() <= 1

    def test_sampling_is_roughly_uniform(self):
        # Quadrant counts of 8000 samples should all be near 2000.
        space = LocationSpace.unit_square()
        xs, ys = space.sample_arrays(8000, np.random.default_rng(2))
        for qx in (0, 1):
            for qy in (0, 1):
                count = int(
                    (((xs >= 0.5) == qx) & ((ys >= 0.5) == qy)).sum()
                )
                assert 1700 < count < 2300

    def test_negative_sample_count_rejected(self):
        with pytest.raises(ConfigurationError):
            LocationSpace.unit_square().sample_arrays(-1, np.random.default_rng(0))

    def test_relative_area(self):
        space = LocationSpace(Rect(0, 0, 2, 2))
        assert space.relative_area(1.0) == 0.25

    def test_deterministic_given_seed(self):
        space = LocationSpace.unit_square()
        a = space.sample_points(10, np.random.default_rng(42))
        b = space.sample_points(10, np.random.default_rng(42))
        assert a == b
