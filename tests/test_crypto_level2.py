"""Homomorphic behaviour at encryption level s = 2 (used by PPGNN-OPT).

The level-1 operators are exercised everywhere; these tests pin down the
same algebra in the eps_2 space, whose plaintexts are as large as N^2 —
including the exact case PPGNN-OPT relies on: arithmetic over plaintexts
that are themselves eps_1 ciphertext values.
"""

import random

import pytest

from repro.crypto.homomorphic import hom_add, hom_dot, hom_scalar_mul
from repro.crypto.paillier import generate_keypair


@pytest.fixture(scope="module")
def kp():
    return generate_keypair(128, seed=11211)


class TestLevelTwoHomomorphisms:
    def test_addition_of_huge_plaintexts(self, kp):
        sk, pk = kp
        rng = random.Random(1)
        space = pk.plaintext_modulus(2)
        a = space - 12345
        b = 99999
        c = hom_add(pk.encrypt(a, s=2, rng=rng), pk.encrypt(b, s=2, rng=rng))
        assert sk.decrypt(c) == (a + b) % space

    def test_scalar_multiplication(self, kp):
        sk, pk = kp
        rng = random.Random(2)
        m = pk.n + 7  # deliberately larger than the eps_1 space
        c = hom_scalar_mul(12, pk.encrypt(m, s=2, rng=rng))
        assert sk.decrypt(c) == 12 * m

    def test_dot_product_with_ciphertext_scalars(self, kp):
        """The PPGNN-OPT phase-2 pattern: scalars are eps_1 ciphertext
        values, and exactly one indicator entry is 1."""
        sk, pk = kp
        rng = random.Random(3)
        inner_values = [pk.encrypt(v, rng=rng).value for v in (111, 222, 333)]
        outer = [pk.encrypt(1 if i == 2 else 0, s=2, rng=rng) for i in range(3)]
        selected = hom_dot(inner_values, outer)
        # Decrypting twice recovers the selected inner plaintext.
        from repro.crypto.paillier import Ciphertext

        inner = Ciphertext(value=sk.decrypt(selected), s=1, public_key=pk)
        assert sk.decrypt(inner) == 333

    def test_rerandomize_level_two(self, kp):
        sk, pk = kp
        c = pk.encrypt(777, s=2, rng=random.Random(4))
        c2 = pk.rerandomize(c, random.Random(5))
        assert c2.value != c.value
        assert sk.decrypt(c2) == 777

    def test_g_pow_level_three(self, kp):
        """The binomial expansion stays exact at s = 3 (future headroom)."""
        sk, pk = kp
        m = pk.plaintext_modulus(3) - 987654321
        c = pk.encrypt(m, s=3, rng=random.Random(6))
        assert sk.decrypt(c) == m
