"""Tests for key and ciphertext serialization."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair
from repro.crypto.serialization import (
    deserialize_ciphertext,
    deserialize_private_key,
    deserialize_public_key,
    serialize_ciphertext,
    serialize_private_key,
    serialize_public_key,
)
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def kp():
    return generate_keypair(256, seed=777)


class TestPublicKey:
    def test_roundtrip(self, kp):
        _, pk = kp
        assert deserialize_public_key(serialize_public_key(pk)) == pk

    def test_bad_magic(self, kp):
        _, pk = kp
        data = bytearray(serialize_public_key(pk))
        data[0] ^= 0xFF
        with pytest.raises(CryptoError):
            deserialize_public_key(bytes(data))

    def test_bad_version(self, kp):
        _, pk = kp
        data = bytearray(serialize_public_key(pk))
        data[5] = 99
        with pytest.raises(CryptoError):
            deserialize_public_key(bytes(data))

    def test_truncated(self, kp):
        _, pk = kp
        data = serialize_public_key(pk)
        with pytest.raises(CryptoError):
            deserialize_public_key(data[:-3])

    def test_trailing_bytes(self, kp):
        _, pk = kp
        with pytest.raises(CryptoError):
            deserialize_public_key(serialize_public_key(pk) + b"x")


class TestPrivateKey:
    def test_roundtrip_decrypts(self, kp):
        sk, pk = kp
        restored = deserialize_private_key(serialize_private_key(sk))
        c = pk.encrypt(987654, rng=random.Random(1))
        assert restored.secret_key.decrypt(c) == 987654

    def test_roundtrip_preserves_modulus(self, kp):
        sk, pk = kp
        restored = deserialize_private_key(serialize_private_key(sk))
        assert restored.public_key == pk


class TestCiphertext:
    def test_roundtrip_all_levels(self, kp):
        sk, pk = kp
        rng = random.Random(2)
        for s in (1, 2):
            c = pk.encrypt(31337, s=s, rng=rng)
            restored = deserialize_ciphertext(serialize_ciphertext(c), pk)
            assert restored.s == s
            assert sk.decrypt(restored) == 31337

    def test_value_outside_space_rejected(self, kp):
        _, pk = kp
        c = pk.encrypt(5)
        data = serialize_ciphertext(c)
        # Rebuild with a tiny key: the value no longer fits its space.
        tiny = generate_keypair(128, seed=3).public_key
        with pytest.raises(CryptoError):
            deserialize_ciphertext(data, tiny)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**60))
    def test_roundtrip_property(self, m):
        sk, pk = generate_keypair(256, seed=777)
        c = pk.encrypt(m, rng=random.Random(m))
        restored = deserialize_ciphertext(serialize_ciphertext(c), pk)
        assert sk.decrypt(restored) == m


class TestCRTDecryption:
    def test_crt_matches_generic(self, kp):
        sk, pk = kp
        rng = random.Random(4)
        for m in (0, 1, 2**64, pk.n - 1):
            c = pk.encrypt(m, rng=rng)
            assert sk.decrypt(c, use_crt=True) == sk.decrypt(c, use_crt=False) == m

    def test_crt_only_for_level_one(self, kp):
        sk, pk = kp
        c = pk.encrypt(42, s=2, rng=random.Random(5))
        # use_crt is ignored for s > 1 — the generic path runs and is exact.
        assert sk.decrypt(c, use_crt=True) == 42
