"""Tests for key and ciphertext serialization."""

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair
from repro.crypto.serialization import (
    deserialize_ciphertext,
    deserialize_private_key,
    deserialize_public_key,
    serialize_ciphertext,
    serialize_private_key,
    serialize_public_key,
)
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def kp():
    return generate_keypair(256, seed=777)


class TestPublicKey:
    def test_roundtrip(self, kp):
        _, pk = kp
        assert deserialize_public_key(serialize_public_key(pk)) == pk

    def test_bad_magic(self, kp):
        _, pk = kp
        data = bytearray(serialize_public_key(pk))
        data[0] ^= 0xFF
        with pytest.raises(CryptoError):
            deserialize_public_key(bytes(data))

    def test_bad_version(self, kp):
        _, pk = kp
        data = bytearray(serialize_public_key(pk))
        data[5] = 99
        with pytest.raises(CryptoError):
            deserialize_public_key(bytes(data))

    def test_truncated(self, kp):
        _, pk = kp
        data = serialize_public_key(pk)
        with pytest.raises(CryptoError):
            deserialize_public_key(data[:-3])

    def test_trailing_bytes(self, kp):
        _, pk = kp
        with pytest.raises(CryptoError):
            deserialize_public_key(serialize_public_key(pk) + b"x")


class TestPrivateKey:
    def test_roundtrip_decrypts(self, kp):
        sk, pk = kp
        restored = deserialize_private_key(serialize_private_key(sk))
        c = pk.encrypt(987654, rng=random.Random(1))
        assert restored.secret_key.decrypt(c) == 987654

    def test_roundtrip_preserves_modulus(self, kp):
        sk, pk = kp
        restored = deserialize_private_key(serialize_private_key(sk))
        assert restored.public_key == pk


class TestCiphertext:
    def test_roundtrip_all_levels(self, kp):
        sk, pk = kp
        rng = random.Random(2)
        for s in (1, 2):
            c = pk.encrypt(31337, s=s, rng=rng)
            restored = deserialize_ciphertext(serialize_ciphertext(c), pk)
            assert restored.s == s
            assert sk.decrypt(restored) == 31337

    def test_value_outside_space_rejected(self, kp):
        _, pk = kp
        c = pk.encrypt(5)
        data = serialize_ciphertext(c)
        # Rebuild with a tiny key: the value no longer fits its space.
        tiny = generate_keypair(128, seed=3).public_key
        with pytest.raises(CryptoError):
            deserialize_ciphertext(data, tiny)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**60))
    def test_roundtrip_property(self, m):
        sk, pk = generate_keypair(256, seed=777)
        c = pk.encrypt(m, rng=random.Random(m))
        restored = deserialize_ciphertext(serialize_ciphertext(c), pk)
        assert sk.decrypt(restored) == m


class TestHardenedDeserializers:
    """Malformed buffers must die with CryptoError, never parse quietly."""

    def test_trailing_bytes_rejected_everywhere(self, kp):
        sk, pk = kp
        c = pk.encrypt(7, rng=random.Random(6))
        for data, decode in (
            (serialize_public_key(pk), deserialize_public_key),
            (serialize_private_key(sk), deserialize_private_key),
            (serialize_ciphertext(c), lambda b: deserialize_ciphertext(b, pk)),
        ):
            with pytest.raises(CryptoError):
                decode(data + b"\x00")

    def test_unknown_version_rejected_everywhere(self, kp):
        sk, pk = kp
        c = pk.encrypt(7, rng=random.Random(7))
        for data, decode in (
            (serialize_public_key(pk), deserialize_public_key),
            (serialize_private_key(sk), deserialize_private_key),
            (serialize_ciphertext(c), lambda b: deserialize_ciphertext(b, pk)),
        ):
            bumped = bytearray(data)
            bumped[5] = 2
            with pytest.raises(CryptoError, match="version"):
                decode(bytes(bumped))

    def test_non_canonical_integer_rejected(self, kp):
        _, pk = kp
        data = bytearray(serialize_public_key(pk))
        # Grow the length prefix by one and left-pad the body with 0x00:
        # same integer value, different bytes — must be rejected.
        (length,) = struct.unpack_from(">I", data, 6)
        struct.pack_into(">I", data, 6, length + 1)
        data[10:10] = b"\x00"
        with pytest.raises(CryptoError, match="non-canonical"):
            deserialize_public_key(bytes(data))

    def test_zero_length_integer_rejected(self):
        data = b"RPPK" + struct.pack(">H", 1) + struct.pack(">I", 0)
        with pytest.raises(CryptoError, match="zero-length"):
            deserialize_public_key(data)

    def test_ciphertext_level_zero_rejected(self, kp):
        _, pk = kp
        c = pk.encrypt(7, rng=random.Random(8))
        data = bytearray(serialize_ciphertext(c))
        data[6] = 0  # the level byte
        with pytest.raises(CryptoError, match="level"):
            deserialize_ciphertext(bytes(data), pk)

    def test_truncated_ciphertext_level(self, kp):
        _, pk = kp
        data = b"RPCT" + struct.pack(">H", 1)
        with pytest.raises(CryptoError):
            deserialize_ciphertext(data, pk)


class TestCRTDecryption:
    def test_crt_matches_generic(self, kp):
        sk, pk = kp
        rng = random.Random(4)
        for m in (0, 1, 2**64, pk.n - 1):
            c = pk.encrypt(m, rng=rng)
            assert sk.decrypt(c, use_crt=True) == sk.decrypt(c, use_crt=False) == m

    def test_crt_only_for_level_one(self, kp):
        sk, pk = kp
        c = pk.encrypt(42, s=2, rng=random.Random(5))
        # use_crt is ignored for s > 1 — the generic path runs and is exact.
        assert sk.decrypt(c, use_crt=True) == 42
