"""Tests for key and ciphertext serialization."""

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair
from repro.crypto.serialization import (
    deserialize_ciphertext,
    deserialize_private_key,
    deserialize_public_key,
    serialize_ciphertext,
    serialize_private_key,
    serialize_public_key,
)
from repro.errors import CryptoError, ReproError
from repro.guard.checkpoint import restore_session


@pytest.fixture(scope="module")
def kp():
    return generate_keypair(256, seed=777)


@pytest.fixture(scope="module")
def checkpoint_blob(medium_pois):
    """A serialized session checkpoint plus the LSP to restore against."""
    from repro.core.config import PPGNNConfig
    from repro.core.lsp import LSPServer
    from repro.core.session import QuerySession, SessionTotals

    lsp = LSPServer(medium_pois, sanitation_samples=400, seed=99)
    session = QuerySession(
        lsp,
        PPGNNConfig(d=4, delta=8, k=3, keysize=256, key_seed=5),
        seed=17,
        totals=SessionTotals(queries=2, comm_bytes=1816, answers_returned=6),
    )
    return session.checkpoint(), lsp


class TestPublicKey:
    def test_roundtrip(self, kp):
        _, pk = kp
        assert deserialize_public_key(serialize_public_key(pk)) == pk

    def test_bad_magic(self, kp):
        _, pk = kp
        data = bytearray(serialize_public_key(pk))
        data[0] ^= 0xFF
        with pytest.raises(CryptoError):
            deserialize_public_key(bytes(data))

    def test_bad_version(self, kp):
        _, pk = kp
        data = bytearray(serialize_public_key(pk))
        data[5] = 99
        with pytest.raises(CryptoError):
            deserialize_public_key(bytes(data))

    def test_truncated(self, kp):
        _, pk = kp
        data = serialize_public_key(pk)
        with pytest.raises(CryptoError):
            deserialize_public_key(data[:-3])

    def test_trailing_bytes(self, kp):
        _, pk = kp
        with pytest.raises(CryptoError):
            deserialize_public_key(serialize_public_key(pk) + b"x")


class TestPrivateKey:
    def test_roundtrip_decrypts(self, kp):
        sk, pk = kp
        restored = deserialize_private_key(serialize_private_key(sk))
        c = pk.encrypt(987654, rng=random.Random(1))
        assert restored.secret_key.decrypt(c) == 987654

    def test_roundtrip_preserves_modulus(self, kp):
        sk, pk = kp
        restored = deserialize_private_key(serialize_private_key(sk))
        assert restored.public_key == pk


class TestCiphertext:
    def test_roundtrip_all_levels(self, kp):
        sk, pk = kp
        rng = random.Random(2)
        for s in (1, 2):
            c = pk.encrypt(31337, s=s, rng=rng)
            restored = deserialize_ciphertext(serialize_ciphertext(c), pk)
            assert restored.s == s
            assert sk.decrypt(restored) == 31337

    def test_value_outside_space_rejected(self, kp):
        _, pk = kp
        c = pk.encrypt(5)
        data = serialize_ciphertext(c)
        # Rebuild with a tiny key: the value no longer fits its space.
        tiny = generate_keypair(128, seed=3).public_key
        with pytest.raises(CryptoError):
            deserialize_ciphertext(data, tiny)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**60))
    def test_roundtrip_property(self, m):
        sk, pk = generate_keypair(256, seed=777)
        c = pk.encrypt(m, rng=random.Random(m))
        restored = deserialize_ciphertext(serialize_ciphertext(c), pk)
        assert sk.decrypt(restored) == m


class TestHardenedDeserializers:
    """Malformed buffers must die with CryptoError, never parse quietly."""

    def test_trailing_bytes_rejected_everywhere(self, kp):
        sk, pk = kp
        c = pk.encrypt(7, rng=random.Random(6))
        for data, decode in (
            (serialize_public_key(pk), deserialize_public_key),
            (serialize_private_key(sk), deserialize_private_key),
            (serialize_ciphertext(c), lambda b: deserialize_ciphertext(b, pk)),
        ):
            with pytest.raises(CryptoError):
                decode(data + b"\x00")

    def test_unknown_version_rejected_everywhere(self, kp):
        sk, pk = kp
        c = pk.encrypt(7, rng=random.Random(7))
        for data, decode in (
            (serialize_public_key(pk), deserialize_public_key),
            (serialize_private_key(sk), deserialize_private_key),
            (serialize_ciphertext(c), lambda b: deserialize_ciphertext(b, pk)),
        ):
            bumped = bytearray(data)
            bumped[5] = 2
            with pytest.raises(CryptoError, match="version"):
                decode(bytes(bumped))

    def test_non_canonical_integer_rejected(self, kp):
        _, pk = kp
        data = bytearray(serialize_public_key(pk))
        # Grow the length prefix by one and left-pad the body with 0x00:
        # same integer value, different bytes — must be rejected.
        (length,) = struct.unpack_from(">I", data, 6)
        struct.pack_into(">I", data, 6, length + 1)
        data[10:10] = b"\x00"
        with pytest.raises(CryptoError, match="non-canonical"):
            deserialize_public_key(bytes(data))

    def test_zero_length_integer_rejected(self):
        data = b"RPPK" + struct.pack(">H", 1) + struct.pack(">I", 0)
        with pytest.raises(CryptoError, match="zero-length"):
            deserialize_public_key(data)

    def test_ciphertext_level_zero_rejected(self, kp):
        _, pk = kp
        c = pk.encrypt(7, rng=random.Random(8))
        data = bytearray(serialize_ciphertext(c))
        data[6] = 0  # the level byte
        with pytest.raises(CryptoError, match="level"):
            deserialize_ciphertext(bytes(data), pk)

    def test_truncated_ciphertext_level(self, kp):
        _, pk = kp
        data = b"RPCT" + struct.pack(">H", 1)
        with pytest.raises(CryptoError):
            deserialize_ciphertext(data, pk)


class TestCRTDecryption:
    def test_crt_matches_generic(self, kp):
        sk, pk = kp
        rng = random.Random(4)
        for m in (0, 1, 2**64, pk.n - 1):
            c = pk.encrypt(m, rng=rng)
            assert sk.decrypt(c, use_crt=True) == sk.decrypt(c, use_crt=False) == m

    def test_crt_only_for_level_one(self, kp):
        sk, pk = kp
        c = pk.encrypt(42, s=2, rng=random.Random(5))
        # use_crt is ignored for s > 1 — the generic path runs and is exact.
        assert sk.decrypt(c, use_crt=True) == 42


class TestMutationFuzz:
    """Random byte damage must never escape as an untyped exception.

    Three mutation families — flip, truncate, insert — against every
    serialized artifact (keys, ciphertexts, session checkpoints).  A
    mutated buffer may still parse (e.g. a flipped bit inside a
    ciphertext value yields a different but well-formed ciphertext);
    what it must never do is raise anything outside the ReproError
    hierarchy: no struct.error, no UnicodeDecodeError, no
    OverflowError leaking from the codec internals.
    """

    @staticmethod
    def _mutate(data: bytes, seed: int) -> bytes:
        rng = random.Random(seed)
        buf = bytearray(data)
        op = rng.randrange(3)
        if op == 0 and buf:  # flip a byte
            i = rng.randrange(len(buf))
            buf[i] ^= rng.randrange(1, 256)
        elif op == 1 and buf:  # truncate
            del buf[rng.randrange(len(buf)) :]
        else:  # insert junk
            i = rng.randrange(len(buf) + 1)
            buf[i:i] = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 5)))
        return bytes(buf)

    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_public_key_mutations_are_typed(self, kp, seed):
        _, pk = kp
        try:
            deserialize_public_key(self._mutate(serialize_public_key(pk), seed))
        except ReproError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_private_key_mutations_are_typed(self, kp, seed):
        sk, _ = kp
        try:
            deserialize_private_key(self._mutate(serialize_private_key(sk), seed))
        except ReproError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_ciphertext_mutations_are_typed(self, kp, seed):
        _, pk = kp
        c = pk.encrypt(123456, rng=random.Random(1))
        data = self._mutate(serialize_ciphertext(c), seed)
        try:
            deserialize_ciphertext(data, pk)
        except ReproError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_checkpoint_mutations_are_typed(self, checkpoint_blob, seed):
        blob, lsp = checkpoint_blob
        try:
            restore_session(self._mutate(blob, seed), lsp)
        except ReproError:
            pass
