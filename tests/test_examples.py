"""Smoke tests: every example script must run end to end.

Each example is loaded as a module and its ``main()`` executed against a
shrunken database (``load_sequoia`` is patched down) so the whole sweep
stays fast while exercising exactly the code a reader would run.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

import repro.datasets
import repro.datasets.sequoia as sequoia_module

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))

#: Per-example database cap (they default to 5k-10k POIs).
POI_CAP = 600


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def small_sequoia(monkeypatch):
    original = sequoia_module.load_sequoia

    def capped(size=sequoia_module.SEQUOIA_SIZE, *args, **kwargs):
        return original(min(size, POI_CAP), *args, **kwargs)

    monkeypatch.setattr(sequoia_module, "load_sequoia", capped)
    monkeypatch.setattr(repro.datasets, "load_sequoia", capped)
    return capped


def test_examples_discovered():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, small_sequoia, capsys, monkeypatch):
    module = load_example(name)
    # Examples import load_sequoia by value; patch their module globals too.
    if hasattr(module, "load_sequoia"):
        monkeypatch.setattr(module, "load_sequoia", small_sequoia)
    if name == "dynamic_database":
        # Shrink APNN's grid so its demo precomputation stays fast.
        from repro.baselines.apnn import APNNServer

        original_server = APNNServer
        monkeypatch.setattr(
            module,
            "APNNServer",
            lambda pois, cells_per_side=32, **kw: original_server(
                pois, cells_per_side=8, **kw
            ),
        )
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
