"""Tests for the dummy-generation strategies."""

import numpy as np
import pytest

from repro.core.common import build_location_set
from repro.datasets.synthetic import clustered_pois
from repro.dummies import (
    POIAwareDummyGenerator,
    PrivacyAreaDummyGenerator,
    UniformDummyGenerator,
    make_dummy_generator,
)
from repro.errors import ConfigurationError
from repro.geometry.point import Point


@pytest.fixture(params=["uniform", "privacy-area", "poi-aware"])
def generator(request, medium_pois):
    if request.param == "poi-aware":
        return POIAwareDummyGenerator(medium_pois[:200])
    return make_dummy_generator(request.param)


class TestAllGenerators:
    def test_count_and_bounds(self, generator, space, nprng):
        for count in (0, 1, 24, 100):
            dummies = generator.generate(count, space, nprng)
            assert len(dummies) == count
            assert all(space.contains(p) for p in dummies)

    def test_negative_count_rejected(self, generator, space, nprng):
        with pytest.raises(ConfigurationError):
            generator.generate(-1, space, nprng)

    def test_deterministic_given_seed(self, generator, space):
        a = generator.generate(10, space, np.random.default_rng(5))
        b = generator.generate(10, space, np.random.default_rng(5))
        assert a == b

    def test_integrates_with_location_set(self, generator, space, nprng):
        real = Point(0.42, 0.24)
        location_set = build_location_set(real, 3, 12, space, nprng, generator)
        assert len(location_set) == 12
        assert location_set[3] == real


class TestRegistry:
    def test_known_names(self):
        assert isinstance(make_dummy_generator("uniform"), UniformDummyGenerator)
        assert isinstance(
            make_dummy_generator("privacy-area"), PrivacyAreaDummyGenerator
        )

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_dummy_generator("teleport")


class TestPrivacyArea:
    def test_jitter_validation(self):
        with pytest.raises(ConfigurationError):
            PrivacyAreaDummyGenerator(jitter=1.5)

    def test_grid_spreads_more_than_uniform(self, space):
        """PAD's point: the minimum pairwise distance (anonymity spread) of
        grid dummies beats i.i.d. uniform dummies on average."""

        def min_pairwise(points):
            return min(
                a.distance_to(b)
                for i, a in enumerate(points)
                for b in points[i + 1 :]
            )

        grid_gen = PrivacyAreaDummyGenerator()
        uniform_gen = UniformDummyGenerator()
        grid_spread = []
        uniform_spread = []
        for seed in range(12):
            rng = np.random.default_rng(seed)
            grid_spread.append(min_pairwise(grid_gen.generate(24, space, rng)))
            rng = np.random.default_rng(seed)
            uniform_spread.append(min_pairwise(uniform_gen.generate(24, space, rng)))
        assert np.mean(grid_spread) > 2 * np.mean(uniform_spread)

    def test_zero_jitter_hits_cell_centers(self, space, nprng):
        gen = PrivacyAreaDummyGenerator(jitter=0.0)
        points = gen.generate(4, space, nprng)
        for p in points:
            assert p.x in (0.25, 0.75) and p.y in (0.25, 0.75)


class TestPOIAware:
    def test_requires_reference(self):
        with pytest.raises(ConfigurationError):
            POIAwareDummyGenerator([])

    def test_follows_density(self, space):
        """Dummies must concentrate where the reference POIs concentrate."""
        reference = clustered_pois(
            2000, space, clusters=2, background_fraction=0.0, seed=42
        )
        gen = POIAwareDummyGenerator(reference, cells_per_side=8)
        dummies = gen.generate(800, space, np.random.default_rng(1))
        # Count dummies in occupied vs empty reference cells.
        occupied = {
            (min(int(p.location.x * 8), 7), min(int(p.location.y * 8), 7))
            for p in reference
        }
        inside = sum(
            1
            for d in dummies
            if (min(int(d.x * 8), 7), min(int(d.y * 8), 7)) in occupied
        )
        assert inside == len(dummies)  # zero mass outside the density support

    def test_histogram_cached_between_calls(self, medium_pois, space, nprng):
        gen = POIAwareDummyGenerator(medium_pois[:50])
        gen.generate(5, space, nprng)
        first = gen._weights
        gen.generate(5, space, nprng)
        assert gen._weights is first
