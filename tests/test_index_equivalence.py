"""Hypothesis cross-index equivalence: every exact index answers alike.

Random point sets and random range / kNN queries must produce identical
results across brute force, grid, k-d tree, R-tree, and the spill-free
partition trees.  Range results are compared as id sets (order is index
specific); kNN results are compared as distance multisets, which is the
strongest property that survives equal-distance ties.  The approximate
paths (spill > 0, LSH) are held to a recall floor instead.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.space import LocationSpace
from repro.gnn.knn import best_first_knn
from repro.index.bruteforce import BruteForceIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.spatial import LSHIndex, PartitionTree

SPACE = LocationSpace.unit_square()

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
points = st.lists(
    st.tuples(coord, coord), min_size=1, max_size=60, unique=True
)


def _exact_indexes():
    """One instance of every exact index kind, freshly constructed."""
    return {
        "bruteforce": BruteForceIndex(),
        "grid": GridIndex(SPACE, 5),
        "kdtree": KDTree(),
        "rtree": RTree(max_entries=4),
        "parttree-kd": PartitionTree(rule="kd", spill=0.0, leaf_capacity=4),
        "parttree-rp": PartitionTree(rule="rp", spill=0.0, leaf_capacity=4, seed=2),
        "parttree-2means": PartitionTree(
            rule="2-means", spill=0.0, leaf_capacity=4, seed=2
        ),
    }


def _load_all(raw):
    entries = [(Point(x, y), i) for i, (x, y) in enumerate(raw)]
    indexes = _exact_indexes()
    for index in indexes.values():
        index.bulk_load(entries)
    return entries, indexes


@given(raw=points, q=st.tuples(coord, coord), k=st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_knn_distance_multisets_agree(raw, q, k):
    _, indexes = _load_all(raw)
    query = Point(*q)
    reference = None
    for name, index in indexes.items():
        dists = sorted(
            round(p.distance_to(query), 9)
            for p, _ in best_first_knn(index, query, k)
        )
        if reference is None:
            reference = dists
        else:
            assert dists == reference, f"{name} disagreed on kNN distances"


@given(
    raw=points,
    box=st.tuples(coord, coord, coord, coord),
)
@settings(max_examples=40, deadline=None)
def test_range_id_sets_agree(raw, box):
    _, indexes = _load_all(raw)
    x1, x2 = sorted(box[:2])
    y1, y2 = sorted(box[2:])
    rect = Rect(x1, y1, x2, y2)
    reference = None
    for name, index in indexes.items():
        ids = {item for _, item in index.range_query(rect)}
        if reference is None:
            reference = ids
        else:
            assert ids == reference, f"{name} disagreed on range ids"


@given(raw=points)
@settings(max_examples=25, deadline=None)
def test_native_nearest_matches_generic_knn(raw):
    """Indexes with their own nearest() must agree with best_first_knn."""
    entries = [(Point(x, y), i) for i, (x, y) in enumerate(raw)]
    query = Point(0.5, 0.5)
    k = min(5, len(entries))
    for index in (
        PartitionTree(rule="kd", leaf_capacity=4),
        KDTree(),
        BruteForceIndex(),
    ):
        index.bulk_load(entries)
        native = sorted(
            round(p.distance_to(query), 9) for p, _ in index.nearest(query, k)
        )
        generic = sorted(
            round(p.distance_to(query), 9)
            for p, _ in best_first_knn(index, query, k)
        )
        assert native == generic


@pytest.mark.parametrize(
    "make",
    [
        lambda: PartitionTree(rule="rp", spill=0.25, leaf_capacity=32, seed=7),
        lambda: LSHIndex(seed=7),
    ],
    ids=["spill", "lsh"],
)
def test_approximate_recall_meets_floor(make):
    """Seeded recall of the approximate candidate generators stays >= 0.6."""
    from repro.datasets import stream_clustered

    entries = [(p.location, p) for p in stream_clustered(2_500, seed=13)]
    index = make()
    index.bulk_load(entries)
    oracle = BruteForceIndex()
    oracle.bulk_load(entries)
    queries = [
        Point((0.37 * i) % 1.0, (0.59 * i) % 1.0) for i in range(1, 25)
    ]
    total = 0.0
    for q in queries:
        want = {i.poi_id for _, i in oracle.nearest(q, 8)}
        got = {i.poi_id for _, i in index.candidate_entries(q)}
        total += len(want & got) / 8
    recall = total / len(queries)
    assert recall >= 0.6, f"recall {recall:.2f} below floor"
    assert math.isfinite(recall)
