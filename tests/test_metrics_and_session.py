"""Tests for answer-quality metrics and the multi-query session."""

import numpy as np
import pytest

from repro.core.group import random_group
from repro.core.session import QuerySession
from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import SUM
from repro.metrics import (
    answer_precision,
    answer_recall,
    cost_ratio,
    evaluate_answer,
)


class TestQualityMetrics:
    def test_precision_recall_basics(self):
        assert answer_precision([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)
        assert answer_recall([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)
        assert answer_precision([1, 2], [1, 2]) == 1.0
        assert answer_recall([9], [1, 2]) == 0.0

    def test_precision_of_prefix_is_one(self):
        """A sanitation-truncated prefix never contains wrong POIs."""
        exact = [1, 2, 3, 4, 5]
        assert answer_precision(exact[:2], exact) == 1.0
        assert answer_recall(exact[:2], exact) == pytest.approx(0.4)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            answer_precision([], [1])
        with pytest.raises(ConfigurationError):
            answer_recall([1], [])

    def test_cost_ratio_exact_is_one(self):
        pois = uniform_pois(50, seed=1)
        locations = [Point(0.5, 0.5), Point(0.2, 0.8)]
        ranked = sorted(
            pois, key=lambda p: SUM(l.distance_to(p.location) for l in locations)
        )
        assert cost_ratio(ranked[:5], ranked[:5], locations, SUM) == pytest.approx(1.0)

    def test_cost_ratio_penalizes_bad_answers(self):
        pois = uniform_pois(50, seed=2)
        locations = [Point(0.1, 0.1)]
        ranked = sorted(
            pois, key=lambda p: SUM(l.distance_to(p.location) for l in locations)
        )
        worst = list(reversed(ranked))
        assert cost_ratio(worst[:5], ranked[:5], locations, SUM) > 2.0

    def test_cost_ratio_uses_common_depth(self):
        pois = uniform_pois(50, seed=3)
        locations = [Point(0.4, 0.6)]
        ranked = sorted(
            pois, key=lambda p: SUM(l.distance_to(p.location) for l in locations)
        )
        # A 2-POI prefix against an 8-POI exact answer scores depth 2.
        assert cost_ratio(ranked[:2], ranked[:8], locations, SUM) == pytest.approx(1.0)

    def test_evaluate_answer_bundle(self):
        pois = uniform_pois(30, seed=4)
        locations = [Point(0.3, 0.3)]
        ranked = sorted(
            pois, key=lambda p: SUM(l.distance_to(p.location) for l in locations)
        )
        quality = evaluate_answer(ranked[:3], ranked[:5], locations, SUM)
        assert quality.precision == 1.0
        assert quality.recall == pytest.approx(0.6)
        assert quality.exact


class TestQuerySession:
    def test_session_accumulates(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, seed=10)
        rng = np.random.default_rng(1)
        for _ in range(3):
            result = session.query(random_group(3, lsp.space, rng))
            assert len(result.answers) >= 1
        assert session.totals.queries == 3
        assert session.totals.comm_bytes > 0
        assert session.totals.mean_comm_bytes == pytest.approx(
            session.totals.comm_bytes / 3
        )
        assert len(session.history) == 3

    def test_distinct_seeds_per_query(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, seed=20)
        group = random_group(3, lsp.space, np.random.default_rng(2))
        a = session.query(group)
        b = session.query(group)
        # Different per-query seeds give (almost surely) different placements.
        assert a.query_index != b.query_index or a.answers == b.answers

    def test_protocol_selection(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, protocol="ppgnn-opt", seed=30)
        group = random_group(3, lsp.space, np.random.default_rng(3))
        assert session.query(group).protocol == "ppgnn-opt"

    def test_unknown_protocol_rejected(self, lsp, fast_config):
        with pytest.raises(ConfigurationError):
            QuerySession(lsp, fast_config, protocol="pigeon")

    def test_key_seed_required(self, lsp, fast_config):
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            QuerySession(lsp, replace(fast_config, key_seed=None))

    def test_reset_totals(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, seed=40)
        session.query(random_group(2, lsp.space, np.random.default_rng(4)))
        closed = session.reset_totals()
        assert closed.queries == 1
        assert session.totals.queries == 0
        assert session.history == []

    def test_history_capped_but_totals_exact(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, seed=50, max_history=2)
        rng = np.random.default_rng(5)
        answers = 0
        for _ in range(5):
            answers += len(session.query(random_group(2, lsp.space, rng)).answers)
        # Only the newest two results are pinned...
        assert len(session.history) == 2
        # ...but accounting never forgets a query.
        assert session.totals.queries == 5
        assert session.totals.answers_returned == answers

    def test_history_keeps_newest(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, seed=60, max_history=3)
        rng = np.random.default_rng(6)
        results = [session.query(random_group(2, lsp.space, rng)) for _ in range(5)]
        assert session.history == results[-3:]

    def test_zero_history(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, seed=70, max_history=0)
        session.query(random_group(2, lsp.space, np.random.default_rng(7)))
        assert session.history == []
        assert session.totals.queries == 1

    def test_unbounded_history_opt_in(self, lsp, fast_config):
        session = QuerySession(lsp, fast_config, seed=80, max_history=None)
        rng = np.random.default_rng(8)
        for _ in range(4):
            session.query(random_group(2, lsp.space, rng))
        assert len(session.history) == 4

    def test_negative_history_rejected(self, lsp, fast_config):
        with pytest.raises(ConfigurationError):
            QuerySession(lsp, fast_config, max_history=-1)
