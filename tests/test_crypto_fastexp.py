"""Fast exponentiation kernels: value identity and exact mul ledgers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import fastexp
from repro.crypto.fastexp import (
    CrtPow,
    MulLedger,
    WindowPlan,
    binary_pow_cost,
    multi_pow,
    multi_pow_cost,
)
from repro.crypto.paillier import generate_keypair
from repro.errors import CryptoError


class TestWindowPlan:
    @pytest.mark.parametrize("window", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize(
        "exponent", [0, 1, 2, 3, 0b1011, 255, 256, (1 << 64) - 1, 123456789]
    )
    def test_value_identical_to_pow(self, exponent, window):
        plan = WindowPlan(exponent, window)
        modulus = 2**61 - 1
        for base in (0, 1, 2, 7, modulus - 1, 987654321):
            assert plan.powmod(base, modulus) == pow(base, exponent, modulus)

    def test_program_reassembles_exponent(self):
        # The window program is just a radix decomposition: replaying it
        # over integers (shift-and-add in the exponent) must rebuild e.
        for exponent in (1, 6, 0b1011, 0xDEADBEEF, (1 << 80) + 12345):
            plan = WindowPlan(exponent, 4)
            rebuilt = None
            for shift, digit in plan.program:
                if rebuilt is None:
                    rebuilt = digit
                else:
                    rebuilt = (rebuilt << shift) + digit
            assert rebuilt == exponent

    def test_ledger_matches_analytic_cost(self):
        plan = WindowPlan(0xDEADBEEFCAFE, 5)
        ledger = MulLedger()
        plan.powmod(3, 2**61 - 1, ledger)
        assert ledger.muls == plan.per_call_muls
        assert plan.per_call_muls == plan.table_muls + plan.chain_muls

    def test_width_one_degenerates_to_binary(self):
        # w=1 is square-and-multiply: same count the profiler's binary
        # model (pow_mul_estimate) has always charged.
        for exponent in (2, 3, 0b1011, 0xFFFF, 123456789):
            assert WindowPlan(exponent, 1).per_call_muls == binary_pow_cost(
                exponent
            )

    def test_plan_picks_cheapest_width(self):
        exponent = (1 << 256) - 12345
        best = fastexp.plan(exponent)
        costs = [
            WindowPlan(exponent, w).per_call_muls
            for w in range(1, fastexp.MAX_WINDOW + 1)
        ]
        assert best.per_call_muls == min(costs)
        assert best.per_call_muls < binary_pow_cost(exponent)

    def test_rejects_bad_inputs(self):
        with pytest.raises(CryptoError):
            WindowPlan(-1, 3)
        with pytest.raises(CryptoError):
            WindowPlan(5, 0)
        with pytest.raises(CryptoError):
            WindowPlan(5, fastexp.MAX_WINDOW + 1)

    @settings(max_examples=150, deadline=None)
    @given(
        exponent=st.integers(min_value=0, max_value=(1 << 192) - 1),
        base=st.integers(min_value=0, max_value=(1 << 64) - 1),
        window=st.integers(min_value=1, max_value=8),
    )
    def test_powmod_property(self, exponent, base, window):
        modulus = (1 << 127) - 1
        plan = WindowPlan(exponent, window)
        ledger = MulLedger()
        assert plan.powmod(base, modulus, ledger) == pow(base, exponent, modulus)
        assert ledger.muls == plan.per_call_muls


class TestMultiPow:
    def test_matches_product_of_pows(self):
        rng = random.Random(11)
        modulus = (1 << 127) - 1
        pairs = [
            (rng.randrange(modulus), rng.randrange(1 << 96)) for _ in range(8)
        ]
        expected = 1
        for base, exponent in pairs:
            expected = expected * pow(base, exponent, modulus) % modulus
        ledger = MulLedger()
        assert multi_pow(pairs, modulus, ledger=ledger) == expected
        assert ledger.muls == multi_pow_cost([e for _, e in pairs])

    def test_single_term_and_zero_exponents(self):
        modulus = 101
        assert multi_pow([(7, 13)], modulus) == pow(7, 13, modulus)
        assert multi_pow([(7, 0), (9, 0)], modulus) == 1
        assert multi_pow([], modulus) == 1

    def test_cheaper_than_independent_chains(self):
        rng = random.Random(3)
        exponents = [rng.randrange(1 << 256) for _ in range(8)]
        assert multi_pow_cost(exponents) < sum(
            binary_pow_cost(e) for e in exponents
        )

    def test_rejects_negative_exponent(self):
        with pytest.raises(CryptoError):
            multi_pow([(2, -1)], 101)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 48) - 1),
                st.integers(min_value=0, max_value=(1 << 48) - 1),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_multi_pow_property(self, pairs):
        modulus = (1 << 61) - 1
        expected = 1
        for base, exponent in pairs:
            expected = expected * pow(base, exponent, modulus) % modulus
        assert multi_pow(pairs, modulus) == expected


class TestCrtPow:
    def test_matches_builtin_pow_across_levels(self):
        keypair = generate_keypair(128, seed=54321)
        sk, pk = keypair.secret_key, keypair.public_key
        crt = CrtPow(sk.p, sk.q)
        rng = random.Random(5)
        for s in (1, 2, 3):
            mod = pk.ciphertext_modulus(s)
            for _ in range(4):
                base = pk.random_unit(rng)
                exponent = rng.randrange(1, pk.n_pow(s))
                assert crt.pow(base, exponent, s) == pow(base, exponent, mod)

    def test_ledger_matches_cost(self):
        keypair = generate_keypair(128, seed=54321)
        sk = keypair.secret_key
        crt = CrtPow(sk.p, sk.q)
        ledger = MulLedger()
        crt.pow(12345, keypair.public_key.n, 1, ledger)
        assert ledger.muls == crt.cost(keypair.public_key.n, 1)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(CryptoError):
            CrtPow(7, 7)
        keypair = generate_keypair(128, seed=54321)
        crt = CrtPow(keypair.secret_key.p, keypair.secret_key.q)
        with pytest.raises(CryptoError):
            crt.pow(3, -1)


class TestToggle:
    def test_forced_restores_previous_setting(self):
        before = fastexp.enabled()
        with fastexp.forced(not before):
            assert fastexp.enabled() is (not before)
            with fastexp.forced(before):
                assert fastexp.enabled() is before
            assert fastexp.enabled() is (not before)
        assert fastexp.enabled() is before

    def test_set_enabled_returns_previous(self):
        before = fastexp.set_enabled(False)
        try:
            assert fastexp.enabled() is False
        finally:
            fastexp.set_enabled(before)
