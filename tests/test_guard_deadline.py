"""Round deadlines: slow networks abort with a partial cost report."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, DeadlineExceededError, GuardError
from repro.guard.deadline import RoundDeadline
from repro.guard.guard import ProtocolGuard
from repro.protocol.metrics import CostLedger
from repro.transport.channel import FaultyChannel
from repro.transport.faults import FaultPlan, LinkFaults
from repro.transport.session import ResilientSession
from repro.transport.transport import NETWORK


class TestRoundDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RoundDeadline(0.0)
        with pytest.raises(ConfigurationError):
            RoundDeadline(-1.0)

    def test_quiet_clock_never_fires(self):
        ledger = CostLedger()
        deadline = RoundDeadline(1.0)
        for _ in range(5):
            deadline.tick(ledger)

    def test_fires_past_budget_with_partial_report(self):
        ledger = CostLedger()
        ledger.times[NETWORK] = 2.5
        deadline = RoundDeadline(1.0, round_id=4)
        with pytest.raises(DeadlineExceededError) as info:
            deadline.tick(ledger, party="lsp")
        exc = info.value
        assert exc.round_id == 4
        assert exc.party == "lsp"
        assert exc.elapsed == pytest.approx(2.5)
        assert exc.budget == pytest.approx(1.0)
        assert exc.report is not None  # partial accounting survives the abort
        assert isinstance(exc, GuardError)

    def test_exact_budget_is_within_deadline(self):
        ledger = CostLedger()
        ledger.times[NETWORK] = 1.0
        RoundDeadline(1.0).tick(ledger)


class TestDeadlineIntegration:
    def test_slow_network_aborts_the_round(self, lsp, fast_config, space, nprng):
        # Every delivery waits 2 simulated seconds; the budget allows ~2
        # deliveries, so the round dies long before the answer comes back.
        plan = FaultPlan(default=LinkFaults(latency_seconds=2.0))
        session = ResilientSession(
            lsp,
            fast_config,
            channel=FaultyChannel(plan),
            guard=ProtocolGuard(deadline_seconds=5.0),
        )
        locations = space.sample_points(3, nprng)
        with pytest.raises(DeadlineExceededError) as info:
            session.query(locations)
        exc = info.value
        assert exc.elapsed > exc.budget
        # The partial report still accounts the traffic sent before the abort.
        assert exc.report.total_comm_bytes > 0
        assert session.totals.queries == 0  # the aborted round is not counted

    def test_fast_network_meets_the_deadline(self, lsp, fast_config, space, nprng):
        plan = FaultPlan(default=LinkFaults(latency_seconds=0.01))
        session = ResilientSession(
            lsp,
            fast_config,
            channel=FaultyChannel(plan),
            guard=ProtocolGuard(deadline_seconds=5.0),
        )
        locations = space.sample_points(3, nprng)
        result = session.query(locations)
        assert len(result.answers) > 0

    def test_unarmed_guard_has_no_deadline(self, lsp, fast_config, space, nprng):
        plan = FaultPlan(default=LinkFaults(latency_seconds=2.0))
        session = ResilientSession(
            lsp,
            fast_config,
            channel=FaultyChannel(plan),
            guard=ProtocolGuard(),  # no deadline_seconds: waits are unbounded
        )
        locations = space.sample_points(2, nprng)
        result = session.query(locations)
        assert len(result.answers) > 0
