"""Unit tests for the inbound validation layer."""

from __future__ import annotations

import math

import pytest

from repro.crypto.paillier import Ciphertext, generate_keypair
from repro.errors import GuardError, InboundValidationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.guard.validate import (
    check_ciphertext,
    check_ciphertext_vector,
    check_finite_point,
    check_location_set,
    check_plaintext,
    check_position,
)


@pytest.fixture(scope="module")
def pk(tiny_keypair):
    return tiny_keypair.public_key


class TestCheckCiphertext:
    def test_honest_ciphertext_passes(self, pk, rng):
        c = pk.encrypt(42, rng=rng)
        assert check_ciphertext(c, pk, 1) is c

    def test_non_ciphertext_rejected(self, pk):
        with pytest.raises(InboundValidationError, match="not a ciphertext"):
            check_ciphertext(12345, pk, 1)

    def test_foreign_key_rejected(self, pk, rng):
        other = generate_keypair(128, seed=999).public_key
        c = other.encrypt(1, rng=rng)
        with pytest.raises(InboundValidationError, match="different public key"):
            check_ciphertext(c, pk, 1)

    def test_level_tag_mismatch_rejected(self, pk, rng):
        c = pk.encrypt(1, s=2, rng=rng)
        with pytest.raises(InboundValidationError, match="level tag"):
            check_ciphertext(c, pk, 1)

    def test_zero_value_rejected(self, pk):
        # Placed directly: Ciphertext itself doesn't police the residue.
        c = Ciphertext(0, 1, pk)
        with pytest.raises(InboundValidationError, match="outside"):
            check_ciphertext(c, pk, 1)

    def test_non_canonical_residue_rejected(self, pk, rng):
        honest = pk.encrypt(3, rng=rng)
        shifted = Ciphertext(honest.value + pk.ciphertext_modulus(1), 1, pk)
        with pytest.raises(InboundValidationError, match="outside"):
            check_ciphertext(shifted, pk, 1)

    def test_non_unit_rejected(self, pk):
        # A multiple of N shares a factor with the modulus: not in Z*.
        c = Ciphertext(pk.n, 1, pk)
        with pytest.raises(InboundValidationError, match="not a unit"):
            check_ciphertext(c, pk, 1)

    def test_error_carries_round_and_party(self, pk):
        try:
            check_ciphertext(None, pk, 1, round_id=7, party="lsp")
        except InboundValidationError as exc:
            assert exc.round_id == 7
            assert exc.party == "lsp"
            assert isinstance(exc, GuardError)
        else:
            pytest.fail("expected InboundValidationError")


class TestCheckCiphertextVector:
    def test_length_mismatch_rejected(self, pk, rng):
        vec = [pk.encrypt(0, rng=rng)]
        with pytest.raises(InboundValidationError, match="expected 2"):
            check_ciphertext_vector(vec, 2, pk, 1)

    def test_bad_element_named_by_index(self, pk, rng):
        vec = [pk.encrypt(0, rng=rng), Ciphertext(pk.n, 1, pk)]
        with pytest.raises(InboundValidationError, match=r"\[1\]"):
            check_ciphertext_vector(vec, 2, pk, 1, what="indicator")

    def test_honest_vector_passes(self, pk, rng):
        vec = [pk.encrypt(i, rng=rng) for i in range(3)]
        check_ciphertext_vector(vec, 3, pk, 1)


class TestCheckFinitePoint:
    def test_honest_point_passes(self):
        p = Point(0.25, 0.75)
        assert check_finite_point(p) is p

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    @pytest.mark.parametrize("axis", [0, 1])
    def test_non_finite_rejected(self, bad, axis):
        coords = [0.5, 0.5]
        coords[axis] = bad
        with pytest.raises(InboundValidationError, match="non-finite"):
            check_finite_point(Point(*coords))

    def test_outside_space_rejected(self, space):
        with pytest.raises(InboundValidationError, match="outside"):
            check_finite_point(Point(1.5, 0.5), space=space)

    def test_non_point_rejected(self):
        with pytest.raises(InboundValidationError, match="not a Point"):
            check_finite_point((0.5, 0.5))


class TestCheckLocationSet:
    def test_short_set_rejected(self, space):
        pts = (Point(0.1, 0.1), Point(0.2, 0.2))
        with pytest.raises(InboundValidationError, match="expected 3"):
            check_location_set(pts, 3, space)

    def test_poisoned_entry_named(self, space):
        pts = (Point(0.1, 0.1), Point(math.nan, 0.5), Point(0.2, 0.2))
        with pytest.raises(InboundValidationError, match=r"location\[1\]"):
            check_location_set(pts, 3, space)

    def test_honest_set_passes(self, space):
        pts = tuple(Point(0.1 * i, 0.1 * i) for i in range(4))
        check_location_set(pts, 4, space)


class TestCheckPosition:
    def test_in_range_passes(self):
        assert check_position(3, 8) == 3

    @pytest.mark.parametrize("bad", [-1, 8, 10**6])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(InboundValidationError, match="outside"):
            check_position(bad, 8)

    @pytest.mark.parametrize("bad", [True, 2.0, "3", None])
    def test_non_int_rejected(self, bad):
        with pytest.raises(InboundValidationError, match="not an integer"):
            check_position(bad, 8)


class TestCheckPlaintext:
    def test_in_range_passes(self, pk):
        assert check_plaintext(0, pk) == 0
        assert check_plaintext(pk.plaintext_modulus(1) - 1, pk) is not None

    def test_out_of_range_rejected(self, pk):
        with pytest.raises(InboundValidationError, match="outside"):
            check_plaintext(pk.plaintext_modulus(1), pk)
        with pytest.raises(InboundValidationError, match="outside"):
            check_plaintext(-1, pk)

    def test_level_two_bound(self, pk):
        check_plaintext(pk.plaintext_modulus(1), pk, s=2)
        with pytest.raises(InboundValidationError):
            check_plaintext(pk.plaintext_modulus(2), pk, s=2)
