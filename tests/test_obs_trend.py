"""Trend analytics over the run ledger, and the ``repro trend`` CLI.

Includes the ISSUE acceptance demo: three synthetic ledger entries with
an injected mod-mul step must make ``repro trend --check`` exit 1 naming
the exact counter, the first bad commit, and the attributed phase, and
``repro trend --report`` must render a sparkline row for every committed
suite.
"""

import random

import pytest

from repro.cli import main
from repro.obs.series import LedgerRecord, RunLedger
from repro.obs.trend import (
    SPARK_CHARS,
    Changepoint,
    check_ledger,
    detect_changepoints,
    dominant_lineage,
    lineages,
    render_check,
    render_trends,
    sparkline,
    timing_flags,
)

COMMITTED_SUITES = (
    "crypto-1024",
    "crypto-2048",
    "index-scale",
    "naive",
    "ppgnn",
    "ppgnn-opt",
    "serve",
    "serve-overload",
)


def _record(sha, metrics, suite="demo", config=None, **kwargs):
    return LedgerRecord(
        suite=suite,
        git_sha=sha,
        metrics=dict(metrics),
        config=dict(config or {"k": 3}),
        **kwargs,
    )


class TestSparkline:
    def test_normalizes_min_to_max(self):
        line = sparkline([0, 5, 10])
        assert line[0] == SPARK_CHARS[0] and line[-1] == SPARK_CHARS[-1]

    def test_constant_series_renders_flat(self):
        assert sparkline([4, 4, 4]) == SPARK_CHARS[3] * 3

    def test_empty(self):
        assert sparkline([]) == ""


class TestChangepoints:
    def test_step_attributed_to_first_moved_commit(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for sha, value in (("a1", 100), ("b2", 100), ("c3", 160), ("d4", 160)):
            ledger.append(_record(sha, {"ops.modmuls_estimated": value}))
        [cp] = detect_changepoints(ledger.load("demo"))
        assert cp.git_sha == "c3" and cp.prev_sha == "b2"
        assert cp.status == "regressed" and cp.metric == "ops.modmuls_estimated"

    def test_improvement_not_a_regression(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for sha, value in (("a1", 160), ("b2", 100)):
            ledger.append(_record(sha, {"ops.modmuls_estimated": value}))
        [cp] = detect_changepoints(ledger.load("demo"))
        assert cp.status == "improved"
        assert check_ledger(ledger).ok

    def test_fixed_metric_regresses_in_both_directions(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for sha, value in (("a1", 5), ("b2", 7)):
            ledger.append(_record(sha, {"answers.count": value}))
        [cp] = detect_changepoints(ledger.load("demo"))
        assert cp.direction == "fixed" and cp.status == "regressed"

    def test_accepted_step_passes_check(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record("a1", {"ops.x": 10}))
        ledger.append(
            _record("b2", {"ops.x": 20}, accepted=("ops.x",))
        )
        check = check_ledger(ledger)
        assert check.changepoints and check.ok
        assert not check.unexplained

    def test_attribution_is_ordering_invariant(self, tmp_path):
        """Property: shuffling ledger file lines never moves a changepoint."""
        ledger = RunLedger(tmp_path)
        rng = random.Random(5)
        values = [100, 100, 130, 130, 90, 90, 90, 200]
        for i, value in enumerate(values):
            ledger.append(_record(f"sha{i:02d}", {"ops.x": value}))
        baseline = [
            (cp.metric, cp.git_sha, cp.prev_value, cp.value)
            for cp in detect_changepoints(ledger.load("demo"))
        ]
        assert len(baseline) == 3
        path = ledger.path("demo")
        for _ in range(5):
            lines = path.read_text().strip().splitlines()
            rng.shuffle(lines)
            path.write_text("\n".join(lines) + "\n")
            shuffled = [
                (cp.metric, cp.git_sha, cp.prev_value, cp.value)
                for cp in detect_changepoints(ledger.load("demo"))
            ]
            assert shuffled == baseline

    def test_phase_attribution_rendered(self):
        cp = Changepoint(
            suite="s", metric="ops.x", direction="lower", status="regressed",
            prev_value=100, value=160, prev_sha="a" * 12, git_sha="b" * 12,
            seq=1, accepted=False, phases={"crypto": 62, "compute": 38},
        )
        assert cp.phase == "crypto (62% of traced ticks)"
        described = cp.describe()
        assert "first bad commit" in described and "phase crypto" in described


class TestLineages:
    def test_config_change_is_not_a_regression(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record("a1", {"ops.x": 100}, config={"k": 3}))
        ledger.append(_record("b2", {"ops.x": 900}, config={"k": 8}))
        ledger.append(_record("c3", {"ops.x": 100}, config={"k": 3}))
        assert len(lineages(ledger.load("demo"))) == 2
        assert check_ledger(ledger).ok

    def test_dominant_lineage_by_population(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for sha in ("a", "b", "c"):
            ledger.append(_record(sha, {"ops.x": 1}, config={"k": 3}))
        ledger.append(_record("d", {"ops.x": 2}, config={"k": 8}))
        digest, lineage = dominant_lineage(ledger.load("demo"))
        assert len(lineage) == 3
        assert all(r.config == {"k": 3} for r in lineage)


class TestTimingBands:
    def test_outlier_beyond_mad_band_flagged(self, tmp_path):
        ledger = RunLedger(tmp_path)
        timings = [1.0, 1.01, 0.99, 1.02, 0.98, 5.0]
        for i, t in enumerate(timings):
            ledger.append(_record(f"s{i}", {"time.user_seconds": t}))
        flags = timing_flags(ledger.load("demo"))
        assert [f.git_sha for f in flags] == ["s5"]
        assert flags[0].value == 5.0

    def test_first_three_points_never_flagged(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i, t in enumerate([1.0, 50.0, 0.001]):
            ledger.append(_record(f"s{i}", {"time.user_seconds": t}))
        assert timing_flags(ledger.load("demo")) == []

    def test_ordinary_jitter_not_flagged(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i, t in enumerate([1.0, 1.0, 1.0, 1.0, 1.05]):
            ledger.append(_record(f"s{i}", {"time.user_seconds": t}))
        assert timing_flags(ledger.load("demo")) == []

    def test_timing_never_fails_check(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i, t in enumerate([1.0, 1.0, 1.0, 1.0, 99.0]):
            ledger.append(_record(f"s{i}", {"time.user_seconds": t}))
        check = check_ledger(ledger)
        assert check.flags and check.ok


class TestAcceptanceDemo:
    """ISSUE demo: inject a mod-mul step, watch the gate name it."""

    @pytest.fixture()
    def seeded(self, tmp_path):
        ledger = RunLedger(tmp_path / "series")
        ledger.append(
            _record(
                "aaaa1111aaaa", {"ops.modmuls_estimated": 1000,
                                 "time.user_seconds": 1.0},
                phases={"crypto": 70, "compute": 30},
            )
        )
        ledger.append(
            _record(
                "bbbb2222bbbb", {"ops.modmuls_estimated": 1000,
                                 "time.user_seconds": 1.02},
                phases={"crypto": 70, "compute": 30},
            )
        )
        ledger.append(
            _record(
                "cccc3333cccc", {"ops.modmuls_estimated": 1600,
                                 "time.user_seconds": 1.01},
                phases={"crypto": 90, "compute": 10},
            )
        )
        return tmp_path / "series"

    def test_check_exits_1_naming_counter_sha_phase(self, seeded, capsys):
        code = main(["trend", "--series-dir", str(seeded), "--check"])
        out = capsys.readouterr().out
        assert code == 1
        assert "ops.modmuls_estimated" in out
        assert "cccc3333cccc" in out
        assert "phase crypto (90% of traced ticks)" in out
        assert "verdict: FAIL" in out

    def test_accepting_the_metric_turns_check_green(self, seeded, capsys, tmp_path):
        # Rebuild the history so the offending record arrives through
        # --append --accept: the acceptance note rides on the record that
        # introduced the step.
        import json

        ledger = RunLedger(seeded)
        ledger.path("demo").unlink()
        for sha, value in (("aaaa1111aaaa", 1000), ("bbbb2222bbbb", 1000)):
            ledger.append(_record(sha, {"ops.modmuls_estimated": value}))
        offending = _record("cccc3333cccc", {"ops.modmuls_estimated": 1600})
        doc = tmp_path / "offending.jsonl"
        doc.write_text(json.dumps(offending.to_dict()) + "\n")
        code = main([
            "trend", "--series-dir", str(seeded),
            "--append", str(doc), "--accept", "ops.modmuls_estimated",
            "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: PASS" in out

    def test_report_renders_demo_sparkline(self, seeded, tmp_path, capsys):
        target = tmp_path / "TRENDS.md"
        code = main([
            "trend", "--series-dir", str(seeded), "--report", str(target),
        ])
        assert code == 0
        text = target.read_text()
        assert "## `demo`" in text
        assert any(ch in text for ch in SPARK_CHARS)
        assert "first bad" not in text  # describe() only in --check output
        assert "❌" in text  # the regression badge lands in the flags column


class TestCommittedLedger:
    """The seeded benchmarks/series/ ledger is a first-class artifact."""

    def test_every_committed_suite_has_a_ledger_file(self):
        from pathlib import Path

        series = Path(__file__).resolve().parent.parent / "benchmarks" / "series"
        assert series.is_dir()
        present = {p.stem for p in series.glob("*.jsonl")}
        assert set(COMMITTED_SUITES) <= present

    def test_report_renders_sparklines_for_every_committed_suite(self):
        from pathlib import Path

        series = Path(__file__).resolve().parent.parent / "benchmarks" / "series"
        dashboard = render_trends(RunLedger(series))
        for suite in COMMITTED_SUITES:
            assert f"## `{suite}`" in dashboard
        assert any(ch in dashboard for ch in SPARK_CHARS)

    def test_committed_ledger_passes_check(self):
        from pathlib import Path

        series = Path(__file__).resolve().parent.parent / "benchmarks" / "series"
        check = check_ledger(RunLedger(series))
        assert check.ok, render_check(check)

    def test_committed_dashboard_is_current(self):
        """BENCH_TRENDS.md must match a re-render of the committed ledger."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        committed = (root / "BENCH_TRENDS.md").read_text(encoding="utf-8")
        assert committed == render_trends(RunLedger(root / "benchmarks" / "series"))
