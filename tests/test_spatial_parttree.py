"""Tests for the kd / rp / 2-means spill partition trees."""

import pytest

from repro.datasets import stream_clustered
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bruteforce import BruteForceIndex
from repro.spatial import SPLIT_RULES, PartitionTree


def _entries(count, seed=3):
    return [(poi.location, poi) for poi in stream_clustered(count, seed=seed)]


def _oracle(entries):
    bf = BruteForceIndex()
    for p, item in entries:
        bf.insert(p, item)
    return bf


class TestConstruction:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionTree(rule="pca")

    def test_bad_spill_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionTree(spill=0.5)
        with pytest.raises(ConfigurationError):
            PartitionTree(spill=-0.1)

    def test_deterministic_in_seed(self):
        entries = _entries(400)
        a = PartitionTree(rule="rp", seed=11)
        a.bulk_load(entries)
        b = PartitionTree(rule="rp", seed=11)
        b.bulk_load(entries)
        q = Point(0.3, 0.7)
        assert [i.poi_id for _, i in a.candidate_entries(q)] == [
            i.poi_id for _, i in b.candidate_entries(q)
        ]

    def test_identical_points_terminate(self):
        entries = [(Point(0.5, 0.5), i) for i in range(200)]
        tree = PartitionTree(rule="kd", spill=0.4, leaf_capacity=8)
        tree.bulk_load(entries)
        assert len(tree) == 200
        assert len(tree.nearest(Point(0.5, 0.5), 200)) == 200


@pytest.mark.parametrize("rule", SPLIT_RULES)
@pytest.mark.parametrize("spill", [0.0, 0.25])
class TestExactness:
    def test_nearest_matches_oracle(self, rule, spill):
        entries = _entries(500)
        tree = PartitionTree(rule=rule, spill=spill, leaf_capacity=16, seed=5)
        tree.bulk_load(entries)
        oracle = _oracle(entries)
        for q in (Point(0.1, 0.9), Point(0.5, 0.5), Point(0.99, 0.01)):
            got = [i.poi_id for _, i in tree.nearest(q, 12)]
            want = [i.poi_id for _, i in oracle.nearest(q, 12)]
            assert got == want

    def test_range_matches_oracle(self, rule, spill):
        entries = _entries(500)
        tree = PartitionTree(rule=rule, spill=spill, leaf_capacity=16, seed=5)
        tree.bulk_load(entries)
        oracle = _oracle(entries)
        rect = Rect(0.2, 0.3, 0.7, 0.8)
        got = sorted(i.poi_id for _, i in tree.range_query(rect))
        want = sorted(i.poi_id for _, i in oracle.range_query(rect))
        assert got == want

    def test_no_duplicates_despite_spill(self, rule, spill):
        entries = _entries(300)
        tree = PartitionTree(rule=rule, spill=spill, leaf_capacity=8, seed=5)
        tree.bulk_load(entries)
        ids = [i.poi_id for _, i in tree.nearest(Point(0.4, 0.6), 300)]
        assert len(ids) == len(set(ids)) == 300


class TestApproximatePath:
    def test_candidates_sublinear(self):
        entries = _entries(4_000)
        tree = PartitionTree(rule="rp", spill=0.25, leaf_capacity=32, seed=5)
        tree.bulk_load(entries)
        cands = tree.candidate_entries(Point(0.4, 0.6))
        assert 0 < len(cands) < len(entries) // 4

    def test_spill_improves_recall_on_average(self):
        entries = _entries(3_000)
        import numpy as np

        rng = np.random.default_rng(9)
        oracle = _oracle(entries)
        recalls = {}
        for spill in (0.0, 0.3):
            tree = PartitionTree(rule="rp", spill=spill, leaf_capacity=32, seed=5)
            tree.bulk_load(entries)
            total = 0.0
            queries = [
                Point(float(rng.uniform()), float(rng.uniform())) for _ in range(30)
            ]
            for q in queries:
                want = {i.poi_id for _, i in oracle.nearest(q, 8)}
                got = {i.poi_id for _, i in tree.candidate_entries(q)}
                total += len(want & got) / 8
            recalls[spill] = total / 30
        assert recalls[0.3] >= recalls[0.0]

    def test_traversal_hook_gated_on_spill_and_overflow(self):
        entries = _entries(200)
        plain = PartitionTree(rule="kd", spill=0.0, leaf_capacity=16)
        plain.bulk_load(entries)
        assert plain.traversal_roots() is not None
        spilled = PartitionTree(rule="kd", spill=0.2, leaf_capacity=16)
        spilled.bulk_load(entries)
        assert spilled.traversal_roots() is None
        plain.insert(Point(0.5, 0.5), object())
        assert plain.traversal_roots() is None

    def test_overflow_inserts_visible_everywhere(self):
        entries = _entries(100)
        tree = PartitionTree(rule="kd", leaf_capacity=16)
        tree.bulk_load(entries)
        marker = object()
        tree.insert(Point(0.42, 0.42), marker)
        assert len(tree) == 101
        assert any(
            item is marker for _, item in tree.candidate_entries(Point(0.42, 0.42))
        )
        assert any(item is marker for _, item in tree.nearest(Point(0.42, 0.42), 1))
        assert any(
            item is marker
            for _, item in tree.range_query(Rect(0.4, 0.4, 0.45, 0.45))
        )
