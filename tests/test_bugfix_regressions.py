"""Regression tests for the latent-correctness sweep.

Each class pins one fixed bug with inputs that failed before the fix:

- ``_percentile``: float rank arithmetic misranked whenever ``n * fraction``
  landed an epsilon above an integer (``100 * 0.55 == 55.000000000000007``).
- ``KnnLRUCache``: a stored ``None`` read back as a miss, skewing hit rates
  and freezing the entry's LRU position.
- ``RetryPolicy.backoff``: ``multiplier ** attempt`` overflowed to
  OverflowError for attempt counts reachable with a large ``max_attempts``.
- CRT decryption: Garner recombination divides by ``q^{-1} mod p`` and the
  per-prime order argument needs unit ciphertexts — ``p == q`` keys and
  adversarial non-unit values diverged from the generic path instead of
  falling back to it.
"""

import math
import random
from fractions import Fraction

import pytest

from repro.crypto.paillier import Ciphertext, PaillierPrivateKey, generate_keypair
from repro.errors import ConfigurationError
from repro.serve.cache import KnnLRUCache, LRUCache
from repro.serve.engine import _percentile
from repro.transport.retry import RetryPolicy

LINK = ("coordinator", "lsp")


class TestPercentile:
    def _reference(self, values, fraction):
        """Nearest-rank over exact rationals — the definition itself."""
        if not values:
            return 0.0
        n = len(values)
        rank = min(max(1, math.ceil(Fraction(n) * Fraction(str(fraction)))), n)
        return values[rank - 1]

    @pytest.mark.parametrize(
        ("n", "fraction", "expected_rank"),
        [
            # Cases where float ceil(n * fraction) picks rank + 1:
            (25, 0.28, 7),
            (100, 0.55, 55),
            (100, 0.56, 56),
            # Exact boundaries:
            (10, 0.5, 5),
            (10, 0.95, 10),
            (3, 1.0, 3),
            (7, 0.0, 1),
        ],
    )
    def test_rank_selection(self, n, fraction, expected_rank):
        values = [float(i) for i in range(1, n + 1)]
        assert _percentile(values, fraction) == float(expected_rank)

    def test_float_epsilon_cases_differ_from_naive_float_rank(self):
        """The pinned cases really are the ones naive float math misranks."""
        for n, fraction in [(25, 0.28), (100, 0.55), (100, 0.56)]:
            naive_rank = math.ceil(n * fraction)
            exact_rank = math.ceil(Fraction(n) * Fraction(str(fraction)))
            assert naive_rank == exact_rank + 1

    def test_matches_reference_exhaustively(self):
        rng = random.Random(5)
        for _ in range(200):
            n = rng.randint(1, 120)
            values = sorted(rng.random() for _ in range(n))
            fraction = rng.choice([0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0, 1.5])
            assert _percentile(values, fraction) == self._reference(values, fraction)

    def test_empty_and_out_of_range(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([3.0], -1.0) == 3.0
        assert _percentile([3.0, 4.0], 2.0) == 4.0


class TestLRUCacheStore:
    def test_replace_existing_key_updates_value_without_eviction(self):
        cache = KnnLRUCache(2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("a", 10)  # replace, not insert — nothing evicted
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.lookup("a") == 10
        assert cache.lookup("b") == 2

    def test_replace_refreshes_recency(self):
        cache = KnnLRUCache(2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("a", 10)  # "a" becomes most recent
        cache.store("c", 3)  # evicts "b", not "a"
        assert cache.lookup("a") == 10
        assert cache.lookup("b") is None

    def test_stored_none_is_a_hit(self):
        """A cached None must hit (and refresh recency), not read as a miss."""
        cache = KnnLRUCache(2)
        cache.store("a", None)
        assert cache.lookup("a") is None
        assert cache.stats.hits == 1 and cache.stats.misses == 0
        # Recency refreshed: "a" survives the next insert-at-capacity.
        cache.store("b", 2)
        cache.lookup("a")
        cache.store("c", 3)
        assert "a" not in cache._entries or cache.lookup("a") is None
        assert cache.stats.evictions == 1

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_non_positive_capacity_rejected(self, capacity):
        with pytest.raises(ConfigurationError):
            KnnLRUCache(capacity)

    def test_generic_alias(self):
        assert LRUCache is KnnLRUCache


class TestBackoffOverflow:
    def test_huge_attempt_saturates_at_cap_instead_of_overflowing(self):
        policy = RetryPolicy(max_attempts=10_000)
        # 2.0 ** 4999 overflows a float; the fix saturates in log space.
        wait = policy.backoff(5_000, LINK, 0)
        assert wait <= policy.max_backoff_seconds * (1 + policy.jitter_fraction)
        assert wait > 0

    def test_raw_backoff_saturates_monotonically(self):
        policy = RetryPolicy(max_attempts=10_000)
        waits = [policy._raw_backoff(a) for a in (1, 10, 100, 1_000, 9_999)]
        assert waits == sorted(waits)
        assert waits[-1] == policy.max_backoff_seconds

    def test_in_range_values_bit_identical_to_unguarded_expression(self):
        """The guard must not perturb any value the old code computed."""
        policy = RetryPolicy(
            max_attempts=20,
            base_backoff_seconds=0.01,
            backoff_multiplier=2.0,
            max_backoff_seconds=5.0,
        )
        for attempt in range(1, 16):
            unguarded = min(
                policy.base_backoff_seconds
                * policy.backoff_multiplier ** (attempt - 1),
                policy.max_backoff_seconds,
            )
            assert policy._raw_backoff(attempt) == unguarded

    def test_zero_base_stays_zero(self):
        policy = RetryPolicy(base_backoff_seconds=0.0, max_backoff_seconds=1.0)
        assert policy.backoff(3, LINK, 1) == 0.0

    def test_jitter_is_per_link_deterministic(self):
        policy = RetryPolicy()
        assert policy.backoff(2, LINK, 7) == policy.backoff(2, LINK, 7)
        assert policy.backoff(2, LINK, 7) != policy.backoff(2, ("lsp", "user:0"), 7)


class TestCrtDecryptFallback:
    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_crt_equals_generic_on_honest_ciphertexts(self, tiny_keypair, s):
        sk, pk = tiny_keypair
        rng = random.Random(17 * s)
        modulus = pk.plaintext_modulus(s)
        samples = [0, 1, modulus - 1] + [rng.randrange(modulus) for _ in range(8)]
        for m in samples:
            c = pk.encrypt(m, s=s, rng=rng)
            crt_value, crt_path = sk.decrypt_with_path(c, use_crt=True)
            gen_value, gen_path = sk.decrypt_with_path(c, use_crt=False)
            assert crt_path == "crt" and gen_path == "generic"
            assert crt_value == gen_value == m

    @pytest.mark.parametrize("s", [1, 2])
    def test_adversarial_non_unit_value_falls_back_to_generic(self, tiny_keypair, s):
        """gcd(value, N) != 1 voids the CRT order argument; must not use it."""
        sk, pk = tiny_keypair
        for value in (sk.p, sk.q, 2 * sk.p, sk.p * sk.q):
            hostile = Ciphertext(value=value, s=s, public_key=pk)
            got, path = sk.decrypt_with_path(hostile)
            assert path == "generic"
            assert got == sk.decrypt_with_path(hostile, use_crt=False)[0]

    def test_degenerate_equal_prime_key_never_takes_crt(self):
        """p == q makes Garner divide by gcd(p, q) != 1 — must fall back."""
        real = generate_keypair(128, seed=777)
        p = real.secret_key.p
        pk_cls = type(real.public_key)
        degenerate_pk = pk_cls(p * p)
        sk = object.__new__(PaillierPrivateKey)
        sk.public_key = degenerate_pk
        sk.p = p
        sk.q = p
        sk.lam = p - 1  # coprime to N = p^2, so the generic path can run
        sk._lam_inv_cache = {}
        sk._crt = None
        sk._crt_s = {}
        c = degenerate_pk.encrypt(5, rng=random.Random(3))
        _, path = sk.decrypt_with_path(c)
        assert path == "generic"

    def test_honest_serving_decryptions_all_take_crt(self, tiny_keypair):
        """The fallback is a safety net: honest traffic never pays for it."""
        sk, pk = tiny_keypair
        rng = random.Random(123)
        for _ in range(25):
            c = pk.encrypt(rng.randrange(pk.n), rng=rng)
            assert sk.decrypt_with_path(c)[1] == "crt"
