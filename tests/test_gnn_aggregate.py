"""Tests for the aggregate cost functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gnn.aggregate import (
    MAX,
    MIN,
    SUM,
    Aggregate,
    get_aggregate,
    register_aggregate,
)

dist_lists = st.lists(
    st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=10
)


class TestBuiltins:
    def test_registry_lookup(self):
        assert get_aggregate("sum") is SUM
        assert get_aggregate("max") is MAX
        assert get_aggregate("min") is MIN

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_aggregate("median")

    @given(dist_lists)
    def test_scalar_forms(self, ds):
        assert SUM(ds) == pytest.approx(sum(ds))
        assert MAX(ds) == max(ds)
        assert MIN(ds) == min(ds)

    @given(dist_lists)
    def test_rows_match_scalar(self, ds):
        matrix = np.array([ds])
        for agg in (SUM, MAX, MIN):
            assert agg.combine_rows(matrix)[0] == pytest.approx(agg(ds))

    @given(dist_lists)
    def test_partial_merge_decomposition(self, ds):
        """partial over a prefix then merge with the rest must equal combine."""
        if len(ds) < 2:
            return
        head, tail = ds[0], ds[1:]
        for agg in (SUM, MAX, MIN):
            partial = agg.partial(tail)
            merged = agg.merge(np.array([[head]]), np.array([partial]))
            assert merged[0, 0] == pytest.approx(agg(ds))

    @given(dist_lists, st.floats(min_value=0, max_value=10, allow_nan=False))
    def test_monotonicity(self, ds, bump):
        """Increasing any single distance must not decrease F (Eqn 1)."""
        for agg in (SUM, MAX, MIN):
            base = agg(ds)
            for i in range(len(ds)):
                bumped = list(ds)
                bumped[i] += bump
                assert agg(bumped) >= base - 1e-12


class TestCustomAggregates:
    def test_register_and_use(self):
        # Squared-sum: a custom monotone aggregate (the black-box claim).
        squared = Aggregate(
            "test-squared-sum",
            lambda ds: float(sum(d * d for d in ds)),
            lambda m: (m * m).sum(axis=1),
        )
        register_aggregate(squared)
        assert get_aggregate("test-squared-sum")([3.0, 4.0]) == 25.0
        assert not squared.decomposable

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_aggregate(
                Aggregate("sum", lambda ds: 0.0, lambda m: m.sum(axis=1))
            )
