"""Unit tests for the transport layer: envelopes, retries, channels.

End-to-end chaos runs live in ``test_transport_chaos.py``; this module
pins the building blocks — checksum detection, sequence-number dedup,
backoff determinism, per-link fault injection, scripted deaths.
"""

import random

import pytest

from repro.errors import (
    ConfigurationError,
    GroupMemberLostError,
    RetryExhaustedError,
    ShardLostError,
)
from repro.geometry.point import Point
from repro.protocol.messages import (
    GenericMessage,
    LocationSetUpload,
    PositionAssignment,
)
from repro.protocol.metrics import COORDINATOR, USER, CostLedger
from repro.transport.channel import Delivery, FaultyChannel, PerfectChannel
from repro.transport.envelope import (
    ENVELOPE_OVERHEAD_BYTES,
    Envelope,
    Nack,
    payload_checksum,
    payload_fingerprint,
    seal,
)
from repro.transport.faults import FaultPlan, LinkFaults, tamper
from repro.transport.retry import RetryPolicy
from repro.transport.transport import (
    NETWORK,
    Transport,
    party_role,
    send,
    shard_index,
    user_index,
)

LINK = ("coordinator", "user:0")


def make_envelope(seq=0, payload=None):
    return seal(LINK, seq, payload or PositionAssignment(3))


class TestEnvelope:
    def test_seal_is_intact(self):
        assert make_envelope().intact

    def test_byte_size_adds_framing(self):
        message = PositionAssignment(3)
        assert make_envelope(payload=message).byte_size == (
            message.byte_size + ENVELOPE_OVERHEAD_BYTES
        )

    def test_transcript_kind_names_payload(self):
        assert make_envelope().transcript_kind == "PositionAssignment"
        assert Nack(0).transcript_kind == "Nack"

    def test_fingerprint_depends_on_content(self):
        a = payload_fingerprint(PositionAssignment(3))
        b = payload_fingerprint(PositionAssignment(4))
        assert a != b

    def test_fingerprint_covers_ciphertexts(self, tiny_keypair):
        _, pk = tiny_keypair
        rng = random.Random(5)
        c1 = pk.encrypt(1, rng=rng)
        c2 = pk.encrypt(1, rng=rng)  # same plaintext, fresh randomness
        assert payload_checksum(c1) != payload_checksum(c2)

    def test_fingerprint_covers_locations(self):
        a = LocationSetUpload(0, (Point(0.1, 0.2),))
        b = LocationSetUpload(0, (Point(0.1, 0.3),))
        assert payload_checksum(a) != payload_checksum(b)

    def test_negative_seq_rejected(self):
        from repro.errors import TransportError

        with pytest.raises(TransportError):
            Envelope(LINK, -1, PositionAssignment(0), 0)


class TestTamper:
    """Whatever tamper() emits, the checksum must catch."""

    @pytest.mark.parametrize("seed", range(10))
    def test_tampered_copy_never_passes_checksum(self, tiny_keypair, seed):
        _, pk = tiny_keypair
        rng = random.Random(seed)
        messages = [
            PositionAssignment(7),
            LocationSetUpload(2, (Point(0.5, 0.5), Point(0.25, 0.75))),
            GenericMessage("blob", 64),
        ]
        from repro.protocol.messages import EncryptedAnswer

        messages.append(
            EncryptedAnswer((pk.encrypt(9, rng=random.Random(1)),))
        )
        for message in messages:
            damaged = tamper(message, rng)
            assert payload_checksum(damaged) != payload_checksum(message)

    def test_same_wire_size(self):
        message = LocationSetUpload(1, (Point(0.3, 0.4),))
        assert tamper(message, random.Random(0)).byte_size == message.byte_size

    def test_ciphertext_value_stays_in_residue_space(self, tiny_keypair):
        from repro.protocol.messages import EncryptedAnswer

        _, pk = tiny_keypair
        c = pk.encrypt(3, rng=random.Random(2))
        for seed in range(20):
            damaged = tamper(EncryptedAnswer((c,)), random.Random(seed))
            flipped = damaged.ciphertexts[0]
            assert 0 <= flipped.value < pk.ciphertext_modulus(flipped.s)
            assert flipped.value != c.value


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_seconds=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_seconds=2.0, max_backoff_seconds=1.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_seconds=0.01,
            backoff_multiplier=2.0,
            max_backoff_seconds=0.05,
            jitter_fraction=0.0,
        )
        waits = [policy.backoff(a, LINK, 0) for a in range(1, 6)]
        assert waits[0] == pytest.approx(0.01)
        assert waits[1] == pytest.approx(0.02)
        assert waits == sorted(waits)
        assert waits[-1] == pytest.approx(0.05)  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(jitter_fraction=0.2)
        a = policy.backoff(1, LINK, 5)
        b = policy.backoff(1, LINK, 5)
        assert a == b
        raw = policy.base_backoff_seconds
        assert raw * 0.8 <= a <= raw * 1.2
        # Different links jitter differently (almost surely).
        assert policy.backoff(1, ("lsp", "coordinator"), 5) != a


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            LinkFaults(drop=1.0)
        with pytest.raises(ConfigurationError):
            LinkFaults(latency_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(kill={"user:0": -1})

    def test_uniform_sets_all_rates(self):
        plan = FaultPlan.uniform(0.1, seed=3)
        faults = plan.for_link(LINK)
        assert (faults.drop, faults.duplicate, faults.reorder, faults.corrupt) == (
            0.1,
        ) * 4

    def test_per_link_override(self):
        special = LinkFaults(drop=0.5)
        plan = FaultPlan(links={LINK: special})
        assert plan.for_link(LINK) is special
        assert plan.for_link(("lsp", "coordinator")).drop == 0.0


class TestChannels:
    def test_perfect_delivers_exactly_once(self):
        env = make_envelope()
        deliveries = PerfectChannel().transmit(env)
        assert [d.envelope for d in deliveries] == [env]
        assert deliveries[0].latency_seconds == 0.0

    def test_faulty_is_deterministic(self):
        def run():
            channel = FaultyChannel(FaultPlan.uniform(0.3, seed=42))
            out = []
            for seq in range(30):
                for delivery in channel.transmit(make_envelope(seq)):
                    out.append((delivery.envelope.seq, delivery.envelope.intact))
            return out

        assert run() == run()

    def test_drop_everything(self):
        channel = FaultyChannel(FaultPlan(default=LinkFaults(drop=0.999)))
        lost = sum(
            not channel.transmit(make_envelope(seq)) for seq in range(50)
        )
        assert lost >= 45

    def test_duplicates_arrive_twice(self):
        channel = FaultyChannel(FaultPlan(default=LinkFaults(duplicate=0.999)))
        assert len(channel.transmit(make_envelope())) == 2

    def test_reordered_copy_arrives_on_next_transmit(self):
        channel = FaultyChannel(FaultPlan(default=LinkFaults(reorder=0.999)))
        assert channel.transmit(make_envelope(0)) == []
        arrived = channel.transmit(make_envelope(1))
        assert {d.envelope.seq for d in arrived} == {0}  # 1 held back again

    def test_latency_charged(self):
        channel = FaultyChannel(
            FaultPlan(default=LinkFaults(latency_seconds=0.25))
        )
        (delivery,) = channel.transmit(make_envelope())
        assert delivery.latency_seconds == pytest.approx(0.25)

    def test_kill_after_m_messages(self):
        channel = FaultyChannel(FaultPlan(kill={"coordinator": 1}))
        assert channel.transmit(make_envelope(0))  # first send passes
        assert channel.transmit(make_envelope(1)) == []  # dead afterwards
        assert channel.killed_party(LINK) == "coordinator"

    def test_dead_receiver_swallows(self):
        channel = FaultyChannel(FaultPlan(kill={"user:0": 0}))
        assert channel.transmit(make_envelope()) == []
        assert channel.killed_party(LINK) == "user:0"

    def test_revive_restores_link(self):
        channel = FaultyChannel(FaultPlan(kill={"user:0": 0}))
        channel.revive("user:0")
        assert channel.transmit(make_envelope())
        assert channel.killed_party(LINK) is None


class DropFirstN(PerfectChannel):
    """Test double: lose the first n transmissions, then behave."""

    def __init__(self, n):
        self.n = n

    def transmit(self, envelope):
        if self.n > 0:
            self.n -= 1
            return []
        return super().transmit(envelope)


class CorruptFirstN(PerfectChannel):
    """Test double: damage the first n transmissions, then behave."""

    def __init__(self, n):
        self.n = n
        self.rng = random.Random(0)

    def transmit(self, envelope):
        if self.n > 0:
            self.n -= 1
            damaged = Envelope(
                envelope.link,
                envelope.seq,
                tamper(envelope.payload, self.rng),
                envelope.checksum,
            )
            return [Delivery(damaged)]
        return super().transmit(envelope)


class TestTransport:
    def test_perfect_delivery_returns_payload(self):
        ledger = CostLedger()
        message = PositionAssignment(9)
        delivered = Transport().deliver(ledger, *LINK, message)
        assert delivered is message
        assert ledger.comm_bytes[(COORDINATOR, USER)] == (
            message.byte_size + ENVELOPE_OVERHEAD_BYTES
        )

    def test_retries_until_delivered(self):
        transport = Transport(DropFirstN(2), RetryPolicy(max_attempts=4))
        ledger = CostLedger()
        delivered = transport.deliver(ledger, *LINK, PositionAssignment(1))
        assert delivered.position == 1
        assert transport.stats.retransmissions == 2
        assert transport.stats.timeouts == 2
        assert ledger.message_counts[(COORDINATOR, USER)] == 3
        assert ledger.times[NETWORK] > 0

    def test_exhaustion_raises_typed_error(self):
        transport = Transport(DropFirstN(99), RetryPolicy(max_attempts=3))
        with pytest.raises(RetryExhaustedError) as excinfo:
            transport.deliver(CostLedger(), *LINK, PositionAssignment(1))
        assert excinfo.value.link == LINK
        assert excinfo.value.attempts == 3

    def test_corruption_rejected_and_nacked(self):
        transport = Transport(CorruptFirstN(1), RetryPolicy(max_attempts=3))
        ledger = CostLedger()
        delivered = transport.deliver(ledger, *LINK, PositionAssignment(5))
        assert delivered.position == 5  # the clean retransmission won
        assert transport.stats.corrupt_rejected == 1
        assert transport.stats.nacks_sent == 1
        # The NACK travelled the reverse link and was charged.
        assert ledger.comm_bytes[(USER, COORDINATOR)] == Nack(0).byte_size
        kinds = [entry.kind for entry in ledger.transcript]
        assert kinds == ["PositionAssignment", "Nack", "PositionAssignment"]

    def test_duplicates_discarded_by_seq(self):
        class DuplicateAlways(PerfectChannel):
            def transmit(self, envelope):
                return [Delivery(envelope), Delivery(envelope)]

        transport = Transport(DuplicateAlways())
        ledger = CostLedger()
        for position in range(3):
            transport.deliver(ledger, *LINK, PositionAssignment(position))
        assert transport.stats.duplicates_discarded == 3
        assert transport.stats.messages == 3

    def test_dead_user_surfaces_as_member_lost(self):
        channel = FaultyChannel(FaultPlan(kill={"user:0": 0}))
        transport = Transport(channel, RetryPolicy(max_attempts=2))
        with pytest.raises(GroupMemberLostError) as excinfo:
            transport.deliver(CostLedger(), *LINK, PositionAssignment(0))
        assert excinfo.value.user_index == 0
        assert excinfo.value.party == "user:0"

    def test_dead_lsp_is_not_member_lost(self):
        channel = FaultyChannel(FaultPlan(kill={"lsp": 0}))
        transport = Transport(channel, RetryPolicy(max_attempts=2))
        with pytest.raises(RetryExhaustedError) as excinfo:
            transport.deliver(
                CostLedger(), "coordinator", "lsp", PositionAssignment(0)
            )
        assert not isinstance(excinfo.value, GroupMemberLostError)

    def test_dead_lsp_surfaces_as_shard_lost(self):
        """A dead provider party is a typed shard loss, never a member loss.

        ShardLostError still *is* a RetryExhaustedError (so the assertion
        above stays true and ResilientSession never regroups around it),
        but carries the shard identity for the cluster's failover logic.
        """
        channel = FaultyChannel(FaultPlan(kill={"lsp": 0}))
        transport = Transport(channel, RetryPolicy(max_attempts=2))
        with pytest.raises(ShardLostError) as excinfo:
            transport.deliver(
                CostLedger(), "coordinator", "lsp", PositionAssignment(0)
            )
        assert excinfo.value.shard_id == 0
        assert excinfo.value.party == "lsp"
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value, RetryExhaustedError)
        assert not isinstance(excinfo.value, GroupMemberLostError)

    def test_dead_channel_is_not_shard_lost(self):
        """A lossy link to a *live* party stays a plain retry error."""

        class DropAll(PerfectChannel):
            def transmit(self, envelope):
                return []

        transport = Transport(DropAll(), RetryPolicy(max_attempts=2))
        with pytest.raises(RetryExhaustedError) as excinfo:
            transport.deliver(
                CostLedger(), "coordinator", "lsp", PositionAssignment(0)
            )
        assert not isinstance(excinfo.value, ShardLostError)

    def test_shard_index_parsing(self):
        assert shard_index("lsp") == 0
        assert shard_index("lsp:3") == 3
        assert shard_index("user:0") is None
        assert shard_index("coordinator") is None
        assert shard_index("lsp:abc") is None


class TestRetryBudget:
    """The session-wide retransmission budget (`RetryPolicy.retry_budget`).

    Orthogonal to per-message ``max_attempts``: the budget caps *total*
    retransmissions across the transport's lifetime, so a flaky peer
    cannot amplify an overload into a retry storm.
    """

    def test_budget_spans_deliveries(self):
        """Retries spent on earlier messages count against later ones."""
        transport = Transport(
            DropFirstN(2), RetryPolicy(max_attempts=10, retry_budget=3)
        )
        ledger = CostLedger()
        # First delivery burns 2 of the 3 budgeted retransmissions.
        transport.deliver(ledger, *LINK, PositionAssignment(0))
        assert transport.stats.retransmissions == 2

        class DropAll(PerfectChannel):
            def transmit(self, envelope):
                return []

        transport.channel = DropAll()
        with pytest.raises(RetryExhaustedError) as excinfo:
            transport.deliver(ledger, *LINK, PositionAssignment(1))
        assert excinfo.value.retries_spent == 3
        assert excinfo.value.retry_budget == 3
        # max_attempts was NOT the binding constraint.
        assert excinfo.value.attempts < 10

    def test_zero_budget_allows_clean_deliveries(self):
        transport = Transport(policy=RetryPolicy(max_attempts=5, retry_budget=0))
        delivered = transport.deliver(CostLedger(), *LINK, PositionAssignment(7))
        assert delivered.position == 7

    def test_zero_budget_fails_first_retry(self):
        transport = Transport(
            DropFirstN(1), RetryPolicy(max_attempts=5, retry_budget=0)
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            transport.deliver(CostLedger(), *LINK, PositionAssignment(0))
        assert excinfo.value.retries_spent == 0
        assert excinfo.value.retry_budget == 0

    def test_budget_keeps_member_loss_type(self):
        """A dead user under a dry budget still types as member loss."""
        channel = FaultyChannel(FaultPlan(kill={"user:0": 0}))
        transport = Transport(
            channel, RetryPolicy(max_attempts=5, retry_budget=1)
        )
        with pytest.raises(GroupMemberLostError) as excinfo:
            transport.deliver(CostLedger(), *LINK, PositionAssignment(0))
        assert excinfo.value.user_index == 0
        assert excinfo.value.retry_budget == 1
        assert excinfo.value.retries_spent == 1

    def test_budget_keeps_shard_loss_type(self):
        """A dead shard under a dry budget still triggers failover logic."""
        channel = FaultyChannel(FaultPlan(kill={"lsp:2": 0}))
        transport = Transport(
            channel, RetryPolicy(max_attempts=5, retry_budget=1)
        )
        with pytest.raises(ShardLostError) as excinfo:
            transport.deliver(
                CostLedger(), "coordinator", "lsp:2", PositionAssignment(0)
            )
        assert excinfo.value.shard_id == 2
        assert excinfo.value.retry_budget == 1
        assert isinstance(excinfo.value, RetryExhaustedError)

    def test_no_budget_is_historical_behaviour(self):
        transport = Transport(DropFirstN(3), RetryPolicy(max_attempts=10))
        delivered = transport.deliver(CostLedger(), *LINK, PositionAssignment(4))
        assert delivered.position == 4
        assert transport.stats.retransmissions == 3

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(retry_budget=-1)


class TestSendHelper:
    def test_none_transport_matches_plain_record(self):
        message = PositionAssignment(2)
        via_helper, via_record = CostLedger(), CostLedger()
        delivered = send(None, via_helper, "user:4", "lsp", message)
        via_record.record("user", "lsp", message)
        assert delivered is message
        assert via_helper.comm_bytes == via_record.comm_bytes
        assert via_helper.transcript == via_record.transcript

    def test_party_role_parsing(self):
        assert party_role("user:12") == "user"
        assert party_role("coordinator") == "coordinator"
        assert party_role("lsp") == "lsp"
        with pytest.raises(ConfigurationError):
            party_role("mallory")

    def test_user_index_parsing(self):
        assert user_index("user:7") == 7
        assert user_index("lsp") is None
        assert user_index("coordinator") is None
