"""The run ledger's contracts: idempotent appends, seq-ordered analytics,
truncated-tail recovery, and the document converters behind
``repro trend --append``."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.series import (
    LEDGER_SCHEMA_VERSION,
    LedgerRecord,
    RunLedger,
    config_digest,
    ledger_stamp,
    parse_ledger_jsonl,
    record_from_baseline_document,
    record_from_bench_document,
    records_from_markdown,
    records_from_text,
    sort_records,
)


def _record(sha="aaa", suite="demo", metrics=None, config=None, **kwargs):
    return LedgerRecord(
        suite=suite,
        git_sha=sha,
        metrics=dict(metrics or {"ops.x": 10}),
        config=dict(config or {"k": 3}),
        **kwargs,
    )


class TestLedgerRecord:
    def test_config_digest_auto_derived_and_stable(self):
        a = _record(config={"k": 3, "d": 5})
        b = _record(config={"d": 5, "k": 3})
        assert a.config_digest == b.config_digest == config_digest({"k": 3, "d": 5})

    def test_round_trip(self):
        record = _record(
            phases={"crypto": 8, "compute": 2},
            quality={"recall": 1.0},
            accepted=("ops.x",),
            keysize=128,
        )
        restored = LedgerRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert restored.to_dict() == record.to_dict()

    def test_rejects_empty_suite_and_sha(self):
        with pytest.raises(ReproError):
            LedgerRecord(suite="", git_sha="a", metrics={})
        with pytest.raises(ReproError):
            LedgerRecord(suite="s", git_sha="", metrics={})

    def test_rejects_non_numeric_metrics(self):
        with pytest.raises(ReproError):
            _record(metrics={"ops.x": "ten"})
        with pytest.raises(ReproError):
            _record(metrics={"ops.x": True})

    def test_from_dict_malformed(self):
        with pytest.raises(ReproError, match="malformed ledger record"):
            LedgerRecord.from_dict({"suite": "s"})


class TestAppendIdempotence:
    def test_duplicate_sha_and_config_is_noop(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first, appended = ledger.append(_record(metrics={"ops.x": 10}))
        assert appended and first.seq == 0
        replay, appended = ledger.append(_record(metrics={"ops.x": 999}))
        assert not appended
        assert replay.seq == 0 and replay.metrics["ops.x"] == 10
        assert len(ledger.load("demo")) == 1

    def test_replay_property_random_order(self, tmp_path):
        """Appending any shuffle of a record set, repeatedly, converges to
        exactly one stored record per (sha, config_digest)."""
        import random

        records = [
            _record(sha=f"sha{i}", config={"k": k})
            for i in range(4)
            for k in (3, 5)
        ]
        ledger = RunLedger(tmp_path)
        rng = random.Random(7)
        for _ in range(3):
            shuffled = records[:]
            rng.shuffle(shuffled)
            for record in shuffled:
                ledger.append(record)
        stored = ledger.load("demo")
        assert len(stored) == len(records)
        keys = {(r.git_sha, r.config_digest) for r in stored}
        assert len(keys) == len(records)
        assert sorted(r.seq for r in stored) == list(range(len(records)))

    def test_same_sha_different_config_appends_both(self, tmp_path):
        ledger = RunLedger(tmp_path)
        _, a = ledger.append(_record(config={"k": 3}))
        _, b = ledger.append(_record(config={"k": 5}))
        assert a and b
        assert len(ledger.load("demo")) == 2

    def test_suites_are_separate_files(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record(suite="alpha"))
        ledger.append(_record(suite="beta"))
        assert ledger.suites() == ["alpha", "beta"]
        assert ledger.path("alpha").name == "alpha.jsonl"


class TestParseTaxonomy:
    def test_truncated_tail_raises_with_guidance(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record(sha="a"))
        ledger.append(_record(sha="b"))
        path = ledger.path("demo")
        text = path.read_text()
        path.write_text(text.rstrip("\n")[: len(text) - 20])
        with pytest.raises(ReproError, match="truncated.*--allow-truncated"):
            ledger.load("demo")

    def test_truncated_tail_recovery_round_trip(self, tmp_path):
        """Kill the last append mid-line; recovery keeps the prefix and the
        next append lands on a clean line of its own."""
        ledger = RunLedger(tmp_path)
        ledger.append(_record(sha="a"))
        ledger.append(_record(sha="b"))
        path = ledger.path("demo")
        text = path.read_text()
        path.write_text(text.rstrip("\n")[: len(text) - 20])
        survivors = ledger.load("demo", allow_truncated_tail=True)
        assert [r.git_sha for r in survivors] == ["a"]
        stored, appended = ledger.append(
            _record(sha="c"), allow_truncated_tail=True
        )
        assert appended and stored.seq == 1
        recovered = ledger.load("demo", allow_truncated_tail=True)
        assert [r.git_sha for r in recovered] == ["a", "c"]
        # The healed file now parses strictly again.
        reparsed = parse_ledger_jsonl(path.read_text())
        assert len(reparsed) >= 1

    def test_mid_file_garbage_always_raises(self):
        good = json.dumps(_record(sha="a", seq=0).to_dict())
        text = good + "\n{broken\n" + good + "\n"
        with pytest.raises(ReproError, match="line 2 does not parse"):
            parse_ledger_jsonl(text, allow_truncated_tail=True)

    def test_foreign_schema_version_refused(self):
        data = _record(sha="a", seq=0).to_dict()
        data["schema_version"] = LEDGER_SCHEMA_VERSION + 1
        with pytest.raises(ReproError, match="schema v"):
            parse_ledger_jsonl(json.dumps(data))

    def test_non_object_line_refused(self):
        with pytest.raises(ReproError, match="not a record object"):
            parse_ledger_jsonl("[1, 2, 3]\n")


class TestOrderingInvariance:
    def test_load_sorts_by_seq_not_line_order(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for sha in ("a", "b", "c"):
            ledger.append(_record(sha=sha))
        path = ledger.path("demo")
        lines = path.read_text().strip().splitlines()
        path.write_text("\n".join(reversed(lines)) + "\n")
        assert [r.git_sha for r in ledger.load("demo")] == ["a", "b", "c"]

    def test_sort_records_is_total(self):
        records = [_record(sha=s, seq=i) for i, s in enumerate("cab")]
        assert [r.seq for r in sort_records(reversed(records))] == [0, 1, 2]


class TestConverters:
    def test_baseline_document(self):
        doc = {
            "experiment": "ppgnn",
            "git_sha": "feedface",
            "keysize": 128,
            "config": {"k": 3},
            "metrics": {"ops.x": 5, "time.s": 0.5},
        }
        record = record_from_baseline_document(doc)
        assert record.suite == "ppgnn" and record.source == "baseline"
        assert record.metrics == doc["metrics"]
        with pytest.raises(ReproError, match="malformed baseline"):
            record_from_baseline_document({"metrics": {}})

    def test_bench_document_with_serving_report(self):
        report = {
            "completed": 10,
            "failed": 0,
            "comm_bytes_total": 123,
            "latency": {"p95": 0.2},
            "queue": {"mean_wait": 0.1},
            "makespan_seconds": 1.0,
        }
        doc = {
            "experiment": "serve",
            "git_sha": "cafe",
            "results": {"process": report, "serial": report},
            "metrics": {"counters": {"x": 1}, "gauges": {}, "histograms": {}},
        }
        record = record_from_bench_document(doc)
        assert record.suite == "serve" and record.source == "bench"
        assert record.metrics["serve.completed"] == 10
        assert record.obs == doc["metrics"]

    def test_bench_document_flattens_plain_results(self):
        doc = {
            "experiment": "index-scale",
            "git_sha": "beef",
            "results": {"metrics": {"build_seconds": 2.5}, "sizes": [1, 2]},
        }
        record = record_from_bench_document(doc)
        assert record.metrics == {"metrics.build_seconds": 2.5}

    def test_committed_artifacts_convert(self):
        """Every committed baseline and BENCH document must stay appendable."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent / "benchmarks"
        for path in sorted((root / "baselines").glob("*.json")):
            record = record_from_baseline_document(json.loads(path.read_text()))
            assert record.metrics, path.name
        for path in sorted((root / "results").glob("BENCH_*.json")):
            record = record_from_bench_document(json.loads(path.read_text()))
            assert record.metrics, path.name


class TestStampsAndText:
    def test_stamp_round_trip_through_markdown(self):
        record = _record(phases={"crypto": 3}, keysize=128)
        doc = "# Report\n\nsome prose\n" + ledger_stamp(record) + "\n"
        [restored] = records_from_markdown(doc)
        assert restored.to_dict() == record.to_dict()

    def test_unclosed_stamp_raises(self):
        with pytest.raises(ReproError, match="never\\s+closes"):
            records_from_markdown("<!-- repro-ledger: {\"suite\": \"x\"}")

    def test_records_from_text_dispatch(self, tmp_path):
        baseline = {
            "experiment": "ppgnn",
            "git_sha": "a",
            "metrics": {"ops.x": 1},
        }
        assert records_from_text(json.dumps(baseline))[0].source == "baseline"
        bench = {"experiment": "serve", "git_sha": "a", "results": {"n": 1}}
        assert records_from_text(json.dumps(bench))[0].source == "bench"
        raw = json.dumps(_record(seq=0).to_dict())
        assert records_from_text(raw)[0].suite == "demo"

    def test_records_from_text_jsonl_fragment(self):
        lines = "\n".join(
            json.dumps(_record(sha=s, seq=i).to_dict())
            for i, s in enumerate("ab")
        )
        assert len(records_from_text(lines)) == 2

    def test_stampless_markdown_names_the_fix(self):
        with pytest.raises(ReproError, match="repro perf-check --report-out"):
            records_from_text("# Old report\nno stamps here\n")
