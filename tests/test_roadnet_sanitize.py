"""Tests for the road-metric answer sanitation."""

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import SUM
from repro.roadnet import RoadNetwork, RoadNetworkEngine, RoadNetworkSanitizer
from repro.stats.hypothesis import SanitationTestPlan


@pytest.fixture(scope="module")
def network():
    return RoadNetwork.grid(nodes_per_side=12, seed=5)


@pytest.fixture(scope="module")
def engine(network):
    return RoadNetworkEngine(uniform_pois(250, seed=6), network)


def make_sanitizer(network, theta0=0.05, samples=1500, seed=0, snap_grid=32):
    plan = SanitationTestPlan.from_parameters(theta0, n_samples_override=samples)
    return RoadNetworkSanitizer(
        network, SUM, plan, np.random.default_rng(seed), snap_grid=snap_grid
    )


def spread_group(n, seed):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, (n, 2))]


class TestRoadSanitizer:
    def test_snap_grid_validation(self, network):
        plan = SanitationTestPlan.from_parameters(0.05, n_samples_override=100)
        with pytest.raises(ConfigurationError):
            RoadNetworkSanitizer(
                network, SUM, plan, np.random.default_rng(0), snap_grid=1
            )

    def test_prefix_is_a_prefix(self, network, engine):
        sanitizer = make_sanitizer(network)
        group = spread_group(5, seed=1)
        pois = engine.query(8, group)
        outcome = sanitizer.sanitize(pois, group)
        assert list(outcome.prefix) == pois[: len(outcome.prefix)]
        assert len(outcome.prefix) >= 1
        assert len(outcome.prefix) == min(outcome.safe_lengths)

    def test_single_user_passthrough(self, network, engine):
        sanitizer = make_sanitizer(network)
        user = Point(0.4, 0.4)
        pois = engine.query(5, [user])
        assert list(sanitizer.sanitize(pois, [user]).prefix) == pois

    def test_spread_group_gets_truncated(self, network, engine):
        """With users at opposite corners the ranking pins the victim down,
        so the road-metric sanitation must truncate, just like Euclidean."""
        sanitizer = make_sanitizer(network, theta0=0.3, samples=2500, seed=2)
        truncated = False
        for seed in range(5):
            group = spread_group(6, seed=seed)
            pois = engine.query(8, group)
            if len(sanitizer.sanitize(pois, group).prefix) < len(pois):
                truncated = True
                break
        assert truncated

    def test_snapping_approximation_is_tight(self, network):
        """Every snap-grid cell's stored node must be the true nearest node
        of the cell center (the table is exact at centers by construction);
        spot-check random interior points stay within one edge length."""
        sanitizer = make_sanitizer(network, snap_grid=24)
        rng = np.random.default_rng(3)
        xs, ys = network.space.sample_arrays(50, rng)
        snapped = sanitizer._snap_samples(xs, ys)
        for x, y, node_idx in zip(xs, ys, snapped, strict=True):
            true_node = network.snap(Point(float(x), float(y)))
            approx_point = network.node_point(sanitizer._nodes[int(node_idx)])
            true_point = network.node_point(true_node)
            p = Point(float(x), float(y))
            # The approximate snap is never much worse than the true snap.
            assert p.distance_to(approx_point) <= p.distance_to(true_point) + 0.2

    def test_theta_monotonicity(self, network, engine):
        group = spread_group(6, seed=9)
        pois = engine.query(8, group)
        lengths = []
        for theta0 in (0.02, 0.2, 0.6):
            sanitizer = make_sanitizer(network, theta0=theta0, seed=4)
            lengths.append(len(sanitizer.sanitize(pois, group).prefix))
        assert lengths == sorted(lengths, reverse=True)
