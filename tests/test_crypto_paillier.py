"""Tests for the generalized Paillier (Damgård–Jurik) cryptosystem."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import (
    Ciphertext,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.errors import CryptoError


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert keypair.public_key.key_bits == 256

    def test_seeded_generation_cached_and_deterministic(self):
        a = generate_keypair(128, seed=1)
        b = generate_keypair(128, seed=1)
        assert a.public_key.n == b.public_key.n
        assert a is b  # cache hit

    def test_different_seeds_differ(self):
        assert generate_keypair(128, seed=2).public_key.n != generate_keypair(
            128, seed=3
        ).public_key.n

    def test_invalid_keysize(self):
        with pytest.raises(CryptoError):
            generate_keypair(15)
        with pytest.raises(CryptoError):
            generate_keypair(130 + 1)

    def test_private_key_validates_factorization(self, keypair):
        with pytest.raises(CryptoError):
            PaillierPrivateKey(keypair.public_key, 3, 5)


class TestEncryptDecrypt:
    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_roundtrip_at_levels(self, keypair, s):
        sk, pk = keypair
        rng = random.Random(0)
        for m in [0, 1, 2, pk.plaintext_modulus(s) // 2, pk.plaintext_modulus(s) - 1]:
            assert sk.decrypt(pk.encrypt(m, s=s, rng=rng)) == m

    def test_probabilistic_encryption(self, keypair):
        sk, pk = keypair
        c1 = pk.encrypt(42, rng=random.Random(1))
        c2 = pk.encrypt(42, rng=random.Random(2))
        assert c1.value != c2.value
        assert sk.decrypt(c1) == sk.decrypt(c2) == 42

    def test_insecure_mode_is_deterministic(self, keypair):
        _, pk = keypair
        assert pk.encrypt(7, secure=False).value == pk.encrypt(7, secure=False).value

    def test_plaintext_out_of_range(self, keypair):
        _, pk = keypair
        with pytest.raises(CryptoError):
            pk.encrypt(pk.plaintext_modulus(1))
        with pytest.raises(CryptoError):
            pk.encrypt(-1)

    def test_wrong_key_decryption_rejected(self, keypair):
        sk, _ = keypair
        other = generate_keypair(128, seed=77)
        c = other.public_key.encrypt(5)
        with pytest.raises(CryptoError):
            sk.decrypt(c)

    def test_rerandomize_preserves_plaintext(self, keypair):
        sk, pk = keypair
        c = pk.encrypt(123, rng=random.Random(5))
        c2 = pk.rerandomize(c, random.Random(6))
        assert c2.value != c.value
        assert sk.decrypt(c2) == 123

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64))
    def test_roundtrip_property(self, m):
        sk, pk = generate_keypair(128, seed=4242)
        assert sk.decrypt(pk.encrypt(m % pk.n, rng=random.Random(m))) == m % pk.n


class TestNestedEncryption:
    def test_eps1_ciphertext_fits_eps2_plaintext(self, keypair):
        sk, pk = keypair
        inner = pk.encrypt(999, rng=random.Random(1))
        assert inner.value < pk.plaintext_modulus(2)
        outer = pk.encrypt(inner.value, s=2, rng=random.Random(2))
        assert sk.decrypt_nested(outer) == 999

    def test_decrypt_nested_requires_eps2(self, keypair):
        sk, pk = keypair
        with pytest.raises(CryptoError):
            sk.decrypt_nested(pk.encrypt(1, s=1))


class TestCiphertextSizes:
    def test_byte_sizes_follow_levels(self, keypair):
        _, pk = keypair
        # eps_1 ciphertexts live in Z_{N^2}: 2 * 256 bits = 64 bytes.
        assert pk.ciphertext_bytes(1) == 64
        # eps_2 in Z_{N^3}: 96 bytes — the 1.5x ratio of Section 6.
        assert pk.ciphertext_bytes(2) == 96

    def test_ciphertext_level_validation(self, keypair):
        _, pk = keypair
        with pytest.raises(CryptoError):
            Ciphertext(value=1, s=0, public_key=pk)


class TestGPower:
    def test_g_pow_matches_pow(self, keypair):
        _, pk = keypair
        for s in (1, 2):
            mod = pk.ciphertext_modulus(s)
            for m in (0, 1, 12345, pk.plaintext_modulus(s) - 1):
                assert pk.g_pow(m, s) == pow(1 + pk.n, m, mod)

    def test_public_key_equality_and_hash(self, keypair):
        _, pk = keypair
        clone = PaillierPublicKey(pk.n)
        assert clone == pk and hash(clone) == hash(pk)


class TestCRTFastPath:
    """The CRT decryption must agree with the generic Damgård–Jurik path."""

    @pytest.mark.parametrize("s", [1, 2])
    def test_crt_equivalence_across_levels(self, keypair, s):
        sk, pk = keypair
        rng = random.Random(20260806 + s)
        mod = pk.plaintext_modulus(s)
        plaintexts = [0, 1, mod - 1] + [rng.randrange(mod) for _ in range(20)]
        for m in plaintexts:
            c = pk.encrypt(m, s=s, rng=rng)
            assert sk.decrypt(c, use_crt=True) == sk.decrypt(c, use_crt=False) == m

    def test_crt_equivalence_fresh_key(self):
        sk, pk = generate_keypair(192, seed=991)
        rng = random.Random(5)
        for s in (1, 2):
            for _ in range(10):
                m = rng.randrange(pk.plaintext_modulus(s))
                c = pk.encrypt(m, s=s, rng=rng)
                assert sk.decrypt(c, use_crt=True) == sk.decrypt(c, use_crt=False) == m

    def test_nested_decryption_uses_exact_crt(self, keypair):
        sk, pk = keypair
        rng = random.Random(6)
        inner = pk.encrypt(987654321, s=1, rng=rng)
        outer = pk.encrypt(inner.value, s=2, rng=rng)
        assert sk.decrypt_nested(outer) == 987654321


class TestGPowProperty:
    """Hypothesis: (1+N)^m via binomial expansion equals builtin pow."""

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(min_value=0, max_value=(1 << 200) - 1),
        s=st.sampled_from([1, 2, 3]),
    )
    def test_g_pow_matches_pow_at_all_levels(self, m, s):
        _, pk = generate_keypair(128, seed=4242)
        mod = pk.ciphertext_modulus(s)
        assert pk.g_pow(m % pk.plaintext_modulus(s), s) == pow(
            1 + pk.n, m % pk.plaintext_modulus(s), mod
        )

    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_g_pow_boundary_plaintexts(self, s):
        _, pk = generate_keypair(128, seed=4242)
        mod = pk.ciphertext_modulus(s)
        for m in (0, pk.plaintext_modulus(s) - 1):
            assert pk.g_pow(m, s) == pow(1 + pk.n, m, mod)


class TestRandomUnit:
    def test_returns_a_unit(self, keypair):
        from math import gcd

        _, pk = keypair
        r = pk.random_unit(random.Random(8))
        assert 1 <= r < pk.n and gcd(r, pk.n) == 1

    def test_degenerate_modulus_raises_instead_of_spinning(self, keypair):
        # An adversarial rng that only ever proposes multiples of p can
        # never find a unit; the bounded loop must raise, not hang.
        sk, pk = keypair

        class StuckRng:
            def randrange(self, lo, hi):
                return sk.p

        with pytest.raises(CryptoError):
            pk.random_unit(StuckRng())


class TestFactorialInverseDedup:
    def test_extract_dlog_uses_shared_table(self, keypair):
        # The decrypt recursion and modmath.factorial_inverse_table must
        # be one implementation: the cached table equals modmath's.
        from repro.crypto.modmath import factorial_inverse_table
        from repro.crypto.paillier import _inv_fact_table

        sk, pk = keypair
        s = 3
        c = pk.encrypt(123456789, s=s, rng=random.Random(2))
        assert sk.decrypt(c) == 123456789
        cached = _inv_fact_table(pk.n, s)
        assert list(cached) == factorial_inverse_table(s, pk.n**s)

    def test_table_cached_per_key_and_level(self, keypair):
        from repro.crypto.paillier import _inv_fact_table

        _, pk = keypair
        assert _inv_fact_table(pk.n, 2) is _inv_fact_table(pk.n, 2)


class TestFastPathEquivalence:
    """Satellite (d): fastexp-vs-pow and pooled-vs-unpooled equality."""

    @pytest.mark.parametrize("keysize", [1024, 2048])
    def test_ciphertexts_identical_with_fast_paths_on_and_off(self, keysize):
        from repro.crypto import fastexp

        sk, pk = generate_keypair(keysize, seed=20260808)
        values = {}
        for flag in (True, False):
            with fastexp.forced(flag):
                rng = random.Random(31337)
                c = pk.encrypt(424242, rng=rng)
                r2 = pk.rerandomize(c, rng)
                values[flag] = (c.value, r2.value)
        assert values[True] == values[False]
        assert sk.decrypt(
            Ciphertext(values[True][1], 1, pk)
        ) == 424242

    @pytest.mark.parametrize("keysize", [1024, 2048])
    def test_pooled_equals_unpooled_for_the_same_nonce(self, keysize):
        sk, pk = generate_keypair(keysize, seed=20260808)
        r = pk.random_unit(random.Random(99))
        unpooled = pk.encrypt(7654321, rng=random.Random(99))
        pooled = pk.encrypt_with_factor(7654321, pk.obfuscate(r))
        assert pooled.value == unpooled.value
        assert sk.decrypt(pooled) == 7654321

    def test_obfuscate_matches_pow_across_levels(self, keypair):
        from repro.crypto import fastexp

        _, pk = keypair
        rng = random.Random(4)
        for s in (1, 2):
            r = pk.random_unit(rng)
            expected = pow(r, pk.n_pow(s), pk.ciphertext_modulus(s))
            for flag in (True, False):
                with fastexp.forced(flag):
                    assert pk.obfuscate(r, s) == expected

    def test_crt_pow_matches_pow(self, keypair):
        sk, pk = keypair
        rng = random.Random(12)
        base = pk.random_unit(rng)
        exponent = pk.n_pow(2)
        assert sk.crt_pow(base, exponent, s=2) == pow(
            base, exponent, pk.ciphertext_modulus(2)
        )

    def test_encrypt_with_factor_validates_range(self, keypair):
        _, pk = keypair
        with pytest.raises(CryptoError):
            pk.encrypt_with_factor(pk.plaintext_modulus(1), 1)
