"""Tests for the generalized Paillier (Damgård–Jurik) cryptosystem."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import (
    Ciphertext,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.errors import CryptoError


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert keypair.public_key.key_bits == 256

    def test_seeded_generation_cached_and_deterministic(self):
        a = generate_keypair(128, seed=1)
        b = generate_keypair(128, seed=1)
        assert a.public_key.n == b.public_key.n
        assert a is b  # cache hit

    def test_different_seeds_differ(self):
        assert generate_keypair(128, seed=2).public_key.n != generate_keypair(
            128, seed=3
        ).public_key.n

    def test_invalid_keysize(self):
        with pytest.raises(CryptoError):
            generate_keypair(15)
        with pytest.raises(CryptoError):
            generate_keypair(130 + 1)

    def test_private_key_validates_factorization(self, keypair):
        with pytest.raises(CryptoError):
            PaillierPrivateKey(keypair.public_key, 3, 5)


class TestEncryptDecrypt:
    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_roundtrip_at_levels(self, keypair, s):
        sk, pk = keypair
        rng = random.Random(0)
        for m in [0, 1, 2, pk.plaintext_modulus(s) // 2, pk.plaintext_modulus(s) - 1]:
            assert sk.decrypt(pk.encrypt(m, s=s, rng=rng)) == m

    def test_probabilistic_encryption(self, keypair):
        sk, pk = keypair
        c1 = pk.encrypt(42, rng=random.Random(1))
        c2 = pk.encrypt(42, rng=random.Random(2))
        assert c1.value != c2.value
        assert sk.decrypt(c1) == sk.decrypt(c2) == 42

    def test_insecure_mode_is_deterministic(self, keypair):
        _, pk = keypair
        assert pk.encrypt(7, secure=False).value == pk.encrypt(7, secure=False).value

    def test_plaintext_out_of_range(self, keypair):
        _, pk = keypair
        with pytest.raises(CryptoError):
            pk.encrypt(pk.plaintext_modulus(1))
        with pytest.raises(CryptoError):
            pk.encrypt(-1)

    def test_wrong_key_decryption_rejected(self, keypair):
        sk, _ = keypair
        other = generate_keypair(128, seed=77)
        c = other.public_key.encrypt(5)
        with pytest.raises(CryptoError):
            sk.decrypt(c)

    def test_rerandomize_preserves_plaintext(self, keypair):
        sk, pk = keypair
        c = pk.encrypt(123, rng=random.Random(5))
        c2 = pk.rerandomize(c, random.Random(6))
        assert c2.value != c.value
        assert sk.decrypt(c2) == 123

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64))
    def test_roundtrip_property(self, m):
        sk, pk = generate_keypair(128, seed=4242)
        assert sk.decrypt(pk.encrypt(m % pk.n, rng=random.Random(m))) == m % pk.n


class TestNestedEncryption:
    def test_eps1_ciphertext_fits_eps2_plaintext(self, keypair):
        sk, pk = keypair
        inner = pk.encrypt(999, rng=random.Random(1))
        assert inner.value < pk.plaintext_modulus(2)
        outer = pk.encrypt(inner.value, s=2, rng=random.Random(2))
        assert sk.decrypt_nested(outer) == 999

    def test_decrypt_nested_requires_eps2(self, keypair):
        sk, pk = keypair
        with pytest.raises(CryptoError):
            sk.decrypt_nested(pk.encrypt(1, s=1))


class TestCiphertextSizes:
    def test_byte_sizes_follow_levels(self, keypair):
        _, pk = keypair
        # eps_1 ciphertexts live in Z_{N^2}: 2 * 256 bits = 64 bytes.
        assert pk.ciphertext_bytes(1) == 64
        # eps_2 in Z_{N^3}: 96 bytes — the 1.5x ratio of Section 6.
        assert pk.ciphertext_bytes(2) == 96

    def test_ciphertext_level_validation(self, keypair):
        _, pk = keypair
        with pytest.raises(CryptoError):
            Ciphertext(value=1, s=0, public_key=pk)


class TestGPower:
    def test_g_pow_matches_pow(self, keypair):
        _, pk = keypair
        for s in (1, 2):
            mod = pk.ciphertext_modulus(s)
            for m in (0, 1, 12345, pk.plaintext_modulus(s) - 1):
                assert pk.g_pow(m, s) == pow(1 + pk.n, m, mod)

    def test_public_key_equality_and_hash(self, keypair):
        _, pk = keypair
        clone = PaillierPublicKey(pk.n)
        assert clone == pk and hash(clone) == hash(pk)


class TestCRTFastPath:
    """The CRT decryption must agree with the generic Damgård–Jurik path."""

    @pytest.mark.parametrize("s", [1, 2])
    def test_crt_equivalence_across_levels(self, keypair, s):
        sk, pk = keypair
        rng = random.Random(20260806 + s)
        mod = pk.plaintext_modulus(s)
        plaintexts = [0, 1, mod - 1] + [rng.randrange(mod) for _ in range(20)]
        for m in plaintexts:
            c = pk.encrypt(m, s=s, rng=rng)
            assert sk.decrypt(c, use_crt=True) == sk.decrypt(c, use_crt=False) == m

    def test_crt_equivalence_fresh_key(self):
        sk, pk = generate_keypair(192, seed=991)
        rng = random.Random(5)
        for s in (1, 2):
            for _ in range(10):
                m = rng.randrange(pk.plaintext_modulus(s))
                c = pk.encrypt(m, s=s, rng=rng)
                assert sk.decrypt(c, use_crt=True) == sk.decrypt(c, use_crt=False) == m

    def test_nested_decryption_uses_exact_crt(self, keypair):
        sk, pk = keypair
        rng = random.Random(6)
        inner = pk.encrypt(987654321, s=1, rng=rng)
        outer = pk.encrypt(inner.value, s=2, rng=rng)
        assert sk.decrypt_nested(outer) == 987654321
