"""Scatter–gather chaos: every fault plan degrades honestly, never wrongly.

The chaos property (the robustness contract of the cluster): under *any*
seeded :class:`ShardFaultPlan`, a scattered job either reproduces the
single-LSP answer exactly, or returns a typed
:class:`~repro.cluster.merge.PartialAnswer` that is the exact answer over
the covered shards — or fails with a typed
:class:`~repro.errors.ShardLostError` below the quorum.  There is no
fourth outcome; silent corruption is structurally impossible.
"""

import random

import pytest

from repro.cluster import ClusterConfig, ReplicaFault, ShardFaultPlan
from repro.cluster.merge import ShardAnswer, merge_answers
from repro.cluster.scatter import ClusterRunner
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.core.session import QuerySession
from repro.datasets.synthetic import uniform_pois
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ProtocolError,
    ShardLostError,
)
from repro.geometry.space import LocationSpace
from repro.guard.checkpoint import checkpoint_scatter, restore_scatter
from repro.serve.workload import GroupProfile, QueryJob

SAMPLES = 8

SPACE = LocationSpace.unit_square()
POIS = uniform_pois(120, SPACE, seed=7)
CONFIG = PPGNNConfig(
    d=3, delta=6, k=3, keysize=128, key_seed=2,
    sanitize=False, sanitation_samples=SAMPLES,
)
GROUP = GroupProfile(
    group_id=0,
    tenant="tenant-0",
    locations=tuple(p.location for p in uniform_pois(3, SPACE, seed=21)),
)


def make_lsp():
    return LSPServer(list(POIS), space=SPACE, sanitation_samples=SAMPLES)


def make_job(job_id=0, protocol="ppgnn", k=3, seed=17):
    return QueryJob(
        job_id=job_id,
        tenant=GROUP.tenant,
        group_id=GROUP.group_id,
        protocol=protocol,
        k=k,
        seed=seed,
        arrival_time=0.0,
    )


def single_lsp_answer(job):
    lsp = make_lsp()
    lsp.reset_rng(job.seed)
    session = QuerySession(
        lsp=lsp, config=CONFIG, protocol=job.protocol, seed=job.seed
    )
    return session.query(GROUP.locations, seed=job.seed).answer_ids


def random_fault_plan(seed: int, shards: int, replicas: int) -> ShardFaultPlan:
    """A randomized but seeded shard-fault plan for the chaos property."""
    rng = random.Random(seed)
    faults = {}
    for shard in range(shards):
        for replica in range(replicas):
            roll = rng.random()
            if roll < 0.25:
                faults[(shard, replica)] = ReplicaFault(
                    kill_after=rng.randint(0, 2)
                )
            elif roll < 0.40:
                faults[(shard, replica)] = ReplicaFault(
                    slow_start=rng.randint(1, 3),
                    slow_factor=rng.uniform(2.0, 6.0),
                )
            elif roll < 0.55:
                start = rng.randint(0, 4)
                faults[(shard, replica)] = ReplicaFault(
                    down=((start, start + rng.randint(1, 3)),)
                )
    return ShardFaultPlan(replicas=faults, seed=seed, jitter_seconds=0.002)


class TestHealthyCluster:
    @pytest.mark.parametrize("protocol", ["ppgnn", "ppgnn-opt", "naive"])
    def test_merged_equals_single_lsp(self, protocol):
        """All shards respond -> answer identical to one big LSP."""
        runner = ClusterRunner(
            make_lsp(), CONFIG, ClusterConfig(shards=3, replicas=2)
        )
        job = make_job(protocol=protocol)
        outcome = runner.run_job(job, GROUP)
        assert not outcome.partial
        assert outcome.coverage == 1.0
        assert outcome.answer_ids == single_lsp_answer(job)

    def test_rejects_sanitized_config(self):
        with pytest.raises(ConfigurationError):
            ClusterRunner(
                make_lsp(),
                PPGNNConfig(
                    d=3, delta=6, k=3, keysize=128,
                    sanitize=True, sanitation_samples=SAMPLES,
                ),
                ClusterConfig(shards=2),
            )

    def test_comm_bytes_accumulate_over_shards(self):
        runner = ClusterRunner(make_lsp(), CONFIG, ClusterConfig(shards=2))
        outcome = runner.run_job(make_job(), GROUP)
        assert outcome.comm_bytes > 0
        assert runner.stats.subqueries == 2


class TestChaosProperty:
    @pytest.mark.parametrize("chaos_seed", range(8))
    def test_never_silently_wrong(self, chaos_seed):
        """Satellite 3: any seeded fault plan -> exact, partial, or typed error."""
        shards, replicas = 3, 2
        plan = random_fault_plan(chaos_seed, shards, replicas)
        cluster = ClusterConfig(
            shards=shards,
            replicas=replicas,
            quorum=0.4,
            faults=plan,
            hedge_factor=1.5,
        )
        runner = ClusterRunner(make_lsp(), CONFIG, cluster)
        reference = ClusterRunner(
            make_lsp(), CONFIG, ClusterConfig(shards=shards, replicas=replicas)
        )
        for job_id in range(3):
            job = make_job(job_id=job_id, seed=17 + job_id)
            expected_full = reference.run_job(job, GROUP).answer_ids
            try:
                outcome = runner.run_job(job, GROUP)
            except ShardLostError:
                continue  # below quorum: typed failure, never a wrong answer
            if not outcome.partial:
                assert outcome.answer_ids == expected_full
                assert outcome.coverage == 1.0
            else:
                partial = outcome.partial_answer
                assert partial is not None
                assert 0.0 < outcome.coverage < 1.0
                assert outcome.coverage >= cluster.quorum
                assert set(partial.covered_shards).isdisjoint(partial.lost_shards)
                # The degraded answer is the *exact* top-k over the covered
                # shards' POIs: recompute it from scratch and compare.
                covered_answers = [
                    ShardAnswer(
                        shard_id=s,
                        replica=0,
                        answer_ids=tuple(
                            p.poi_id
                            for p in runner.shard_lsps[s].engine.query(
                                job.k, list(GROUP.locations)
                            )
                        ),
                        comm_bytes=0,
                        simulated_seconds=0.0,
                    )
                    for s in partial.covered_shards
                ]
                exact_covered = merge_answers(
                    covered_answers,
                    GROUP.locations,
                    runner.aggregate,
                    job.k,
                    runner.poi_map,
                )
                assert outcome.answer_ids == exact_covered

    def test_all_replicas_dead_raises_typed_error(self):
        kills = {(s, r): 0 for s in range(2) for r in range(2)}
        cluster = ClusterConfig(
            shards=2, replicas=2, faults=ShardFaultPlan.killing(kills)
        )
        runner = ClusterRunner(make_lsp(), CONFIG, cluster)
        with pytest.raises(ShardLostError) as excinfo:
            runner.run_job(make_job(), GROUP)
        assert excinfo.value.shard_id in (0, 1)

    def test_failover_to_live_replica_preserves_answer(self):
        """Primary replicas dead everywhere -> secondaries serve, same ids."""
        job = make_job()
        healthy = ClusterRunner(
            make_lsp(), CONFIG, ClusterConfig(shards=2, replicas=2)
        )
        expected = healthy.run_job(job, GROUP).answer_ids
        ring = healthy.ring
        kills = {
            (shard, ring.route(job.tenant, job.group_id, shard)): 0
            for shard in range(2)
        }
        degraded = ClusterRunner(
            make_lsp(),
            CONFIG,
            ClusterConfig(
                shards=2, replicas=2, faults=ShardFaultPlan.killing(kills)
            ),
        )
        outcome = degraded.run_job(job, GROUP)
        assert not outcome.partial
        assert outcome.answer_ids == expected
        assert outcome.failovers == 2
        assert degraded.stats.failovers == 2

    def test_slow_replica_triggers_hedge(self):
        job = make_job()
        plan = ShardFaultPlan(
            replicas={
                (shard, replica): ReplicaFault(slow_start=5, slow_factor=10.0)
                for shard in range(2)
                for replica in range(2)
            }
        )
        # Every replica is slow, so hedges fire but cannot win.
        runner = ClusterRunner(
            make_lsp(),
            CONFIG,
            ClusterConfig(shards=2, replicas=2, faults=plan, hedge_factor=2.0),
        )
        outcome = runner.run_job(job, GROUP)
        assert runner.stats.hedges == 2
        assert outcome.answer_ids == single_lsp_answer(job)
        # Only the primary is slow: the hedge to the fast replica wins.
        slow_primary = ShardFaultPlan(
            replicas={
                (shard, runner.ring.route(job.tenant, job.group_id, shard)):
                ReplicaFault(slow_start=5, slow_factor=10.0)
                for shard in range(2)
            }
        )
        winner = ClusterRunner(
            make_lsp(),
            CONFIG,
            ClusterConfig(
                shards=2, replicas=2, faults=slow_primary, hedge_factor=2.0
            ),
        )
        won = winner.run_job(job, GROUP)
        assert winner.stats.hedge_wins == 2
        assert won.answer_ids == single_lsp_answer(job)


class TestScatterCheckpoint:
    def _run_resumed(self, runner, job, kill_plan_runner):
        """Serve one shard, checkpoint, restore into a fresh cell, finish."""
        state = runner.begin(job)
        runner.step(state, job, GROUP)
        blob = runner.checkpoint(state)
        resumed_state = kill_plan_runner.restore(blob)
        while not resumed_state.done:
            kill_plan_runner.step(resumed_state, job, GROUP)
        return kill_plan_runner.finish(resumed_state, job, GROUP)

    def test_restore_matches_uninterrupted_degraded_run(self):
        """Satellite 4: kill a shard mid-scatter; resume == uninterrupted."""
        job = make_job()
        plan = ShardFaultPlan.killing({(2, 0): 0}, seed=5)
        cluster = ClusterConfig(shards=3, replicas=1, quorum=0.3, faults=plan)

        uninterrupted = ClusterRunner(make_lsp(), CONFIG, cluster)
        expected = uninterrupted.run_job(job, GROUP)
        assert expected.partial and expected.lost_shards == (2,)

        first = ClusterRunner(make_lsp(), CONFIG, cluster)
        second = ClusterRunner(make_lsp(), CONFIG, cluster)
        resumed = self._run_resumed(first, job, second)
        assert resumed.answer_ids == expected.answer_ids
        assert resumed.coverage == expected.coverage
        assert resumed.lost_shards == expected.lost_shards
        assert resumed.comm_bytes == expected.comm_bytes

    def test_checkpoint_round_trip_preserves_fault_interpreter(self):
        job = make_job()
        plan = ShardFaultPlan.killing({(1, 0): 1}, seed=5)
        runner = ClusterRunner(
            make_lsp(), CONFIG, ClusterConfig(shards=3, replicas=1, faults=plan)
        )
        state = runner.begin(job)
        runner.step(state, job, GROUP)
        restored = restore_scatter(checkpoint_scatter(state))
        assert restored.job_id == state.job_id
        assert restored.pending == state.pending
        assert restored.answers == state.answers
        assert restored.lost == state.lost
        assert restored.elapsed_seconds == state.elapsed_seconds
        assert restored.fault_served == state.fault_served
        assert restored.fault_sequence == state.fault_sequence

    def test_malformed_checkpoints_rejected(self):
        from repro.errors import CryptoError

        job = make_job()
        runner = ClusterRunner(make_lsp(), CONFIG, ClusterConfig(shards=2))
        state = runner.begin(job)
        runner.step(state, job, GROUP)
        blob = runner.checkpoint(state)
        with pytest.raises(CryptoError):
            restore_scatter(b"XXXX" + blob[4:])
        with pytest.raises(CryptoError):
            restore_scatter(blob + b"\x00")
        with pytest.raises(CryptoError):
            restore_scatter(blob[:10])

    def test_inconsistent_checkpoint_rejected(self):
        job = make_job()
        runner = ClusterRunner(make_lsp(), CONFIG, ClusterConfig(shards=2))
        state = runner.begin(job)
        runner.step(state, job, GROUP)
        state.pending.append(state.answers[0].shard_id)  # answered AND open
        with pytest.raises(CheckpointError):
            restore_scatter(checkpoint_scatter(state))

    def test_step_after_done_raises(self):
        runner = ClusterRunner(make_lsp(), CONFIG, ClusterConfig(shards=2))
        job = make_job()
        outcome_state = runner.begin(job)
        while not outcome_state.done:
            runner.step(outcome_state, job, GROUP)
        with pytest.raises(ProtocolError):
            runner.step(outcome_state, job, GROUP)
        incomplete = runner.begin(job)
        with pytest.raises(ProtocolError):
            runner.finish(incomplete, job, GROUP)
