"""API quality gates: docstrings, exports, and import hygiene.

Cheap structural checks that keep the public surface documented and
coherent as the library grows — every public module, class, and function
must carry a docstring, and every ``__all__`` name must resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro",
    "repro.geometry",
    "repro.crypto",
    "repro.index",
    "repro.gnn",
    "repro.datasets",
    "repro.dummies",
    "repro.encoding",
    "repro.partition",
    "repro.stats",
    "repro.protocol",
    "repro.core",
    "repro.attacks",
    "repro.baselines",
    "repro.roadnet",
    "repro.analysis",
    "repro.metrics",
    "repro.bench",
]


def all_modules():
    names = set(PUBLIC_PACKAGES)
    for package_name in PUBLIC_PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


@pytest.mark.parametrize("module_name", all_modules())
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", all_modules())
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", all_modules())
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their definition site
        assert obj.__doc__ and obj.__doc__.strip(), (
            f"{module_name}.{name} lacks a docstring"
        )
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                documented = bool(method.__doc__ and method.__doc__.strip())
                if not documented:
                    # Overrides inherit their contract from a documented base.
                    for base in obj.__mro__[1:]:
                        base_method = getattr(base, method_name, None)
                        if base_method is not None and (
                            base_method.__doc__ or ""
                        ).strip():
                            documented = True
                            break
                assert documented, (
                    f"{module_name}.{name}.{method_name} lacks a docstring"
                )


def test_version_is_exposed():
    assert repro.__version__


def test_no_circular_import_at_top_level():
    # A fresh import of the root package must pull in the whole core API.
    for name in repro.__all__:
        assert getattr(repro, name) is not None
