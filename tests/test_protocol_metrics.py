"""Tests for the cost ledger and report."""

import time

from repro.crypto.homomorphic import OpCounter
from repro.protocol.messages import GenericMessage
from repro.protocol.metrics import COORDINATOR, LSP, USER, CostLedger


class TestLedgerAccounting:
    def test_record_accumulates_per_link(self):
        ledger = CostLedger()
        ledger.record(USER, LSP, GenericMessage("a", 100))
        ledger.record(USER, LSP, GenericMessage("b", 50))
        ledger.record(LSP, COORDINATOR, GenericMessage("c", 10))
        report = ledger.report()
        assert report.link_bytes(USER, LSP) == 150
        assert report.link_bytes(LSP, COORDINATOR) == 10
        assert report.link_bytes(COORDINATOR, LSP) == 0
        assert report.total_comm_bytes == 160
        assert report.messages_by_link[(USER, LSP)] == 2

    def test_broadcast_counts_every_receiver(self):
        ledger = CostLedger()
        ledger.record_broadcast(COORDINATOR, 7, GenericMessage("x", 20), USER)
        report = ledger.report()
        assert report.link_bytes(COORDINATOR, USER) == 140
        assert report.messages_by_link[(COORDINATOR, USER)] == 7

    def test_intra_group_bytes_exclude_lsp_links(self):
        ledger = CostLedger()
        ledger.record(USER, USER, GenericMessage("peer", 30))
        ledger.record(COORDINATOR, USER, GenericMessage("pos", 4))
        ledger.record(USER, LSP, GenericMessage("up", 99))
        assert ledger.report().intra_group_comm_bytes == 34

    def test_clock_attributes_time_to_role(self):
        ledger = CostLedger()
        with ledger.clock(LSP):
            time.sleep(0.01)
        with ledger.clock(USER):
            time.sleep(0.002)
        report = ledger.report()
        assert report.lsp_cost_seconds >= 0.009
        assert report.time_by_role[USER] >= 0.001

    def test_user_cost_sums_users_and_coordinator(self):
        ledger = CostLedger()
        with ledger.clock(USER):
            time.sleep(0.003)
        with ledger.clock(COORDINATOR):
            time.sleep(0.003)
        assert ledger.report().user_cost_seconds >= 0.005

    def test_clock_survives_exceptions(self):
        ledger = CostLedger()
        try:
            with ledger.clock(LSP):
                time.sleep(0.002)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert ledger.report().lsp_cost_seconds >= 0.001

    def test_counters_per_role(self):
        ledger = CostLedger()
        ledger.counter(LSP).scalar_muls += 5
        ledger.counter("auditor").additions += 1  # unknown roles allowed
        report = ledger.report()
        assert report.ops_by_role[LSP].scalar_muls == 5
        assert report.ops_by_role["auditor"].additions == 1
        assert isinstance(report.ops_by_role[USER], OpCounter)

    def test_report_is_a_snapshot(self):
        ledger = CostLedger()
        ledger.record(USER, LSP, GenericMessage("x", 1))
        report = ledger.report()
        ledger.record(USER, LSP, GenericMessage("y", 1))
        assert report.total_comm_bytes == 1
