"""Tests for the modular-arithmetic helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.modmath import crt_pair, egcd, factorial_inverse_table, invmod, lcm
from repro.errors import CryptoError

positive = st.integers(min_value=1, max_value=10**12)


class TestEgcd:
    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=0, max_value=10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    def test_zero_cases(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(7, 0)[0] == 7


class TestInvmod:
    @given(positive, positive)
    def test_inverse_property(self, a, n):
        if n < 2 or math.gcd(a, n) != 1:
            return
        inv = invmod(a, n)
        assert (a * inv) % n == 1
        assert 0 <= inv < n

    def test_noninvertible_raises(self):
        with pytest.raises(CryptoError):
            invmod(4, 8)

    def test_negative_argument(self):
        assert invmod(-3, 7) == invmod(4, 7)


class TestLcmCrt:
    @given(positive, positive)
    def test_lcm_divisibility(self, a, b):
        m = lcm(a, b)
        assert m % a == 0 and m % b == 0
        assert m * math.gcd(a, b) == a * b

    @given(st.integers(min_value=0, max_value=1000))
    def test_crt_pair_reconstruction(self, x):
        m1, m2 = 17, 256  # coprime
        value = x % (m1 * m2)
        assert crt_pair(value % m1, m1, value % m2, m2) == value

    def test_crt_rejects_non_coprime(self):
        with pytest.raises(CryptoError):
            crt_pair(1, 4, 3, 6)


class TestFactorialInverses:
    def test_inverse_table_values(self):
        modulus = 10**9 + 7  # prime, so all inverses exist
        table = factorial_inverse_table(6, modulus)
        fact = 1
        for k in range(1, 7):
            fact *= k
            assert (fact * table[k]) % modulus == 1
        assert table[0] == 1
