"""Property tests: phase attribution conserves time, critical path is bounded.

The strategies drive a *real* :class:`Tracer` with randomly nested spans
drawn from the protocol's actual name vocabulary, so every invariant is
checked against genuine tracer output rather than hand-built forests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    PHASES,
    Tracer,
    attribute_phases,
    attribute_phases_by_protocol,
    critical_path,
    self_ticks,
)

_NAMES = st.sampled_from(
    [
        "session.query",
        "round.ppgnn",
        "round.naive",
        "coordinator.encrypt_query",
        "coordinator.decrypt",
        "crypto.rerandomize",
        "uploads",
        "transport.send",
        "queue.wait",
        "lsp.answer",
        "misc.step",
    ]
)

# A span tree: (name, [child trees...]); a forest: up to four roots.
_TREES = st.recursive(
    st.tuples(_NAMES, st.just([])),
    lambda inner: st.tuples(_NAMES, st.lists(inner, max_size=3)),
    max_leaves=16,
)
_FORESTS = st.lists(_TREES, max_size=4)


def _trace(forest) -> list:
    tracer = Tracer()

    def build(tree) -> None:
        name, children = tree
        with tracer.span(name):
            for child in children:
                build(child)

    for tree in forest:
        build(tree)
    return tracer.spans()


@settings(max_examples=200, deadline=None)
@given(_FORESTS)
def test_phase_totals_sum_to_root_durations(forest):
    spans = _trace(forest)
    breakdown = attribute_phases(spans)
    roots_total = sum(s.ticks for s in spans if s.parent_id is None)
    assert breakdown.total == roots_total
    assert sum(breakdown.ticks[phase] for phase in PHASES) == roots_total
    for phase, names in breakdown.by_name.items():
        assert sum(names.values()) == breakdown.ticks[phase]


@settings(max_examples=200, deadline=None)
@given(_FORESTS)
def test_subtree_self_ticks_sum_to_span_duration(forest):
    spans = _trace(forest)
    own = self_ticks(spans)
    children: dict = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    def subtree(span) -> int:
        return own[span.span_id] + sum(
            subtree(child) for child in children.get(span.span_id, [])
        )

    for span in spans:
        assert subtree(span) == span.ticks


@settings(max_examples=200, deadline=None)
@given(_FORESTS)
def test_critical_path_bounded_and_connected(forest):
    spans = _trace(forest)
    path, duration = critical_path(spans)
    assert duration <= attribute_phases(spans).total
    own = self_ticks(spans)
    assert duration == sum(own[s.span_id] for s in path)
    if path:
        assert path[0].parent_id is None
        for parent, child in zip(path, path[1:]):
            assert child.parent_id == parent.span_id
        # A leaf: the path cannot stop early.
        last = path[-1].span_id
        assert all(s.parent_id != last for s in spans)


@settings(max_examples=100, deadline=None)
@given(_FORESTS)
def test_per_protocol_totals_bounded_by_round_durations(forest):
    spans = _trace(forest)
    per_protocol = attribute_phases_by_protocol(spans)
    rounds: dict = {}
    for span in spans:
        if span.name.startswith("round."):
            protocol = str(span.attrs.get("protocol", span.name[len("round."):]))
            rounds[protocol] = rounds.get(protocol, 0) + span.ticks
    assert set(per_protocol) == set(rounds)
    # Nested rounds of the same protocol may double-charge the inner
    # subtree (by design: each round claims its whole subtree), so the
    # per-protocol total is at least the self time and never negative.
    for protocol, breakdown in per_protocol.items():
        assert breakdown.total >= 0
