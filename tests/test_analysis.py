"""Byte-exact consistency between the cost model and the simulated ledger.

Runs every protocol variant and asserts that the predicted communication
equals the ledger's measured total *exactly* — the strongest executable
form of the paper's Table 2 analysis.
"""

import numpy as np
import pytest

from repro.analysis import (
    predict_naive_comm,
    predict_opt_comm,
    predict_ppgnn_comm,
    predict_single_comm,
)
from repro.core.group import random_group, run_ppgnn
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt
from repro.core.single import run_single_user
from repro.errors import ConfigurationError


@pytest.fixture()
def group(lsp):
    return random_group(5, lsp.space, np.random.default_rng(55))


class TestExactAgreement:
    def test_ppgnn_total_matches_ledger(self, lsp, fast_config, group):
        result = run_ppgnn(lsp, group, fast_config, seed=1)
        predicted = predict_ppgnn_comm(
            n=len(group),
            d=fast_config.d,
            delta=fast_config.delta,
            k=fast_config.k,
            keysize=fast_config.keysize,
            answer_len=len(result.answers),
        )
        assert predicted.total == result.report.total_comm_bytes

    def test_ppgnn_components_match_links(self, lsp, fast_config, group):
        from repro.protocol.metrics import COORDINATOR, LSP, USER

        result = run_ppgnn(lsp, group, fast_config, seed=2)
        predicted = predict_ppgnn_comm(
            n=len(group),
            d=fast_config.d,
            delta=fast_config.delta,
            k=fast_config.k,
            keysize=fast_config.keysize,
            answer_len=len(result.answers),
        )
        report = result.report
        assert predicted.uploads == report.link_bytes(USER, LSP)
        assert predicted.request == report.link_bytes(COORDINATOR, LSP)
        assert predicted.encrypted_answer == report.link_bytes(LSP, COORDINATOR)
        assert (
            predicted.position_broadcasts + predicted.answer_broadcast
            == report.link_bytes(COORDINATOR, USER)
        )

    def test_opt_total_matches_ledger(self, lsp, fast_config, group):
        result = run_ppgnn_opt(lsp, group, fast_config, seed=3)
        predicted = predict_opt_comm(
            n=len(group),
            d=fast_config.d,
            delta=fast_config.delta,
            k=fast_config.k,
            keysize=fast_config.keysize,
            answer_len=len(result.answers),
        )
        assert predicted.total == result.report.total_comm_bytes

    def test_opt_with_omega_override(self, lsp, fast_config, group):
        cfg = fast_config.without_sanitation()
        result = run_ppgnn_opt(lsp, group, cfg, seed=4, omega=3)
        predicted = predict_opt_comm(
            n=len(group),
            d=cfg.d,
            delta=cfg.delta,
            k=cfg.k,
            keysize=cfg.keysize,
            omega=3,
        )
        assert predicted.total == result.report.total_comm_bytes

    def test_naive_total_matches_ledger(self, lsp, fast_config, group):
        result = run_naive(lsp, group, fast_config, seed=5)
        predicted = predict_naive_comm(
            n=len(group),
            delta=fast_config.delta,
            k=fast_config.k,
            keysize=fast_config.keysize,
            answer_len=len(result.answers),
        )
        assert predicted.total == result.report.total_comm_bytes

    def test_single_total_matches_ledger(self, lsp, fast_config, group):
        result = run_single_user(lsp, group[0], fast_config, seed=6)
        predicted = predict_single_comm(
            d=fast_config.d, k=fast_config.k, keysize=fast_config.keysize
        )
        assert predicted.total == result.report.total_comm_bytes

    @pytest.mark.parametrize("keysize", [128, 256])
    @pytest.mark.parametrize("n,d,delta,k", [(2, 4, 8, 2), (6, 5, 20, 5)])
    def test_agreement_across_parameters(self, lsp, keysize, n, d, delta, k):
        from repro.core.config import PPGNNConfig

        cfg = PPGNNConfig(
            d=d, delta=delta, k=k, keysize=keysize, sanitize=False,
            sanitation_samples=500, key_seed=9,
        )
        group = random_group(n, lsp.space, np.random.default_rng(n * d))
        result = run_ppgnn(lsp, group, cfg, seed=7)
        predicted = predict_ppgnn_comm(n=n, d=d, delta=delta, k=k, keysize=keysize)
        assert predicted.total == result.report.total_comm_bytes


class TestModelProperties:
    def test_opt_beats_plain_at_default_scale(self):
        plain = predict_ppgnn_comm(n=8, d=25, delta=100, k=8, keysize=1024)
        opt = predict_opt_comm(n=8, d=25, delta=100, k=8, keysize=1024)
        assert opt.total < plain.total

    def test_naive_worst_at_default_scale(self):
        plain = predict_ppgnn_comm(n=8, d=25, delta=100, k=8, keysize=1024)
        naive = predict_naive_comm(n=8, delta=100, k=8, keysize=1024)
        assert naive.total > plain.total

    def test_answer_len_validation(self):
        with pytest.raises(ConfigurationError):
            predict_ppgnn_comm(n=2, d=4, delta=8, k=4, keysize=256, answer_len=5)

    def test_breakdown_total_is_sum(self):
        b = predict_ppgnn_comm(n=4, d=5, delta=20, k=4, keysize=256)
        assert b.total == (
            b.position_broadcasts
            + b.request
            + b.uploads
            + b.encrypted_answer
            + b.answer_broadcast
        )
