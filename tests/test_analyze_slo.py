"""SLO evaluation and queue-delay attribution over real serving runs."""

import numpy as np
import pytest

from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.datasets.synthetic import uniform_pois
from repro.errors import ConfigurationError
from repro.geometry.space import LocationSpace
from repro.obs import (
    SLOPolicy,
    analyze_serve_report,
    evaluate_slo,
    queue_delay_summary,
)
from repro.serve import ServeConfig, ServeEngine, WorkloadSpec, generate_workload

SAMPLES = 8


@pytest.fixture(scope="module")
def report():
    """One obs-enabled serving run shared by every SLO test."""
    space = LocationSpace.unit_square()
    pois = uniform_pois(200, space, np.random.default_rng(7))
    lsp = LSPServer(pois, space=space, sanitation_samples=SAMPLES)
    config = PPGNNConfig(d=4, delta=8, k=3, keysize=128, sanitation_samples=SAMPLES)
    spec = WorkloadSpec(
        queries=12,
        rate_qps=200.0,  # arrivals outpace service so the queue really forms
        protocol_mix={"ppgnn": 1.0, "naive": 1.0},
        group_size_mix={2: 1.0, 3: 1.0},
        k_mix={3: 1.0},
        tenants=("a", "b"),
        groups=4,
        repeat_fraction=0.25,
        seed=5,
    )
    engine = ServeEngine(
        lsp, config, ServeConfig(workers=2, policy="fifo", obs=True)
    )
    return engine.run(generate_workload(spec, space))


class TestPolicyValidation:
    def test_budgets_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SLOPolicy(latency_p95=0)
        with pytest.raises(ConfigurationError):
            SLOPolicy(queue_wait_budget=-1)
        with pytest.raises(ConfigurationError):
            SLOPolicy(error_budget=1.5)


class TestEvaluateSlo:
    def test_generous_budgets_hold(self, report):
        policy = SLOPolicy(
            latency_p50=1e6, latency_p95=1e6, latency_p99=1e6,
            error_budget=1.0, queue_wait_budget=1e6,
        )
        slo = evaluate_slo(report, policy)
        assert slo.ok
        assert {r.objective for r in slo.results} == {
            "latency_p50", "latency_p95", "latency_p99",
            "error_fraction", "mean_queue_wait",
        }
        for result in slo.results:
            assert result.burn_rate <= 1.0

    def test_impossible_latency_budget_violated_with_burn(self, report):
        data = report.to_dict()
        p95 = data["latency"]["p95"]
        assert p95 > 0
        policy = SLOPolicy(latency_p95=p95 / 4)
        slo = evaluate_slo(report, policy)
        violated = {r.objective: r for r in slo.results}["latency_p95"]
        assert not violated.ok and not slo.ok
        assert violated.burn_rate == pytest.approx(4.0)

    def test_error_fraction_counts_failures_and_rejections(self, report):
        data = report.to_dict()
        slo = evaluate_slo(report, SLOPolicy(error_budget=0.5))
        error = {r.objective: r for r in slo.results}["error_fraction"]
        expected = (data["failed"] + data["rejected"]) / data["queries"]
        assert error.actual == pytest.approx(expected)

    def test_accepts_dict_and_object_identically(self, report):
        policy = SLOPolicy(latency_p95=1.0)
        assert (
            evaluate_slo(report, policy).to_dict()
            == evaluate_slo(report.to_dict(), policy).to_dict()
        )


class TestQueueDelay:
    def test_latency_identity(self, report):
        """mean latency == mean queue wait + count-weighted mean service."""
        data = report.to_dict()
        summary = queue_delay_summary(report)
        per_protocol = data["per_protocol"]
        planned = sum(e["count"] for e in per_protocol.values())
        service = sum(
            e["count"] * e["mean_predicted_seconds"]
            for e in per_protocol.values()
        ) / planned
        assert summary.mean_service == pytest.approx(service)
        assert summary.mean_queue_wait + summary.mean_service == pytest.approx(
            summary.mean_latency
        )

    def test_fast_arrivals_actually_queue(self, report):
        summary = queue_delay_summary(report)
        assert summary.mean_queue_wait > 0
        assert 0 < summary.queue_fraction < 1
        assert summary.max_queue_depth >= 1

    def test_render_mentions_depth(self, report):
        rendered = queue_delay_summary(report).render()
        assert "queue delay:" in rendered and "depth max" in rendered


class TestAnalyzeServeReport:
    def test_renders_all_phases_and_sections(self, report):
        rendered = analyze_serve_report(
            report, SLOPolicy(latency_p95=1e6, error_budget=1.0)
        )
        for phase in ("crypto", "transport", "queue", "compute"):
            assert phase in rendered
        assert "critical path:" in rendered
        assert "queue delay:" in rendered
        assert "per-query ops" in rendered
        assert "slo evaluation:" in rendered

    def test_without_obs_payload_degrades_gracefully(self, report):
        data = report.to_dict()
        data.pop("obs", None)
        rendered = analyze_serve_report(data)
        assert "no spans embedded" in rendered
        assert "queue delay:" in rendered
