"""Integration test: the nonce pool inside the group protocol."""

import random

import numpy as np

from repro.core.common import group_keypair
from repro.core.group import random_group, run_ppgnn
from repro.crypto.noncepool import NoncePool


class TestPooledProtocol:
    def test_pooled_round_is_exact(self, lsp, fast_config):
        keypair = group_keypair(fast_config)
        pool = NoncePool(keypair.public_key)
        pool.refill(fast_config.delta + 5, rng=random.Random(1))  # offline
        group = random_group(3, lsp.space, np.random.default_rng(9))

        cfg = fast_config.without_sanitation()
        baseline = run_ppgnn(lsp, group, cfg, seed=4)
        pooled = run_ppgnn(lsp, group, cfg, seed=4, nonce_pool=pool)
        assert pooled.answer_ids == baseline.answer_ids
        assert pool.available() < fast_config.delta + 5  # factors consumed

    def test_pool_exhaustion_is_transparent(self, lsp, fast_config):
        keypair = group_keypair(fast_config)
        pool = NoncePool(keypair.public_key)
        pool.refill(2, rng=random.Random(2))  # far fewer than delta'
        group = random_group(3, lsp.space, np.random.default_rng(10))
        cfg = fast_config.without_sanitation()
        result = run_ppgnn(lsp, group, cfg, seed=5, nonce_pool=pool)
        assert len(result.answers) == cfg.k
        assert pool.available() == 0

    def test_comm_cost_unchanged_by_pool(self, lsp, fast_config):
        """The pool is a compute optimization; bytes must be identical."""
        keypair = group_keypair(fast_config)
        pool = NoncePool(keypair.public_key)
        pool.refill(fast_config.delta + 5, rng=random.Random(3))
        group = random_group(3, lsp.space, np.random.default_rng(11))
        cfg = fast_config.without_sanitation()
        plain = run_ppgnn(lsp, group, cfg, seed=6)
        pooled = run_ppgnn(lsp, group, cfg, seed=6, nonce_pool=pool)
        assert (
            plain.report.total_comm_bytes == pooled.report.total_comm_bytes
        )
