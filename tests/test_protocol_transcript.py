"""Tests for transcript recording and rendering."""

import numpy as np

from repro.core.group import random_group, run_ppgnn
from repro.protocol.messages import GenericMessage
from repro.protocol.metrics import COORDINATOR, LSP, USER, CostLedger
from repro.protocol.transcript import format_transcript


class TestTranscriptRecording:
    def test_entries_in_send_order(self):
        ledger = CostLedger()
        ledger.record(COORDINATOR, LSP, GenericMessage("req", 10))
        ledger.record(USER, LSP, GenericMessage("up", 20))
        ledger.record(LSP, COORDINATOR, GenericMessage("ans", 30))
        transcript = ledger.report().transcript
        assert [e.sender for e in transcript] == [COORDINATOR, USER, LSP]
        assert [e.byte_size for e in transcript] == [10, 20, 30]

    def test_broadcast_recorded_per_receiver(self):
        ledger = CostLedger()
        ledger.record_broadcast(COORDINATOR, 3, GenericMessage("pos", 4), USER)
        assert len(ledger.report().transcript) == 3

    def test_protocol_run_produces_expected_sequence(self, lsp, fast_config):
        group = random_group(3, lsp.space, np.random.default_rng(7))
        result = run_ppgnn(lsp, group, fast_config, seed=1)
        kinds = [e.kind for e in result.report.transcript]
        assert kinds[: len(group)] == ["PositionAssignment"] * len(group)
        assert "GroupQueryRequest" in kinds
        assert kinds.count("LocationSetUpload") == len(group)
        assert kinds[-1] == "PlaintextAnswerBroadcast"


class TestTranscriptFormatting:
    def test_collapses_repeats(self):
        ledger = CostLedger()
        for _ in range(5):
            ledger.record(USER, LSP, GenericMessage("up", 7))
        ledger.record(LSP, COORDINATOR, GenericMessage("ans", 9))
        text = format_transcript(ledger.report())
        assert "x5" in text
        assert "(35 B)" in text
        assert text.count("\n") == 2  # two collapsed lines + total

    def test_total_line(self):
        ledger = CostLedger()
        ledger.record(USER, LSP, GenericMessage("a", 1))
        assert "total" in format_transcript(ledger.report())

    def test_empty_transcript(self):
        assert "no messages" in format_transcript(CostLedger().report())
