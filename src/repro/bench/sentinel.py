"""The performance sentinel: baseline store, comparator, regression report.

The repo's performance memory.  A :class:`BaselineRecord` freezes one
experiment's metrics — stamped with the git SHA, key size, and workload
config that produced them, like :meth:`SeriesRecorder.record_json` — into
``benchmarks/baselines/<experiment>.json``.  A later run loads the record
and :func:`compare_metrics` classifies every metric as **improved**,
**regressed**, or **neutral** with noise-aware thresholds:

- **exact** metrics (operation counts, protocol rounds, bytes on the
  wire, modular-multiplication estimates) are deterministic functions of
  the seeded workload, so *any* change is real — zero tolerance;
- **timing** metrics (wall seconds, qps) are host-noise-prone, so only a
  relative change beyond ``rel_tolerance`` counts.

``repro perf-check`` and the CI perf-gate fail on exact regressions and
render the verdict as a markdown report; benchmarks opt in per run via
:class:`BenchSentinel` (``REPRO_BENCH_RECORD_BASELINE=1`` /
``REPRO_BENCH_CHECK_BASELINE=1``).  SANNS-style evaluations track their
headline claims this way — per-phase costs against remembered baselines —
instead of trusting a human to re-read text files every release.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.bench.recorder import git_sha
from repro.errors import ConfigurationError, PerfRegressionError, ReproError
from repro.obs.series import LedgerRecord, RunLedger, ledger_stamp

#: Version of the baseline file layout; bump on breaking changes.
BASELINE_SCHEMA_VERSION = 1

#: Name fragments that mark a metric as wall-clock-flavored (noisy).
_TIMING_TOKENS = ("seconds", "latency", "qps", "wall", "speedup")

#: Name fragments where larger is better.
_HIGHER_BETTER_TOKENS = (
    "throughput",
    "qps",
    "speedup",
    "hit_rate",
    "hits",
    "completed",
    "pooled",
)

#: Name fragments where any change at all is a behavior change (answer
#: counts: the workload fixes them, so drift in either direction is a
#: correctness smell, not an optimisation).
_FIXED_TOKENS = ("answers",)


@dataclass(frozen=True)
class MetricSpec:
    """How one metric is compared: exactness and preferred direction."""

    kind: str  # "exact" | "timing"
    direction: str  # "lower" | "higher" | "fixed"


def classify_metric(name: str) -> MetricSpec:
    """Comparison rules for a metric name (token-based, overridable never)."""
    lowered = name.lower()
    kind = (
        "timing"
        if any(token in lowered for token in _TIMING_TOKENS)
        else "exact"
    )
    if any(token in lowered for token in _FIXED_TOKENS):
        direction = "fixed"
    elif any(token in lowered for token in _HIGHER_BETTER_TOKENS):
        direction = "higher"
    else:
        direction = "lower"
    return MetricSpec(kind=kind, direction=direction)


@dataclass(frozen=True)
class MetricDelta:
    """One metric's verdict against the baseline."""

    name: str
    baseline: float | None
    current: float | None
    kind: str
    direction: str
    status: str  # improved | regressed | neutral | added | removed
    rel_change: float

    def to_dict(self) -> dict:
        """JSON form of this delta."""
        return {
            "name": self.name,
            "baseline": self.baseline,
            "current": self.current,
            "kind": self.kind,
            "direction": self.direction,
            "status": self.status,
            "rel_change": round(self.rel_change, 9),
        }


def compare_metrics(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    rel_tolerance: float = 0.25,
) -> list[MetricDelta]:
    """Classify every metric across the two runs, sorted by name.

    Exact metrics regress on any worse value (and improve on any better
    one); timing metrics only when the relative change exceeds
    ``rel_tolerance``.  Metrics present on one side only are reported as
    ``added`` / ``removed`` — visible, but never a failure by themselves.
    """
    if rel_tolerance < 0:
        raise ConfigurationError("rel_tolerance must be non-negative")
    deltas: list[MetricDelta] = []
    for name in sorted(set(baseline) | set(current)):
        spec = classify_metric(name)
        if name not in current:
            deltas.append(
                MetricDelta(name, baseline[name], None, spec.kind,
                            spec.direction, "removed", 0.0)
            )
            continue
        if name not in baseline:
            deltas.append(
                MetricDelta(name, None, current[name], spec.kind,
                            spec.direction, "added", 0.0)
            )
            continue
        base, cur = float(baseline[name]), float(current[name])
        diff = cur - base
        rel = abs(diff) / abs(base) if base != 0 else (0.0 if diff == 0 else 1.0)
        if diff == 0:
            status = "neutral"
        elif spec.direction == "fixed":
            status = "regressed"
        elif spec.kind == "timing" and rel <= rel_tolerance:
            status = "neutral"
        else:
            better = diff < 0 if spec.direction == "lower" else diff > 0
            status = "improved" if better else "regressed"
        deltas.append(
            MetricDelta(name, base, cur, spec.kind, spec.direction, status, rel)
        )
    return deltas


@dataclass(frozen=True)
class BaselineRecord:
    """One experiment's frozen metrics plus full provenance."""

    experiment: str
    metrics: dict[str, float]
    schema_version: int = BASELINE_SCHEMA_VERSION
    git_sha: str = "unknown"
    keysize: int | None = None
    config: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The on-disk baseline document (keys sorted for stable diffs)."""
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "git_sha": self.git_sha,
            "keysize": self.keysize,
            "config": {k: self.config[k] for k in sorted(self.config)},
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BaselineRecord":
        """Parse a baseline document, raising ReproError when malformed."""
        try:
            return cls(
                experiment=data["experiment"],
                metrics=dict(data["metrics"]),
                schema_version=data.get("schema_version", 0),
                git_sha=data.get("git_sha", "unknown"),
                keysize=data.get("keysize"),
                config=dict(data.get("config", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed baseline record: {exc}") from exc


class BaselineStore:
    """``benchmarks/baselines/`` as a tiny schema-checked database."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def path(self, experiment: str) -> Path:
        """Where the experiment's baseline file lives."""
        return self.directory / f"{experiment}.json"

    def exists(self, experiment: str) -> bool:
        """Whether a baseline has been recorded for the experiment."""
        return self.path(experiment).is_file()

    def experiments(self) -> list[str]:
        """Every experiment with a recorded baseline, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def save(self, record: BaselineRecord) -> Path:
        """Write (or refresh) one baseline; directory created on demand."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path(record.experiment)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def load(self, experiment: str) -> BaselineRecord:
        """Read one baseline, refusing schema mismatches and garbage."""
        path = self.path(experiment)
        if not path.is_file():
            raise ReproError(
                f"no baseline for {experiment!r} under {self.directory} "
                "(record one with --record first)"
            )
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ReproError(f"baseline {path} does not parse: {exc}") from exc
        record = BaselineRecord.from_dict(data)
        if record.schema_version != BASELINE_SCHEMA_VERSION:
            raise ReproError(
                f"baseline {path} has schema v{record.schema_version}, "
                f"this library writes v{BASELINE_SCHEMA_VERSION}; re-record it"
            )
        return record


@dataclass
class BaselineComparison:
    """The full verdict of one experiment against its baseline."""

    experiment: str
    deltas: list[MetricDelta]
    baseline_sha: str = "unknown"
    current_sha: str = "unknown"
    rel_tolerance: float = 0.25

    def _with_status(self, status: str, kind: str | None = None):
        return [
            d
            for d in self.deltas
            if d.status == status and (kind is None or d.kind == kind)
        ]

    @property
    def exact_regressions(self) -> list[MetricDelta]:
        """Regressed deterministic counters — these fail the gate."""
        return self._with_status("regressed", "exact")

    @property
    def timing_regressions(self) -> list[MetricDelta]:
        """Regressed wall-clock metrics — informational by default."""
        return self._with_status("regressed", "timing")

    @property
    def improved(self) -> list[MetricDelta]:
        """Metrics that moved the right way."""
        return self._with_status("improved")

    @property
    def ok(self) -> bool:
        """The gate verdict: no exact counter moved the wrong way."""
        return not self.exact_regressions

    def to_dict(self) -> dict:
        """JSON form of the full comparison."""
        return {
            "experiment": self.experiment,
            "ok": self.ok,
            "baseline_sha": self.baseline_sha,
            "current_sha": self.current_sha,
            "rel_tolerance": self.rel_tolerance,
            "deltas": [d.to_dict() for d in self.deltas],
        }


def compare_to_baseline(
    baseline: BaselineRecord,
    metrics: Mapping[str, float],
    rel_tolerance: float = 0.25,
    current_sha: str | None = None,
) -> BaselineComparison:
    """Compare a fresh run's metrics against a stored record."""
    return BaselineComparison(
        experiment=baseline.experiment,
        deltas=compare_metrics(baseline.metrics, metrics, rel_tolerance),
        baseline_sha=baseline.git_sha,
        current_sha=current_sha if current_sha is not None else git_sha(),
        rel_tolerance=rel_tolerance,
    )


def _fmt(value: float | None) -> str:
    if value is None:
        return "—"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


_STATUS_BADGE = {
    "regressed": "❌",
    "improved": "✅",
    "neutral": "·",
    "added": "＋",
    "removed": "－",
}


def render_markdown(
    comparisons: list[BaselineComparison],
    ledger_records: list[LedgerRecord] | None = None,
) -> str:
    """The regression report CI uploads as a job artifact.

    When ``ledger_records`` are given, one machine-readable ledger stamp
    per record is embedded at the end of the document (invisible HTML
    comments), so ``repro trend --append report.md`` recovers the suite
    name and config digest from *inside* the report — a saved report can
    never be mis-filed into the wrong suite or lineage.
    """
    lines = ["# Performance sentinel report", ""]
    overall = all(c.ok for c in comparisons)
    lines.append(
        f"**Verdict: {'PASS' if overall else 'FAIL'}** — "
        f"{len(comparisons)} experiment(s); exact counters gate, timing "
        "metrics are informational beyond their relative tolerance."
    )
    for comparison in comparisons:
        lines.append("")
        lines.append(
            f"## `{comparison.experiment}` — "
            f"{'ok' if comparison.ok else 'REGRESSED'}"
        )
        lines.append(
            f"baseline `{comparison.baseline_sha[:12]}` → current "
            f"`{comparison.current_sha[:12]}`; timing tolerance "
            f"±{comparison.rel_tolerance:.0%}"
        )
        lines.append("")
        lines.append("| metric | kind | baseline | current | Δ | status |")
        lines.append("|---|---|---:|---:|---:|---|")
        for delta in comparison.deltas:
            change = (
                f"{delta.current - delta.baseline:+.6g}"
                if delta.baseline is not None and delta.current is not None
                else "—"
            )
            badge = _STATUS_BADGE.get(delta.status, delta.status)
            lines.append(
                f"| `{delta.name}` | {delta.kind} | {_fmt(delta.baseline)} "
                f"| {_fmt(delta.current)} | {change} | {badge} "
                f"{delta.status} |"
            )
    lines.append("")
    if ledger_records:
        for record in ledger_records:
            lines.append(ledger_stamp(record))
        lines.append("")
    return "\n".join(lines)


def serving_report_metrics(report_dict: Mapping) -> dict[str, float]:
    """Sentinel metrics extracted from a ``ServingReport.to_dict()``.

    Everything here except the explicitly timing-named entries is a
    deterministic function of the workload seed and serving config, so
    the comparator treats it as exact.  (Latency and makespan come from
    the *simulated* clock — also deterministic — but they are named as
    timings so a cost-model recalibration shifts them without tripping
    the zero-tolerance gate.)
    """
    cache = report_dict.get("cache", {})
    pool = report_dict.get("pool", {})
    transport = report_dict.get("transport", {})
    latency = report_dict.get("latency", {})
    metrics = {
        "serve.completed": report_dict.get("completed", 0),
        "serve.failed": report_dict.get("failed", 0),
        "serve.rejected": report_dict.get("rejected", 0),
        "comm.bytes_total": report_dict.get("comm_bytes_total", 0),
        "cache.hits": cache.get("hits", 0),
        "cache.misses": cache.get("misses", 0),
        "pool.pooled": pool.get("pooled", 0),
        "transport.retransmissions": transport.get("retransmissions", 0),
        "transport.corrupt_rejected": transport.get("corrupt_rejected", 0),
        "latency.p95_seconds": latency.get("p95", 0.0),
        "makespan_seconds": report_dict.get("makespan_seconds", 0.0),
    }
    counters = (report_dict.get("obs") or {}).get("metrics", {}).get("counters", {})
    for name in (
        "crypto.encryptions",
        "crypto.decryptions.crt",
        "crypto.decryptions.generic",
        "crypto.scalar_muls",
        "crypto.additions",
        "lsp.kgnn_queries",
    ):
        if name in counters:
            metrics[f"ops.{name}"] = counters[name]
    return metrics


class BenchSentinel:
    """Per-run record/check switch for the ``benchmarks/`` suite.

    Disabled by default so ordinary bench runs stay gate-free; arm it via
    the environment:

    - ``REPRO_BENCH_RECORD_BASELINE=1`` — refresh baselines from this run;
    - ``REPRO_BENCH_CHECK_BASELINE=1``  — compare and *raise*
      :class:`~repro.errors.PerfRegressionError` on exact regressions;
    - ``REPRO_BENCH_BASELINE_DIR``      — store location override;
    - ``REPRO_BENCH_TOLERANCE``         — timing relative tolerance;
    - ``REPRO_BENCH_SERIES_DIR``        — run-ledger location override.

    Every armed :meth:`gate` call also appends the run into the
    cross-commit ledger (``benchmarks/series/``) — on regressions too,
    *before* raising, so the history records the offending run.
    """

    def __init__(
        self,
        store: BaselineStore,
        record: bool = False,
        check: bool = False,
        rel_tolerance: float = 0.25,
        series_dir: str | Path | None = None,
    ) -> None:
        if record and check:
            raise ConfigurationError(
                "choose one of record/check baselines, not both"
            )
        self.store = store
        self.record = record
        self.check = check
        self.rel_tolerance = rel_tolerance
        self.comparisons: list[BaselineComparison] = []
        if series_dir is None:
            series_dir = Path(store.directory).parent / "series"
        self.ledger = RunLedger(series_dir)

    @classmethod
    def from_env(cls, default_dir: str | Path) -> "BenchSentinel":
        """Build from REPRO_BENCH_* variables (disarmed when unset)."""
        directory = os.environ.get("REPRO_BENCH_BASELINE_DIR", str(default_dir))
        return cls(
            store=BaselineStore(directory),
            record=os.environ.get("REPRO_BENCH_RECORD_BASELINE", "") == "1",
            check=os.environ.get("REPRO_BENCH_CHECK_BASELINE", "") == "1",
            rel_tolerance=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
            series_dir=os.environ.get("REPRO_BENCH_SERIES_DIR") or None,
        )

    @property
    def armed(self) -> bool:
        """Whether this run records or checks baselines at all."""
        return self.record or self.check

    def gate(
        self,
        experiment: str,
        metrics: Mapping[str, float],
        keysize: int | None = None,
        config: Mapping | None = None,
    ) -> BaselineComparison | None:
        """Record or check one experiment's metrics, per the run mode.

        Returns the comparison in check mode (raising on exact
        regressions), the *self*-comparison in record mode, and None when
        the sentinel is disarmed.
        """
        if not self.armed:
            return None
        sha = git_sha(self.store.directory)
        self.ledger.append(
            LedgerRecord(
                suite=experiment,
                git_sha=sha,
                metrics=dict(metrics),
                keysize=keysize,
                config=dict(config) if config is not None else {},
                source="sentinel",
            )
        )
        if self.record:
            record = BaselineRecord(
                experiment=experiment,
                metrics=dict(metrics),
                git_sha=sha,
                keysize=keysize,
                config=dict(config) if config is not None else {},
            )
            self.store.save(record)
            comparison = compare_to_baseline(
                record, metrics, self.rel_tolerance
            )
        else:
            baseline = self.store.load(experiment)
            comparison = compare_to_baseline(
                baseline, metrics, self.rel_tolerance
            )
            if not comparison.ok:
                self.comparisons.append(comparison)
                raise PerfRegressionError(
                    experiment, comparison.exact_regressions
                )
        self.comparisons.append(comparison)
        return comparison
