"""Persistence for benchmark series: print to stdout and append to files.

``pytest`` captures stdout, so the figure benches also write every series
table into ``benchmarks/results/<experiment>.txt``; EXPERIMENTS.md quotes
those files.  Each run overwrites its experiment's file (the recorder
truncates on first write per experiment per session).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.bench.harness import print_series_table


class SeriesRecorder:
    """Writes experiment series to ``<directory>/<experiment>.txt``."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._opened: set[str] = set()

    def _path(self, experiment: str) -> Path:
        return self.directory / f"{experiment}.txt"

    def record(
        self,
        experiment: str,
        title: str,
        x_label: str,
        xs: Sequence,
        series: dict[str, list[str]],
        notes: str | None = None,
    ) -> None:
        """Print one series table and append it to the experiment's file."""
        print_series_table(title, x_label, xs, series)
        mode = "a" if experiment in self._opened else "w"
        self._opened.add(experiment)
        with open(self._path(experiment), mode) as handle:
            handle.write(f"=== {title} ===\n")
            handle.write(f"{x_label}: {list(xs)}\n")
            for label, values in series.items():
                handle.write(f"{label}: {values}\n")
            if notes:
                handle.write(f"note: {notes}\n")
            handle.write("\n")

    def note(self, experiment: str, text: str) -> None:
        """Append a free-form note line."""
        mode = "a" if experiment in self._opened else "w"
        self._opened.add(experiment)
        with open(self._path(experiment), mode) as handle:
            handle.write(text.rstrip() + "\n")
        print(text)
