"""Persistence for benchmark series: print to stdout and append to files.

``pytest`` captures stdout, so the figure benches also write every series
table into ``benchmarks/results/<experiment>.txt``; EXPERIMENTS.md quotes
those files.  Each run overwrites its experiment's file (the recorder
truncates on first write per experiment per session).

Structured results go to ``BENCH_<experiment>.json`` via
:meth:`SeriesRecorder.record_json`.  Every JSON document is stamped with
its provenance — the git commit it ran at, the Paillier key size, and the
full configuration dict — so a result file found months later is
self-describing instead of guess-what-produced-this.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Mapping, Sequence

from repro.bench.harness import print_series_table
from repro.errors import ReproError

#: Version of the ``BENCH_*.json`` document layout.  v1 documents carried
#: no version stamp; v2 added ``schema_version`` and the optional
#: ``metrics`` observability snapshot.
RECORD_SCHEMA_VERSION = 2


def git_sha(cwd: str | Path | None = None) -> str:
    """The current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


class SeriesRecorder:
    """Writes experiment series to ``<directory>/<experiment>.txt``.

    ``series_dir`` locates the cross-commit run ledger
    (:class:`repro.obs.series.RunLedger`); it defaults to the sibling
    ``series/`` of the results directory, matching the committed layout
    (``benchmarks/results/`` next to ``benchmarks/series/``).
    """

    def __init__(
        self, directory: str | Path, series_dir: str | Path | None = None
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if series_dir is None:
            series_dir = self.directory.parent / "series"
        self.series_dir = Path(series_dir)
        self._opened: set[str] = set()

    def _path(self, experiment: str) -> Path:
        return self.directory / f"{experiment}.txt"

    def record(
        self,
        experiment: str,
        title: str,
        x_label: str,
        xs: Sequence,
        series: dict[str, list[str]],
        notes: str | None = None,
    ) -> None:
        """Print one series table and append it to the experiment's file."""
        print_series_table(title, x_label, xs, series)
        mode = "a" if experiment in self._opened else "w"
        self._opened.add(experiment)
        with open(self._path(experiment), mode) as handle:
            handle.write(f"=== {title} ===\n")
            handle.write(f"{x_label}: {list(xs)}\n")
            for label, values in series.items():
                handle.write(f"{label}: {values}\n")
            if notes:
                handle.write(f"note: {notes}\n")
            handle.write("\n")

    def record_json(
        self,
        experiment: str,
        results: Mapping | Sequence,
        keysize: int | None = None,
        config: Mapping | None = None,
        metrics: Mapping | None = None,
        force: bool = False,
    ) -> Path:
        """Write ``BENCH_<experiment>.json`` with a full provenance stamp.

        ``results`` is the experiment's payload (must be JSON-encodable);
        ``keysize`` and ``config`` record the parameters that produced it,
        and ``metrics`` (an observability snapshot dict, e.g.
        ``MetricsSnapshot.to_dict()``) rides along when the run was
        traced.  The file is overwritten wholesale — a BENCH json always
        describes exactly one run — **except** across schema versions: a
        record written by a different library generation is refused
        (``force=True`` overrides) so a stale document is never silently
        replaced by one with an incompatible shape, or vice versa.
        """
        path = self.directory / f"BENCH_{experiment}.json"
        if path.exists() and not force:
            try:
                with open(path, encoding="utf-8") as handle:
                    existing = json.load(handle).get("schema_version", 1)
            except (json.JSONDecodeError, OSError, AttributeError):
                existing = None
            if existing is not None and existing != RECORD_SCHEMA_VERSION:
                raise ReproError(
                    f"{path} holds a schema v{existing} record; this library "
                    f"writes v{RECORD_SCHEMA_VERSION}.  Refusing to silently "
                    "overwrite — delete the file or pass force=True.  (The "
                    "old run is not lost either way: every record_json also "
                    "appends to the append-only ledger under "
                    f"{self.series_dir} — see `repro trend`.)"
                )
        document = {
            "schema_version": RECORD_SCHEMA_VERSION,
            "experiment": experiment,
            "git_sha": git_sha(self.directory),
            "keysize": keysize,
            "config": dict(config) if config is not None else {},
            "results": results,
        }
        if metrics is not None:
            document["metrics"] = dict(metrics)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        # The BENCH json is a one-run snapshot; the same run also lands in
        # the append-only cross-commit ledger so `repro trend` keeps the
        # history the overwrite above discards.
        from repro.obs.series import RunLedger, record_from_bench_document

        RunLedger(self.series_dir).append(record_from_bench_document(document))
        return path

    def note(self, experiment: str, text: str) -> None:
        """Append a free-form note line."""
        mode = "a" if experiment in self._opened else "w"
        self._opened.add(experiment)
        with open(self._path(experiment), mode) as handle:
            handle.write(text.rstrip() + "\n")
        print(text)
