"""Benchmark harness utilities.

The actual experiments live in ``benchmarks/`` (one module per paper table
or figure); this package holds the shared machinery: environment-tunable
settings, cost measurement over repeated protocol runs, and plain-text
table rendering that prints the same series the paper plots.
"""

from repro.bench.harness import (
    BenchSettings,
    MeasuredCosts,
    average_runs,
    format_bytes,
    format_seconds,
    measure_protocol,
    print_series_table,
)
from repro.bench.sentinel import (
    BASELINE_SCHEMA_VERSION,
    BaselineComparison,
    BaselineRecord,
    BaselineStore,
    BenchSentinel,
    MetricDelta,
    MetricSpec,
    classify_metric,
    compare_metrics,
    compare_to_baseline,
    render_markdown,
    serving_report_metrics,
)

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "BaselineComparison",
    "BaselineRecord",
    "BaselineStore",
    "BenchSentinel",
    "BenchSettings",
    "MeasuredCosts",
    "MetricDelta",
    "MetricSpec",
    "average_runs",
    "classify_metric",
    "compare_metrics",
    "compare_to_baseline",
    "format_bytes",
    "format_seconds",
    "measure_protocol",
    "print_series_table",
    "render_markdown",
    "serving_report_metrics",
]
