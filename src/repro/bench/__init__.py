"""Benchmark harness utilities.

The actual experiments live in ``benchmarks/`` (one module per paper table
or figure); this package holds the shared machinery: environment-tunable
settings, cost measurement over repeated protocol runs, and plain-text
table rendering that prints the same series the paper plots.
"""

from repro.bench.harness import (
    BenchSettings,
    MeasuredCosts,
    average_runs,
    format_bytes,
    format_seconds,
    measure_protocol,
    print_series_table,
)

__all__ = [
    "BenchSettings",
    "MeasuredCosts",
    "measure_protocol",
    "average_runs",
    "print_series_table",
    "format_bytes",
    "format_seconds",
]
