"""Measurement and reporting helpers for the paper-reproduction benchmarks.

The paper reports, for each parameter sweep, the average over repeated
queries of three quantities: total communication cost, total user
computation, and LSP computation (Section 8.1).  :func:`measure_protocol`
runs any protocol callable over fresh random groups and averages those
three series; :func:`print_series_table` renders them in the layout
EXPERIMENTS.md records.

Scale knobs come from the environment so the full suite can run both as a
quick smoke pass and as a paper-faithful (slow) pass:

- ``REPRO_BENCH_POIS``     database size        (default 20000)
- ``REPRO_BENCH_KEYSIZE``  Paillier modulus bits (default 256)
- ``REPRO_BENCH_REPEATS``  queries per point     (default 3)
- ``REPRO_BENCH_SAMPLES``  sanitation N_H cap    (default 0 = exact Eqn 17)

The paper's setup is 62 556 POIs, 1024-bit keys, 500 queries per point;
absolute times scale accordingly but every reported *shape* (orderings,
crossovers, growth rates) is keysize- and size-stable because all competing
protocols share the same primitives.
"""

from __future__ import annotations

import os
import statistics
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.protocol.metrics import CostReport


@dataclass(frozen=True)
class BenchSettings:
    """Scale parameters for a benchmark session."""

    pois: int = 20_000
    keysize: int = 256
    repeats: int = 3
    sanitation_samples: int | None = None
    seed: int = 20180326

    @classmethod
    def from_env(cls) -> "BenchSettings":
        """Read the REPRO_BENCH_* environment overrides."""
        samples = int(os.environ.get("REPRO_BENCH_SAMPLES", "0"))
        return cls(
            pois=int(os.environ.get("REPRO_BENCH_POIS", "20000")),
            keysize=int(os.environ.get("REPRO_BENCH_KEYSIZE", "256")),
            repeats=int(os.environ.get("REPRO_BENCH_REPEATS", "3")),
            sanitation_samples=samples if samples > 0 else None,
            seed=int(os.environ.get("REPRO_BENCH_SEED", "20180326")),
        )


@dataclass
class MeasuredCosts:
    """Averaged costs of one protocol at one sweep point."""

    comm_bytes: float
    user_seconds: float
    lsp_seconds: float
    answer_lengths: list[int] = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    @property
    def mean_answer_length(self) -> float:
        """Average POIs returned per answer (the Figure 7 metric)."""
        if not self.answer_lengths:
            warnings.warn(
                "mean_answer_length of a point with no recorded answers; "
                "reporting 0.0",
                RuntimeWarning,
                stacklevel=2,
            )
            return 0.0
        return statistics.mean(self.answer_lengths)


def average_runs(
    reports: Sequence[CostReport], answer_lengths: Sequence[int]
) -> MeasuredCosts:
    """Collapse repeated runs into their means.

    An empty ``reports`` sequence (every run of a sweep point failed or
    was skipped) yields an all-zero point with a ``RuntimeWarning``
    instead of a ``StatisticsError`` killing the whole sweep.
    """
    if not reports:
        warnings.warn(
            "average_runs over zero runs; reporting an all-zero point",
            RuntimeWarning,
            stacklevel=2,
        )
        return MeasuredCosts(
            comm_bytes=0.0,
            user_seconds=0.0,
            lsp_seconds=0.0,
            answer_lengths=list(answer_lengths),
        )
    return MeasuredCosts(
        comm_bytes=statistics.mean(r.total_comm_bytes for r in reports),
        user_seconds=statistics.mean(r.user_cost_seconds for r in reports),
        lsp_seconds=statistics.mean(r.lsp_cost_seconds for r in reports),
        answer_lengths=list(answer_lengths),
    )


def measure_protocol(
    run: Callable[[int], object],
    repeats: int,
    base_seed: int = 0,
) -> MeasuredCosts:
    """Run ``run(seed)`` ``repeats`` times and average its cost report.

    ``run`` must return an object with ``report`` (a
    :class:`~repro.protocol.metrics.CostReport`) and ``answers`` — both
    :class:`~repro.core.result.ProtocolResult` and
    :class:`~repro.baselines.result.BaselineResult` qualify.
    """
    reports = []
    lengths = []
    extras: dict = {}
    for i in range(repeats):
        result = run(base_seed + i)
        reports.append(result.report)  # type: ignore[attr-defined]
        lengths.append(len(result.answers))  # type: ignore[attr-defined]
        for key, value in getattr(result, "extras", {}).items():
            extras.setdefault(key, []).append(value)
    measured = average_runs(reports, lengths)
    measured.extras = extras
    return measured


def format_bytes(value: float) -> str:
    """Human-readable byte count."""
    if value >= 1 << 20:
        return f"{value / (1 << 20):.2f} MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.2f} KiB"
    return f"{value:.0f} B"


def format_seconds(value: float) -> str:
    """Human-readable duration."""
    if value >= 1.0:
        return f"{value:.2f} s"
    return f"{value * 1000:.2f} ms"


def print_series_table(
    title: str,
    x_label: str,
    xs: Sequence,
    series: dict[str, Iterable[str]],
) -> None:
    """Print one figure's data as an aligned text table.

    ``series`` maps a row label (protocol name) to its formatted values,
    one per x.  The output mirrors the figure's series so EXPERIMENTS.md
    can quote it directly.
    """
    rows = {label: list(values) for label, values in series.items()}
    width = max(
        [len(x_label)] + [len(label) for label in rows]
    )
    col_widths = [
        max([len(str(x))] + [len(row[i]) for row in rows.values()])
        for i, x in enumerate(xs)
    ]
    print()
    print(f"=== {title} ===")
    header = x_label.ljust(width) + " | " + " | ".join(
        str(x).rjust(w) for x, w in zip(xs, col_widths, strict=True)
    )
    print(header)
    print("-" * len(header))
    for label, values in rows.items():
        print(
            label.ljust(width)
            + " | "
            + " | ".join(v.rjust(w) for v, w in zip(values, col_widths, strict=True))
        )
