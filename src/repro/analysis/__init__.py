"""Closed-form cost analysis.

Table 2 of the paper gives asymptotic costs; this package sharpens them to
*exact* byte-level predictions derived from the message definitions, so a
deployment can size its parameters before sending a single ciphertext —
and so tests can assert that the simulated ledger matches the theory to
the byte.
"""

from repro.analysis.costmodel import (
    CommBreakdown,
    predict_naive_comm,
    predict_opt_comm,
    predict_ppgnn_comm,
    predict_single_comm,
)

__all__ = [
    "CommBreakdown",
    "predict_ppgnn_comm",
    "predict_opt_comm",
    "predict_naive_comm",
    "predict_single_comm",
]
