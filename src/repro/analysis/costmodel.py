"""Exact communication-cost predictions for every protocol variant.

Each function mirrors one runner's message sequence and sums the same
byte-size formulas the messages themselves use, making the ledger's totals
*predictable* rather than merely measurable:

- PPGNN (Section 4.2): position broadcasts + group request + n location-set
  uploads + the m-ciphertext answer + the plaintext answer broadcast,
- PPGNN-OPT (Section 6): the two small indicators replace the long one and
  the answer returns under eps_2,
- Naive (Section 4): delta-length uploads and a delta-length indicator,
- single user (Section 3): one request carrying the location set.

The consistency test (`tests/test_analysis.py`) runs every protocol and
asserts byte-exact agreement with the simulated ledger — the strongest
form of the Table 2 analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.opt import optimal_omega
from repro.encoding.answers import AnswerCodec
from repro.errors import ConfigurationError
from repro.geometry.space import LocationSpace
from repro.partition.solver import solve_partition

_INT = 4
_LOCATION = 16
_FLOAT = 8
_POI = 8


def _cipher_bytes(keysize: int, s: int) -> int:
    return ((s + 1) * keysize + 7) // 8


def _answer_integers(keysize: int, k: int) -> int:
    """m, the integers per encoded answer (field widths are space-free)."""
    return AnswerCodec(keysize, k, LocationSpace.unit_square()).m


@dataclass(frozen=True, slots=True)
class CommBreakdown:
    """Per-component communication bytes of one protocol round."""

    position_broadcasts: int
    request: int
    uploads: int
    encrypted_answer: int
    answer_broadcast: int

    @property
    def total(self) -> int:
        return (
            self.position_broadcasts
            + self.request
            + self.uploads
            + self.encrypted_answer
            + self.answer_broadcast
        )


def predict_ppgnn_comm(
    n: int,
    d: int,
    delta: int,
    k: int,
    keysize: int,
    answer_len: int | None = None,
) -> CommBreakdown:
    """Exact bytes of one PPGNN round.

    ``answer_len`` is the post-sanitation POI count t (defaults to k, the
    PPGNN-NAS case); it only affects the final plaintext broadcast.
    """
    params = solve_partition(n, d, delta)
    t = k if answer_len is None else answer_len
    if t > k:
        raise ConfigurationError("answer length cannot exceed k")
    l1 = _cipher_bytes(keysize, 1)
    m = _answer_integers(keysize, k)
    request = (
        _INT
        + keysize // 8
        + _INT * (params.alpha + params.beta)
        + params.delta_prime * l1
        + _FLOAT
    )
    return CommBreakdown(
        position_broadcasts=n * _INT,
        request=request,
        uploads=n * (_INT + _LOCATION * d),
        encrypted_answer=m * l1,
        answer_broadcast=(n - 1) * (_INT + _POI * t),
    )


def predict_opt_comm(
    n: int,
    d: int,
    delta: int,
    k: int,
    keysize: int,
    answer_len: int | None = None,
    omega: int | None = None,
) -> CommBreakdown:
    """Exact bytes of one PPGNN-OPT round (two-phase selection)."""
    params = solve_partition(n, d, delta)
    t = k if answer_len is None else answer_len
    if t > k:
        raise ConfigurationError("answer length cannot exceed k")
    block_count = omega if omega is not None else optimal_omega(params.delta_prime)
    block_width = math.ceil(params.delta_prime / block_count)
    l1 = _cipher_bytes(keysize, 1)
    l2 = _cipher_bytes(keysize, 2)
    m = _answer_integers(keysize, k)
    request = (
        _INT
        + keysize // 8
        + _INT * (params.alpha + params.beta)
        + block_width * l1
        + block_count * l2
        + _FLOAT
    )
    return CommBreakdown(
        position_broadcasts=n * _INT,
        request=request,
        uploads=n * (_INT + _LOCATION * d),
        encrypted_answer=m * l2,
        answer_broadcast=(n - 1) * (_INT + _POI * t),
    )


def predict_naive_comm(
    n: int,
    delta: int,
    k: int,
    keysize: int,
    answer_len: int | None = None,
) -> CommBreakdown:
    """Exact bytes of one Naive round (delta-length sets, aligned slots)."""
    t = k if answer_len is None else answer_len
    if t > k:
        raise ConfigurationError("answer length cannot exceed k")
    l1 = _cipher_bytes(keysize, 1)
    m = _answer_integers(keysize, k)
    request = (
        _INT
        + keysize // 8
        + _INT * (1 + delta)  # alpha = 1 subgroup, delta singleton segments
        + delta * l1
        + _FLOAT
    )
    return CommBreakdown(
        position_broadcasts=n * _INT,
        request=request,
        uploads=n * (_INT + _LOCATION * delta),
        encrypted_answer=m * l1,
        answer_broadcast=(n - 1) * (_INT + _POI * t),
    )


def predict_single_comm(d: int, k: int, keysize: int) -> CommBreakdown:
    """Exact bytes of one single-user round (Section 3.2)."""
    l1 = _cipher_bytes(keysize, 1)
    m = _answer_integers(keysize, k)
    request = _INT + keysize // 8 + _LOCATION * d + d * l1
    return CommBreakdown(
        position_broadcasts=0,
        request=request,
        uploads=0,
        encrypted_answer=m * l1,
        answer_broadcast=0,
    )
