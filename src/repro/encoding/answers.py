"""Serialization of ranked POI answers into Paillier plaintext integers.

Layout (least-significant first):

- a ``count_bits`` header carrying the number of real POIs (the answer
  sanitation may return t < k POIs, and padding must stay distinguishable),
- ``k`` fixed-width POI slots of ``id_bits + 2 * coord_bits`` each;
  unused slots are zero.

The resulting bit stream is split into ``m`` integers of ``keysize - 1``
bits, each strictly below the modulus N, matching the paper's "every
element is less than N" requirement and its measurement that 15 POIs fit
in one 1024-bit integer (the default 64 bits per POI gives exactly that,
and reproduces the staged cost growth of Figure 5d).

Coordinates are quantized onto a ``2 ** coord_bits`` grid over the location
space; with the default 20 bits the error is below 1e-6 of the space side,
and decoding also returns the exact POI id, so round trips are lossless at
the POI-identity level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.datasets.poi import POI
from repro.encoding.packing import join_bitstream, split_bitstream
from repro.errors import ConfigurationError, EncodingError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace


@dataclass(frozen=True, slots=True)
class DecodedAnswer:
    """One decoded POI: its id and its (dequantized) location."""

    poi_id: int
    location: Point


class AnswerCodec:
    """Fixed-shape encoder/decoder for top-k POI answers.

    Parameters
    ----------
    keysize:
        Paillier modulus size in bits; every emitted integer has at most
        ``keysize - 1`` bits and is therefore below N.
    k:
        Maximum number of POIs an answer may carry (the query's k).
    space:
        Location space used for coordinate quantization.
    id_bits / coord_bits / count_bits:
        Field widths.  Defaults give 64 bits per POI — the paper's 8 bytes.
    """

    def __init__(
        self,
        keysize: int,
        k: int,
        space: LocationSpace,
        id_bits: int = 24,
        coord_bits: int = 20,
        count_bits: int = 16,
    ) -> None:
        if k < 1:
            raise ConfigurationError("k must be positive")
        if min(id_bits, coord_bits, count_bits) < 1:
            raise ConfigurationError("field widths must be positive")
        if k >= (1 << count_bits):
            raise ConfigurationError("count field too narrow for k")
        self.keysize = keysize
        self.k = k
        self.space = space
        self.id_bits = id_bits
        self.coord_bits = coord_bits
        self.count_bits = count_bits
        self.chunk_bits = keysize - 1
        if self.chunk_bits < self.poi_bits + count_bits:
            raise ConfigurationError(
                f"keysize {keysize} too small to hold even one "
                f"{self.poi_bits}-bit POI plus the header"
            )

    @property
    def poi_bits(self) -> int:
        """Bits per POI slot (id + two quantized coordinates)."""
        return self.id_bits + 2 * self.coord_bits

    @property
    def total_bits(self) -> int:
        """Bits of the full (header + k slots) stream."""
        return self.count_bits + self.k * self.poi_bits

    @property
    def m(self) -> int:
        """Integers per encoded answer — the paper's m (Section 3.2)."""
        return math.ceil(self.total_bits / self.chunk_bits)

    @property
    def pois_per_integer(self) -> int:
        """How many POI slots one integer can carry (15 for the defaults at 1024 bits)."""
        return self.chunk_bits // self.poi_bits

    # ------------------------------------------------------------- quantize

    def _quantize(self, value: float, low: float, span: float) -> int:
        grid = (1 << self.coord_bits) - 1
        q = round((value - low) / span * grid)
        return min(max(q, 0), grid)

    def _dequantize(self, q: int, low: float, span: float) -> float:
        grid = (1 << self.coord_bits) - 1
        return low + q / grid * span

    def quantize_point(self, p: Point) -> tuple[int, int]:
        """Map a location onto the coordinate grid."""
        b = self.space.bounds
        return (
            self._quantize(p.x, b.xmin, b.width),
            self._quantize(p.y, b.ymin, b.height),
        )

    def dequantize_point(self, xq: int, yq: int) -> Point:
        """Map grid coordinates back to a location."""
        b = self.space.bounds
        return Point(
            self._dequantize(xq, b.xmin, b.width),
            self._dequantize(yq, b.ymin, b.height),
        )

    # --------------------------------------------------------------- encode

    def encode(self, pois: Sequence[POI]) -> list[int]:
        """Encode up to ``k`` ranked POIs into exactly ``m`` integers below N."""
        if len(pois) > self.k:
            raise EncodingError(f"answer has {len(pois)} POIs but k={self.k}")
        stream = len(pois)  # the count header sits in the low bits
        offset = self.count_bits
        for poi in pois:
            if poi.poi_id >= (1 << self.id_bits):
                raise EncodingError(
                    f"poi_id {poi.poi_id} does not fit in {self.id_bits} bits"
                )
            xq, yq = self.quantize_point(poi.location)
            slot = poi.poi_id | (xq << self.id_bits) | (yq << (self.id_bits + self.coord_bits))
            stream |= slot << offset
            offset += self.poi_bits
        return split_bitstream(stream, self.chunk_bits, self.m)

    # --------------------------------------------------------------- decode

    def decode(self, integers: Sequence[int]) -> list[DecodedAnswer]:
        """Inverse of :meth:`encode`; validates structure and padding."""
        if len(integers) != self.m:
            raise EncodingError(f"expected {self.m} integers, got {len(integers)}")
        stream = join_bitstream(integers, self.chunk_bits)
        count = stream & ((1 << self.count_bits) - 1)
        if count > self.k:
            raise EncodingError(f"count header {count} exceeds k={self.k}")
        answers = []
        offset = self.count_bits
        slot_mask = (1 << self.poi_bits) - 1
        for _ in range(count):
            slot = (stream >> offset) & slot_mask
            poi_id = slot & ((1 << self.id_bits) - 1)
            xq = (slot >> self.id_bits) & ((1 << self.coord_bits) - 1)
            yq = (slot >> (self.id_bits + self.coord_bits)) & ((1 << self.coord_bits) - 1)
            answers.append(DecodedAnswer(poi_id, self.dequantize_point(xq, yq)))
            offset += self.poi_bits
        if stream >> offset and any(
            (stream >> (self.count_bits + i * self.poi_bits)) & slot_mask
            for i in range(count, self.k)
        ):
            raise EncodingError("nonzero padding beyond the declared POI count")
        return answers
