"""Fixed-width bit packing of unsigned integers into big integers."""

from __future__ import annotations

from typing import Sequence

from repro.errors import EncodingError


def pack_fields(values: Sequence[int], widths: Sequence[int]) -> int:
    """Pack unsigned ``values`` into one integer, first field least significant.

    ``values[i]`` must satisfy ``0 <= values[i] < 2 ** widths[i]``.
    """
    if len(values) != len(widths):
        raise EncodingError(
            f"{len(values)} values for {len(widths)} field widths"
        )
    packed = 0
    offset = 0
    for value, width in zip(values, widths, strict=True):
        if width < 1:
            raise EncodingError("field widths must be positive")
        if not 0 <= value < (1 << width):
            raise EncodingError(f"value {value} does not fit in {width} bits")
        packed |= value << offset
        offset += width
    return packed


def unpack_fields(packed: int, widths: Sequence[int]) -> list[int]:
    """Inverse of :func:`pack_fields` for the same ``widths``."""
    if packed < 0:
        raise EncodingError("packed value must be non-negative")
    values = []
    offset = 0
    for width in widths:
        if width < 1:
            raise EncodingError("field widths must be positive")
        values.append((packed >> offset) & ((1 << width) - 1))
        offset += width
    if packed >> offset:
        raise EncodingError("packed value has stray bits beyond the declared fields")
    return values


def pack_uniform(values: Sequence[int], width: int) -> int:
    """Pack equal-width unsigned fields, first value least significant.

    The common case of :func:`pack_fields` (every field the same width),
    used to batch many small plaintexts into one Paillier plaintext so a
    single encryption replaces ``len(values)`` of them.
    """
    if width < 1:
        raise EncodingError("field width must be positive")
    packed = 0
    for i, value in enumerate(values):
        if not 0 <= value < (1 << width):
            raise EncodingError(f"value {value} at index {i} does not fit in {width} bits")
        packed |= value << (i * width)
    return packed


def unpack_uniform(packed: int, width: int, count: int) -> list[int]:
    """Inverse of :func:`pack_uniform` for ``count`` fields."""
    if width < 1:
        raise EncodingError("field width must be positive")
    if count < 0:
        raise EncodingError("field count must be non-negative")
    if packed < 0:
        raise EncodingError("packed value must be non-negative")
    if packed >> (width * count):
        raise EncodingError("packed value has stray bits beyond the declared fields")
    mask = (1 << width) - 1
    return [(packed >> (i * width)) & mask for i in range(count)]


def split_bitstream(stream: int, chunk_bits: int, chunk_count: int) -> list[int]:
    """Split a big integer into ``chunk_count`` integers of ``chunk_bits`` each.

    Chunk 0 holds the least-significant bits.  Raises when the stream does
    not fit — the caller sized the chunks wrongly.
    """
    if chunk_bits < 1 or chunk_count < 1:
        raise EncodingError("chunk size and count must be positive")
    if stream < 0:
        raise EncodingError("stream must be non-negative")
    if stream >> (chunk_bits * chunk_count):
        raise EncodingError(
            f"stream of {stream.bit_length()} bits exceeds "
            f"{chunk_count} x {chunk_bits} bit chunks"
        )
    mask = (1 << chunk_bits) - 1
    return [(stream >> (i * chunk_bits)) & mask for i in range(chunk_count)]


def join_bitstream(chunks: Sequence[int], chunk_bits: int) -> int:
    """Inverse of :func:`split_bitstream`."""
    if chunk_bits < 1:
        raise EncodingError("chunk size must be positive")
    stream = 0
    for i, chunk in enumerate(chunks):
        if not 0 <= chunk < (1 << chunk_bits):
            raise EncodingError(f"chunk {i} does not fit in {chunk_bits} bits")
        stream |= chunk << (i * chunk_bits)
    return stream
