"""Answer encoding: POI lists <-> vectors of big integers below N.

The private selection of Theorem 3.1 operates on an answer matrix whose
entries are plaintext integers of the Paillier plaintext space Z_N, so each
candidate answer (a ranked POI list) must be serialized into ``m`` integers
smaller than N, zero-padded so every candidate uses exactly the same ``m``
(Section 3.2).  This package provides the bit-packing primitives and the
:class:`~repro.encoding.answers.AnswerCodec` that performs the round trip.
"""

from repro.encoding.answers import AnswerCodec, DecodedAnswer
from repro.encoding.packing import (
    pack_fields,
    pack_uniform,
    unpack_fields,
    unpack_uniform,
)

__all__ = [
    "AnswerCodec",
    "DecodedAnswer",
    "pack_fields",
    "pack_uniform",
    "unpack_fields",
    "unpack_uniform",
]
