"""Answer sanitation under road-network distance.

The paper evaluates the inequality attack (Section 5) in Euclidean space,
but its construction only needs two ingredients: uniform samples of the
location space and the ability to evaluate F(p, C) with the target user
swept over the samples.  This module supplies both for the road metric,
extending Privacy IV to road-network deployments:

- sample locations are snapped to network nodes through a precomputed
  snap grid (a g x g lookup of each cell's nearest node — one-time cost,
  O(1) per sample afterwards; the quantization error is bounded by the
  cell diagonal and is far below typical network edge lengths),
- per-POI distance columns come from the network's cached single-source
  Dijkstra tables, gathered with one vectorized index per POI.

The colluders attack with the same metric the query used, so the victim's
feasible region is the set of *network positions* consistent with the
answer ranking; theta remains a fraction of the (uniformly sampled) space.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.sanitize import SanitationOutcome
from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import Aggregate
from repro.roadnet.network import RoadNetwork
from repro.stats.hypothesis import SanitationTestPlan


class RoadNetworkSanitizer:
    """Longest-safe-prefix sanitation with road-network distances."""

    def __init__(
        self,
        network: RoadNetwork,
        aggregate: Aggregate,
        plan: SanitationTestPlan,
        rng: np.random.Generator,
        snap_grid: int = 96,
    ) -> None:
        if snap_grid < 2:
            raise ConfigurationError("snap grid needs at least 2 cells per side")
        self.network = network
        self.aggregate = aggregate
        self.plan = plan
        self.rng = rng
        self._nodes = list(network.graph.nodes)
        self._node_index = {node: i for i, node in enumerate(self._nodes)}
        self._snap_grid = snap_grid
        self._snap_table = self._build_snap_table(snap_grid)

    def _build_snap_table(self, g: int) -> np.ndarray:
        """Nearest-node index for every cell center of a g x g grid."""
        bounds = self.network.space.bounds
        table = np.empty(g * g, dtype=np.int64)
        for row in range(g):
            cy = bounds.ymin + (row + 0.5) * bounds.height / g
            for col in range(g):
                cx = bounds.xmin + (col + 0.5) * bounds.width / g
                node = self.network.snap(Point(cx, cy))
                table[row * g + col] = self._node_index[node]
        return table

    def _snap_samples(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Map sample coordinates to node indices via the snap grid."""
        bounds = self.network.space.bounds
        g = self._snap_grid
        cols = np.minimum(((xs - bounds.xmin) / bounds.width * g).astype(np.int64), g - 1)
        rows = np.minimum(((ys - bounds.ymin) / bounds.height * g).astype(np.int64), g - 1)
        return self._snap_table[rows * g + cols]

    def _poi_distance_table(self, poi: POI) -> np.ndarray:
        """Road distances from one POI to every node, as an indexable array."""
        source = self.network.snap(poi.location)
        table = self.network.distances_from(source)
        return np.array([table[node] for node in self._nodes])

    def sanitize(
        self, pois: Sequence[POI], candidate: Sequence[Point]
    ) -> SanitationOutcome:
        """Longest prefix safe against every colluding majority (road metric).

        Mirrors the incremental Euclidean sanitizer: grow the prefix, test
        every target per length, stop at the first unsafe length.
        """
        k = len(pois)
        n = len(candidate)
        if n < 2 or k <= 1:
            return SanitationOutcome(tuple(pois), tuple([k] * max(n, 1)))
        xs, ys = self.network.space.sample_arrays(self.plan.n_samples, self.rng)
        sample_nodes = self._snap_samples(xs, ys)

        poi_tables: list[np.ndarray | None] = [None] * k
        value_columns: list[list[np.ndarray | None]] = [[None] * k for _ in range(n)]
        knowns = [
            [loc for i, loc in enumerate(candidate) if i != target]
            for target in range(n)
        ]

        def poi_table(j: int) -> np.ndarray:
            table = poi_tables[j]
            if table is None:
                table = self._poi_distance_table(pois[j])
                poi_tables[j] = table
            return table

        def value_column(target: int, j: int) -> np.ndarray:
            column = value_columns[target][j]
            if column is None:
                dists = poi_table(j)[sample_nodes]
                agg = self.aggregate
                if agg.decomposable:
                    partial = agg.partial(  # type: ignore[misc]
                        self.network.distance(loc, pois[j].location)
                        for loc in knowns[target]
                    )
                    column = agg.merge(dists, np.full(1, partial))  # type: ignore[misc]
                else:
                    rows = np.empty((len(dists), len(knowns[target]) + 1))
                    rows[:, 0] = dists
                    for idx, loc in enumerate(knowns[target]):
                        rows[:, idx + 1] = self.network.distance(
                            loc, pois[j].location
                        )
                    column = agg.combine_rows(rows)
                value_columns[target][j] = column
            return column

        cumulative = [np.ones(len(xs), dtype=bool) for _ in range(n)]
        alive = [True] * n
        safe_lengths = [1] * n
        prefix_len = 1
        for t in range(2, k + 1):
            all_safe = True
            for target in range(n):
                if not alive[target]:
                    continue
                ineq = value_column(target, t - 2) <= value_column(target, t - 1)
                cumulative[target] &= ineq
                if self.plan.is_safe(int(cumulative[target].sum())):
                    safe_lengths[target] = t
                else:
                    alive[target] = False
                    all_safe = False
            if not all_safe:
                break
            prefix_len = t
        return SanitationOutcome(tuple(pois[:prefix_len]), tuple(safe_lengths))
