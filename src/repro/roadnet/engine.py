"""Exact kGNN query answering under road-network distance.

Implements the same duck-typed interface as
:class:`~repro.gnn.engine.GNNQueryEngine` (``query``, ``poi_by_id``,
``insert``, ``delete``), so it drops into the LSP as the protocol's query
black box.  Evaluation: one Dijkstra per distinct query location (cached in
the network), then a linear aggregate-and-rank over the POIs — the
standard baseline for aggregate NN in road networks [38].
"""

from __future__ import annotations

from typing import Sequence

from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import SUM, Aggregate
from repro.roadnet.network import RoadNetwork


class RoadNetworkEngine:
    """kGNN over a POI database measured by road distance."""

    def __init__(
        self,
        pois: Sequence[POI],
        network: RoadNetwork,
        aggregate: Aggregate = SUM,
    ) -> None:
        if not pois:
            raise ConfigurationError("the POI database must be non-empty")
        self.network = network
        self.aggregate = aggregate
        self._by_id: dict[int, POI] = {}
        self._poi_nodes: dict[int, int] = {}
        for poi in pois:
            self._add(poi)

    def _add(self, poi: POI) -> None:
        if poi.poi_id in self._by_id:
            raise ConfigurationError(f"poi_id {poi.poi_id} already present")
        self._by_id[poi.poi_id] = poi
        self._poi_nodes[poi.poi_id] = self.network.snap(poi.location)

    def __len__(self) -> int:
        return len(self._by_id)

    def poi_by_id(self, poi_id: int) -> POI:
        """Resolve a POI id."""
        try:
            return self._by_id[poi_id]
        except KeyError:
            raise ConfigurationError(f"unknown poi_id {poi_id}") from None

    def query(self, k: int, locations: Sequence[Point]) -> list[POI]:
        """The top-``k`` POIs by ascending aggregate *road* distance.

        Ties break on POI location then id, mirroring the Euclidean engine.
        """
        if k < 1:
            raise ConfigurationError("k must be positive")
        if not locations:
            raise ConfigurationError("kGNN query needs at least one location")
        k = min(k, len(self._by_id))
        user_tables = [
            self.network.distances_from(self.network.snap(loc)) for loc in locations
        ]
        scored = []
        for poi_id, poi in self._by_id.items():
            node = self._poi_nodes[poi_id]
            cost = self.aggregate(table[node] for table in user_tables)
            scored.append((cost, poi.location, poi_id, poi))
        scored.sort(key=lambda t: t[:3])
        return [poi for _, _, _, poi in scored[:k]]

    def insert(self, poi: POI) -> None:
        """Add a POI (visible to the next query — the dynamic-DB story)."""
        self._add(poi)

    def delete(self, poi: POI) -> bool:
        """Remove a POI; returns False when absent."""
        if poi.poi_id not in self._by_id:
            return False
        del self._by_id[poi.poi_id]
        del self._poi_nodes[poi.poi_id]
        return True
