"""A road network over the location space.

Built on networkx: nodes carry planar coordinates, edges carry their
Euclidean length, and the road distance between two locations is the
shortest-path length between their nearest ("snapped") network nodes.
Single-source Dijkstra results are memoized, so repeated queries against
the same node (the hot pattern in kGNN evaluation) cost one graph search.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.gnn.knn import best_first_knn
from repro.index.rtree import RTree


class RoadNetwork:
    """A connected, weighted road graph over a location space."""

    def __init__(self, graph: nx.Graph, space: LocationSpace) -> None:
        if graph.number_of_nodes() == 0:
            raise ConfigurationError("road network needs at least one node")
        if not nx.is_connected(graph):
            raise ConfigurationError("road network must be connected")
        for node, data in graph.nodes(data=True):
            if "point" not in data:
                raise ConfigurationError(f"node {node} lacks a 'point' attribute")
        self.graph = graph
        self.space = space
        self._snap_index = RTree(max_entries=16)
        self._snap_index.bulk_load(
            (data["point"], node) for node, data in graph.nodes(data=True)
        )
        self._sssp_cache: dict[int, dict[int, float]] = {}

    # ------------------------------------------------------------ builders

    @classmethod
    def grid(
        cls,
        space: LocationSpace | None = None,
        nodes_per_side: int = 20,
        jitter: float = 0.3,
        drop_fraction: float = 0.1,
        seed: int = 0,
    ) -> "RoadNetwork":
        """A jittered grid road network (the classic synthetic road model).

        ``jitter`` perturbs intersection coordinates within their cell;
        ``drop_fraction`` removes that share of edges (only where the graph
        stays connected), producing irregular blocks and detours.
        """
        if nodes_per_side < 2:
            raise ConfigurationError("need at least a 2 x 2 road grid")
        if not 0.0 <= drop_fraction < 1.0:
            raise ConfigurationError("drop_fraction must be in [0, 1)")
        space = space or LocationSpace.unit_square()
        rng = np.random.default_rng(seed)
        bounds = space.bounds
        g = nodes_per_side
        step_x = bounds.width / (g - 1)
        step_y = bounds.height / (g - 1)
        graph = nx.Graph()
        for row in range(g):
            for col in range(g):
                dx = rng.uniform(-0.5, 0.5) * step_x * jitter
                dy = rng.uniform(-0.5, 0.5) * step_y * jitter
                x = min(max(bounds.xmin + col * step_x + dx, bounds.xmin), bounds.xmax)
                y = min(max(bounds.ymin + row * step_y + dy, bounds.ymin), bounds.ymax)
                graph.add_node(row * g + col, point=Point(float(x), float(y)))

        def link(a: int, b: int) -> None:
            pa = graph.nodes[a]["point"]
            pb = graph.nodes[b]["point"]
            graph.add_edge(a, b, weight=pa.distance_to(pb))

        for row in range(g):
            for col in range(g):
                node = row * g + col
                if col + 1 < g:
                    link(node, node + 1)
                if row + 1 < g:
                    link(node, node + g)

        edges = list(graph.edges())
        rng.shuffle(edges)
        to_drop = int(len(edges) * drop_fraction)
        dropped = 0
        for a, b in edges:
            if dropped >= to_drop:
                break
            weight = graph.edges[a, b]["weight"]
            graph.remove_edge(a, b)
            if nx.is_connected(graph):
                dropped += 1
            else:
                graph.add_edge(a, b, weight=weight)
        return cls(graph, space)

    # ------------------------------------------------------------- queries

    def node_point(self, node: int) -> Point:
        """Coordinates of a network node."""
        return self.graph.nodes[node]["point"]

    def snap(self, location: Point) -> int:
        """The network node nearest to ``location``."""
        result = best_first_knn(self._snap_index, location, 1)
        return result[0][1]

    def distances_from(self, node: int) -> dict[int, float]:
        """Shortest-path distances from ``node`` to every node (memoized)."""
        cached = self._sssp_cache.get(node)
        if cached is None:
            cached = nx.single_source_dijkstra_path_length(
                self.graph, node, weight="weight"
            )
            self._sssp_cache[node] = cached
        return cached

    def distance(self, a: Point, b: Point) -> float:
        """Road distance between two locations (via their snapped nodes)."""
        return self.distances_from(self.snap(a))[self.snap(b)]

    def clear_cache(self) -> None:
        """Drop memoized shortest paths (after editing the graph)."""
        self._sssp_cache.clear()
