"""Road-network distance substrate.

Section 2.1 defines the kGNN query over any metric space and names
road-network distance [38] as the alternative to Euclidean distance.  This
package provides that metric: a :class:`~repro.roadnet.network.RoadNetwork`
(a weighted graph over the location space with snapping and cached
shortest-path distances) and a
:class:`~repro.roadnet.engine.RoadNetworkEngine` that answers exact kGNN
queries under it — a drop-in for the protocol's query black box.

Privacy IV carries over: :class:`~repro.roadnet.sanitize.RoadNetworkSanitizer`
evaluates the inequality attack under the road metric (snap-grid sampling +
cached Dijkstra tables), so the full PPGNN protocol — sanitation included —
runs on road networks.
"""

from repro.roadnet.engine import RoadNetworkEngine
from repro.roadnet.network import RoadNetwork
from repro.roadnet.sanitize import RoadNetworkSanitizer

__all__ = ["RoadNetwork", "RoadNetworkEngine", "RoadNetworkSanitizer"]
