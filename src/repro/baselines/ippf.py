"""IPPF — cloak-rectangle group kNN with candidate supersets (Hashem et al. [14]).

The first group baseline of Section 8.3.2.  Each user hides its location
inside a rectangle; the LSP evaluates the kGNN query *with respect to the
rectangles*, which forces it to return every POI that could be a top-k
answer for **some** placement of the users inside their rectangles — a
candidate superset that is typically thousands of POIs.  The users then
run an incremental private filter: the candidate list travels along the
user chain, each user adding its distance contribution, and the last user
ranks the candidates and broadcasts the top-k.

Reproduced behaviours the paper measures:

- the dominant communication cost: the LSP ships the whole candidate list
  to the group, and the list then makes n - 1 hops through the chain
  (Figure 8a/8d),
- low LSP cost: one pruning pass over the database, no cryptography,
- Privacy III violated (the superset leaks database content beyond the
  answer) and Privacy IV violated (chain neighbours can collude, [2]);
  both are demonstrated programmatically in the Table 4 privacy bench.

Candidate soundness: with a monotone F, ``F(mindist(p, R_1..R_n))`` lower
bounds and ``F(maxdist(...))`` upper bounds the true cost of p for any
placement, so every POI whose lower bound is at most the k-th smallest
upper bound is kept — a superset of the true answer for every placement.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.result import BaselineResult
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.gnn.bruteforce import brute_force_kgnn
from repro.protocol.messages import (
    FLOAT_BYTES,
    GenericMessage,
    INT_BYTES,
    LOCATION_BYTES,
)
from repro.protocol.metrics import LSP, USER, CostLedger

#: Bytes per candidate POI shipped by the LSP (id + coordinates).
CANDIDATE_BYTES = INT_BYTES + LOCATION_BYTES


def cloak_rectangle(
    location: Point,
    area_fraction: float,
    space,
    rng: np.random.Generator,
) -> Rect:
    """A square cloak of the given relative area, containing the location.

    The square is placed uniformly at random among the positions containing
    the user (then clamped into the space), so the location is not simply
    its center.
    """
    if not 0.0 < area_fraction <= 1.0:
        raise ConfigurationError("area_fraction must be in (0, 1]")
    b = space.bounds
    side = (area_fraction * space.area) ** 0.5
    dx = rng.uniform(0.0, side)
    dy = rng.uniform(0.0, side)
    xmin = min(max(location.x - dx, b.xmin), b.xmax - side)
    ymin = min(max(location.y - dy, b.ymin), b.ymax - side)
    xmin = max(xmin, b.xmin)
    ymin = max(ymin, b.ymin)
    return Rect(xmin, ymin, min(xmin + side, b.xmax), min(ymin + side, b.ymax))


def candidate_superset(
    lsp: LSPServer, rects: Sequence[Rect], k: int
) -> list[POI]:
    """All POIs that could be in the top-k for some placement in the rects.

    Vectorized over the whole database: per POI, the aggregate of mindist
    (lower bound) and of maxdist (upper bound) to the n rectangles; keep
    POIs whose lower bound is at most the k-th smallest upper bound.
    """
    entries = list(lsp.engine.tree.entries())
    xs = np.array([p.x for p, _ in entries])
    ys = np.array([p.y for p, _ in entries])
    lower_cols = []
    upper_cols = []
    for rect in rects:
        dx = np.maximum(np.maximum(rect.xmin - xs, 0.0), xs - rect.xmax)
        dy = np.maximum(np.maximum(rect.ymin - ys, 0.0), ys - rect.ymax)
        lower_cols.append(np.hypot(dx, dy))
        fx = np.maximum(xs - rect.xmin, rect.xmax - xs)
        fy = np.maximum(ys - rect.ymin, rect.ymax - ys)
        upper_cols.append(np.hypot(fx, fy))
    lower = lsp.aggregate.combine_rows(np.column_stack(lower_cols))
    upper = lsp.aggregate.combine_rows(np.column_stack(upper_cols))
    if len(entries) <= k:
        threshold = float(upper.max())
    else:
        threshold = float(np.partition(upper, k - 1)[k - 1])
    keep = lower <= threshold
    return [item for (_, item), flag in zip(entries, keep, strict=True) if flag]


def run_ippf(
    lsp: LSPServer,
    locations: Sequence[Point],
    config: PPGNNConfig,
    area_fraction: float = 5e-6,
    seed: int = 0,
) -> BaselineResult:
    """One IPPF round: cloak upload, candidate superset, filter chain.

    ``area_fraction`` defaults to the paper's 0.0005% of the data space.
    """
    n = len(locations)
    if n < 2:
        raise ConfigurationError("IPPF is a group protocol (n > 1)")
    ledger = CostLedger()
    rng = np.random.default_rng(seed)

    # Each user builds and uploads its cloak rectangle.
    rects = []
    for real in locations:
        with ledger.clock(USER):
            rect = cloak_rectangle(real, area_fraction, lsp.space, rng)
        ledger.record(USER, LSP, GenericMessage("ippf-cloak", 4 * FLOAT_BYTES))
        rects.append(rect)

    # LSP prunes the database down to the candidate superset and ships it.
    with ledger.clock(LSP):
        candidates = candidate_superset(lsp, rects, config.k)
    candidate_message = GenericMessage(
        "ippf-candidates", INT_BYTES + CANDIDATE_BYTES * len(candidates)
    )
    ledger.record(LSP, USER, candidate_message)

    # Incremental filter chain: the list hops through every user, each one
    # folding its own distance contribution into every candidate's partial
    # aggregate.  Decomposable aggregates (sum/max/min) accumulate exactly.
    partials: np.ndarray | None = None
    for i, real in enumerate(locations):
        with ledger.clock(USER):
            dists = np.array([real.distance_to(p.location) for p in candidates])
            if partials is None:
                partials = dists
            elif lsp.aggregate.decomposable:
                partials = lsp.aggregate.merge(partials, dists)  # type: ignore[misc]
            else:
                partials = partials  # non-decomposable F: ranked at the end
        if i < n - 1:
            hop = GenericMessage(
                "ippf-chain-hop",
                INT_BYTES + (CANDIDATE_BYTES + FLOAT_BYTES) * len(candidates),
            )
            ledger.record(USER, USER, hop)

    # The last user ranks and broadcasts the exact top-k.
    with ledger.clock(USER):
        if lsp.aggregate.decomposable:
            assert partials is not None
            ranked = sorted(
                zip(partials.tolist(), (p.location for p in candidates), candidates, strict=True),
                key=lambda t: (t[0], t[1]),
            )
            answers = tuple(p for _, _, p in ranked[: config.k])
        else:
            top = brute_force_kgnn(
                ((p.location, p) for p in candidates),
                locations,
                config.k,
                lsp.aggregate,
            )
            answers = tuple(item for _, item, _ in top)
    broadcast = GenericMessage(
        "ippf-answer", INT_BYTES + CANDIDATE_BYTES * len(answers)
    )
    for _ in range(n - 1):
        ledger.record(USER, USER, broadcast)

    return BaselineResult(
        protocol="ippf",
        answers=answers,
        report=ledger.report(),
        extras={"candidate_count": len(candidates)},
    )
