"""GLP — group location privacy via a secure-multiparty centroid ([2]).

The second group baseline of Section 8.3.2.  The users jointly compute the
centroid of their locations with Paillier-based secure multiparty
computation so no user learns another's location directly, then the
centroid is sent to the LSP *in plaintext*, and the LSP answers a plain
kNN query around it.

Reproduced behaviours the paper measures:

- O(n^2) cryptographic traffic: every user encrypts its coordinates and
  sends the ciphertexts to every other user, so communication and user
  cost grow quadratically in n (Figures 8d/8e),
- a single plaintext kNN on the LSP — the lowest LSP cost among the group
  protocols (Figure 8f),
- Privacy II violated (the LSP sees the centroid query and its answer) and
  Privacy IV violated (n - 1 colluders subtract their locations from the
  centroid to recover the victim exactly),
- the answer is *approximate*: the kNN of the centroid coincides with the
  sum-aggregate kGNN only by accident.

Coordinates are fixed-point encoded (the standard trick for encrypting
reals under Paillier); the aggregation itself is exact modulo that
quantization.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.result import BaselineResult
from repro.core.common import derive_rngs, group_keypair
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.crypto.homomorphic import hom_add
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.protocol.messages import (
    GenericMessage,
    INT_BYTES,
    LOCATION_BYTES,
    POI_BYTES,
)
from repro.protocol.metrics import COORDINATOR, LSP, USER, CostLedger

#: Fixed-point scale for encrypting coordinates (1e-9 resolution).
COORD_SCALE = 10**9


def _encode_coord(value: float) -> int:
    return round(value * COORD_SCALE)


def _decode_coord(value: int, divisor: int) -> float:
    return value / divisor / COORD_SCALE


def run_glp(
    lsp: LSPServer,
    locations: Sequence[Point],
    config: PPGNNConfig,
    seed: int = 0,
) -> BaselineResult:
    """One GLP round: SMC centroid, plaintext kNN, broadcast."""
    n = len(locations)
    if n < 2:
        raise ConfigurationError("GLP is a group protocol (n > 1)")
    ledger = CostLedger()
    rng, _ = derive_rngs(seed)
    keypair = group_keypair(config)
    pk = keypair.public_key

    # Pairwise sharing, as in the AV-net-style construction of [2]: every
    # user produces a *distinct* ciphertext of each coordinate for every
    # other group member (pairwise keys), so both the ciphertext count and
    # the user-side encryption work grow as O(n^2).
    encrypted_pairs = []
    counter = ledger.counter(USER)
    for real in locations:
        first_pair = None
        for _ in range(n - 1):
            with ledger.clock(USER):
                cx = pk.encrypt(_encode_coord(real.x), rng=rng)
                cy = pk.encrypt(_encode_coord(real.y), rng=rng)
                counter.encryptions += 2
            ledger.record(
                USER, USER, GenericMessage("glp-share", cx.byte_size + cy.byte_size)
            )
            if first_pair is None:
                first_pair = (cx, cy)
        if first_pair is None:  # n == 1 is rejected above; defensive only
            first_pair = (
                pk.encrypt(_encode_coord(real.x), rng=rng),
                pk.encrypt(_encode_coord(real.y), rng=rng),
            )
        encrypted_pairs.append(first_pair)

    # Each user aggregates the shares it received homomorphically; the
    # coordinator (holding the group key in this simulation) decrypts the
    # sums.  Every user pays the aggregation.
    for _ in range(n):
        with ledger.clock(USER):
            acc_x, acc_y = encrypted_pairs[0]
            for cx, cy in encrypted_pairs[1:]:
                acc_x = hom_add(acc_x, cx, counter)
                acc_y = hom_add(acc_y, cy, counter)
    with ledger.clock(COORDINATOR):
        coordinator_counter = ledger.counter(COORDINATOR)
        sum_x = keypair.secret_key.decrypt(acc_x)
        sum_y = keypair.secret_key.decrypt(acc_y)
        coordinator_counter.decryptions += 2
        centroid = Point(_decode_coord(sum_x, n), _decode_coord(sum_y, n))

    # The centroid goes to the LSP in plaintext — Privacy II is gone.
    ledger.record(
        COORDINATOR, LSP, GenericMessage("glp-centroid", LOCATION_BYTES + INT_BYTES)
    )
    with ledger.clock(LSP):
        answers = tuple(lsp.engine.query(config.k, [centroid]))
    answer_message = GenericMessage(
        "glp-answer", INT_BYTES + POI_BYTES * len(answers)
    )
    ledger.record(LSP, COORDINATOR, answer_message)
    for _ in range(n - 1):
        ledger.record(COORDINATOR, USER, answer_message)

    return BaselineResult(
        protocol="glp",
        answers=answers,
        report=ledger.report(),
        extras={"centroid": centroid},
    )
