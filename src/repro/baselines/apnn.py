"""APNN — approximate private kNN with grid precomputation (Yi et al. [36]).

The n = 1 baseline of Section 8.2.  The LSP partitions the space into a
``g x g`` grid and precomputes the kNN answer for every cell *center*.  At
query time the user chooses a square cloak region of ``b x b`` cells
containing her own cell and runs a private-retrieval round so the LSP
learns neither her cell nor the answer she obtains: here modelled with the
same encrypted-indicator selection primitive PPGNN uses (the cost-relevant
structure — b^2 user-side encryptions, a b^2-wide private selection on the
LSP, one encrypted answer back — matches the two-stage protocol of [36]).

Key behavioural properties reproduced from the paper's discussion:

- the LSP performs *no kNN work at query time* (lowest LSP cost in
  Figure 5f) because answers are precomputed per cell,
- the answer is approximate — it is the kNN of the cell center, not of the
  user's exact location,
- a database update invalidates every precomputed cell (the "expensive
  update cost" the paper criticizes); :meth:`APNNServer.invalidate`
  models it and the dynamic-database example demonstrates the contrast.

Precomputation is lazy by default: a cell's answer is materialized on
first touch and cached, which leaves all *query-time* costs identical to
the eager variant while keeping test setup fast.  ``precompute_all=True``
gives the faithful offline behaviour.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.common import decrypt_answer, derive_rngs, group_keypair
from repro.core.config import PPGNNConfig
from repro.baselines.result import BaselineResult
from repro.crypto.homomorphic import encrypt_indicator, matrix_select
from repro.datasets.poi import POI
from repro.encoding.answers import AnswerCodec
from repro.errors import ConfigurationError, ProtocolError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.gnn.engine import GNNQueryEngine
from repro.index.grid import GridIndex
from repro.protocol.messages import (
    EncryptedAnswer,
    GenericMessage,
    INT_BYTES,
)
from repro.protocol.metrics import COORDINATOR, LSP, CostLedger


class APNNServer:
    """The APNN service provider: grid, precomputed answers, private retrieval."""

    def __init__(
        self,
        pois: Sequence[POI],
        cells_per_side: int = 64,
        space: LocationSpace | None = None,
        precompute_all: bool = False,
    ) -> None:
        if cells_per_side < 2:
            raise ConfigurationError("APNN needs at least a 2 x 2 grid")
        self.space = space or LocationSpace.unit_square()
        self.engine = GNNQueryEngine(pois)
        self.grid = GridIndex(self.space, cells_per_side)
        self._cache: dict[tuple[tuple[int, int], int], list[POI]] = {}
        self._precompute_all = precompute_all

    def _cell_answer(self, cell: tuple[int, int], k: int) -> list[POI]:
        """The precomputed kNN answer for one cell center."""
        key = (cell, k)
        answer = self._cache.get(key)
        if answer is None:
            center = self.grid.cell_center(*cell)
            answer = self.engine.query(k, [center])
            self._cache[key] = answer
        return answer

    def precompute(self, k: int) -> int:
        """Materialize every cell's answer for one k; returns the cell count.

        This is the offline step of [36]; its cost explains why APNN cannot
        track a dynamic database.
        """
        for cell in self.grid.all_cells():
            self._cell_answer(cell, k)
        return self.grid.cells_per_side**2

    def invalidate(self) -> int:
        """Drop every precomputed answer (a database update happened).

        Returns how many cached cell answers were lost — the rework a
        single POI insertion forces onto APNN.
        """
        dropped = len(self._cache)
        self._cache.clear()
        return dropped

    # ------------------------------------------------------------- serving

    def cloak_cells(self, location: Point, b: int) -> list[tuple[int, int]]:
        """The b x b block of cells containing the user's cell.

        The block is anchored so it stays inside the grid; the user's own
        cell can sit anywhere inside it (the user picks the block, §8.2).
        """
        g = self.grid.cells_per_side
        if not 1 <= b <= g:
            raise ConfigurationError(f"cloak side b must be in [1, {g}]")
        col, row = self.grid.cell_of(location)
        col0 = min(max(col - b // 2, 0), g - b)
        row0 = min(max(row - b // 2, 0), g - b)
        return [(c, r) for r in range(row0, row0 + b) for c in range(col0, col0 + b)]

    def answer_query(
        self,
        k: int,
        cells: list[tuple[int, int]],
        indicator,
        public_key,
        ledger: CostLedger,
    ) -> EncryptedAnswer:
        """Select the requested cell's precomputed answer privately."""
        with ledger.clock(LSP):
            if len(indicator) != len(cells):
                raise ProtocolError("indicator length must match the cloak size")
            if self._precompute_all:
                self.precompute(k)
            codec = AnswerCodec(public_key.key_bits, k, self.space)
            columns = [codec.encode(self._cell_answer(cell, k)) for cell in cells]
            m = len(columns[0])
            rows = [[col[row] for col in columns] for row in range(m)]
            selected = matrix_select(rows, indicator, ledger.counter(LSP))
            return EncryptedAnswer(tuple(selected))


def run_apnn(
    server: APNNServer,
    location: Point,
    config: PPGNNConfig,
    cloak_side: int | None = None,
    seed: int = 0,
) -> BaselineResult:
    """One APNN round for a single user.

    ``cloak_side`` defaults to ``round(sqrt(d))`` so the privacy level b^2
    matches PPGNN's d (the paper uses b = 5 against d = 25).
    """
    config = config.for_single_user()
    b = cloak_side if cloak_side is not None else max(2, round(config.d**0.5))
    ledger = CostLedger()
    rng, _ = derive_rngs(seed)
    keypair = group_keypair(config)
    codec = AnswerCodec(config.keysize, config.k, server.space)

    with ledger.clock(COORDINATOR):
        cells = server.cloak_cells(location, b)
        own_cell = server.grid.cell_of(location)
        hot = cells.index(own_cell)
        indicator = encrypt_indicator(
            keypair.public_key,
            len(cells),
            hot,
            rng=rng,
            counter=ledger.counter(COORDINATOR),
        )
    # Request: k + cloak anchor + the b^2 encrypted indicator entries.
    request_bytes = (
        INT_BYTES * 3
        + keypair.public_key.key_bits // 8
        + sum(c.byte_size for c in indicator)
    )
    ledger.record(COORDINATOR, LSP, GenericMessage("apnn-request", request_bytes))

    encrypted = server.answer_query(
        config.k, cells, indicator, keypair.public_key, ledger
    )
    ledger.record(LSP, COORDINATOR, encrypted)

    decoded = decrypt_answer(keypair, codec, encrypted, ledger)
    answers = tuple(server.engine.poi_by_id(a.poi_id) for a in decoded)
    return BaselineResult(
        protocol="apnn",
        answers=answers,
        report=ledger.report(),
        extras={"cloak_cells": len(cells), "cell": own_cell},
    )
