"""Result shape shared by the baseline protocols."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datasets.poi import POI
from repro.protocol.metrics import CostReport


@dataclass(frozen=True)
class BaselineResult:
    """A baseline run: the answers users end with, plus costs and extras.

    ``answers`` are POIs in rank order (for IPPF, after the user-side
    filtering step; for APNN/GLP, the approximate answers).  ``extras``
    carries protocol-specific diagnostics, e.g. IPPF's candidate-set size.
    """

    protocol: str
    answers: tuple[POI, ...]
    report: CostReport
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def answer_ids(self) -> tuple[int, ...]:
        return tuple(p.poi_id for p in self.answers)
