"""Baseline approaches the paper compares against (Section 8).

- :mod:`~repro.baselines.apnn` — APNN [36] (Yi et al. 2016), the n = 1
  baseline: grid precomputation + private retrieval; approximate answers.
- :mod:`~repro.baselines.ippf` — IPPF [14] (Hashem et al. 2010), the first
  group baseline: cloak rectangles, LSP returns a candidate superset that
  users filter — violating Privacy III and IV.
- :mod:`~repro.baselines.glp` — GLP [2] (Ashouri-Talouki et al. 2012):
  secure-multiparty centroid + plaintext kNN — violating Privacy II and IV.

These are re-implementations from the cited papers' descriptions at the
fidelity the evaluation requires: each reproduces its documented cost
structure (candidate supersets, O(n^2) ciphertext exchanges, precomputed
grids) and answer semantics (exact superset vs approximate), which is what
Figures 5 and 8 measure.
"""

from repro.baselines.apnn import APNNServer, run_apnn
from repro.baselines.glp import run_glp
from repro.baselines.ippf import run_ippf
from repro.baselines.result import BaselineResult

__all__ = ["BaselineResult", "APNNServer", "run_apnn", "run_ippf", "run_glp"]
