"""Protocol hardening: state machines, inbound validation, deadlines,
crash-safe checkpoints.

The paper proves privacy against semi-honest parties and
:mod:`repro.transport` (PR 1) survives a faulty *network*; this package
defends the runners against a faulty or cheating *counterpart*.  Pass a
:class:`ProtocolGuard` to any runner (or session) via ``guard=``; like
``transport=None``, the ``guard=None`` default keeps the historical
trusting behavior byte-for-byte.

Layers:

- :mod:`repro.guard.state` — per-role protocol state machines enforcing
  round ordering (:class:`~repro.errors.ProtocolStateError`),
- :mod:`repro.guard.validate` — inbound structural/cryptographic checks
  (:class:`~repro.errors.InboundValidationError`),
- :mod:`repro.guard.deadline` — round deadlines on the simulated network
  clock (:class:`~repro.errors.DeadlineExceededError`),
- :mod:`repro.guard.checkpoint` — crash-safe session checkpoint/resume.

The scripted adversaries of :mod:`repro.attacks.malicious` exercise every
layer; ``tests/test_attacks_malicious.py`` asserts each deviation is
either detected or provably harmless.
"""

from repro.guard.checkpoint import checkpoint_session, restore_session
from repro.guard.deadline import RoundDeadline
from repro.guard.guard import NULL_ROUND_GUARD, ProtocolGuard, RoundGuard, begin_round
from repro.guard.state import (
    LSPStateMachine,
    RoleStateMachine,
    coordinator_machine,
    lsp_machine,
    member_machine,
)

__all__ = [
    "NULL_ROUND_GUARD",
    "LSPStateMachine",
    "ProtocolGuard",
    "RoleStateMachine",
    "RoundDeadline",
    "RoundGuard",
    "begin_round",
    "checkpoint_session",
    "coordinator_machine",
    "lsp_machine",
    "member_machine",
    "restore_session",
]
