"""Round deadlines on the simulated network clock.

The transport layer charges every simulated wait — latency, timeouts,
retry backoff — to the ledger's ``"network"`` clock.  A
:class:`RoundDeadline` watches that clock: the runner ticks it after each
delivery, and once the accumulated waiting exceeds the budget the round
aborts with :class:`~repro.errors.DeadlineExceededError` carrying a
*partial* cost report, so a stalling or silent counterpart costs a bounded
amount of (simulated) time and the traffic spent is still accounted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.protocol.metrics import CostLedger
from repro.transport.transport import NETWORK


@dataclass
class RoundDeadline:
    """A budget of simulated network seconds for one protocol round."""

    budget_seconds: float
    round_id: int = 0

    def __post_init__(self) -> None:
        if self.budget_seconds <= 0:
            raise ConfigurationError("deadline budget must be positive")

    def elapsed(self, ledger: CostLedger) -> float:
        """Simulated network seconds accrued so far in this run."""
        return ledger.times.get(NETWORK, 0.0)

    def tick(self, ledger: CostLedger, *, party: str = "") -> None:
        """Abort the round when the network clock has passed the budget.

        ``party`` names the counterpart whose delivery just completed —
        the most recent suspect when the budget blows.
        """
        elapsed = self.elapsed(ledger)
        if elapsed > self.budget_seconds:
            raise DeadlineExceededError(
                round_id=self.round_id,
                party=party,
                elapsed=elapsed,
                budget=self.budget_seconds,
                report=ledger.report(),
            )
