"""Crash-safe session checkpoints.

A coordinator that dies k queries into an m-query session should not redo
key generation or partition solving, and its cost accounting should not
forget the traffic already spent.  :func:`checkpoint_session` freezes the
durable state of a :class:`~repro.core.session.QuerySession` — protocol
name, session seed, full configuration, and the exact running totals —
into a byte string built from the hardened length-prefixed primitives of
:mod:`repro.crypto.serialization`; :func:`restore_session` rebuilds a
session that continues the per-query seed sequence exactly where the dead
one stopped, so a resumed run finishes with totals equal to an
uninterrupted one.

Query *history* is deliberately not checkpointed: results pin transcripts
and live ciphertexts, and ``totals`` is already exact over all queries.

Wire format: magic ``RPSS``, a 2-byte version, then the fields in fixed
order.  Every malformed buffer dies with a typed
:class:`~repro.errors.ReproError` subclass — :class:`CryptoError` for
byte-level damage, :class:`ConfigurationError` for out-of-domain values,
:class:`CheckpointError` for semantically impossible states.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.crypto.serialization import (
    pack_float,
    pack_int,
    pack_str,
    unpack_float,
    unpack_int,
    unpack_str,
)
from repro.errors import CheckpointError, CryptoError

if TYPE_CHECKING:
    from repro.cluster.scatter import ScatterState
    from repro.core.session import QuerySession

_MAGIC = b"RPSS"
_VERSION = 1

_SCATTER_MAGIC = b"RPCS"
_SCATTER_VERSION = 1


def _pack_bool(value: bool) -> bytes:
    return b"\x01" if value else b"\x00"


def _unpack_bool(data: bytes, offset: int) -> tuple[bool, int]:
    if offset + 1 > len(data):
        raise CryptoError("truncated boolean")
    tag = data[offset]
    if tag not in (0, 1):
        raise CryptoError(f"invalid boolean byte {tag}")
    return bool(tag), offset + 1


def _pack_signed(value: int) -> bytes:
    """Sign byte + magnitude, so session seeds may be any integer."""
    return _pack_bool(value < 0) + pack_int(abs(value) + 1)


def _unpack_signed(data: bytes, offset: int) -> tuple[int, int]:
    negative, offset = _unpack_bool(data, offset)
    magnitude, offset = unpack_int(data, offset)
    if magnitude < 1:
        raise CryptoError("signed integer magnitude must be positive")
    value = magnitude - 1
    return (-value if negative else value), offset


def _pack_opt(packer, value) -> bytes:
    return _pack_bool(value is not None) + (b"" if value is None else packer(value))


def _unpack_opt(unpacker, data: bytes, offset: int):
    present, offset = _unpack_bool(data, offset)
    if not present:
        return None, offset
    return unpacker(data, offset)


def checkpoint_session(session: "QuerySession") -> bytes:
    """Serialize the durable state of a query session."""
    config = session.config
    totals = session.totals
    return b"".join(
        (
            _MAGIC,
            struct.pack(">H", _VERSION),
            pack_str(session.protocol),
            _pack_signed(session.seed),
            _pack_opt(pack_int, session.max_history),
            # --- configuration -------------------------------------------
            pack_int(config.d),
            pack_int(config.delta),
            pack_int(config.k),
            _pack_opt(pack_float, config.theta0),
            _pack_bool(config.sanitize),
            pack_float(config.gamma),
            pack_float(config.eta),
            pack_float(config.phi),
            _pack_opt(pack_int, config.sanitation_samples),
            pack_int(config.keysize),
            _pack_opt(_pack_signed, config.key_seed),
            pack_str(config.aggregate_name),
            # --- running totals ------------------------------------------
            pack_int(totals.queries),
            pack_int(totals.comm_bytes),
            pack_float(totals.user_seconds),
            pack_float(totals.lsp_seconds),
            pack_int(totals.answers_returned),
        )
    )


def restore_session(data: bytes, lsp, *, session_cls=None, **session_kwargs):
    """Rebuild a session from :func:`checkpoint_session` bytes.

    ``lsp`` is the (re-established) provider handle — server state is the
    LSP's own durable concern and never part of a client checkpoint.
    ``session_cls`` picks the session flavor (default
    :class:`~repro.core.session.QuerySession`;
    :class:`~repro.transport.session.ResilientSession` works too) and
    ``session_kwargs`` passes through its extra constructor fields
    (channel, retry policy, guard, ...).

    The restored session's next query runs with ``seed + totals.queries``
    — the same seed the dead session would have used.
    """
    from repro.core.config import PPGNNConfig
    from repro.core.session import QuerySession, SessionTotals

    if len(data) < 6:
        raise CryptoError("checkpoint shorter than its header")
    if data[:4] != _MAGIC:
        raise CryptoError(f"bad checkpoint magic {data[:4]!r}")
    (version,) = struct.unpack_from(">H", data, 4)
    if version != _VERSION:
        raise CryptoError(f"unsupported checkpoint version {version}")
    offset = 6
    protocol, offset = unpack_str(data, offset)
    seed, offset = _unpack_signed(data, offset)
    max_history, offset = _unpack_opt(unpack_int, data, offset)
    d, offset = unpack_int(data, offset)
    delta, offset = unpack_int(data, offset)
    k, offset = unpack_int(data, offset)
    theta0, offset = _unpack_opt(unpack_float, data, offset)
    sanitize, offset = _unpack_bool(data, offset)
    gamma, offset = unpack_float(data, offset)
    eta, offset = unpack_float(data, offset)
    phi, offset = unpack_float(data, offset)
    samples, offset = _unpack_opt(unpack_int, data, offset)
    keysize, offset = unpack_int(data, offset)
    key_seed, offset = _unpack_opt(_unpack_signed, data, offset)
    aggregate_name, offset = unpack_str(data, offset)
    queries, offset = unpack_int(data, offset)
    comm_bytes, offset = unpack_int(data, offset)
    user_seconds, offset = unpack_float(data, offset)
    lsp_seconds, offset = unpack_float(data, offset)
    answers_returned, offset = unpack_int(data, offset)
    if offset != len(data):
        raise CryptoError("trailing bytes after checkpoint")
    if user_seconds < 0.0 or lsp_seconds < 0.0:
        raise CheckpointError("checkpoint carries negative cost totals")
    if answers_returned and not queries:
        raise CheckpointError("checkpoint counts answers without queries")

    config = PPGNNConfig(
        d=d,
        delta=delta,
        k=k,
        theta0=theta0,
        sanitize=sanitize,
        gamma=gamma,
        eta=eta,
        phi=phi,
        sanitation_samples=samples,
        keysize=keysize,
        key_seed=key_seed,
        aggregate_name=aggregate_name,
    )
    totals = SessionTotals(
        queries=queries,
        comm_bytes=comm_bytes,
        user_seconds=user_seconds,
        lsp_seconds=lsp_seconds,
        answers_returned=answers_returned,
    )
    cls = session_cls if session_cls is not None else QuerySession
    return cls(
        lsp=lsp,
        config=config,
        protocol=protocol,
        seed=seed,
        totals=totals,
        max_history=max_history,
        **session_kwargs,
    )


# --------------------------------------------------------------- scatter


def _pack_int_list(values) -> bytes:
    return pack_int(len(values)) + b"".join(pack_int(v) for v in values)


def _unpack_int_list(data: bytes, offset: int) -> tuple[list[int], int]:
    count, offset = unpack_int(data, offset)
    values = []
    for _ in range(count):
        value, offset = unpack_int(data, offset)
        values.append(value)
    return values, offset


def checkpoint_scatter(state: "ScatterState") -> bytes:
    """Freeze a mid-scatter state (see :mod:`repro.cluster.scatter`).

    Captures the job progress — pending / answered / lost shards, the
    gathered per-shard answers, the simulated scatter clock — *and* the
    shard-fault interpreter snapshot (per-replica served counts plus the
    cell's sub-query sequence), so the resumed run replays the exact
    failure schedule of an uninterrupted one.

    Wire format: magic ``RPCS``, a 2-byte version, then the fields in
    fixed order using the same hardened length-prefixed primitives as the
    session checkpoint.
    """
    parts = [
        _SCATTER_MAGIC,
        struct.pack(">H", _SCATTER_VERSION),
        pack_int(state.job_id),
        _pack_int_list(state.pending),
        pack_int(len(state.answers)),
    ]
    for answer in state.answers:
        parts.extend(
            (
                pack_int(answer.shard_id),
                pack_int(answer.replica),
                _pack_int_list(answer.answer_ids),
                pack_int(answer.comm_bytes),
                pack_float(answer.simulated_seconds),
                pack_int(answer.failovers),
                _pack_bool(answer.hedged),
                _pack_bool(answer.hedge_won),
            )
        )
    parts.append(_pack_int_list(state.lost))
    parts.append(pack_float(state.elapsed_seconds))
    parts.append(pack_int(len(state.fault_served)))
    for (shard, replica), count in sorted(state.fault_served.items()):
        parts.extend((pack_int(shard), pack_int(replica), pack_int(count)))
    parts.append(pack_int(state.fault_sequence))
    return b"".join(parts)


def restore_scatter(data: bytes) -> "ScatterState":
    """Rebuild a mid-scatter state from :func:`checkpoint_scatter` bytes."""
    from repro.cluster.merge import ShardAnswer
    from repro.cluster.scatter import ScatterState

    if len(data) < 6:
        raise CryptoError("scatter checkpoint shorter than its header")
    if data[:4] != _SCATTER_MAGIC:
        raise CryptoError(f"bad scatter checkpoint magic {data[:4]!r}")
    (version,) = struct.unpack_from(">H", data, 4)
    if version != _SCATTER_VERSION:
        raise CryptoError(f"unsupported scatter checkpoint version {version}")
    offset = 6
    job_id, offset = unpack_int(data, offset)
    pending, offset = _unpack_int_list(data, offset)
    answer_count, offset = unpack_int(data, offset)
    answers = []
    for _ in range(answer_count):
        shard_id, offset = unpack_int(data, offset)
        replica, offset = unpack_int(data, offset)
        answer_ids, offset = _unpack_int_list(data, offset)
        comm_bytes, offset = unpack_int(data, offset)
        simulated_seconds, offset = unpack_float(data, offset)
        failovers, offset = unpack_int(data, offset)
        hedged, offset = _unpack_bool(data, offset)
        hedge_won, offset = _unpack_bool(data, offset)
        answers.append(
            ShardAnswer(
                shard_id=shard_id,
                replica=replica,
                answer_ids=tuple(answer_ids),
                comm_bytes=comm_bytes,
                simulated_seconds=simulated_seconds,
                failovers=failovers,
                hedged=hedged,
                hedge_won=hedge_won,
            )
        )
    lost, offset = _unpack_int_list(data, offset)
    elapsed_seconds, offset = unpack_float(data, offset)
    served_count, offset = unpack_int(data, offset)
    fault_served: dict[tuple[int, int], int] = {}
    for _ in range(served_count):
        shard, offset = unpack_int(data, offset)
        replica, offset = unpack_int(data, offset)
        count, offset = unpack_int(data, offset)
        fault_served[(shard, replica)] = count
    fault_sequence, offset = unpack_int(data, offset)
    if offset != len(data):
        raise CryptoError("trailing bytes after scatter checkpoint")
    if elapsed_seconds < 0.0:
        raise CheckpointError("scatter checkpoint carries a negative clock")
    answered = {a.shard_id for a in answers}
    if answered & set(pending) or answered & set(lost):
        raise CheckpointError(
            "scatter checkpoint lists a shard as both answered and open"
        )
    return ScatterState(
        job_id=job_id,
        pending=pending,
        answers=answers,
        lost=lost,
        elapsed_seconds=elapsed_seconds,
        fault_served=fault_served,
        fault_sequence=fault_sequence,
    )
