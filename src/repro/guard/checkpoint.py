"""Crash-safe session checkpoints.

A coordinator that dies k queries into an m-query session should not redo
key generation or partition solving, and its cost accounting should not
forget the traffic already spent.  :func:`checkpoint_session` freezes the
durable state of a :class:`~repro.core.session.QuerySession` — protocol
name, session seed, full configuration, and the exact running totals —
into a byte string built from the hardened length-prefixed primitives of
:mod:`repro.crypto.serialization`; :func:`restore_session` rebuilds a
session that continues the per-query seed sequence exactly where the dead
one stopped, so a resumed run finishes with totals equal to an
uninterrupted one.

Query *history* is deliberately not checkpointed: results pin transcripts
and live ciphertexts, and ``totals`` is already exact over all queries.

Wire format: magic ``RPSS``, a 2-byte version, then the fields in fixed
order.  Every malformed buffer dies with a typed
:class:`~repro.errors.ReproError` subclass — :class:`CryptoError` for
byte-level damage, :class:`ConfigurationError` for out-of-domain values,
:class:`CheckpointError` for semantically impossible states.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.crypto.serialization import (
    pack_float,
    pack_int,
    pack_str,
    unpack_float,
    unpack_int,
    unpack_str,
)
from repro.errors import CheckpointError, CryptoError

if TYPE_CHECKING:
    from repro.core.session import QuerySession

_MAGIC = b"RPSS"
_VERSION = 1


def _pack_bool(value: bool) -> bytes:
    return b"\x01" if value else b"\x00"


def _unpack_bool(data: bytes, offset: int) -> tuple[bool, int]:
    if offset + 1 > len(data):
        raise CryptoError("truncated boolean")
    tag = data[offset]
    if tag not in (0, 1):
        raise CryptoError(f"invalid boolean byte {tag}")
    return bool(tag), offset + 1


def _pack_signed(value: int) -> bytes:
    """Sign byte + magnitude, so session seeds may be any integer."""
    return _pack_bool(value < 0) + pack_int(abs(value) + 1)


def _unpack_signed(data: bytes, offset: int) -> tuple[int, int]:
    negative, offset = _unpack_bool(data, offset)
    magnitude, offset = unpack_int(data, offset)
    if magnitude < 1:
        raise CryptoError("signed integer magnitude must be positive")
    value = magnitude - 1
    return (-value if negative else value), offset


def _pack_opt(packer, value) -> bytes:
    return _pack_bool(value is not None) + (b"" if value is None else packer(value))


def _unpack_opt(unpacker, data: bytes, offset: int):
    present, offset = _unpack_bool(data, offset)
    if not present:
        return None, offset
    return unpacker(data, offset)


def checkpoint_session(session: "QuerySession") -> bytes:
    """Serialize the durable state of a query session."""
    config = session.config
    totals = session.totals
    return b"".join(
        (
            _MAGIC,
            struct.pack(">H", _VERSION),
            pack_str(session.protocol),
            _pack_signed(session.seed),
            _pack_opt(pack_int, session.max_history),
            # --- configuration -------------------------------------------
            pack_int(config.d),
            pack_int(config.delta),
            pack_int(config.k),
            _pack_opt(pack_float, config.theta0),
            _pack_bool(config.sanitize),
            pack_float(config.gamma),
            pack_float(config.eta),
            pack_float(config.phi),
            _pack_opt(pack_int, config.sanitation_samples),
            pack_int(config.keysize),
            _pack_opt(_pack_signed, config.key_seed),
            pack_str(config.aggregate_name),
            # --- running totals ------------------------------------------
            pack_int(totals.queries),
            pack_int(totals.comm_bytes),
            pack_float(totals.user_seconds),
            pack_float(totals.lsp_seconds),
            pack_int(totals.answers_returned),
        )
    )


def restore_session(data: bytes, lsp, *, session_cls=None, **session_kwargs):
    """Rebuild a session from :func:`checkpoint_session` bytes.

    ``lsp`` is the (re-established) provider handle — server state is the
    LSP's own durable concern and never part of a client checkpoint.
    ``session_cls`` picks the session flavor (default
    :class:`~repro.core.session.QuerySession`;
    :class:`~repro.transport.session.ResilientSession` works too) and
    ``session_kwargs`` passes through its extra constructor fields
    (channel, retry policy, guard, ...).

    The restored session's next query runs with ``seed + totals.queries``
    — the same seed the dead session would have used.
    """
    from repro.core.config import PPGNNConfig
    from repro.core.session import QuerySession, SessionTotals

    if len(data) < 6:
        raise CryptoError("checkpoint shorter than its header")
    if data[:4] != _MAGIC:
        raise CryptoError(f"bad checkpoint magic {data[:4]!r}")
    (version,) = struct.unpack_from(">H", data, 4)
    if version != _VERSION:
        raise CryptoError(f"unsupported checkpoint version {version}")
    offset = 6
    protocol, offset = unpack_str(data, offset)
    seed, offset = _unpack_signed(data, offset)
    max_history, offset = _unpack_opt(unpack_int, data, offset)
    d, offset = unpack_int(data, offset)
    delta, offset = unpack_int(data, offset)
    k, offset = unpack_int(data, offset)
    theta0, offset = _unpack_opt(unpack_float, data, offset)
    sanitize, offset = _unpack_bool(data, offset)
    gamma, offset = unpack_float(data, offset)
    eta, offset = unpack_float(data, offset)
    phi, offset = unpack_float(data, offset)
    samples, offset = _unpack_opt(unpack_int, data, offset)
    keysize, offset = unpack_int(data, offset)
    key_seed, offset = _unpack_opt(_unpack_signed, data, offset)
    aggregate_name, offset = unpack_str(data, offset)
    queries, offset = unpack_int(data, offset)
    comm_bytes, offset = unpack_int(data, offset)
    user_seconds, offset = unpack_float(data, offset)
    lsp_seconds, offset = unpack_float(data, offset)
    answers_returned, offset = unpack_int(data, offset)
    if offset != len(data):
        raise CryptoError("trailing bytes after checkpoint")
    if user_seconds < 0.0 or lsp_seconds < 0.0:
        raise CheckpointError("checkpoint carries negative cost totals")
    if answers_returned and not queries:
        raise CheckpointError("checkpoint counts answers without queries")

    config = PPGNNConfig(
        d=d,
        delta=delta,
        k=k,
        theta0=theta0,
        sanitize=sanitize,
        gamma=gamma,
        eta=eta,
        phi=phi,
        sanitation_samples=samples,
        keysize=keysize,
        key_seed=key_seed,
        aggregate_name=aggregate_name,
    )
    totals = SessionTotals(
        queries=queries,
        comm_bytes=comm_bytes,
        user_seconds=user_seconds,
        lsp_seconds=lsp_seconds,
        answers_returned=answers_returned,
    )
    cls = session_cls if session_cls is not None else QuerySession
    return cls(
        lsp=lsp,
        config=config,
        protocol=protocol,
        seed=seed,
        totals=totals,
        max_history=max_history,
        **session_kwargs,
    )
