"""Per-role protocol state machines (coordinator / member / LSP).

A PPGNN round has a fixed message choreography (PROTOCOL.md §§1–4):
positions out, request out, uploads in, answer back, broadcast out.  Each
role's legal view of that choreography is a small deterministic automaton;
:class:`RoleStateMachine` walks it and raises
:class:`~repro.errors.ProtocolStateError` the moment an event arrives in
the wrong phase, twice, or not at all — turning "a replayed upload
eventually corrupts the candidate matrix" into an immediate, attributable
rejection.

The machines are message-count aware where the protocol is: the LSP must
see exactly one request and exactly ``n`` uploads with distinct user ids;
a member must see exactly one position assignment before it uploads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolStateError

# Canonical phase names, shared by all three roles.  Each machine only
# uses the slice of this alphabet its role participates in.
IDLE = "idle"
POSITIONED = "positioned"
REQUESTED = "requested"
UPLOADING = "uploading"
ANSWERED = "answered"
DECRYPTED = "decrypted"
DONE = "done"


@dataclass
class RoleStateMachine:
    """One role's legal event sequence, as a transition table.

    ``transitions`` maps ``(state, event) -> next state``; any event
    without an entry for the current state is a protocol violation.
    """

    role: str
    transitions: dict[tuple[str, str], str]
    state: str = IDLE
    round_id: int = 0
    history: list[str] = field(default_factory=list)

    def advance(self, event: str, *, party: str | None = None) -> str:
        """Consume one event; returns the new state or raises.

        ``party`` names the counterpart whose message triggered the event
        (defaults to this machine's own role) so the raised error
        attributes the deviation to the sender, not the victim.
        """
        key = (self.state, event)
        nxt = self.transitions.get(key)
        if nxt is None:
            raise ProtocolStateError(
                f"{self.role} received event {event!r} in state "
                f"{self.state!r}; legal events here: "
                f"{sorted(e for (s, e) in self.transitions if s == self.state)}",
                round_id=self.round_id,
                party=party or self.role,
            )
        self.history.append(event)
        self.state = nxt
        return nxt

    def require(self, state: str, context: str) -> None:
        """Assert the machine is in ``state`` before a side effect."""
        if self.state != state:
            raise ProtocolStateError(
                f"{self.role} attempted {context} in state {self.state!r} "
                f"(requires {state!r})",
                round_id=self.round_id,
                party=self.role,
            )


def coordinator_machine(round_id: int = 0) -> RoleStateMachine:
    """u_c's view: plan, assign positions, send request, receive the one
    answer, decrypt, broadcast."""
    return RoleStateMachine(
        role="coordinator",
        round_id=round_id,
        transitions={
            (IDLE, "plan"): POSITIONED,
            (POSITIONED, "send_position"): POSITIONED,
            (POSITIONED, "send_request"): REQUESTED,
            (REQUESTED, "recv_answer"): ANSWERED,
            (ANSWERED, "decrypt"): DECRYPTED,
            (DECRYPTED, "broadcast"): DECRYPTED,
            (DECRYPTED, "finish"): DONE,
        },
    )


def member_machine(user_index: int, round_id: int = 0) -> RoleStateMachine:
    """A regular member's view: exactly one position, then one upload,
    then the plaintext broadcast.  A second position assignment is a
    replay and rejected."""
    return RoleStateMachine(
        role=f"user:{user_index}",
        round_id=round_id,
        transitions={
            (IDLE, "recv_position"): POSITIONED,
            (POSITIONED, "upload"): UPLOADING,
            (UPLOADING, "recv_broadcast"): DONE,
        },
    )


@dataclass
class LSPStateMachine(RoleStateMachine):
    """The LSP's view, extended with upload bookkeeping.

    The LSP must see one request, then exactly ``expected_users`` uploads
    carrying distinct ids in ``[0, n)``, then emit one answer.  Duplicate
    or out-of-range ids — a member replaying or impersonating — raise
    immediately.
    """

    expected_users: int = 0
    seen_users: set[int] = field(default_factory=set)

    def recv_upload(self, user_id: int, *, party: str | None = None) -> None:
        self.advance("recv_upload", party=party or f"user:{user_id}")
        if not 0 <= user_id < self.expected_users:
            raise ProtocolStateError(
                f"upload carries user id {user_id} outside [0, "
                f"{self.expected_users})",
                round_id=self.round_id,
                party=f"user:{user_id}",
            )
        if user_id in self.seen_users:
            raise ProtocolStateError(
                f"duplicate upload for user id {user_id} (replayed or "
                "impersonated member)",
                round_id=self.round_id,
                party=f"user:{user_id}",
            )
        self.seen_users.add(user_id)

    def ready_to_answer(self) -> None:
        """Advance to answering; requires the full complement of uploads."""
        if len(self.seen_users) != self.expected_users:
            raise ProtocolStateError(
                f"LSP asked to answer with {len(self.seen_users)} of "
                f"{self.expected_users} uploads",
                round_id=self.round_id,
                party="lsp",
            )
        self.advance("send_answer", party="lsp")


def lsp_machine(expected_users: int, round_id: int = 0) -> LSPStateMachine:
    """The provider-side automaton for one group round."""
    return LSPStateMachine(
        role="lsp",
        round_id=round_id,
        expected_users=expected_users,
        transitions={
            (IDLE, "recv_request"): UPLOADING,
            (UPLOADING, "recv_upload"): UPLOADING,
            (UPLOADING, "send_answer"): ANSWERED,
        },
    )
