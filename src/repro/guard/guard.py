"""The protocol guard the runners thread their messages through.

:class:`ProtocolGuard` is the per-session hardening configuration — like
``transport=None``, passing ``guard=None`` to a runner keeps the
historical trusting behavior byte-for-byte.  :meth:`ProtocolGuard.begin`
arms one :class:`RoundGuard` per protocol round: three role state
machines (coordinator / members / LSP), the inbound validators of
:mod:`repro.guard.validate`, and an optional
:class:`~repro.guard.deadline.RoundDeadline` on the simulated network
clock.

The runner calls one hook per choreography step, always *before* the
delivered payload reaches the crypto layer; every rejection is a typed
:class:`~repro.errors.GuardError` subclass naming the round and the
offending party.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.paillier import PaillierPublicKey
from repro.encoding.answers import AnswerCodec, DecodedAnswer
from repro.errors import (
    DeadlineExceededError,
    EncodingError,
    GuardError,
    InboundValidationError,
    ProtocolStateError,
)
from repro.obs import Observability
from repro.geometry.space import LocationSpace
from repro.guard.deadline import RoundDeadline
from repro.guard.state import (
    LSPStateMachine,
    RoleStateMachine,
    coordinator_machine,
    lsp_machine,
    member_machine,
)
from repro.guard.validate import (
    check_ciphertext_vector,
    check_finite_point,
    check_location_set,
    check_plaintext,
    check_position,
)
from repro.partition.layout import GroupLayout
from repro.protocol.messages import (
    EncryptedAnswer,
    GroupQueryRequest,
    LocationSetUpload,
    OptGroupQueryRequest,
    PlaintextAnswerBroadcast,
    PositionAssignment,
)
from repro.protocol.metrics import CostLedger


def _observed(hook):
    """Count a hook's rejections before re-raising them.

    Applied to the public choreography hooks only — never to ``tick``,
    which runs *inside* hooks and would double-count a deadline miss.
    :class:`~repro.errors.DeadlineExceededError` is a
    :class:`~repro.errors.GuardError`, so it must be matched first.
    """

    @functools.wraps(hook)
    def wrapper(self, *args, **kwargs):
        try:
            return hook(self, *args, **kwargs)
        except DeadlineExceededError:
            if self.obs is not None:
                self.obs.count("guard.deadline_misses")
            raise
        except GuardError:
            if self.obs is not None:
                self.obs.count("guard.violations")
            raise

    return wrapper


class RoundGuard:
    """Armed defenses for one protocol round.

    Built by :meth:`ProtocolGuard.begin`; the runner drives it through the
    round's choreography.  Constructor arguments pin the honest
    expectations: the solved layout, the session public key, the answer
    shape ``m``, and (for PPGNN-OPT) the two indicator lengths.
    """

    def __init__(
        self,
        *,
        layout: GroupLayout,
        public_key: PaillierPublicKey,
        space: LocationSpace,
        ledger: CostLedger,
        k: int,
        answer_m: int,
        answer_s: int = 1,
        inner_length: int | None = None,
        outer_length: int | None = None,
        deadline: RoundDeadline | None = None,
        round_id: int = 0,
        obs: Observability | None = None,
    ) -> None:
        self.layout = layout
        self.public_key = public_key
        self.space = space
        self.ledger = ledger
        self.k = k
        self.answer_m = answer_m
        self.answer_s = answer_s
        self.inner_length = inner_length
        self.outer_length = outer_length
        self.deadline = deadline
        self.round_id = round_id
        self.obs = obs
        self.coordinator: RoleStateMachine = coordinator_machine(round_id)
        self.members: dict[int, RoleStateMachine] = {
            i: member_machine(i, round_id) for i in range(layout.n)
        }
        self.lsp: LSPStateMachine = lsp_machine(layout.n, round_id)

    # ------------------------------------------------------------- plumbing

    def tick(self, party: str = "") -> None:
        """Deadline check after a delivery from ``party``."""
        if self.deadline is not None:
            self.deadline.tick(self.ledger, party=party)

    def _member(self, user: int) -> RoleStateMachine:
        machine = self.members.get(user)
        if machine is None:
            raise ProtocolStateError(
                f"message addressed to unknown user {user}",
                round_id=self.round_id,
                party=f"user:{user}",
            )
        return machine

    # --------------------------------------------------------- choreography

    @_observed
    def planned(self) -> None:
        """The coordinator finished Algorithm 1's offline planning."""
        self.coordinator.advance("plan")

    @_observed
    def position_delivered(self, user: int, message: object) -> None:
        """A position assignment arrived at ``user``; validate before use."""
        self.coordinator.advance("send_position")
        self._member(user).advance("recv_position", party="coordinator")
        if not isinstance(message, PositionAssignment):
            raise InboundValidationError(
                f"expected a PositionAssignment, got {type(message).__name__}",
                round_id=self.round_id,
                party="coordinator",
            )
        check_position(
            message.position,
            self.layout.d,
            round_id=self.round_id,
            party="coordinator",
        )
        self.tick("coordinator")

    @_observed
    def request_delivered(self, request: object) -> None:
        """The query request arrived at the LSP; validate the indicators."""
        self.coordinator.advance("send_request")
        self.lsp.advance("recv_request", party="coordinator")
        if self.inner_length is not None:
            self._check_opt_request(request)
        else:
            self._check_group_request(request)
        self.tick("coordinator")

    def _check_common_request(self, request) -> None:
        if request.k != self.k:
            raise InboundValidationError(
                f"request k={request.k} contradicts the session k={self.k}",
                round_id=self.round_id,
                party="coordinator",
            )
        if request.public_key != self.public_key:
            raise InboundValidationError(
                "request public key is not the session key",
                round_id=self.round_id,
                party="coordinator",
            )
        params = self.layout.params
        if (
            tuple(request.subgroup_sizes) != tuple(params.subgroup_sizes)
            or tuple(request.segment_sizes) != tuple(params.segment_sizes)
        ):
            raise InboundValidationError(
                "request partition shape contradicts the solved partition",
                round_id=self.round_id,
                party="coordinator",
            )
        if request.theta0 is not None and not (
            math.isfinite(request.theta0) and 0.0 < request.theta0 <= 1.0
        ):
            raise InboundValidationError(
                f"theta0={request.theta0} outside (0, 1]",
                round_id=self.round_id,
                party="coordinator",
            )

    def _check_group_request(self, request: object) -> None:
        if not isinstance(request, GroupQueryRequest):
            raise ProtocolStateError(
                f"expected a GroupQueryRequest, got {type(request).__name__}",
                round_id=self.round_id,
                party="coordinator",
            )
        self._check_common_request(request)
        check_ciphertext_vector(
            request.indicator,
            self.layout.delta_prime,
            self.public_key,
            1,
            round_id=self.round_id,
            party="coordinator",
            what="indicator",
        )

    def _check_opt_request(self, request: object) -> None:
        if not isinstance(request, OptGroupQueryRequest):
            raise ProtocolStateError(
                f"expected an OptGroupQueryRequest, got {type(request).__name__}",
                round_id=self.round_id,
                party="coordinator",
            )
        self._check_common_request(request)
        check_ciphertext_vector(
            request.inner_indicator,
            self.inner_length,
            self.public_key,
            1,
            round_id=self.round_id,
            party="coordinator",
            what="inner indicator",
        )
        check_ciphertext_vector(
            request.outer_indicator,
            self.outer_length,
            self.public_key,
            2,
            round_id=self.round_id,
            party="coordinator",
            what="outer indicator",
        )

    @_observed
    def upload_delivered(self, upload: object) -> None:
        """A location-set upload arrived at the LSP."""
        if not isinstance(upload, LocationSetUpload):
            raise InboundValidationError(
                f"expected a LocationSetUpload, got {type(upload).__name__}",
                round_id=self.round_id,
            )
        self.lsp.recv_upload(upload.user_id)
        party = f"user:{upload.user_id}"
        self._member(upload.user_id).advance("upload", party=party)
        check_location_set(
            upload.locations,
            self.layout.d,
            self.space,
            round_id=self.round_id,
            party=party,
        )
        self.tick(party)

    @_observed
    def uploads_complete(self) -> None:
        """Gate before the LSP's Algorithm 2: the round must be whole."""
        self.lsp.ready_to_answer()

    @_observed
    def answer_delivered(self, answer: object) -> None:
        """The encrypted answer arrived at the coordinator."""
        self.coordinator.advance("recv_answer", party="lsp")
        if not isinstance(answer, EncryptedAnswer):
            raise InboundValidationError(
                f"expected an EncryptedAnswer, got {type(answer).__name__}",
                round_id=self.round_id,
                party="lsp",
            )
        check_ciphertext_vector(
            answer.ciphertexts,
            self.answer_m,
            self.public_key,
            self.answer_s,
            round_id=self.round_id,
            party="lsp",
            what="answer",
        )
        self.tick("lsp")

    @_observed
    def decode_plaintexts(
        self, codec: AnswerCodec, integers: Sequence[int]
    ) -> list[DecodedAnswer]:
        """Range-check the decrypted integers, then decode defensively.

        A structurally invalid plaintext (count header beyond k, nonzero
        padding) means the LSP selected or fabricated garbage; the codec's
        :class:`~repro.errors.EncodingError` is re-raised as an
        :class:`~repro.errors.InboundValidationError` attributed to it.
        """
        self.coordinator.advance("decrypt")
        for value in integers:
            check_plaintext(
                value,
                self.public_key,
                1,
                round_id=self.round_id,
                party="lsp",
            )
        try:
            answers = codec.decode(integers)
        except EncodingError as exc:
            raise InboundValidationError(
                f"answer plaintext does not decode: {exc}",
                round_id=self.round_id,
                party="lsp",
            ) from exc
        for i, answer in enumerate(answers):
            check_finite_point(
                answer.location,
                space=self.space,
                round_id=self.round_id,
                party="lsp",
                what=f"answer[{i}].location",
            )
        return answers

    @_observed
    def broadcast_delivered(self, user: int, message: object) -> None:
        """The plaintext answer broadcast arrived at ``user``."""
        self.coordinator.advance("broadcast")
        self._member(user).advance("recv_broadcast", party="coordinator")
        if not isinstance(message, PlaintextAnswerBroadcast):
            raise InboundValidationError(
                f"expected a PlaintextAnswerBroadcast, got "
                f"{type(message).__name__}",
                round_id=self.round_id,
                party="coordinator",
            )
        if len(message.answers) > self.k:
            raise InboundValidationError(
                f"broadcast carries {len(message.answers)} answers, k={self.k}",
                round_id=self.round_id,
                party="coordinator",
            )
        self.tick("coordinator")

    @_observed
    def finished(self) -> None:
        """Close the round; the coordinator must have decrypted."""
        self.coordinator.advance("finish")


class _NullRoundGuard:
    """The ``guard=None`` path: every hook is a no-op.

    Keeping the runner code branch-free means the default path stays
    byte-for-byte identical to the historical cost accounting (the
    regression tests pin this).
    """

    __slots__ = ()

    def tick(self, party: str = "") -> None: ...

    def planned(self) -> None: ...

    def position_delivered(self, user: int, message: object) -> None: ...

    def request_delivered(self, request: object) -> None: ...

    def upload_delivered(self, upload: object) -> None: ...

    def uploads_complete(self) -> None: ...

    def answer_delivered(self, answer: object) -> None: ...

    def decode_plaintexts(self, codec, integers):
        return codec.decode(integers)

    def broadcast_delivered(self, user: int, message: object) -> None: ...

    def finished(self) -> None: ...


NULL_ROUND_GUARD = _NullRoundGuard()


@dataclass(frozen=True)
class ProtocolGuard:
    """Session-level hardening configuration.

    Attributes
    ----------
    deadline_seconds:
        Simulated-network time budget per round; None disables deadlines.
    obs:
        An :class:`~repro.obs.Observability` handle; every round guard
        then counts its rejections into the ``guard.violations`` /
        ``guard.deadline_misses`` metrics.  None keeps the hooks silent.
    """

    deadline_seconds: float | None = None
    obs: Observability | None = None

    def begin(
        self,
        *,
        layout: GroupLayout,
        public_key: PaillierPublicKey,
        space: LocationSpace,
        ledger: CostLedger,
        k: int,
        answer_m: int,
        answer_s: int = 1,
        inner_length: int | None = None,
        outer_length: int | None = None,
        round_id: int = 0,
    ) -> RoundGuard:
        """Arm a :class:`RoundGuard` for one protocol round."""
        deadline = (
            RoundDeadline(self.deadline_seconds, round_id)
            if self.deadline_seconds is not None
            else None
        )
        if self.obs is not None:
            self.obs.count("guard.rounds")
        return RoundGuard(
            layout=layout,
            public_key=public_key,
            space=space,
            ledger=ledger,
            k=k,
            answer_m=answer_m,
            answer_s=answer_s,
            inner_length=inner_length,
            outer_length=outer_length,
            deadline=deadline,
            round_id=round_id,
            obs=self.obs,
        )


def begin_round(
    guard: ProtocolGuard | None, **context
) -> RoundGuard | _NullRoundGuard:
    """Runner-side hook mirroring :func:`repro.transport.transport.send`.

    With ``guard=None`` the returned object is the shared no-op round
    guard, keeping the historical trusting path intact.
    """
    if guard is None:
        return NULL_ROUND_GUARD
    return guard.begin(**context)
