"""Inbound validation: every field checked before the crypto layer sees it.

The paper's proofs assume semi-honest parties; a buggy or cheating
counterpart can still send junk.  These checks are the guard's second
layer (after the state machines): each one inspects exactly one inbound
artifact — a ciphertext, an indicator vector, a location set, a decrypted
plaintext — and raises :class:`~repro.errors.InboundValidationError`
naming the round and the offending party.

Ciphertext membership is the load-bearing check: a Damgård–Jurik
ciphertext must satisfy ``0 < c < N^{s+1}`` and ``gcd(c, N) = 1`` (a value
sharing a factor with N is not in ``Z*_{N^{s+1}}`` — worse, it factors the
modulus), and its level tag must match what the protocol phase expects.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.errors import InboundValidationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace


def check_ciphertext(
    c: object,
    public_key: PaillierPublicKey,
    expected_s: int,
    *,
    round_id: int = 0,
    party: str = "",
    what: str = "ciphertext",
) -> Ciphertext:
    """Membership + level-tag check for one inbound ciphertext."""
    if not isinstance(c, Ciphertext):
        raise InboundValidationError(
            f"{what} is not a ciphertext ({type(c).__name__})",
            round_id=round_id,
            party=party,
        )
    if c.public_key != public_key:
        raise InboundValidationError(
            f"{what} is bound to a different public key",
            round_id=round_id,
            party=party,
        )
    if c.s != expected_s:
        raise InboundValidationError(
            f"{what} carries level tag s={c.s}, expected s={expected_s}",
            round_id=round_id,
            party=party,
        )
    if not 0 < c.value < public_key.ciphertext_modulus(expected_s):
        raise InboundValidationError(
            f"{what} value outside (0, N^{expected_s + 1})",
            round_id=round_id,
            party=party,
        )
    if math.gcd(c.value, public_key.n) != 1:
        raise InboundValidationError(
            f"{what} value is not a unit modulo N^{expected_s + 1}",
            round_id=round_id,
            party=party,
        )
    return c


def check_ciphertext_vector(
    vector: Sequence,
    expected_length: int,
    public_key: PaillierPublicKey,
    expected_s: int,
    *,
    round_id: int = 0,
    party: str = "",
    what: str = "ciphertext vector",
) -> None:
    """Structural + element-wise check of an indicator or answer vector."""
    if len(vector) != expected_length:
        raise InboundValidationError(
            f"{what} has {len(vector)} entries, expected {expected_length}",
            round_id=round_id,
            party=party,
        )
    for i, c in enumerate(vector):
        check_ciphertext(
            c,
            public_key,
            expected_s,
            round_id=round_id,
            party=party,
            what=f"{what}[{i}]",
        )


def check_finite_point(
    p: object,
    *,
    space: LocationSpace | None = None,
    round_id: int = 0,
    party: str = "",
    what: str = "location",
) -> Point:
    """Reject NaN/∞ coordinates and (optionally) out-of-space points."""
    if not isinstance(p, Point):
        raise InboundValidationError(
            f"{what} is not a Point ({type(p).__name__})",
            round_id=round_id,
            party=party,
        )
    if not (math.isfinite(p.x) and math.isfinite(p.y)):
        raise InboundValidationError(
            f"{what} has non-finite coordinates ({p.x}, {p.y})",
            round_id=round_id,
            party=party,
        )
    if space is not None and not space.contains(p):
        raise InboundValidationError(
            f"{what} ({p.x}, {p.y}) lies outside the location space",
            round_id=round_id,
            party=party,
        )
    return p


def check_location_set(
    locations: Sequence,
    expected_size: int,
    space: LocationSpace,
    *,
    round_id: int = 0,
    party: str = "",
) -> None:
    """A member's upload must be exactly d in-space, finite locations."""
    if len(locations) != expected_size:
        raise InboundValidationError(
            f"location set has {len(locations)} entries, expected "
            f"{expected_size}",
            round_id=round_id,
            party=party,
        )
    for i, p in enumerate(locations):
        check_finite_point(
            p,
            space=space,
            round_id=round_id,
            party=party,
            what=f"location[{i}]",
        )


def check_position(
    position: int,
    d: int,
    *,
    round_id: int = 0,
    party: str = "",
) -> int:
    """A position assignment must index a slot of the length-d set."""
    if not isinstance(position, int) or isinstance(position, bool):
        raise InboundValidationError(
            f"position assignment is not an integer ({type(position).__name__})",
            round_id=round_id,
            party=party,
        )
    if not 0 <= position < d:
        raise InboundValidationError(
            f"position {position} outside [0, {d})",
            round_id=round_id,
            party=party,
        )
    return position


def check_plaintext(
    value: int,
    public_key: PaillierPublicKey,
    s: int = 1,
    *,
    round_id: int = 0,
    party: str = "",
) -> int:
    """A decrypted integer must lie in the level-s plaintext space."""
    if not 0 <= value < public_key.plaintext_modulus(s):
        raise InboundValidationError(
            f"decrypted value outside [0, N^{s})",
            round_id=round_id,
            party=party,
        )
    return value
