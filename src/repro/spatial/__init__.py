"""The million-POI spatial index substrate.

Three families of sub-linear candidate machinery behind the
:class:`~repro.index.base.SpatialIndex` ABC:

- :mod:`repro.spatial.str_build` — a sharded parallel Sort-Tile-Recursive
  bulk loader for the R-tree (worker processes tile independent vertical
  slices; the stitched tree is byte-identical to a serial build for any
  worker count), plus the STR tiling reused by cluster partitioning.
- :mod:`repro.spatial.parttree` — a configurable partition-tree family
  (kd / rp / 2-means split rules with a spill fraction, after the
  spatialtree design): exact via per-node MBRs, approximate via defeatist
  single-branch descent.
- :mod:`repro.spatial.lsh` — a seeded p-stable LSH bucket index producing
  sub-linear candidate sets with measured recall.

Exact indexes answer byte-identically to the R-tree; the approximate
candidate paths (spill > 0 descent, LSH buckets) are opt-in and always
carry a measured recall estimate (see
:meth:`repro.gnn.engine.GNNQueryEngine.recall_estimate`).
"""

from repro.spatial.lsh import LSHIndex
from repro.spatial.parttree import SPLIT_RULES, PartitionTree
from repro.spatial.str_build import (
    parallel_str_bulk_load,
    str_partition_tiles,
    tree_digest,
)

__all__ = [
    "LSHIndex",
    "PartitionTree",
    "SPLIT_RULES",
    "parallel_str_bulk_load",
    "str_partition_tiles",
    "tree_digest",
]
