"""Seeded p-stable LSH bucket index for sub-linear candidate generation.

Each of ``tables`` hash tables keys a point by ``hashes`` quantized
Gaussian projections ``floor((p @ a_j + b_j) / w)`` — the classic
Datar-Indyk p-stable scheme for Euclidean distance.  Nearby points agree
on whole keys with high probability, so the union of the query's buckets
across tables is a small candidate set that still contains most true
neighbors.

``bucket_width`` (``w``) trades candidate-set size against recall; when
left ``None`` it defaults to four times the expected nearest-neighbor
spacing of the loaded data (``4 * sqrt(area / n)``), which keeps the
per-table bucket occupancy roughly constant as ``n`` scales.
``probes > 0`` adds multiprobe: the perturbed keys one quantum away in the
dimensions where the query sits closest to a bucket boundary are also
inspected, buying recall without more tables.

The index is exact for :meth:`range_query` (linear scan — LSH buckets
cannot support rectangles) and deliberately has **no** ``nearest``
override: its value is :meth:`candidate_entries`, consumed by the
engine's approximate path which always attaches a measured recall
estimate.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import SpatialIndex, validate_entries, validate_location

_DEFAULT_WIDTH_FACTOR = 4.0


class LSHIndex(SpatialIndex):
    """Euclidean LSH over 2-d points: ``tables`` x ``hashes`` projections."""

    def __init__(
        self,
        tables: int = 6,
        hashes: int = 2,
        bucket_width: float | None = None,
        seed: int = 0,
        probes: int = 2,
    ) -> None:
        if tables < 1:
            raise ConfigurationError("tables must be >= 1")
        if hashes < 1:
            raise ConfigurationError("hashes must be >= 1")
        if bucket_width is not None and not bucket_width > 0.0:
            raise ConfigurationError("bucket_width must be positive")
        if probes < 0:
            raise ConfigurationError("probes must be >= 0")
        self.tables = tables
        self.hashes = hashes
        self.bucket_width = bucket_width
        self.seed = seed
        self.probes = probes
        rng = np.random.default_rng(seed)
        # One (hashes x 2) Gaussian projection matrix and one offset vector
        # per table, drawn once at construction so the hash family is fixed
        # for the index's lifetime regardless of when data arrives.
        self._projections = rng.standard_normal((tables, hashes, 2))
        self._offsets = rng.uniform(0.0, 1.0, size=(tables, hashes))
        self._width = bucket_width
        self._buckets: list[dict[tuple[int, ...], list[int]]] = [
            {} for _ in range(tables)
        ]
        self._entries: list[tuple[Point, Any]] = []
        self.version = 0

    # ----------------------------------------------------------------- hashing

    def _effective_width(self) -> float:
        if self._width is not None:
            return self._width
        # Derive from the loaded data: ~4x the expected NN spacing.
        n = len(self._entries)
        if n < 2:
            return 1.0
        mbr = Rect.from_points([p for p, _ in self._entries])
        area = max(mbr.width * mbr.height, 1e-12)
        return _DEFAULT_WIDTH_FACTOR * math.sqrt(area / n)

    def _raw(self, table: int, p: Point) -> np.ndarray:
        """Unquantized hash coordinates of ``p`` in ``table``."""
        w = self._effective_width()
        proj = self._projections[table] @ np.array([p.x, p.y])
        return (proj / w) + self._offsets[table]

    def _key(self, table: int, p: Point) -> tuple[int, ...]:
        return tuple(int(v) for v in np.floor(self._raw(table, p)))

    def _probe_keys(self, table: int, p: Point) -> list[tuple[int, ...]]:
        """The home key plus up to ``probes`` single-step perturbations.

        Perturbations flip one hash coordinate by +/-1, ranked by the
        query's distance to that bucket boundary — the closer the boundary,
        the likelier a true neighbor fell just across it.
        """
        raw = self._raw(table, p)
        home = tuple(int(v) for v in np.floor(raw))
        keys = [home]
        if self.probes == 0:
            return keys
        frac = raw - np.floor(raw)
        cands: list[tuple[float, tuple[int, ...]]] = []
        for j in range(self.hashes):
            up = list(home)
            up[j] += 1
            cands.append((1.0 - float(frac[j]), tuple(up)))
            down = list(home)
            down[j] -= 1
            cands.append((float(frac[j]), tuple(down)))
        cands.sort(key=lambda c: c[0])
        keys.extend(key for _, key in cands[: self.probes])
        return keys

    # ------------------------------------------------------------------ loading

    def _index_entry(self, eid: int) -> None:
        p = self._entries[eid][0]
        for t in range(self.tables):
            self._buckets[t].setdefault(self._key(t, p), []).append(eid)

    def insert(self, location: Point, item: Any) -> None:
        validate_location(location)
        self.version += 1
        if self._width is None and self._entries:
            # Auto width is frozen by whatever data was present at first
            # hash time; pin it so late inserts can't shift old buckets.
            self._width = self._effective_width()
        self._entries.append((location, item))
        self._index_entry(len(self._entries) - 1)

    def bulk_load(self, items: Iterable[tuple[Point, Any]]) -> None:
        pairs = validate_entries(items)
        self.version += 1
        self._entries = pairs
        self._width = self.bucket_width  # auto width re-derives from new data
        self._buckets = [{} for _ in range(self.tables)]
        if pairs:
            self._width = self._effective_width()
            for eid in range(len(pairs)):
                self._index_entry(eid)

    # ------------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[tuple[Point, Any]]:
        return iter(self._entries)

    def range_query(self, rect: Rect) -> list[tuple[Point, Any]]:
        """Exact linear scan — buckets cannot express rectangles."""
        return [(p, item) for p, item in self._entries if rect.contains_point(p)]

    def candidate_entries(self, query: Point) -> list[tuple[Point, Any]]:
        """Union of the query's (multiprobed) buckets across all tables.

        Deduplicated by entry id, preserving first-seen order so the
        candidate list is deterministic in ``(data, seed, query)``.
        """
        seen: set[int] = set()
        out: list[tuple[Point, Any]] = []
        for t in range(self.tables):
            for key in self._probe_keys(t, query):
                for eid in self._buckets[t].get(key, ()):
                    if eid not in seen:
                        seen.add(eid)
                        out.append(self._entries[eid])
        return out
