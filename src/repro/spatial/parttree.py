"""Spill partition trees: kd / rp / 2-means split rules behind SpatialIndex.

After the spatialtree design: every inner node projects its points onto a
split direction ``w`` and sends those below the threshold left, the rest
right.  The ``rule`` picks ``w``:

- ``"kd"`` — the axis of maximum variance (axis-aligned, the classic
  k-d split),
- ``"rp"`` — the best of ``samples_rp`` seeded random Gaussian directions
  (an RP-tree; oblique splits adapt to intrinsic data shape),
- ``"2-means"`` — the direction between two Lloyd-iterated centroids
  (splits along the locally dominant cluster structure).

``spill`` in ``[0, 0.5)`` duplicates the fraction of points nearest the
cut into *both* children.  Spill only pays off on the approximate path:
:meth:`PartitionTree.candidate_entries` descends a single branch per level
(defeatist search), and the overlap makes near-boundary neighbors
reachable from either side, buying recall at a controlled candidate-set
growth.

Exactness is preserved regardless of rule or spill: every node stores the
true MBR of the points beneath it, so :meth:`range_query` and
:meth:`nearest` prune with rectangles exactly like an R-tree (entries
reached twice through spilled subtrees are deduplicated by entry id).
When ``spill == 0`` and no inserts are buffered the tree also exposes the
generic best-first traversal hook, so MBM/kNN run over it natively.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.distance import mindist_point_rect
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import SpatialIndex, validate_entries, validate_location

SPLIT_RULES = ("kd", "rp", "2-means")


class _PTNode:
    """One partition-tree node, shaped like the R-tree node protocol.

    Leaves carry ``points``/``items`` plus the parallel ``entry_ids`` used
    to deduplicate spilled entries; inner nodes carry exactly two
    ``children`` and the split ``(w, threshold)`` used by the defeatist
    descent.
    """

    __slots__ = (
        "is_leaf", "points", "items", "entry_ids", "children",
        "mbr", "w", "threshold",
    )

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.points: list[Point] = []
        self.items: list[Any] = []
        self.entry_ids: list[int] = []
        self.children: list["_PTNode"] = []
        self.mbr: Rect | None = None
        self.w: tuple[float, float] = (1.0, 0.0)
        self.threshold: float = 0.0


class PartitionTree(SpatialIndex):
    """A spill tree over one of the :data:`SPLIT_RULES`.

    Parameters
    ----------
    rule:
        Split-direction rule: ``"kd"``, ``"rp"``, or ``"2-means"``.
    spill:
        Fraction of each node's points (those nearest the cut) duplicated
        into both children; ``0.0`` builds a plain partition tree.
    leaf_capacity:
        Maximum entries per leaf.
    seed:
        Seeds every random draw (rp directions, 2-means starts); builds
        are fully deterministic in ``(entries, parameters, seed)``.
    samples_rp / steps_2means:
        Candidate directions per rp split / Lloyd iterations per 2-means
        split.
    """

    def __init__(
        self,
        rule: str = "rp",
        spill: float = 0.0,
        leaf_capacity: int = 32,
        seed: int = 0,
        samples_rp: int = 10,
        steps_2means: int = 8,
    ) -> None:
        if rule not in SPLIT_RULES:
            raise ConfigurationError(
                f"unknown split rule {rule!r}; known: {list(SPLIT_RULES)}"
            )
        if not 0.0 <= spill < 0.5:
            raise ConfigurationError("spill must lie in [0, 0.5)")
        if leaf_capacity < 1:
            raise ConfigurationError("leaf_capacity must be >= 1")
        self.rule = rule
        self.spill = spill
        self.leaf_capacity = leaf_capacity
        self.seed = seed
        self.samples_rp = samples_rp
        self.steps_2means = steps_2means
        self.root: _PTNode | None = None
        self._entries: list[tuple[Point, Any]] = []
        self._overflow: list[tuple[Point, Any]] = []
        self.version = 0

    # ------------------------------------------------------------------ build

    def bulk_load(self, items: Iterable[tuple[Point, Any]]) -> None:
        self.version += 1
        self._entries = validate_entries(items)
        self._overflow = []
        if not self._entries:
            self.root = None
            return
        coords = np.array(
            [(p.x, p.y) for p, _ in self._entries], dtype=np.float64
        )
        self._node_counter = 0
        self.root = self._build(coords, np.arange(len(self._entries)))

    def _split_direction(
        self, coords: np.ndarray, idx: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        sub = coords[idx]
        if self.rule == "kd":
            var = sub.var(axis=0)
            axis = int(np.argmax(var))
            w = np.zeros(2)
            w[axis] = 1.0
            return w
        if self.rule == "rp":
            cands = rng.standard_normal((self.samples_rp, 2))
            norms = np.linalg.norm(cands, axis=1)
            norms[norms == 0.0] = 1.0
            cands /= norms[:, None]
            spreads = (sub @ cands.T).var(axis=0)
            return cands[int(np.argmax(spreads))]
        # 2-means: a few Lloyd steps from two seeded starts; the split
        # direction is the line between the final centroids.
        starts = rng.choice(len(sub), size=2, replace=False)
        centers = sub[starts].astype(np.float64)
        for _ in range(self.steps_2means):
            d0 = ((sub - centers[0]) ** 2).sum(axis=1)
            d1 = ((sub - centers[1]) ** 2).sum(axis=1)
            mask = d1 < d0
            if mask.all() or (~mask).all():
                break
            centers = np.array([sub[~mask].mean(axis=0), sub[mask].mean(axis=0)])
        w = centers[1] - centers[0]
        norm = float(np.linalg.norm(w))
        if norm == 0.0:  # all points identical: any direction works
            return np.array([1.0, 0.0])
        return w / norm

    def _build(self, coords: np.ndarray, idx: np.ndarray) -> _PTNode:
        node_id = self._node_counter
        self._node_counter += 1
        sub_points = [self._entries[i][0] for i in idx]
        if len(idx) <= self.leaf_capacity:
            leaf = _PTNode(is_leaf=True)
            leaf.points = sub_points
            leaf.items = [self._entries[i][1] for i in idx]
            leaf.entry_ids = [int(i) for i in idx]
            leaf.mbr = Rect.from_points(sub_points)
            return leaf
        rng = np.random.default_rng([self.seed, node_id])
        w = self._split_direction(coords, idx, rng)
        proj = coords[idx] @ w
        order = np.argsort(proj, kind="stable")
        n = len(idx)
        spill_count = int(self.spill * n / 2.0)
        half = (n + 1) // 2
        left_hi = half + spill_count
        right_lo = half - spill_count
        left_idx = idx[order[:left_hi]]
        right_idx = idx[order[right_lo:]]
        if len(left_idx) >= n or len(right_idx) >= n:
            # Degenerate split (e.g. all projections equal under maximal
            # spill): fall back to a plain leaf to guarantee termination.
            leaf = _PTNode(is_leaf=True)
            leaf.points = sub_points
            leaf.items = [self._entries[i][1] for i in idx]
            leaf.entry_ids = [int(i) for i in idx]
            leaf.mbr = Rect.from_points(sub_points)
            return leaf
        node = _PTNode(is_leaf=False)
        node.w = (float(w[0]), float(w[1]))
        node.threshold = float(
            (proj[order[left_hi - 1]] + proj[order[right_lo]]) / 2.0
        )
        node.children = [
            self._build(coords, left_idx),
            self._build(coords, right_idx),
        ]
        node.mbr = node.children[0].mbr.union(node.children[1].mbr)
        return node

    # ------------------------------------------------------------------ basic

    def insert(self, location: Point, item: Any) -> None:
        """Buffered insert: scanned linearly by queries until re-bulk-loaded."""
        validate_location(location)
        self.version += 1
        self._overflow.append((location, item))

    def __len__(self) -> int:
        return len(self._entries) + len(self._overflow)

    def entries(self) -> Iterator[tuple[Point, Any]]:
        yield from self._entries
        yield from self._overflow

    @property
    def overflow_size(self) -> int:
        return len(self._overflow)

    def traversal_roots(self) -> list[_PTNode] | None:
        """Native best-first hook — only when traversal cannot double-count.

        With ``spill > 0`` leaves share entries and with buffered inserts
        the tree is incomplete; both cases return None so generic searches
        take the exact exhaustive fallback instead.
        """
        if self.spill > 0.0 or self._overflow or self.root is None:
            return None
        return [self.root]

    # ----------------------------------------------------------- exact paths

    def range_query(self, rect: Rect) -> list[tuple[Point, Any]]:
        result = [
            (p, item) for p, item in self._overflow if rect.contains_point(p)
        ]
        if self.root is None:
            return result
        seen: set[int] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(rect):
                continue
            if node.is_leaf:
                for p, item, eid in zip(
                    node.points, node.items, node.entry_ids, strict=True
                ):
                    if eid not in seen and rect.contains_point(p):
                        seen.add(eid)
                        result.append((p, item))
            else:
                stack.extend(node.children)
        return result

    def nearest(self, query: Point, k: int) -> list[tuple[Point, Any]]:
        """Exact best-first kNN via node MBRs, spill-deduplicated."""
        if k < 1:
            raise ConfigurationError("k must be positive")
        seq = 0
        heap: list = []
        if self.root is not None and self.root.mbr is not None:
            heap.append(
                (mindist_point_rect(query, self.root.mbr), (0.0, 0.0), seq,
                 False, None, self.root)
            )
            seq += 1
        for p, item in self._overflow:
            heap.append(
                (p.distance_to(query), (p.x, p.y), seq, True, None, (p, item))
            )
            seq += 1
        heapq.heapify(heap)
        seen: set[int] = set()
        result: list[tuple[Point, Any]] = []
        while heap and len(result) < k:
            _, _, _, is_point, eid, payload = heapq.heappop(heap)
            if is_point:
                if eid is None or eid not in seen:
                    if eid is not None:
                        seen.add(eid)
                    result.append(payload)
                continue
            node = payload
            if node.is_leaf:
                for p, item, entry_id in zip(
                    node.points, node.items, node.entry_ids, strict=True
                ):
                    heapq.heappush(
                        heap,
                        (p.distance_to(query), (p.x, p.y), seq, True,
                         entry_id, (p, item)),
                    )
                    seq += 1
            else:
                for child in node.children:
                    if child.mbr is not None:
                        heapq.heappush(
                            heap,
                            (mindist_point_rect(query, child.mbr),
                             (child.mbr.xmin, child.mbr.ymin), seq, False,
                             None, child),
                        )
                        seq += 1
        return result

    # ------------------------------------------------------ approximate path

    def candidate_entries(self, query: Point) -> list[tuple[Point, Any]]:
        """Defeatist single-branch descent: the sub-linear candidate set.

        Follows the split decision at every inner node (no backtracking)
        and returns the reached leaf's entries plus any buffered inserts.
        With ``spill > 0`` the overlap region makes near-boundary true
        neighbors reachable despite the greedy descent; recall is measured,
        not guaranteed (see the engine's calibration).
        """
        out: list[tuple[Point, Any]] = []
        node = self.root
        while node is not None and not node.is_leaf:
            t = query.x * node.w[0] + query.y * node.w[1]
            node = node.children[0] if t <= node.threshold else node.children[1]
        if node is not None:
            out.extend(zip(node.points, node.items, strict=True))
        out.extend(self._overflow)
        return out
