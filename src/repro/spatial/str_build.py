"""Sharded parallel Sort-Tile-Recursive bulk loading.

STR construction has an embarrassingly parallel middle: after the global
``(x, y)`` sort fixes the vertical slices, each slice is sorted by
``(y, x)`` and cut into leaves *independently of every other slice*.
:func:`parallel_str_bulk_load` farms exactly that per-slice work to worker
processes and stitches the returned leaf payloads in slice order, so the
packed tree is **byte-identical** to a serial
:meth:`~repro.index.rtree.RTree.bulk_load` for any worker count —
verified structurally by :func:`tree_digest`.

:func:`str_partition_tiles` reuses the same sort-tile pass to cut a point
set into exactly ``tiles`` contiguous spatial cells; the serving cluster's
``"str"`` partition strategy builds its shards from these tiles, so shard
boundaries coincide with the index's own leaf tiling.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.index.rtree import RTree, slice_leaf_chunks, str_slices
from repro.index.base import validate_entries


def _build_slice(payload: tuple[list[tuple[Point, Any]], int]):
    """Worker entry point: tile one vertical slice into leaf chunks."""
    chunk, cap = payload
    return slice_leaf_chunks(chunk, cap)


def parallel_str_bulk_load(
    tree: RTree,
    entries: Iterable[tuple[Point, Any]],
    workers: int | None = None,
) -> RTree:
    """STR bulk-load ``tree`` using up to ``workers`` processes.

    ``workers=None`` or ``workers <= 1`` runs the per-slice tiling inline
    (still through the identical slice/chunk pipeline).  Items must be
    picklable when ``workers > 1``.  Returns ``tree`` for chaining.
    """
    if workers is not None and workers < 1:
        raise ConfigurationError("workers must be >= 1 or None")
    pairs = validate_entries(entries)
    pairs.sort(key=lambda e: (e[0].x, e[0].y))
    slices = str_slices(pairs, tree.max_entries)
    if workers is not None and workers > 1 and len(slices) > 1:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        with ctx.Pool(min(workers, len(slices))) as pool:
            per_slice = pool.map(
                _build_slice, [(chunk, tree.max_entries) for chunk in slices]
            )
    else:
        per_slice = [slice_leaf_chunks(chunk, tree.max_entries) for chunk in slices]
    tree.load_from_leaf_chunks(
        (payload for chunks in per_slice for payload in chunks), len(pairs)
    )
    return tree


def tree_digest(tree: RTree) -> str:
    """A structural SHA-256 over the tree: shape, MBRs, and leaf contents.

    Two trees digest equal iff they have the same node structure with the
    same bounding rectangles and the same entries in the same slots — the
    serial/parallel byte-identity check of the parallel loader.  Items
    hash by their ``poi_id`` when they have one, else by ``repr``.
    """
    h = hashlib.sha256()

    def item_key(item: Any) -> str:
        pid = getattr(item, "poi_id", None)
        return f"id:{pid}" if pid is not None else repr(item)

    stack = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        mbr = node.mbr
        bounds = (
            (mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax) if mbr is not None else None
        )
        h.update(f"n:{depth}:{node.is_leaf}:{bounds!r}".encode())
        if node.is_leaf:
            for p, item in zip(node.points, node.items, strict=True):
                h.update(f"e:{p.x!r}:{p.y!r}:{item_key(item)}".encode())
        else:
            # Reversed so children hash in tree order despite LIFO popping.
            for child in reversed(node.children):
                stack.append((child, depth + 1))
    return h.hexdigest()


def str_partition_tiles(
    entries: Iterable[tuple[Point, Any]], tiles: int
) -> list[list[tuple[Point, Any]]]:
    """Cut ``entries`` into exactly ``tiles`` non-empty contiguous STR cells.

    The same sort-tile pass as the bulk loader, parameterized by the target
    cell count instead of the node capacity: ``ceil(sqrt(tiles))`` vertical
    slices, each cut horizontally, with integer boundaries ``n*k // m``
    that guarantee every cell is non-empty whenever ``len(entries) >=
    tiles``.  Deterministic in the entry multiset.
    """
    if tiles < 1:
        raise ConfigurationError("tiles must be >= 1")
    pairs = validate_entries(entries)
    if len(pairs) < tiles:
        raise ConfigurationError(
            f"cannot tile {len(pairs)} entries into {tiles} non-empty cells"
        )
    pairs.sort(key=lambda e: (e[0].x, e[0].y))
    slice_count = min(tiles, max(1, round(tiles**0.5)))
    base, extra = divmod(tiles, slice_count)
    cells_per_slice = [
        base + (1 if i < extra else 0) for i in range(slice_count)
    ]
    out: list[list[tuple[Point, Any]]] = []
    n = len(pairs)
    consumed_cells = 0
    for cells in cells_per_slice:
        lo = n * consumed_cells // tiles
        hi = n * (consumed_cells + cells) // tiles
        chunk = sorted(pairs[lo:hi], key=lambda e: (e[0].y, e[0].x))
        m = len(chunk)
        for j in range(cells):
            out.append(chunk[m * j // cells : m * (j + 1) // cells])
        consumed_cells += cells
    return out
