"""Multi-party protocol simulation with exact cost accounting.

The paper reports three dominating costs (Section 8.1): total communication
(bytes over every link, including user-to-user), total user computation
(the sum over all group members, coordinator included), and LSP
computation.  This package provides the bookkeeping substrate:

- :mod:`~repro.protocol.messages` — typed protocol messages, each knowing
  its exact wire size (locations are L_l = 16 bytes, eps_1 ciphertexts
  L_e = 2 * keysize / 8 bytes, eps_2 ciphertexts 3 * keysize / 8),
- :mod:`~repro.protocol.metrics` — the :class:`~repro.protocol.metrics.CostLedger`
  that records message bytes per link, CPU time per role, and homomorphic
  operation counts per role.

Simulation is in-process: parties are plain objects, a "send" is a ledger
record plus a method call.  Communication cost is therefore *exact* while
computation cost is real measured CPU time of the party's code.
"""

from repro.protocol.messages import (
    CIPHERTEXT_OVERHEAD,
    FLOAT_BYTES,
    INT_BYTES,
    LOCATION_BYTES,
    EncryptedAnswer,
    GenericMessage,
    GroupQueryRequest,
    LocationSetUpload,
    Message,
    OptGroupQueryRequest,
    OptSingleQueryRequest,
    PlaintextAnswerBroadcast,
    PositionAssignment,
    SingleQueryRequest,
)
from repro.protocol.metrics import CostLedger, CostReport, TranscriptEntry
from repro.protocol.transcript import format_transcript

__all__ = [
    "Message",
    "GenericMessage",
    "PositionAssignment",
    "LocationSetUpload",
    "GroupQueryRequest",
    "OptGroupQueryRequest",
    "OptSingleQueryRequest",
    "SingleQueryRequest",
    "EncryptedAnswer",
    "PlaintextAnswerBroadcast",
    "CostLedger",
    "CostReport",
    "TranscriptEntry",
    "format_transcript",
    "LOCATION_BYTES",
    "INT_BYTES",
    "FLOAT_BYTES",
    "CIPHERTEXT_OVERHEAD",
]
