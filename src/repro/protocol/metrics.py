"""Cost accounting: bytes per link, CPU time per role, operation counts.

The ledger is the single sink every protocol run writes into; the
benchmark harness reads its :class:`CostReport` to produce the paper's
three series (communication cost, user cost, LSP cost).

Role conventions: ``"user"`` aggregates the regular group members,
``"coordinator"`` is u_c, and ``"lsp"`` is the server.  The paper's "user
cost" is the sum of user and coordinator time; exposed as
:attr:`CostReport.user_cost_seconds`.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.crypto.homomorphic import OpCounter
from repro.protocol.messages import Message

USER = "user"
COORDINATOR = "coordinator"
LSP = "lsp"

_ROLES = (USER, COORDINATOR, LSP)


@dataclass(frozen=True)
class TranscriptEntry:
    """One message crossing a link, in send order."""

    sender: str
    receiver: str
    kind: str
    byte_size: int


@dataclass(frozen=True)
class CostReport:
    """An immutable snapshot of one protocol run's costs."""

    comm_bytes_by_link: dict[tuple[str, str], int]
    time_by_role: dict[str, float]
    ops_by_role: dict[str, OpCounter]
    messages_by_link: dict[tuple[str, str], int]
    transcript: tuple[TranscriptEntry, ...] = ()

    @property
    def total_comm_bytes(self) -> int:
        """All bytes over all links — the paper's total communication cost."""
        return sum(self.comm_bytes_by_link.values())

    @property
    def intra_group_comm_bytes(self) -> int:
        """Bytes exchanged inside the user group (no LSP endpoint)."""
        return sum(
            size
            for (sender, receiver), size in self.comm_bytes_by_link.items()
            if LSP not in (sender, receiver)
        )

    @property
    def user_cost_seconds(self) -> float:
        """Summed computation of every group member, coordinator included."""
        return self.time_by_role.get(USER, 0.0) + self.time_by_role.get(COORDINATOR, 0.0)

    @property
    def lsp_cost_seconds(self) -> float:
        """The LSP's computation time."""
        return self.time_by_role.get(LSP, 0.0)

    def link_bytes(self, sender: str, receiver: str) -> int:
        """Bytes sent over one directed link."""
        return self.comm_bytes_by_link.get((sender, receiver), 0)


@dataclass
class CostLedger:
    """Mutable accumulator the protocol code writes into while running."""

    comm_bytes: defaultdict = field(
        default_factory=lambda: defaultdict(int)
    )
    message_counts: defaultdict = field(
        default_factory=lambda: defaultdict(int)
    )
    times: defaultdict = field(default_factory=lambda: defaultdict(float))
    counters: dict[str, OpCounter] = field(
        default_factory=lambda: {role: OpCounter() for role in _ROLES}
    )
    transcript: list = field(default_factory=list)

    def record(self, sender: str, receiver: str, message: Message) -> None:
        """Account one message crossing the ``sender -> receiver`` link.

        Wrappers (e.g. transport envelopes) expose a ``transcript_kind`` so
        the transcript names the payload they carry, not the wrapper.
        """
        size = message.byte_size
        kind = getattr(message, "transcript_kind", type(message).__name__)
        self.comm_bytes[(sender, receiver)] += size
        self.message_counts[(sender, receiver)] += 1
        self.transcript.append(TranscriptEntry(sender, receiver, kind, size))

    def record_broadcast(
        self, sender: str, receivers: int, message: Message, receiver_role: str
    ) -> None:
        """Account the same message delivered to ``receivers`` parties."""
        for _ in range(receivers):
            self.record(sender, receiver_role, message)

    @contextmanager
    def clock(self, role: str) -> Iterator[None]:
        """Attribute the wall time of the enclosed block to ``role``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.times[role] += time.perf_counter() - start

    def counter(self, role: str) -> OpCounter:
        """The homomorphic-operation counter of one role."""
        return self.counters.setdefault(role, OpCounter())

    def report(self) -> CostReport:
        """Freeze the current totals into a report."""
        return CostReport(
            comm_bytes_by_link=dict(self.comm_bytes),
            time_by_role=dict(self.times),
            ops_by_role={role: c for role, c in self.counters.items()},
            messages_by_link=dict(self.message_counts),
            transcript=tuple(self.transcript),
        )
