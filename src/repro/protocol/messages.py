"""Protocol messages and their exact wire sizes.

Size conventions follow the paper's cost model (Sections 6-7 and 8.1):

- a location is L_l = 16 bytes (two float64 coordinates),
- an eps_s ciphertext is ``(s + 1) * keysize / 8`` bytes (an element of
  ``Z_{N^{s+1}}``), so L_e = 2 * keysize / 8 for eps_1,
- small scalars (counts, ids, positions) are 4 bytes, parameters 8 bytes,
- a returned plaintext POI is 8 bytes (the paper returns coordinates at
  8 bytes per POI).

Every message type computes its size from its actual content, so the
benchmark's communication numbers are measurements, not formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.encoding.answers import DecodedAnswer
from repro.errors import ProtocolError
from repro.geometry.point import Point

#: Bytes per transmitted location (two float64 coordinates) — the paper's L_l.
LOCATION_BYTES = 16
#: Bytes per small integer field (ids, counts, positions).
INT_BYTES = 4
#: Bytes per scalar parameter (theta0 and friends).
FLOAT_BYTES = 8
#: Bytes per returned plaintext POI (coordinates, as in Section 8.1).
POI_BYTES = 8
#: Fixed framing bytes we charge per ciphertext (level tag); zero keeps the
#: accounting aligned with the paper's pure-payload model.
CIPHERTEXT_OVERHEAD = 0


class Message(Protocol):
    """Anything with a wire size can cross a channel."""

    @property
    def byte_size(self) -> int: ...


def ciphertext_vector_bytes(ciphertexts: Sequence[Ciphertext]) -> int:
    """Total payload bytes of a ciphertext vector."""
    return sum(c.byte_size + CIPHERTEXT_OVERHEAD for c in ciphertexts)


@dataclass(frozen=True, slots=True)
class GenericMessage:
    """An explicitly sized message for baseline protocols."""

    kind: str
    size: int

    @property
    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True, slots=True)
class PositionAssignment:
    """Coordinator -> subgroup user: the absolute slot pos_j for the real location."""

    position: int

    @property
    def byte_size(self) -> int:
        return INT_BYTES


@dataclass(frozen=True, slots=True)
class LocationSetUpload:
    """User -> LSP: the user id and the length-d location set L_i."""

    user_id: int
    locations: tuple[Point, ...]

    @property
    def byte_size(self) -> int:
        return INT_BYTES + LOCATION_BYTES * len(self.locations)


@dataclass(frozen=True, slots=True)
class SingleQueryRequest:
    """User -> LSP for n = 1 (Section 3.2): {k, L, pk, [v]}.

    The location set rides inside this message (single user, no subgroup
    machinery); the indicator has length d.
    """

    k: int
    public_key: PaillierPublicKey
    locations: tuple[Point, ...]
    indicator: tuple[Ciphertext, ...]

    @property
    def byte_size(self) -> int:
        return (
            INT_BYTES
            + self.public_key.key_bits // 8
            + LOCATION_BYTES * len(self.locations)
            + ciphertext_vector_bytes(self.indicator)
        )


@dataclass(frozen=True, slots=True)
class OptSingleQueryRequest:
    """User -> LSP for single-user PPGNN-OPT: {k, L, pk, [v1], [[v2]]}."""

    k: int
    public_key: PaillierPublicKey
    locations: tuple[Point, ...]
    inner_indicator: tuple[Ciphertext, ...]
    outer_indicator: tuple[Ciphertext, ...]

    def __post_init__(self) -> None:
        if any(c.s != 1 for c in self.inner_indicator):
            raise ProtocolError("inner indicator must be eps_1 ciphertexts")
        if any(c.s != 2 for c in self.outer_indicator):
            raise ProtocolError("outer indicator must be eps_2 ciphertexts")

    @property
    def byte_size(self) -> int:
        return (
            INT_BYTES
            + self.public_key.key_bits // 8
            + LOCATION_BYTES * len(self.locations)
            + ciphertext_vector_bytes(self.inner_indicator)
            + ciphertext_vector_bytes(self.outer_indicator)
        )


@dataclass(frozen=True, slots=True)
class GroupQueryRequest:
    """Coordinator -> LSP (Algorithm 1 line 11): {k, pk, n-bar, d-bar, [v], theta0}."""

    k: int
    public_key: PaillierPublicKey
    subgroup_sizes: tuple[int, ...]
    segment_sizes: tuple[int, ...]
    indicator: tuple[Ciphertext, ...]
    theta0: float | None

    @property
    def byte_size(self) -> int:
        return (
            INT_BYTES
            + self.public_key.key_bits // 8
            + INT_BYTES * (len(self.subgroup_sizes) + len(self.segment_sizes))
            + ciphertext_vector_bytes(self.indicator)
            + FLOAT_BYTES
        )


@dataclass(frozen=True, slots=True)
class OptGroupQueryRequest:
    """Coordinator -> LSP for PPGNN-OPT (Section 6): the two small indicators.

    ``inner_indicator`` is the eps_1 vector [v1] over within-block positions
    and ``outer_indicator`` the eps_2 vector [[v2]] over blocks.
    """

    k: int
    public_key: PaillierPublicKey
    subgroup_sizes: tuple[int, ...]
    segment_sizes: tuple[int, ...]
    inner_indicator: tuple[Ciphertext, ...]
    outer_indicator: tuple[Ciphertext, ...]
    theta0: float | None

    def __post_init__(self) -> None:
        if any(c.s != 1 for c in self.inner_indicator):
            raise ProtocolError("inner indicator must be eps_1 ciphertexts")
        if any(c.s != 2 for c in self.outer_indicator):
            raise ProtocolError("outer indicator must be eps_2 ciphertexts")

    @property
    def byte_size(self) -> int:
        return (
            INT_BYTES
            + self.public_key.key_bits // 8
            + INT_BYTES * (len(self.subgroup_sizes) + len(self.segment_sizes))
            + ciphertext_vector_bytes(self.inner_indicator)
            + ciphertext_vector_bytes(self.outer_indicator)
            + FLOAT_BYTES
        )


@dataclass(frozen=True, slots=True)
class EncryptedAnswer:
    """LSP -> coordinator: the m selected answer ciphertexts [a*]."""

    ciphertexts: tuple[Ciphertext, ...]

    @property
    def byte_size(self) -> int:
        return ciphertext_vector_bytes(self.ciphertexts)


@dataclass(frozen=True, slots=True)
class PlaintextAnswerBroadcast:
    """Coordinator -> each user: the decrypted, decoded answer."""

    answers: tuple[DecodedAnswer, ...] = field(default=())

    @property
    def byte_size(self) -> int:
        return INT_BYTES + POI_BYTES * len(self.answers)
