"""Human-readable protocol transcripts.

Every :class:`~repro.protocol.metrics.CostLedger` records the ordered
sequence of messages that crossed its links; this module renders that
sequence as a compact message-flow diagram — the executable counterpart of
the paper's Algorithm 1/2 narration, used by ``examples/protocol_trace.py``
and handy when debugging a new protocol variant.

Consecutive identical messages over the same link (e.g. the n location-set
uploads) are collapsed into one annotated line.
"""

from __future__ import annotations

from repro.protocol.metrics import CostReport, TranscriptEntry


def _collapse(entries: tuple[TranscriptEntry, ...]):
    """Group runs of identical (sender, receiver, kind) messages."""
    grouped: list[tuple[TranscriptEntry, int, int]] = []
    for entry in entries:
        if (
            grouped
            and grouped[-1][0].sender == entry.sender
            and grouped[-1][0].receiver == entry.receiver
            and grouped[-1][0].kind == entry.kind
        ):
            head, count, total = grouped[-1]
            grouped[-1] = (head, count + 1, total + entry.byte_size)
        else:
            grouped.append((entry, 1, entry.byte_size))
    return grouped


def format_transcript(report: CostReport) -> str:
    """Render a cost report's message sequence as an arrow diagram."""
    if not report.transcript:
        return "(no messages recorded)"
    lines = []
    width = max(
        len(f"{e.sender} -> {e.receiver}") for e in report.transcript
    )
    for head, count, total in _collapse(report.transcript):
        link = f"{head.sender} -> {head.receiver}"
        multiplier = f" x{count}" if count > 1 else ""
        lines.append(
            f"  {link.ljust(width)}  {head.kind}{multiplier}  ({total} B)"
        )
    lines.append(f"  {'total'.ljust(width)}  {report.total_comm_bytes} B")
    return "\n".join(lines)
