"""Spatial index substrate.

The paper's LSP answers plaintext kGNN queries with the MBM algorithm of
Papadias et al. [24], which runs best-first search over an R-tree.  The
original evaluation used a C++ R-tree; this package implements the same
structures in Python:

- :class:`~repro.index.rtree.RTree` — quadratic-split insertion, STR bulk
  loading, deletion, range queries, and the (mbr, entries) traversal the
  best-first kNN/kGNN searches consume,
- :class:`~repro.index.grid.GridIndex` — a uniform grid (used by the APNN
  baseline's precomputation),
- :class:`~repro.index.kdtree.KDTree` — a median-balanced k-d tree with
  best-first kNN (an independent cross-check and snapping structure),
- :class:`~repro.index.bruteforce.BruteForceIndex` — the O(D) oracle used to
  property-test the tree-based indexes.
"""

from repro.index.base import SpatialIndex
from repro.index.bruteforce import BruteForceIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree

__all__ = ["SpatialIndex", "BruteForceIndex", "GridIndex", "KDTree", "RTree"]
