"""Common interface for spatial indexes over (Point, item) pairs."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass
class IndexCounters:
    """Exact per-engine work counters, published as ``index.*`` metrics.

    ``candidates_scored`` counts every entry whose exact distance (or
    aggregate score) was computed — the honest measure of per-query
    candidate work, and the counter the index-scale perf baseline gates.
    ``nodes_visited`` counts tree nodes expanded by hierarchical searches
    (always 0 for flat indexes).
    """

    queries: int = 0
    nodes_visited: int = 0
    candidates_scored: int = 0

    def merge(self, other: "IndexCounters") -> None:
        """Fold another engine's counters into this one (cluster roll-up)."""
        self.queries += other.queries
        self.nodes_visited += other.nodes_visited
        self.candidates_scored += other.candidates_scored


class TraversalNode:
    """A synthetic best-first traversal node for non-tree indexes.

    Matches the node protocol of the R-tree (``is_leaf`` / ``points`` /
    ``items`` / ``children`` / ``mbr``), so an index without a native node
    hierarchy can still expose :meth:`SpatialIndex.traversal_roots` by
    wrapping its buckets.
    """

    __slots__ = ("is_leaf", "points", "items", "children", "mbr")

    def __init__(
        self,
        is_leaf: bool,
        points: list[Point] | None = None,
        items: list[Any] | None = None,
        children: list | None = None,
        mbr: Rect | None = None,
    ) -> None:
        self.is_leaf = is_leaf
        self.points = points if points is not None else []
        self.items = items if items is not None else []
        self.children = children if children is not None else []
        self.mbr = mbr


def validate_location(location: Point) -> Point:
    """Reject non-finite coordinates with one consistent error.

    Every index calls this on insert and bulk load, so NaN/inf inputs fail
    identically regardless of which index backs the engine (a NaN would
    otherwise poison comparisons silently in some indexes and raise
    obscurely in others).
    """
    if not location.is_finite:
        raise ConfigurationError(f"non-finite location {location}")
    return location


def validate_entries(items: Iterable[tuple[Point, Any]]) -> list[tuple[Point, Any]]:
    """Materialize and validate a bulk-load entry iterable."""
    pairs = []
    for location, item in items:
        if not location.is_finite:
            raise ConfigurationError(f"non-finite location {location}")
        pairs.append((location, item))
    return pairs


class SpatialIndex(ABC):
    """A container of ``(location, item)`` entries supporting spatial queries.

    ``item`` is opaque to the index (the LSP stores POI objects).  All
    indexes in this package implement the same minimal surface so query
    algorithms (kNN, MBM kGNN) and tests can swap them freely.

    Duplicate *locations* are allowed everywhere (two POIs may share one
    coordinate); duplicate identical ``(location, item)`` entries are kept
    as distinct entries, matching insertion-order semantics.  Non-finite
    locations are rejected consistently via :func:`validate_location`.
    """

    #: Monotone mutation counter: every content change bumps it, so result
    #: caches keyed on ``(version, query)`` invalidate automatically.
    version: int = 0

    @abstractmethod
    def insert(self, location: Point, item: Any) -> None:
        """Add one entry."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    @abstractmethod
    def entries(self) -> Iterator[tuple[Point, Any]]:
        """Iterate over all ``(location, item)`` entries in arbitrary order."""

    @abstractmethod
    def range_query(self, rect: Rect) -> list[tuple[Point, Any]]:
        """All entries whose location falls inside ``rect`` (inclusive)."""

    def bulk_load(self, items: Iterable[tuple[Point, Any]]) -> None:
        """Insert many entries; subclasses may override with a faster path."""
        for location, item in validate_entries(items):
            self.insert(location, item)

    def traversal_roots(self) -> list | None:
        """Best-first traversal hook: root node(s), or None when unavailable.

        Returned nodes follow the R-tree node protocol (``is_leaf``,
        ``points``/``items`` on leaves, ``children`` on inner nodes, and an
        ``mbr`` that bounds everything beneath).  Query algorithms fall
        back to an exhaustive sorted scan over :meth:`entries` when this
        returns None, so non-hierarchical indexes stay exact.
        """
        return None

    def __bool__(self) -> bool:
        return len(self) > 0
