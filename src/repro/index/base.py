"""Common interface for spatial indexes over (Point, item) pairs."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class SpatialIndex(ABC):
    """A container of ``(location, item)`` entries supporting spatial queries.

    ``item`` is opaque to the index (the LSP stores POI objects).  All
    indexes in this package implement the same minimal surface so query
    algorithms (kNN, MBM kGNN) and tests can swap them freely.
    """

    @abstractmethod
    def insert(self, location: Point, item: Any) -> None:
        """Add one entry."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    @abstractmethod
    def entries(self) -> Iterator[tuple[Point, Any]]:
        """Iterate over all ``(location, item)`` entries in arbitrary order."""

    @abstractmethod
    def range_query(self, rect: Rect) -> list[tuple[Point, Any]]:
        """All entries whose location falls inside ``rect`` (inclusive)."""

    def bulk_load(self, items: Iterable[tuple[Point, Any]]) -> None:
        """Insert many entries; subclasses may override with a faster path."""
        for location, item in items:
            self.insert(location, item)

    def __bool__(self) -> bool:
        return len(self) > 0
