"""Static balanced k-d tree over point data.

A second tree-shaped index besides the R-tree: median-split construction,
range queries, and best-first kNN.  The query engines default to the
R-tree (MBM needs rectangle bounds), but the k-d tree serves as an
independent implementation for cross-checking, as the nearest-node snapper
of custom substrates, and as the textbook comparison point in index tests.

The tree is rebuilt rather than rebalanced: ``insert`` appends to a small
overflow buffer that queries scan linearly, and ``rebuild`` folds it in —
the standard static/dynamic compromise for median-built k-d trees.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import SpatialIndex


class _KDNode:
    __slots__ = ("point", "item", "axis", "left", "right")

    def __init__(self, point: Point, item: Any, axis: int) -> None:
        self.point = point
        self.item = item
        self.axis = axis
        self.left: "_KDNode | None" = None
        self.right: "_KDNode | None" = None


def _build(entries: list[tuple[Point, Any]], depth: int) -> _KDNode | None:
    if not entries:
        return None
    axis = depth % 2
    entries.sort(key=lambda e: (e[0].x if axis == 0 else e[0].y, e[0]))
    mid = len(entries) // 2
    point, item = entries[mid]
    node = _KDNode(point, item, axis)
    node.left = _build(entries[:mid], depth + 1)
    node.right = _build(entries[mid + 1 :], depth + 1)
    return node


class KDTree(SpatialIndex):
    """Median-balanced k-d tree with an insert overflow buffer."""

    def __init__(self) -> None:
        self._root: _KDNode | None = None
        self._count = 0
        self._overflow: list[tuple[Point, Any]] = []

    def bulk_load(self, items) -> None:
        entries = list(items)
        self._root = _build(entries, 0)
        self._count = len(entries)
        self._overflow = []

    def insert(self, location: Point, item: Any) -> None:
        self._overflow.append((location, item))
        self._count += 1

    def rebuild(self) -> None:
        """Fold the overflow buffer into a freshly balanced tree."""
        self.bulk_load(list(self.entries()))

    @property
    def overflow_size(self) -> int:
        """Entries awaiting :meth:`rebuild` (scanned linearly by queries)."""
        return len(self._overflow)

    def __len__(self) -> int:
        return self._count

    def entries(self) -> Iterator[tuple[Point, Any]]:
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            yield node.point, node.item
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        yield from self._overflow

    # ------------------------------------------------------------- queries

    def range_query(self, rect: Rect) -> list[tuple[Point, Any]]:
        result = [(p, item) for p, item in self._overflow if rect.contains_point(p)]
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            p = node.point
            if rect.contains_point(p):
                result.append((p, node.item))
            coord = p.x if node.axis == 0 else p.y
            low = rect.xmin if node.axis == 0 else rect.ymin
            high = rect.xmax if node.axis == 0 else rect.ymax
            if node.left and low <= coord:
                stack.append(node.left)
            if node.right and high >= coord:
                stack.append(node.right)
        return result

    def nearest(self, query: Point, k: int) -> list[tuple[Point, Any]]:
        """Best-first kNN over the tree plus a scan of the overflow buffer.

        Tree nodes are ranked by the distance between the query and the
        half-space slab they guard (zero until the search crosses the
        splitting plane), which keeps the search exact.
        """
        seq = count()
        heap: list = []
        if self._root:
            heapq.heappush(heap, (0.0, (0.0, 0.0), next(seq), False, self._root))
        for p, item in self._overflow:
            heapq.heappush(
                heap, (p.distance_to(query), (p.x, p.y), next(seq), True, (p, item))
            )
        result: list[tuple[Point, Any]] = []
        while heap and len(result) < k:
            bound, _, _, is_point, payload = heapq.heappop(heap)
            if is_point:
                result.append(payload)
                continue
            node = payload
            p = node.point
            heapq.heappush(
                heap, (p.distance_to(query), (p.x, p.y), next(seq), True, (p, node.item))
            )
            coord = p.x if node.axis == 0 else p.y
            q_coord = query.x if node.axis == 0 else query.y
            plane_dist = abs(q_coord - coord)
            near, far = (
                (node.left, node.right) if q_coord <= coord else (node.right, node.left)
            )
            if near:
                heapq.heappush(heap, (bound, (p.x, p.y), next(seq), False, near))
            if far:
                heapq.heappush(
                    heap, (max(bound, plane_dist), (p.x, p.y), next(seq), False, far)
                )
        return result
