"""Static balanced k-d tree over point data.

A second tree-shaped index besides the R-tree: median-split construction,
range queries, and best-first kNN.  The query engines default to the
R-tree (MBM needs rectangle bounds), but the k-d tree serves as an
independent implementation for cross-checking, as the nearest-node snapper
of custom substrates, and as the textbook comparison point in index tests.

The tree is rebuilt rather than rebalanced: ``insert`` appends to a small
overflow buffer that queries scan linearly, and ``rebuild`` folds it in —
the standard static/dynamic compromise for median-built k-d trees.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import (
    SpatialIndex,
    TraversalNode,
    validate_entries,
    validate_location,
)


class _KDNode:
    __slots__ = ("point", "item", "axis", "left", "right")

    def __init__(self, point: Point, item: Any, axis: int) -> None:
        self.point = point
        self.item = item
        self.axis = axis
        self.left: "_KDNode | None" = None
        self.right: "_KDNode | None" = None


def _build_presorted(
    entries: list[tuple[Point, Any]],
    by_x: list[int],
    by_y: list[int],
    side: list[int],
    depth: int,
) -> _KDNode | None:
    """Median-split construction over pre-sorted index lists.

    The classic O(n log n) bulk build: instead of re-sorting every
    recursion level (the naive O(n log^2 n) construction this replaced),
    both axis orders are sorted once up front and partitioned *stably*
    around each median, so every level costs O(n) total.  ``side`` is a
    scratch array indexed by entry id.
    """
    if not by_x:
        return None
    axis = depth % 2
    ordered = by_x if axis == 0 else by_y
    mid = len(ordered) // 2
    pivot = ordered[mid]
    point, item = entries[pivot]
    node = _KDNode(point, item, axis)
    for rank, idx in enumerate(ordered):
        side[idx] = (rank > mid) - (rank < mid)  # -1 left, 0 pivot, +1 right
    x_left = [i for i in by_x if side[i] < 0]
    x_right = [i for i in by_x if side[i] > 0]
    y_left = [i for i in by_y if side[i] < 0]
    y_right = [i for i in by_y if side[i] > 0]
    node.left = _build_presorted(entries, x_left, y_left, side, depth + 1)
    node.right = _build_presorted(entries, x_right, y_right, side, depth + 1)
    return node


#: Subtrees at most this large collapse into one traversal leaf.
_TRAVERSAL_LEAF = 32


def _to_traversal(node: _KDNode) -> tuple[TraversalNode, list[tuple[Point, Any]]]:
    """Wrap a k-d subtree in MBR-annotated traversal nodes, bottom-up."""
    sub_entries: list[tuple[Point, Any]] = [(node.point, node.item)]
    children: list[TraversalNode] = []
    for child in (node.left, node.right):
        if child is not None:
            wrapped, wrapped_entries = _to_traversal(child)
            children.append(wrapped)
            sub_entries.extend(wrapped_entries)
    if len(sub_entries) <= _TRAVERSAL_LEAF:
        leaf = TraversalNode(
            is_leaf=True,
            points=[p for p, _ in sub_entries],
            items=[item for _, item in sub_entries],
            mbr=Rect.from_points([p for p, _ in sub_entries]),
        )
        return leaf, sub_entries
    children.append(
        TraversalNode(
            is_leaf=True,
            points=[node.point],
            items=[node.item],
            mbr=Rect.from_points([node.point]),
        )
    )
    mbr = children[0].mbr
    for child in children[1:]:
        mbr = mbr.union(child.mbr)
    return TraversalNode(is_leaf=False, children=children, mbr=mbr), sub_entries


class KDTree(SpatialIndex):
    """Median-balanced k-d tree with an insert overflow buffer."""

    def __init__(self) -> None:
        self._root: _KDNode | None = None
        self._count = 0
        self._overflow: list[tuple[Point, Any]] = []
        self.version = 0
        self._traversal_cache: tuple[int, list[TraversalNode]] | None = None

    def bulk_load(self, items) -> None:
        self.version += 1
        entries = validate_entries(items)
        by_x = sorted(
            range(len(entries)), key=lambda i: (entries[i][0].x, entries[i][0])
        )
        by_y = sorted(
            range(len(entries)), key=lambda i: (entries[i][0].y, entries[i][0])
        )
        side = [0] * len(entries)
        self._root = _build_presorted(entries, by_x, by_y, side, 0)
        self._count = len(entries)
        self._overflow = []

    def insert(self, location: Point, item: Any) -> None:
        validate_location(location)
        self.version += 1
        self._overflow.append((location, item))
        self._count += 1

    def rebuild(self) -> None:
        """Fold the overflow buffer into a freshly balanced tree."""
        self.bulk_load(list(self.entries()))

    @property
    def overflow_size(self) -> int:
        """Entries awaiting :meth:`rebuild` (scanned linearly by queries)."""
        return len(self._overflow)

    def __len__(self) -> int:
        return self._count

    def traversal_roots(self) -> list[TraversalNode] | None:
        """An MBR-annotated view of the tree for generic best-first search.

        k-d nodes carry no bounding rectangles, so this wraps the tree in
        :class:`TraversalNode` shells with bottom-up MBRs (subtrees of at
        most ``_TRAVERSAL_LEAF`` entries collapse into one leaf).  The view
        is rebuilt lazily and cached per mutation version.  With buffered
        inserts pending the view would be incomplete, so the hook returns
        None and searches take the exact exhaustive fallback.
        """
        if self._overflow or self._root is None:
            return None
        if self._traversal_cache is not None and self._traversal_cache[0] == self.version:
            return self._traversal_cache[1]
        root, _ = _to_traversal(self._root)
        roots = [root]
        self._traversal_cache = (self.version, roots)
        return roots

    def entries(self) -> Iterator[tuple[Point, Any]]:
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            yield node.point, node.item
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        yield from self._overflow

    # ------------------------------------------------------------- queries

    def range_query(self, rect: Rect) -> list[tuple[Point, Any]]:
        result = [(p, item) for p, item in self._overflow if rect.contains_point(p)]
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            p = node.point
            if rect.contains_point(p):
                result.append((p, node.item))
            coord = p.x if node.axis == 0 else p.y
            low = rect.xmin if node.axis == 0 else rect.ymin
            high = rect.xmax if node.axis == 0 else rect.ymax
            if node.left and low <= coord:
                stack.append(node.left)
            if node.right and high >= coord:
                stack.append(node.right)
        return result

    def nearest(self, query: Point, k: int) -> list[tuple[Point, Any]]:
        """Best-first kNN over the tree plus a scan of the overflow buffer.

        Tree nodes are ranked by the distance between the query and the
        half-space slab they guard (zero until the search crosses the
        splitting plane), which keeps the search exact.
        """
        seq = count()
        heap: list = []
        if self._root:
            heapq.heappush(heap, (0.0, (0.0, 0.0), next(seq), False, self._root))
        for p, item in self._overflow:
            heapq.heappush(
                heap, (p.distance_to(query), (p.x, p.y), next(seq), True, (p, item))
            )
        result: list[tuple[Point, Any]] = []
        while heap and len(result) < k:
            bound, _, _, is_point, payload = heapq.heappop(heap)
            if is_point:
                result.append(payload)
                continue
            node = payload
            p = node.point
            heapq.heappush(
                heap, (p.distance_to(query), (p.x, p.y), next(seq), True, (p, node.item))
            )
            coord = p.x if node.axis == 0 else p.y
            q_coord = query.x if node.axis == 0 else query.y
            plane_dist = abs(q_coord - coord)
            near, far = (
                (node.left, node.right) if q_coord <= coord else (node.right, node.left)
            )
            if near:
                heapq.heappush(heap, (bound, (p.x, p.y), next(seq), False, near))
            if far:
                heapq.heappush(
                    heap, (max(bound, plane_dist), (p.x, p.y), next(seq), False, far)
                )
        return result
