"""R-tree with quadratic split, STR bulk loading, and deletion.

This is the LSP's index substrate: the MBM group-kNN algorithm [24] and the
plain best-first kNN both run over it.  The implementation follows Guttman's
original design (choose-leaf by least enlargement, quadratic split,
condense-tree deletion) plus Sort-Tile-Recursive bulk loading for fast
construction of the 62k-POI evaluation database.  Deletion support backs the
paper's "easily handles a dynamic database" claim (Section 1, novelty 1) —
demonstrated in ``examples/dynamic_database.py``.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import SpatialIndex, validate_entries, validate_location


def str_slices(
    pairs: list[tuple[Point, Any]], cap: int
) -> list[list[tuple[Point, Any]]]:
    """The vertical STR slices of ``pairs`` (already sorted by ``(x, y)``).

    Pure and deterministic: the slice boundaries depend only on the entry
    count and the node capacity, which is what lets
    :func:`repro.spatial.str_build.parallel_str_bulk_load` hand each slice
    to a different worker process and still stitch the exact tree a serial
    build produces.
    """
    if not pairs:
        return []
    leaf_count = math.ceil(len(pairs) / cap)
    slice_count = math.ceil(math.sqrt(leaf_count))
    slice_size = math.ceil(len(pairs) / slice_count)
    return [pairs[start : start + slice_size] for start in range(0, len(pairs), slice_size)]


def slice_leaf_chunks(
    chunk: list[tuple[Point, Any]], cap: int
) -> list[tuple[list[Point], list[Any]]]:
    """Sort one STR slice by ``(y, x)`` and cut it into leaf-sized chunks.

    Returns picklable ``(points, items)`` payloads — the unit of work a
    parallel STR build ships to worker processes.
    """
    ordered = sorted(chunk, key=lambda e: (e[0].y, e[0].x))
    out: list[tuple[list[Point], list[Any]]] = []
    for leaf_start in range(0, len(ordered), cap):
        sub = ordered[leaf_start : leaf_start + cap]
        out.append(([p for p, _ in sub], [item for _, item in sub]))
    return out


class _Node:
    """An R-tree node: a leaf holds (Point, item) pairs, an inner node holds children."""

    __slots__ = ("is_leaf", "points", "items", "children", "mbr")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.points: list[Point] = []
        self.items: list[Any] = []
        self.children: list["_Node"] = []
        self.mbr: Rect | None = None

    def entry_count(self) -> int:
        return len(self.points) if self.is_leaf else len(self.children)

    def recompute_mbr(self) -> None:
        if self.is_leaf:
            if self.points:
                self.mbr = Rect.from_points(self.points)
            else:
                self.mbr = None
        else:
            rects = [c.mbr for c in self.children if c.mbr is not None]
            if rects:
                mbr = rects[0]
                for r in rects[1:]:
                    mbr = mbr.union(r)
                self.mbr = mbr
            else:
                self.mbr = None

    def extend_mbr(self, rect: Rect) -> None:
        self.mbr = rect if self.mbr is None else self.mbr.union(rect)


class RTree(SpatialIndex):
    """Guttman R-tree over point data.

    Parameters
    ----------
    max_entries:
        Node fan-out M; nodes split when exceeding it.
    min_entries:
        Fill floor m (defaults to ``ceil(0.4 * M)``); deletion reinserts the
        content of underfull nodes.
    split:
        Overflow split strategy: ``"quadratic"`` (Guttman's default, better
        trees) or ``"linear"`` (O(M) seed picking, faster inserts, looser
        MBRs) — compared by the index split ablation test.
    """

    def __init__(
        self,
        max_entries: int = 32,
        min_entries: int | None = None,
        split: str = "quadratic",
    ) -> None:
        if max_entries < 4:
            raise ConfigurationError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else math.ceil(0.4 * max_entries)
        )
        if not 2 <= self.min_entries <= max_entries // 2:
            raise ConfigurationError(
                f"min_entries must lie in [2, {max_entries // 2}]"
            )
        if split not in ("quadratic", "linear"):
            raise ConfigurationError("split must be 'quadratic' or 'linear'")
        self.split_strategy = split
        self.root = _Node(is_leaf=True)
        self._count = 0
        #: Monotone mutation counter.  Every content change (insert, delete,
        #: bulk load) bumps it, so result caches keyed on ``(version, query)``
        #: invalidate automatically when the database moves under them.
        self.version = 0

    # ------------------------------------------------------------------ basic

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def entries(self) -> Iterator[tuple[Point, Any]]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from zip(node.points, node.items, strict=True)
            else:
                stack.extend(node.children)

    # ----------------------------------------------------------------- insert

    def insert(self, location: Point, item: Any) -> None:
        validate_location(location)
        self.version += 1
        leaf_rect = Rect.from_point(location)
        leaf = self._choose_leaf(self.root, leaf_rect)
        leaf.points.append(location)
        leaf.items.append(item)
        leaf.extend_mbr(leaf_rect)
        self._count += 1
        if leaf.entry_count() > self.max_entries:
            self._split_and_propagate(leaf)
        else:
            self._tighten_path(location)

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        self._path: list[_Node] = [node]
        while not node.is_leaf:
            best = min(
                node.children,
                key=lambda c: (c.mbr.enlargement(rect), c.mbr.area),  # type: ignore[union-attr]
            )
            node = best
            self._path.append(node)
        return node

    def _tighten_path(self, location: Point) -> None:
        rect = Rect.from_point(location)
        for node in self._path:
            node.extend_mbr(rect)

    def _split_and_propagate(self, node: _Node) -> None:
        """Split an overfull node and push splits up the recorded path."""
        path = self._path
        while node.entry_count() > self.max_entries:
            sibling = self._split_node(node)
            if node is self.root:
                new_root = _Node(is_leaf=False)
                new_root.children = [node, sibling]
                new_root.recompute_mbr()
                self.root = new_root
                return
            parent = path[path.index(node) - 1]
            parent.children.append(sibling)
            parent.recompute_mbr()
            node = parent
        for ancestor in reversed(path[: path.index(node) + 1]):
            ancestor.recompute_mbr()

    def _split_node(self, node: _Node) -> _Node:
        """Split an overfull node with the configured strategy."""
        if self.split_strategy == "linear":
            return self._distribute_split(node, self._pick_seeds_linear)
        return self._distribute_split(node, self._pick_seeds)

    def _quadratic_split(self, node: _Node) -> _Node:
        """Backwards-compatible alias for the quadratic strategy."""
        return self._distribute_split(node, self._pick_seeds)

    def _distribute_split(self, node: _Node, pick_seeds) -> _Node:
        """Guttman's split skeleton; ``pick_seeds`` chooses the two seeds."""
        if node.is_leaf:
            rects = [Rect.from_point(p) for p in node.points]
            payloads: list[Any] = list(zip(node.points, node.items, strict=True))
        else:
            rects = [c.mbr for c in node.children]  # type: ignore[misc]
            payloads = list(node.children)

        seed_a, seed_b = pick_seeds(rects)
        group_a = [seed_a]
        group_b = [seed_b]
        mbr_a = rects[seed_a]
        mbr_b = rects[seed_b]
        remaining = [i for i in range(len(rects)) if i not in (seed_a, seed_b)]
        total = len(rects)
        while remaining:
            # Force-assign when one group must absorb everything left to
            # reach the minimum fill.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                for i in remaining:
                    mbr_a = mbr_a.union(rects[i])
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                for i in remaining:
                    mbr_b = mbr_b.union(rects[i])
                break
            # Pick the entry with the greatest preference difference.
            best_idx = max(
                remaining,
                key=lambda i: abs(mbr_a.enlargement(rects[i]) - mbr_b.enlargement(rects[i])),
            )
            remaining.remove(best_idx)
            grow_a = mbr_a.enlargement(rects[best_idx])
            grow_b = mbr_b.enlargement(rects[best_idx])
            if (grow_a, mbr_a.area, len(group_a)) <= (grow_b, mbr_b.area, len(group_b)):
                group_a.append(best_idx)
                mbr_a = mbr_a.union(rects[best_idx])
            else:
                group_b.append(best_idx)
                mbr_b = mbr_b.union(rects[best_idx])
        assert len(group_a) + len(group_b) == total

        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            pairs_a = [payloads[i] for i in group_a]
            pairs_b = [payloads[i] for i in group_b]
            node.points = [p for p, _ in pairs_a]
            node.items = [it for _, it in pairs_a]
            sibling.points = [p for p, _ in pairs_b]
            sibling.items = [it for _, it in pairs_b]
        else:
            node.children = [payloads[i] for i in group_a]
            sibling.children = [payloads[i] for i in group_b]
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    @staticmethod
    def _pick_seeds(rects: list[Rect]) -> tuple[int, int]:
        """The pair wasting the most area when grouped together."""
        best = (-1.0, 0, 1)
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                waste = rects[i].union(rects[j]).area - rects[i].area - rects[j].area
                if waste > best[0]:
                    best = (waste, i, j)
        return best[1], best[2]

    @staticmethod
    def _pick_seeds_linear(rects: list[Rect]) -> tuple[int, int]:
        """Guttman's linear seed pick: most-separated pair per dimension.

        For each axis, find the rectangle with the highest low side and the
        one with the lowest high side; normalize their separation by the
        axis extent and take the dimension with the greatest value.
        """
        best = (-math.inf, 0, 1)
        for axis in range(2):
            if axis == 0:
                lows = [r.xmin for r in rects]
                highs = [r.xmax for r in rects]
            else:
                lows = [r.ymin for r in rects]
                highs = [r.ymax for r in rects]
            extent = max(highs) - min(lows)
            highest_low = max(range(len(rects)), key=lambda i: lows[i])
            lowest_high = min(range(len(rects)), key=lambda i: highs[i])
            if highest_low == lowest_high:
                continue
            separation = (lows[highest_low] - highs[lowest_high]) / (extent or 1.0)
            if separation > best[0]:
                best = (separation, lowest_high, highest_low)
        if best[1] == best[2]:  # degenerate: all rectangles identical
            return 0, 1
        return best[1], best[2]

    # -------------------------------------------------------------- bulk load

    def bulk_load(self, items: Iterable[tuple[Point, Any]]) -> None:
        """Sort-Tile-Recursive construction; replaces the current contents.

        Split into :func:`str_slices` / :func:`slice_leaf_chunks` /
        :meth:`load_from_leaf_chunks` so the parallel bulk loader of
        :mod:`repro.spatial.str_build` runs the identical pipeline with the
        per-slice work farmed out to processes.
        """
        pairs = validate_entries(items)
        pairs.sort(key=lambda e: (e[0].x, e[0].y))
        chunks = (
            payload
            for chunk in str_slices(pairs, self.max_entries)
            for payload in slice_leaf_chunks(chunk, self.max_entries)
        )
        self.load_from_leaf_chunks(chunks, len(pairs))

    def make_leaf(self, points: list[Point], items: list[Any]) -> _Node:
        """Materialize one bulk-load leaf from a picklable chunk payload."""
        leaf = _Node(is_leaf=True)
        leaf.points = list(points)
        leaf.items = list(items)
        leaf.recompute_mbr()
        return leaf

    def load_from_leaf_chunks(
        self, chunks: Iterable[tuple[list[Point], list[Any]]], count: int
    ) -> None:
        """Replace the contents with pre-tiled leaves, packing levels upward.

        ``chunks`` must be the output of :func:`slice_leaf_chunks` applied
        to every slice in order — the packing is deterministic in the chunk
        sequence, never in how the chunks were computed.
        """
        self.version += 1
        leaves = [self.make_leaf(points, items) for points, items in chunks]
        if not leaves:
            self.root = _Node(is_leaf=True)
            self._count = 0
            return
        cap = self.max_entries
        # Pack levels upward until a single root remains.
        level = leaves
        while len(level) > 1:
            level.sort(key=lambda nd: (nd.mbr.center.x, nd.mbr.center.y))  # type: ignore[union-attr]
            node_count = math.ceil(len(level) / cap)
            slice_count = math.ceil(math.sqrt(node_count))
            slice_size = math.ceil(len(level) / slice_count)
            parents: list[_Node] = []
            for start in range(0, len(level), slice_size):
                chunk = sorted(
                    level[start : start + slice_size],
                    key=lambda nd: (nd.mbr.center.y, nd.mbr.center.x),  # type: ignore[union-attr]
                )
                for node_start in range(0, len(chunk), cap):
                    parent = _Node(is_leaf=False)
                    parent.children = chunk[node_start : node_start + cap]
                    parent.recompute_mbr()
                    parents.append(parent)
            level = parents
        self.root = level[0]
        self._count = count

    def traversal_roots(self) -> list[_Node]:
        """Best-first traversal hook (see :meth:`SpatialIndex.traversal_roots`)."""
        return [self.root]

    # ----------------------------------------------------------------- delete

    def delete(self, location: Point, item: Any) -> bool:
        """Remove one entry matching ``(location, item)``.

        Returns True when an entry was removed.  Underfull leaves along the
        path are dissolved and their entries reinserted (condense-tree).
        """
        found = self._find_leaf(self.root, location, item, [])
        if found is None:
            return False
        self.version += 1
        leaf, path = found
        idx = next(
            i
            for i, (p, it) in enumerate(zip(leaf.points, leaf.items, strict=True))
            if p == location and it is item or (p == location and it == item)
        )
        leaf.points.pop(idx)
        leaf.items.pop(idx)
        self._count -= 1
        self._condense(leaf, path)
        return True

    def _find_leaf(
        self, node: _Node, location: Point, item: Any, path: list[_Node]
    ) -> tuple[_Node, list[_Node]] | None:
        if node.is_leaf:
            for p, it in zip(node.points, node.items, strict=True):
                if p == location and (it is item or it == item):
                    return node, path
            return None
        for child in node.children:
            if child.mbr is not None and child.mbr.contains_point(location):
                result = self._find_leaf(child, location, item, path + [node])
                if result is not None:
                    return result
        return None

    def _condense(self, leaf: _Node, path: list[_Node]) -> None:
        orphans: list[tuple[Point, Any]] = []
        node = leaf
        for parent in reversed(path):
            if node.entry_count() < self.min_entries and node is not self.root:
                parent.children.remove(node)
                orphans.extend(
                    zip(node.points, node.items, strict=True)
                    if node.is_leaf
                    else [e for c in self._collect_leaves(node) for e in c]
                )
            node.recompute_mbr()
            node = parent
        self.root.recompute_mbr()
        if not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        self._count -= len(orphans)
        for p, it in orphans:
            self.insert(p, it)

    def _collect_leaves(self, node: _Node) -> list[list[tuple[Point, Any]]]:
        if node.is_leaf:
            return [list(zip(node.points, node.items, strict=True))]
        collected: list[list[tuple[Point, Any]]] = []
        for child in node.children:
            collected.extend(self._collect_leaves(child))
        return collected

    # ------------------------------------------------------------------ query

    def range_query(self, rect: Rect) -> list[tuple[Point, Any]]:
        result: list[tuple[Point, Any]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(rect):
                continue
            if node.is_leaf:
                for p, item in zip(node.points, node.items, strict=True):
                    if rect.contains_point(p):
                        result.append((p, item))
            else:
                stack.extend(node.children)
        return result
