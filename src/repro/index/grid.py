"""Uniform grid index over a bounded location space.

The APNN baseline [36] partitions the data space into ``g x g`` cells and
pre-computes a kNN answer per cell center; this index provides the cell
partitioning, point-to-cell mapping, and per-cell entry buckets it needs.
It also doubles as a general-purpose spatial index for comparison tests.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.space import LocationSpace
from repro.index.base import (
    SpatialIndex,
    TraversalNode,
    validate_entries,
    validate_location,
)


class GridIndex(SpatialIndex):
    """A ``g x g`` uniform grid of entry buckets over ``space``."""

    def __init__(self, space: LocationSpace, cells_per_side: int) -> None:
        if cells_per_side < 1:
            raise ConfigurationError("grid needs at least one cell per side")
        self.space = space
        self.cells_per_side = cells_per_side
        self._buckets: dict[tuple[int, int], list[tuple[Point, Any]]] = {}
        self._count = 0
        self.version = 0

    def cell_of(self, p: Point) -> tuple[int, int]:
        """The (column, row) cell containing ``p``; boundary points clamp inward."""
        b = self.space.bounds
        if not b.contains_point(p):
            raise ConfigurationError(f"point {p} outside the location space")
        g = self.cells_per_side
        col = min(int((p.x - b.xmin) / b.width * g), g - 1)
        row = min(int((p.y - b.ymin) / b.height * g), g - 1)
        return col, row

    def cell_rect(self, col: int, row: int) -> Rect:
        """The rectangle covered by cell ``(col, row)``."""
        g = self.cells_per_side
        if not (0 <= col < g and 0 <= row < g):
            raise ConfigurationError(f"cell ({col}, {row}) out of range for g={g}")
        b = self.space.bounds
        w = b.width / g
        h = b.height / g
        return Rect(b.xmin + col * w, b.ymin + row * h, b.xmin + (col + 1) * w, b.ymin + (row + 1) * h)

    def cell_center(self, col: int, row: int) -> Point:
        """The center of cell ``(col, row)`` — the APNN precomputation anchor."""
        return self.cell_rect(col, row).center

    def all_cells(self) -> Iterator[tuple[int, int]]:
        """Iterate over every (col, row) pair."""
        g = self.cells_per_side
        return ((c, r) for c in range(g) for r in range(g))

    def insert(self, location: Point, item: Any) -> None:
        validate_location(location)
        self.version += 1
        self._buckets.setdefault(self.cell_of(location), []).append((location, item))
        self._count += 1

    def bulk_load(self, items: Iterable[tuple[Point, Any]]) -> None:
        """One-pass bucket fill; replaces the current contents.

        Validates every entry up front (so a NaN halfway through an
        iterable cannot leave the grid half-loaded), then bins without the
        per-insert method dispatch — the same entries land in the same
        buckets in the same order as an insert loop would produce.
        """
        pairs = validate_entries(items)
        self.version += 1
        buckets: dict[tuple[int, int], list[tuple[Point, Any]]] = {}
        cell_of = self.cell_of
        for location, item in pairs:
            buckets.setdefault(cell_of(location), []).append((location, item))
        self._buckets = buckets
        self._count = len(pairs)

    def traversal_roots(self) -> list[TraversalNode]:
        """A synthetic two-level hierarchy: one leaf node per occupied cell.

        Built on demand from the live buckets (O(n)); leaf MBRs are tight
        over the actual points, so best-first searches prune exactly.
        Cells are visited in sorted key order for determinism.
        """
        children: list[TraversalNode] = []
        root_mbr: Rect | None = None
        for key in sorted(self._buckets):
            bucket = self._buckets[key]
            if not bucket:
                continue
            mbr = Rect.from_points([p for p, _ in bucket])
            leaf = TraversalNode(
                is_leaf=True,
                points=[p for p, _ in bucket],
                items=[item for _, item in bucket],
                mbr=mbr,
            )
            children.append(leaf)
            root_mbr = mbr if root_mbr is None else root_mbr.union(mbr)
        root = TraversalNode(is_leaf=False, children=children, mbr=root_mbr)
        return [root]

    def __len__(self) -> int:
        return self._count

    def entries(self) -> Iterator[tuple[Point, Any]]:
        for bucket in self._buckets.values():
            yield from bucket

    def bucket(self, col: int, row: int) -> list[tuple[Point, Any]]:
        """Entries stored in one cell (empty list when the cell is vacant)."""
        return list(self._buckets.get((col, row), ()))

    def range_query(self, rect: Rect) -> list[tuple[Point, Any]]:
        b = self.space.bounds
        clipped = rect.clip(b) if rect.intersects(b) else None
        if clipped is None:
            return []
        lo = self.cell_of(Point(clipped.xmin, clipped.ymin))
        hi = self.cell_of(Point(clipped.xmax, clipped.ymax))
        result: list[tuple[Point, Any]] = []
        for col in range(lo[0], hi[0] + 1):
            for row in range(lo[1], hi[1] + 1):
                for p, item in self._buckets.get((col, row), ()):
                    if rect.contains_point(p):
                        result.append((p, item))
        return result
