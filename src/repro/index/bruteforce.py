"""Exhaustive-scan spatial index: the correctness oracle.

Every query walks the full entry list.  Slow but trivially correct, so the
test suite uses it as the reference implementation for the R-tree, the grid
index, and the kNN / kGNN algorithms.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import SpatialIndex, validate_location


class BruteForceIndex(SpatialIndex):
    """A flat list of entries with linear-scan queries."""

    def __init__(self) -> None:
        self._entries: list[tuple[Point, Any]] = []
        self.version = 0

    def insert(self, location: Point, item: Any) -> None:
        validate_location(location)
        self.version += 1
        self._entries.append((location, item))

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[tuple[Point, Any]]:
        return iter(self._entries)

    def range_query(self, rect: Rect) -> list[tuple[Point, Any]]:
        return [(p, item) for p, item in self._entries if rect.contains_point(p)]

    def nearest(self, query: Point, k: int) -> list[tuple[Point, Any]]:
        """The k entries closest to ``query`` in ascending distance order.

        Ties are broken by location then by insertion order, matching the
        deterministic tie-breaking of the tree-based searches.
        """
        ranked = sorted(
            enumerate(self._entries),
            key=lambda pair: (pair[1][0].distance_to(query), pair[1][0], pair[0]),
        )
        return [entry for _, entry in ranked[:k]]
