"""repro — a full reproduction of "Privacy Preserving Group Nearest
Neighbor Search" (Wu, Wang, Zhang, Lin, Chen; EDBT 2018).

The package implements the PPGNN protocol family (single-user, group,
optimized, naive) over from-scratch substrates: a generalized Paillier
(Damgård–Jurik) cryptosystem, an R-tree with the MBM group-kNN algorithm,
answer encoding, the partition-parameter solver, and the hypothesis-tested
answer sanitation that defends against full user collusion — plus the
baselines (APNN, IPPF, GLP) the paper evaluates against.

Quick start::

    from repro import LSPServer, PPGNNConfig, run_ppgnn, random_group
    from repro.datasets import load_sequoia
    import numpy as np

    lsp = LSPServer(load_sequoia(10_000))
    group = random_group(8, lsp.space, np.random.default_rng(7))
    result = run_ppgnn(lsp, group, PPGNNConfig(), seed=42)
    print(result.answers)          # the sanitized top-k POIs
    print(result.report.total_comm_bytes)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    LSPServer,
    PPGNNConfig,
    ProtocolResult,
    QuerySession,
    optimal_omega,
    paper_omega,
    random_group,
    run_naive,
    run_ppgnn,
    run_ppgnn_opt,
    run_single_user,
    run_single_user_opt,
)
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    CryptoError,
    DeadlineExceededError,
    EncodingError,
    GroupMemberLostError,
    GuardError,
    InboundValidationError,
    InfeasibleError,
    ProtocolError,
    ProtocolStateError,
    ReproError,
    RetryExhaustedError,
    TransportError,
)
from repro.guard import ProtocolGuard, restore_session
from repro.transport.channel import FaultyChannel, PerfectChannel
from repro.transport.faults import FaultPlan, LinkFaults
from repro.transport.retry import RetryPolicy
from repro.transport.session import ResilientSession
from repro.transport.transport import Transport

__version__ = "1.0.0"

__all__ = [
    "PPGNNConfig",
    "LSPServer",
    "ProtocolResult",
    "run_ppgnn",
    "run_ppgnn_opt",
    "run_naive",
    "run_single_user",
    "run_single_user_opt",
    "random_group",
    "QuerySession",
    "optimal_omega",
    "paper_omega",
    "ReproError",
    "ConfigurationError",
    "CryptoError",
    "EncodingError",
    "ProtocolError",
    "GuardError",
    "ProtocolStateError",
    "InboundValidationError",
    "DeadlineExceededError",
    "CheckpointError",
    "InfeasibleError",
    "TransportError",
    "RetryExhaustedError",
    "GroupMemberLostError",
    "Transport",
    "ResilientSession",
    "PerfectChannel",
    "FaultyChannel",
    "FaultPlan",
    "LinkFaults",
    "RetryPolicy",
    "ProtocolGuard",
    "restore_session",
    "__version__",
]
