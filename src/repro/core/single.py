"""The single-user protocol of Section 3 (plain and OPT variants).

With n = 1 there is no Privacy IV and ``delta = d``: the user hides the
real location among d - 1 dummies, sends the location set together with an
encrypted indicator, and the LSP answers a plaintext kNN query per location
before privately selecting the real one.  ``run_single_user`` implements
the plain protocol; ``run_single_user_opt`` applies the Section 6 two-phase
selection to the same flow (the n = 1 series of Figure 5).
"""

from __future__ import annotations

import math

from repro.core.common import (
    build_location_set,
    decrypt_answer,
    derive_rngs,
    group_keypair,
)
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.core.opt import optimal_omega, split_indicator_index
from repro.core.result import ProtocolResult
from repro.crypto.homomorphic import encrypt_indicator
from repro.encoding.answers import AnswerCodec
from repro.geometry.point import Point
from repro.protocol.messages import OptSingleQueryRequest, SingleQueryRequest
from repro.protocol.metrics import COORDINATOR, LSP, CostLedger


def run_single_user(
    lsp: LSPServer,
    location: Point,
    config: PPGNNConfig,
    seed: int = 0,
    dummy_generator=None,
) -> ProtocolResult:
    """One round of the Section 3.2 protocol."""
    config = config.for_single_user()
    ledger = CostLedger()
    rng, nprng = derive_rngs(seed)
    keypair = group_keypair(config)
    codec = AnswerCodec(config.keysize, config.k, lsp.space)

    with ledger.clock(COORDINATOR):
        position = rng.randrange(config.d)
        location_set = build_location_set(
            location, position, config.d, lsp.space, nprng, dummy_generator
        )
        indicator = encrypt_indicator(
            keypair.public_key,
            config.d,
            position,
            rng=rng,
            counter=ledger.counter(COORDINATOR),
        )
        request = SingleQueryRequest(
            k=config.k,
            public_key=keypair.public_key,
            locations=location_set,
            indicator=tuple(indicator),
        )
    ledger.record(COORDINATOR, LSP, request)

    encrypted = lsp.answer_single_query(request, ledger)
    ledger.record(LSP, COORDINATOR, encrypted)

    answers = decrypt_answer(keypair, codec, encrypted, ledger)
    return ProtocolResult(
        protocol="ppgnn-single",
        answers=tuple(answers),
        report=ledger.report(),
        delta_prime=config.d,
        m=codec.m,
        query_index=position,
    )


def run_single_user_opt(
    lsp: LSPServer,
    location: Point,
    config: PPGNNConfig,
    seed: int = 0,
    omega: int | None = None,
    dummy_generator=None,
) -> ProtocolResult:
    """One round of the single-user protocol with two-phase selection."""
    config = config.for_single_user()
    ledger = CostLedger()
    rng, nprng = derive_rngs(seed)
    keypair = group_keypair(config)
    codec = AnswerCodec(config.keysize, config.k, lsp.space)

    block_count = omega if omega is not None else optimal_omega(config.d)
    block_width = math.ceil(config.d / block_count)

    with ledger.clock(COORDINATOR):
        position = rng.randrange(config.d)
        location_set = build_location_set(
            location, position, config.d, lsp.space, nprng, dummy_generator
        )
        block, within = split_indicator_index(position, block_width)
        counter = ledger.counter(COORDINATOR)
        inner = encrypt_indicator(
            keypair.public_key, block_width, within, s=1, rng=rng, counter=counter
        )
        outer = encrypt_indicator(
            keypair.public_key, block_count, block, s=2, rng=rng, counter=counter
        )
        request = OptSingleQueryRequest(
            k=config.k,
            public_key=keypair.public_key,
            locations=location_set,
            inner_indicator=tuple(inner),
            outer_indicator=tuple(outer),
        )
    ledger.record(COORDINATOR, LSP, request)

    encrypted = lsp.answer_single_query_opt(request, ledger)
    ledger.record(LSP, COORDINATOR, encrypted)

    answers = decrypt_answer(keypair, codec, encrypted, ledger, nested=True)
    return ProtocolResult(
        protocol="ppgnn-single-opt",
        answers=tuple(answers),
        report=ledger.report(),
        delta_prime=config.d,
        m=codec.m,
        query_index=position,
    )
