"""The Naive baseline from the opening of Section 4.

Every user generates a location set of length *delta* (not d) and all users
place their real locations at the same slot; the LSP forms exactly delta
candidate queries by aligning positions across the n sets.  Structurally
this is the degenerate partition ``alpha = 1`` (one subgroup) with delta
segments of size 1 — each segment contributes exactly one candidate and the
shared relative position is forced to 0 — so the implementation reuses the
group machinery with that hand-built partition, inheriting all privacy
behaviour while paying the extra ``(delta - d) * n`` dummy generation and
transmission the paper criticizes.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.common import (
    build_location_set,
    decrypt_answer,
    derive_rngs,
    group_keypair,
    publish_round,
)
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.core.result import ProtocolResult
from repro.crypto.homomorphic import encrypt_indicator
from repro.encoding.answers import AnswerCodec
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.guard.guard import ProtocolGuard, begin_round
from repro.obs import Observability, maybe_span
from repro.partition.layout import GroupLayout
from repro.partition.solver import PartitionParameters
from repro.protocol.messages import (
    GroupQueryRequest,
    LocationSetUpload,
    PlaintextAnswerBroadcast,
    PositionAssignment,
)
from repro.protocol.metrics import COORDINATOR, LSP, USER, CostLedger
from repro.transport.transport import Transport, send


def naive_partition(n: int, delta: int) -> PartitionParameters:
    """One subgroup, delta singleton segments: the aligned-candidates layout."""
    return PartitionParameters(
        subgroup_sizes=(n,),
        segment_sizes=(1,) * delta,
        delta_prime=delta,
    )


def run_naive(
    lsp: LSPServer,
    locations: Sequence[Point],
    config: PPGNNConfig,
    seed: int = 0,
    dummy_generator=None,
    nonce_pool=None,
    transport: Transport | None = None,
    guard: ProtocolGuard | None = None,
    obs: Observability | None = None,
) -> ProtocolResult:
    """Execute one Naive-solution round.

    ``nonce_pool`` moves the delta-length indicator's obfuscation
    exponentiations offline, exactly as in :func:`repro.core.group
    .run_ppgnn`.  ``transport`` routes every message through a
    :mod:`repro.transport` channel; None keeps the historical perfect
    in-memory network.  ``guard`` arms the hostile-input defenses of
    :mod:`repro.guard`; None keeps the historical trusting behavior.
    ``obs`` traces the round as a ``round.naive`` span and publishes the
    crypto operation counters; None keeps the uninstrumented path
    byte-identical.
    """
    with maybe_span(obs, "round.naive", n=len(locations), seed=seed) as round_span:
        result = _run_naive(
            lsp, locations, config, seed, dummy_generator, nonce_pool,
            transport, guard, obs,
        )
        if round_span is not None:
            publish_round(obs, round_span, result, lsp)
        return result


def _run_naive(
    lsp: LSPServer,
    locations: Sequence[Point],
    config: PPGNNConfig,
    seed: int,
    dummy_generator,
    nonce_pool,
    transport: Transport | None,
    guard: ProtocolGuard | None,
    obs: Observability | None,
) -> ProtocolResult:
    n = len(locations)
    if n < 1:
        raise ConfigurationError("a group needs at least one user")
    ledger = CostLedger()
    rng, nprng = derive_rngs(seed)
    keypair = group_keypair(config)
    params = naive_partition(n, config.delta)
    layout = GroupLayout(params)
    codec = AnswerCodec(config.keysize, config.k, lsp.space)
    rg = begin_round(
        guard,
        layout=layout,
        public_key=keypair.public_key,
        space=lsp.space,
        ledger=ledger,
        k=config.k,
        answer_m=codec.m,
    )

    with ledger.clock(COORDINATOR), maybe_span(obs, "coordinator.encrypt_query"):
        plan = layout.plan_placement(rng)  # uniform over the delta slots
        if nonce_pool is not None:
            from repro.crypto.noncepool import pooled_indicator

            indicator = pooled_indicator(
                nonce_pool,
                config.delta,
                plan.query_index,
                rng=rng,
                public_key=keypair.public_key,
            )
            ledger.counter(COORDINATOR).encryptions += config.delta
        else:
            indicator = encrypt_indicator(
                keypair.public_key,
                config.delta,
                plan.query_index,
                rng=rng,
                counter=ledger.counter(COORDINATOR),
            )
        request = GroupQueryRequest(
            k=config.k,
            public_key=keypair.public_key,
            subgroup_sizes=params.subgroup_sizes,
            segment_sizes=params.segment_sizes,
            indicator=tuple(indicator),
            theta0=config.theta0 if config.sanitize else None,
        )
    rg.planned()
    position = plan.absolute_positions[0]
    message = PositionAssignment(position)
    positions = {}
    for user in range(n):
        delivered = send(transport, ledger, COORDINATOR, f"user:{user}", message)
        rg.position_delivered(user, delivered)
        positions[user] = delivered.position
    request = send(transport, ledger, COORDINATOR, LSP, request)
    rg.request_delivered(request)

    uploads = []
    with maybe_span(obs, "uploads", users=n):
        for i, real in enumerate(locations):
            with ledger.clock(USER):
                # The naive cost driver: every user pads to delta locations.
                location_set = build_location_set(
                    real, positions[i], config.delta, lsp.space, nprng,
                    dummy_generator,
                )
                upload = LocationSetUpload(i, location_set)
            delivered = send(transport, ledger, f"user:{i}", LSP, upload)
            rg.upload_delivered(delivered)
            uploads.append(delivered)

    rg.uploads_complete()
    with maybe_span(obs, "lsp.answer") as lsp_span:
        encrypted = lsp.answer_group_query(request, uploads, ledger)
    if lsp_span is not None:
        lsp_span.set(kgnn_queries=lsp.last_stats.kgnn_queries)
    encrypted = send(transport, ledger, LSP, COORDINATOR, encrypted)
    rg.answer_delivered(encrypted)

    answers = decrypt_answer(
        keypair, codec, encrypted, ledger, guard_round=rg, obs=obs
    )
    broadcast = PlaintextAnswerBroadcast(tuple(answers))
    for user in range(1, n):
        delivered = send(transport, ledger, COORDINATOR, f"user:{user}", broadcast)
        rg.broadcast_delivered(user, delivered)
    rg.finished()

    return ProtocolResult(
        protocol="naive",
        answers=tuple(answers),
        report=ledger.report(),
        delta_prime=config.delta,
        m=codec.m,
        query_index=plan.query_index,
    )
