"""Protocol configuration: the privacy and system parameters of Table 3."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.gnn.aggregate import Aggregate, get_aggregate


@dataclass(frozen=True, slots=True)
class PPGNNConfig:
    """All tunables of a PPGNN deployment.

    Defaults mirror the paper's Table 3 (group-query column) except the key
    size: the paper's C++/GMP implementation uses 1024-bit keys, while the
    pure-Python default here is 512 so benchmark sweeps finish in sensible
    time — pass ``keysize=1024`` to match the paper exactly (supported and
    tested).

    Attributes
    ----------
    d:
        Privacy I anonymity parameter — location-set size (> 1).
    delta:
        Privacy II anonymity parameter — minimum candidate queries
        (``delta >= d``; for single-user queries it is forced to d).
    k:
        POIs to retrieve.
    theta0:
        Privacy IV parameter — minimum fraction of the space the victim
        must be able to hide in; None disables Privacy IV entirely.
    sanitize:
        Run the answer sanitation of Section 5 (PPGNN).  False gives
        PPGNN-NAS, the no-collusion relaxation benchmarked in Section 8.3.2.
    gamma / eta / phi:
        Hypothesis-test error bounds and effect size (Section 5.3 defaults).
    sanitation_samples:
        Optional override of the Monte-Carlo sample count N_H (tests use
        small values; None means Eqn 17 decides).
    keysize:
        Paillier modulus bits.
    key_seed:
        Deterministic-key seed; also enables key caching across runs, which
        models the paper's implicit "keys exist before the query" timing.
    aggregate_name:
        The aggregate F: "sum" (paper default), "max", "min", or a
        registered custom aggregate.
    """

    d: int = 25
    delta: int = 100
    k: int = 8
    theta0: float | None = 0.05
    sanitize: bool = True
    gamma: float = 0.05
    eta: float = 0.2
    phi: float = 0.1
    sanitation_samples: int | None = None
    keysize: int = 512
    key_seed: int | None = 1
    aggregate_name: str = "sum"

    def __post_init__(self) -> None:
        if self.d < 2:
            raise ConfigurationError("d must be > 1 (Privacy I, Definition 2.2)")
        if self.delta < self.d:
            raise ConfigurationError("delta must be >= d (Privacy II, Definition 2.2)")
        if self.k < 1:
            raise ConfigurationError("k must be positive")
        if self.theta0 is not None and not 0.0 < self.theta0 <= 1.0:
            raise ConfigurationError("theta0 must be in (0, 1]")
        if self.sanitize and self.theta0 is None:
            raise ConfigurationError("sanitation requires theta0")
        if self.keysize < 64:
            raise ConfigurationError("keysize below 64 bits cannot hold an answer")
        get_aggregate(self.aggregate_name)  # fail fast on unknown aggregates

    @property
    def aggregate(self) -> Aggregate:
        """The resolved aggregate function F."""
        return get_aggregate(self.aggregate_name)

    def for_single_user(self) -> "PPGNNConfig":
        """The n = 1 specialization: delta = d, no Privacy IV (Section 3)."""
        return replace(self, delta=self.d, theta0=None, sanitize=False)

    def without_sanitation(self) -> "PPGNNConfig":
        """The PPGNN-NAS relaxation (no answer sanitation)."""
        return replace(self, sanitize=False)
