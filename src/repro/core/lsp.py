"""The location-based service provider (LSP).

Owns the POI database behind a :class:`~repro.gnn.engine.GNNQueryEngine`,
executes Algorithm 2 (candidate-query generation, per-candidate kGNN,
answer sanitation, private selection), and serves the single-user protocol
of Section 3 plus the two-phase selection of PPGNN-OPT.  Every request
handler charges its computation to the ledger's LSP clock and its
homomorphic work to the LSP operation counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.crypto.homomorphic import matrix_select, nested_select
from repro.crypto.paillier import PaillierPublicKey
from repro.datasets.poi import POI
from repro.encoding.answers import AnswerCodec
from repro.errors import ProtocolError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.gnn.engine import GNNQueryEngine
from repro.core.sanitize import AnswerSanitizer
from repro.partition.layout import GroupLayout
from repro.partition.solver import PartitionParameters
from repro.protocol.messages import (
    EncryptedAnswer,
    GroupQueryRequest,
    LocationSetUpload,
    OptGroupQueryRequest,
    OptSingleQueryRequest,
    SingleQueryRequest,
)
from repro.protocol.metrics import LSP, CostLedger
from repro.stats.hypothesis import SanitationTestPlan


@dataclass
class QueryStats:
    """Diagnostics of the most recent request (simulation introspection only)."""

    candidate_count: int = 0
    kgnn_queries: int = 0
    sanitized_answer_lengths: tuple[int, ...] = ()
    sanitation_samples: int = 0


class LSPServer:
    """A semi-honest LSP serving privacy-preserving (group) kNN queries."""

    def __init__(
        self,
        pois: Sequence[POI] | None = None,
        space: LocationSpace | None = None,
        aggregate_name: str = "sum",
        gamma: float = 0.05,
        eta: float = 0.2,
        phi: float = 0.1,
        sanitation_samples: int | None = None,
        seed: int = 0,
        engine=None,
        index: str = "rtree",
        build_workers: int | None = None,
    ) -> None:
        """Build the provider from a POI list or a custom query engine.

        ``engine`` is the protocol's query black box (Section 1, novelty 4):
        anything with ``query(k, locations)`` / ``poi_by_id`` works, e.g.
        :class:`~repro.roadnet.engine.RoadNetworkEngine` for road-network
        distance.  The Monte-Carlo answer sanitation is metric-aware:
        Euclidean engines use :class:`~repro.core.sanitize.AnswerSanitizer`,
        road-network engines the road-metric sanitizer of
        :mod:`repro.roadnet.sanitize`; any other custom engine must run
        PPGNN-NAS (``sanitize=False``).
        """
        from repro.gnn.aggregate import get_aggregate

        self.space = space or LocationSpace.unit_square()
        if engine is not None:
            if pois is not None:
                raise ProtocolError("pass either pois or engine, not both")
            self.engine = engine
            self.aggregate = getattr(engine, "aggregate", None) or get_aggregate(
                aggregate_name
            )
            self._sanitation_supported = isinstance(engine, GNNQueryEngine)
        else:
            if not pois:
                raise ProtocolError("the POI database must be non-empty")
            self.aggregate = get_aggregate(aggregate_name)
            self.engine = GNNQueryEngine(
                pois,
                aggregate=self.aggregate,
                index=index,
                space=self.space,
                build_workers=build_workers,
            )
            self._sanitation_supported = True
        self.gamma = gamma
        self.eta = eta
        self.phi = phi
        self.sanitation_samples = sanitation_samples
        self._rng = np.random.default_rng(seed)
        self._road_sanitizers: dict[float, object] = {}
        self.last_stats = QueryStats()

    def reset_rng(self, seed: int) -> None:
        """Re-seed the sanitation sampler.

        The sanitizer draws fresh Monte-Carlo samples per candidate, so two
        otherwise identical queries can sanitize borderline prefixes to
        different lengths.  Tests and A/B benchmark comparisons pin the
        sampler with this before each run to make outcomes bit-identical.
        """
        self._rng = np.random.default_rng(seed)
        for sanitizer in self._road_sanitizers.values():
            sanitizer.rng = self._rng  # type: ignore[attr-defined]

    # ------------------------------------------------------------ internals

    def _codec(self, public_key: PaillierPublicKey, k: int) -> AnswerCodec:
        return AnswerCodec(public_key.key_bits, k, self.space)

    def _sanitizer(self, theta0: float):
        plan = SanitationTestPlan.from_parameters(
            theta0,
            gamma=self.gamma,
            eta=self.eta,
            phi=self.phi,
            n_samples_override=self.sanitation_samples,
        )
        if self._sanitation_supported:
            return AnswerSanitizer(self.space, self.aggregate, plan, self._rng)
        # Road-network engines get the road-metric sanitizer; its snap grid
        # is expensive to build, so it is cached per theta0.
        from repro.roadnet.engine import RoadNetworkEngine

        if isinstance(self.engine, RoadNetworkEngine):
            cached = self._road_sanitizers.get(theta0)
            if cached is None or cached.plan != plan:
                from repro.roadnet.sanitize import RoadNetworkSanitizer

                cached = RoadNetworkSanitizer(
                    self.engine.network, self.aggregate, plan, self._rng
                )
                self._road_sanitizers[theta0] = cached
            return cached
        raise ProtocolError(
            "answer sanitation needs a metric-aware sampler; the installed "
            "engine is neither Euclidean nor road-network — run PPGNN-NAS "
            "(sanitize=False) instead"
        )

    def _answer_columns(
        self,
        candidates: Iterable[tuple[Point, ...]],
        k: int,
        theta0: float | None,
        codec: AnswerCodec,
    ) -> list[list[int]]:
        """Lines 2-6 of Algorithm 2: one encoded answer column per candidate."""
        sanitizer = self._sanitizer(theta0) if theta0 is not None else None
        columns: list[list[int]] = []
        lengths: list[int] = []
        count = 0
        for candidate in candidates:
            count += 1
            pois = self.engine.query(k, candidate)
            if sanitizer is not None:
                pois = list(sanitizer.sanitize(pois, candidate).prefix)
            lengths.append(len(pois))
            columns.append(codec.encode(pois))
        self.last_stats = QueryStats(
            candidate_count=count,
            kgnn_queries=count,
            sanitized_answer_lengths=tuple(lengths),
            sanitation_samples=sanitizer.plan.n_samples if sanitizer else 0,
        )
        return columns

    @staticmethod
    def _rows(columns: list[list[int]]) -> list[list[int]]:
        """Transpose candidate-major columns into the m x delta' matrix A."""
        if not columns:
            raise ProtocolError("no candidate answers to select from")
        m = len(columns[0])
        return [[col[row] for col in columns] for row in range(m)]

    @staticmethod
    def _layout_from_request(
        subgroup_sizes: tuple[int, ...], segment_sizes: tuple[int, ...]
    ) -> GroupLayout:
        alpha = len(subgroup_sizes)
        delta_prime = sum(size**alpha for size in segment_sizes)
        return GroupLayout(
            PartitionParameters(subgroup_sizes, segment_sizes, delta_prime)
        )

    @staticmethod
    def _location_sets(
        uploads: Sequence[LocationSetUpload], expected_users: int
    ) -> list[tuple[Point, ...]]:
        """Order uploads by user id — how LSP reconstructs subgroups (§4.2)."""
        if len(uploads) != expected_users:
            raise ProtocolError(
                f"expected {expected_users} location sets, got {len(uploads)}"
            )
        ordered = sorted(uploads, key=lambda u: u.user_id)
        if [u.user_id for u in ordered] != list(range(expected_users)):
            raise ProtocolError("location-set uploads must carry user ids 0..n-1")
        return [u.locations for u in ordered]

    # ----------------------------------------------------------- single user

    def answer_single_query(
        self, request: SingleQueryRequest, ledger: CostLedger
    ) -> EncryptedAnswer:
        """Section 3.2 query processing: d plaintext kNN queries + selection."""
        with ledger.clock(LSP):
            if len(request.indicator) != len(request.locations):
                raise ProtocolError("indicator length must equal the location-set size")
            codec = self._codec(request.public_key, request.k)
            columns = self._answer_columns(
                ((loc,) for loc in request.locations), request.k, None, codec
            )
            selected = matrix_select(
                self._rows(columns), request.indicator, ledger.counter(LSP)
            )
            return EncryptedAnswer(tuple(selected))

    def answer_single_query_opt(
        self, request: OptSingleQueryRequest, ledger: CostLedger
    ) -> EncryptedAnswer:
        """Single-user PPGNN-OPT: the two-phase selection of Section 6."""
        with ledger.clock(LSP):
            codec = self._codec(request.public_key, request.k)
            columns = self._answer_columns(
                ((loc,) for loc in request.locations), request.k, None, codec
            )
            return self._two_phase_select(
                columns, request.inner_indicator, request.outer_indicator, ledger
            )

    # ------------------------------------------------------------ group query

    def answer_group_query(
        self,
        request: GroupQueryRequest,
        uploads: Sequence[LocationSetUpload],
        ledger: CostLedger,
    ) -> EncryptedAnswer:
        """Algorithm 2 for PPGNN (and PPGNN-NAS when ``theta0`` is None)."""
        with ledger.clock(LSP):
            layout = self._layout_from_request(
                request.subgroup_sizes, request.segment_sizes
            )
            if len(request.indicator) != layout.delta_prime:
                raise ProtocolError(
                    f"indicator length {len(request.indicator)} != delta' "
                    f"{layout.delta_prime}"
                )
            sets = self._location_sets(uploads, layout.n)
            codec = self._codec(request.public_key, request.k)
            columns = self._answer_columns(
                layout.enumerate_candidates(sets), request.k, request.theta0, codec
            )
            selected = matrix_select(
                self._rows(columns), request.indicator, ledger.counter(LSP)
            )
            return EncryptedAnswer(tuple(selected))

    def answer_group_query_opt(
        self,
        request: OptGroupQueryRequest,
        uploads: Sequence[LocationSetUpload],
        ledger: CostLedger,
    ) -> EncryptedAnswer:
        """Algorithm 2 with the two-phase private selection of Section 6."""
        with ledger.clock(LSP):
            layout = self._layout_from_request(
                request.subgroup_sizes, request.segment_sizes
            )
            sets = self._location_sets(uploads, layout.n)
            codec = self._codec(request.public_key, request.k)
            columns = self._answer_columns(
                layout.enumerate_candidates(sets), request.k, request.theta0, codec
            )
            return self._two_phase_select(
                columns, request.inner_indicator, request.outer_indicator, ledger
            )

    # ----------------------------------------------------- two-phase select

    def _two_phase_select(
        self,
        columns: list[list[int]],
        inner_indicator: Sequence,
        outer_indicator: Sequence,
        ledger: CostLedger,
    ) -> EncryptedAnswer:
        """Split A into omega blocks, select within blocks, then across them.

        The candidate list is padded with all-zero columns so it divides
        evenly into ``omega`` blocks of ``len(inner_indicator)`` columns —
        zero columns are valid (never-selected) answers, exactly the 0
        padding Section 6 describes.
        """
        block_width = len(inner_indicator)
        omega = len(outer_indicator)
        if block_width * omega < len(columns):
            raise ProtocolError(
                f"{omega} blocks of {block_width} cannot cover "
                f"{len(columns)} candidates"
            )
        m = len(columns[0])
        padded = list(columns) + [
            [0] * m for _ in range(block_width * omega - len(columns))
        ]
        counter = ledger.counter(LSP)
        blocks = []
        for b in range(omega):
            block_columns = padded[b * block_width : (b + 1) * block_width]
            blocks.append(matrix_select(self._rows(block_columns), inner_indicator, counter))
        selected = nested_select(blocks, outer_indicator, counter)
        return EncryptedAnswer(tuple(selected))
