"""Answer sanitation: the longest safe prefix under full user collusion.

Section 5.2: before returning a candidate answer, the LSP simulates the
inequality attack for *every* target user.  A prefix ``p_1..p_t`` of the
ranked answer is safe when, for each target, the feasible region carved by
the ``t - 1`` inequalities of Eqn (14) passes the hypothesis test of
Section 5.3 (the region is larger than ``theta_0`` of the space with
confidence ``1 - gamma``).  The returned answer is the longest safe prefix;
``t = 1`` has no inequalities and is always safe.

Implementation notes (the ablation bench quantifies both):

- The test is evaluated on a shared batch of ``N_H`` uniform sample
  locations per candidate query; all per-POI values are computed with numpy
  in one shot.
- The per-sample inequality matrix is cumulatively AND-ed along the POI
  axis, so the counts for *every* prefix length fall out of one pass —
  prefix counts are non-increasing in t, hence "grow the prefix while safe"
  equals "find the last prefix whose count clears the threshold".
- For decomposable aggregates (sum/max/min) the known users' distances fold
  into one constant per POI (``Aggregate.partial`` / ``Aggregate.merge``);
  custom aggregates fall back to a generic row-matrix evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.distance import distance_matrix
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.gnn.aggregate import Aggregate
from repro.stats.hypothesis import SanitationTestPlan


@dataclass(frozen=True, slots=True)
class SanitationOutcome:
    """The sanitized prefix plus per-target diagnostics."""

    prefix: tuple[POI, ...]
    safe_lengths: tuple[int, ...]  # per target user: its longest safe prefix


class AnswerSanitizer:
    """Stateful sanitizer owned by the LSP (one per query configuration).

    ``early_stop=True`` (default) follows Section 5.2 literally: the prefix
    grows one POI at a time and evaluation stops at the first unsafe
    length, so columns past the stopping point are never computed — this is
    why the LSP cost flattens as k grows (Figure 6f).  ``early_stop=False``
    evaluates all k - 1 inequalities in one batched pass (identical output,
    simpler data flow; the ablation bench compares the two).
    """

    def __init__(
        self,
        space: LocationSpace,
        aggregate: Aggregate,
        plan: SanitationTestPlan,
        rng: np.random.Generator,
        early_stop: bool = True,
    ) -> None:
        self.space = space
        self.aggregate = aggregate
        self.plan = plan
        self.rng = rng
        self.early_stop = early_stop

    # ----------------------------------------------------------- main entry

    def sanitize(
        self, pois: Sequence[POI], candidate: Sequence[Point]
    ) -> SanitationOutcome:
        """Longest prefix of ``pois`` safe against every colluding majority.

        ``candidate`` holds the candidate query's n locations.  Groups of
        one user have no Privacy IV requirement (Definition 2.2), so the
        full answer passes through unchanged.
        """
        k = len(pois)
        n = len(candidate)
        if n < 2 or k <= 1:
            return SanitationOutcome(tuple(pois), tuple([k] * max(n, 1)))
        xs, ys = self.space.sample_arrays(self.plan.n_samples, self.rng)
        if self.early_stop:
            return self._sanitize_incremental(pois, candidate, xs, ys)
        return self._sanitize_with_samples(pois, candidate, xs, ys)

    # ------------------------------------------------- incremental (paper)

    def _sanitize_incremental(
        self,
        pois: Sequence[POI],
        candidate: Sequence[Point],
        xs: np.ndarray,
        ys: np.ndarray,
    ) -> SanitationOutcome:
        """Grow the prefix, testing every target per length; stop when unsafe.

        Distance columns and per-target aggregate columns are materialized
        lazily, so an answer truncated at t = 2 never pays for the other
        k - 2 POIs.  Output is identical to the batched path on the same
        samples (property-tested).
        """
        k = len(pois)
        n = len(candidate)
        knowns = [
            [loc for i, loc in enumerate(candidate) if i != target]
            for target in range(n)
        ]
        # Lazy per-POI columns: sample->POI distances, shared across targets.
        dist_columns: list[np.ndarray | None] = [None] * k
        value_columns: list[list[np.ndarray | None]] = [
            [None] * k for _ in range(n)
        ]

        def dist_column(j: int) -> np.ndarray:
            column = dist_columns[j]
            if column is None:
                p = pois[j].location
                column = np.hypot(xs - p.x, ys - p.y)
                dist_columns[j] = column
            return column

        def value_column(target: int, j: int) -> np.ndarray:
            column = value_columns[target][j]
            if column is None:
                column = self._aggregate_column(
                    dist_column(j), pois[j], knowns[target]
                )
                value_columns[target][j] = column
            return column

        cumulative = [np.ones(len(xs), dtype=bool) for _ in range(n)]
        alive = [True] * n  # target still safe at the current length
        safe_lengths = [1] * n
        prefix_len = 1
        for t in range(2, k + 1):
            all_safe = True
            for target in range(n):
                if not alive[target]:
                    continue
                ineq = value_column(target, t - 2) <= value_column(target, t - 1)
                cumulative[target] &= ineq
                if self.plan.is_safe(int(cumulative[target].sum())):
                    safe_lengths[target] = t
                else:
                    alive[target] = False
                    all_safe = False
            if not all_safe:
                break
            prefix_len = t
        return SanitationOutcome(tuple(pois[:prefix_len]), tuple(safe_lengths))

    def _aggregate_column(
        self, dists: np.ndarray, poi: POI, known: list[Point]
    ) -> np.ndarray:
        """F(poi, C) with the target swept over the samples, one POI column."""
        agg = self.aggregate
        if agg.decomposable:
            partial = agg.partial(loc.distance_to(poi.location) for loc in known)  # type: ignore[misc]
            return agg.merge(dists, np.full(1, partial))  # type: ignore[misc]
        rows = np.empty((len(dists), len(known) + 1))
        rows[:, 0] = dists
        for idx, loc in enumerate(known):
            rows[:, idx + 1] = loc.distance_to(poi.location)
        return agg.combine_rows(rows)

    def _sanitize_with_samples(
        self,
        pois: Sequence[POI],
        candidate: Sequence[Point],
        xs: np.ndarray,
        ys: np.ndarray,
    ) -> SanitationOutcome:
        k = len(pois)
        locations = [p.location for p in pois]
        sample_dists = distance_matrix(xs, ys, locations)  # (N_H, k)
        safe_lengths = []
        overall = k
        for target in range(len(candidate)):
            counts = self._prefix_counts(sample_dists, pois, candidate, target)
            safe = 1
            for idx, count in enumerate(counts):
                if self.plan.is_safe(int(count)):
                    safe = idx + 2  # counts[idx] covers the first idx+1 inequalities
                else:
                    break
            safe_lengths.append(safe)
            overall = min(overall, safe)
        return SanitationOutcome(tuple(pois[:overall]), tuple(safe_lengths))

    # ------------------------------------------------------------ internals

    def _prefix_counts(
        self,
        sample_dists: np.ndarray,
        pois: Sequence[POI],
        candidate: Sequence[Point],
        target: int,
    ) -> np.ndarray:
        """For one target user: in-region sample counts for every prefix.

        Entry ``t - 2`` is the number of samples satisfying the first
        ``t - 1`` inequalities of Eqn (14) — i.e. the count X the Z-test of
        Eqn (16) receives for the length-t prefix.
        """
        known = [loc for i, loc in enumerate(candidate) if i != target]
        values = self._aggregate_values(sample_dists, pois, known)
        inequalities = values[:, :-1] <= values[:, 1:]
        cumulative = np.logical_and.accumulate(inequalities, axis=1)
        return cumulative.sum(axis=0)

    def _aggregate_values(
        self, sample_dists: np.ndarray, pois: Sequence[POI], known: list[Point]
    ) -> np.ndarray:
        """F(p_j, C) with the target's location swept over all samples.

        Returns a ``(N_H, k)`` matrix of aggregate costs.
        """
        agg = self.aggregate
        if agg.decomposable:
            partials = np.array(
                [
                    agg.partial(loc.distance_to(p.location) for loc in known)  # type: ignore[misc]
                    for p in pois
                ]
            )
            return agg.merge(sample_dists, partials[None, :])  # type: ignore[misc]
        # Generic monotone F: assemble the full (N_H, n) distance matrix per POI.
        n_samples = sample_dists.shape[0]
        values = np.empty_like(sample_dists)
        for j, p in enumerate(pois):
            rows = np.empty((n_samples, len(known) + 1))
            rows[:, 0] = sample_dists[:, j]
            for idx, loc in enumerate(known):
                rows[:, idx + 1] = loc.distance_to(p.location)
            values[:, j] = agg.combine_rows(rows)
        return values

    # ------------------------------------------------- reference (slow) path

    def sanitize_scalar(
        self,
        pois: Sequence[POI],
        candidate: Sequence[Point],
        xs: np.ndarray,
        ys: np.ndarray,
    ) -> SanitationOutcome:
        """Pure-Python reference implementation over explicit samples.

        Grows the prefix one POI at a time and re-tests each length with
        scalar loops, exactly as Section 5.2 narrates.  Used to validate
        the vectorized path (identical samples must give identical output)
        and by the sanitation ablation benchmark.
        """
        k = len(pois)
        n = len(candidate)
        if n < 2 or k <= 1:
            return SanitationOutcome(tuple(pois), tuple([k] * max(n, 1)))
        if len(xs) != self.plan.n_samples:
            raise ConfigurationError("sample arrays must match the plan size")
        samples = [Point(float(x), float(y)) for x, y in zip(xs, ys, strict=True)]
        safe_lengths = []
        for target in range(n):
            known = [loc for i, loc in enumerate(candidate) if i != target]
            safe = 1
            for t in range(2, k + 1):
                count = 0
                for sample in samples:
                    group = [sample] + known
                    costs = [
                        self.aggregate(q.distance_to(p.location) for q in group)
                        for p in pois[:t]
                    ]
                    if all(costs[i] <= costs[i + 1] for i in range(t - 1)):
                        count += 1
                if self.plan.is_safe(count):
                    safe = t
                else:
                    break
            safe_lengths.append(safe)
        overall = min(safe_lengths)
        return SanitationOutcome(tuple(pois[:overall]), tuple(safe_lengths))
