"""Protocol run results."""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.answers import DecodedAnswer
from repro.protocol.metrics import CostReport


@dataclass(frozen=True)
class ProtocolResult:
    """Everything a protocol run produces.

    ``answers`` is what every group member ends up with: the ranked,
    possibly sanitation-shortened POI list for the *real* query.  The
    remaining fields are simulation introspection — costs for the benchmark
    harness and internals (``query_index``, ``delta_prime``) that tests use
    to check protocol invariants.  A real deployment would expose only
    ``answers``.
    """

    protocol: str
    answers: tuple[DecodedAnswer, ...]
    report: CostReport
    delta_prime: int
    m: int
    query_index: int

    @property
    def answer_ids(self) -> tuple[int, ...]:
        """The returned POI ids, in rank order."""
        return tuple(a.poi_id for a in self.answers)
