"""The PPGNN group protocol (Section 4.2, Algorithms 1 and 2).

One function, :func:`run_ppgnn`, simulates a full round:

1. *Query generation* (Algorithm 1).  The coordinator u_c solves the
   partition parameters (offline-precomputed, per the paper), draws the
   placement plan, broadcasts ``pos_j`` to each subgroup, encrypts the
   indicator vector over the delta' candidate positions, and sends the
   query to LSP.  Every user independently builds its length-d location set
   with the real location at the broadcast position and uploads it.
2. *Query processing* (Algorithm 2).  LSP enumerates the candidate-query
   list, answers each with the kGNN black box, sanitizes each answer when
   Privacy IV is on, and privately selects the real query's ciphertext.
3. *Answer decryption.*  The coordinator decrypts, decodes, and broadcasts
   the plaintext answer to the other n - 1 users.

Setting ``config.sanitize = False`` yields PPGNN-NAS (Section 8.3.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.common import (
    build_location_set,
    decrypt_answer,
    derive_rngs,
    group_keypair,
    publish_round,
)
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.core.result import ProtocolResult
from repro.crypto.homomorphic import encrypt_indicator
from repro.encoding.answers import AnswerCodec
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.guard.guard import ProtocolGuard, begin_round
from repro.obs import Observability, maybe_span
from repro.partition.layout import GroupLayout
from repro.partition.solver import solve_partition
from repro.protocol.messages import (
    GroupQueryRequest,
    LocationSetUpload,
    PlaintextAnswerBroadcast,
    PositionAssignment,
)
from repro.protocol.metrics import COORDINATOR, LSP, USER, CostLedger
from repro.transport.transport import Transport, send


def random_group(
    n: int, space: LocationSpace, rng: np.random.Generator
) -> list[Point]:
    """n user locations drawn uniformly from the space (the paper's workload)."""
    if n < 1:
        raise ConfigurationError("a group needs at least one user")
    return space.sample_points(n, rng)


def run_ppgnn(
    lsp: LSPServer,
    locations: Sequence[Point],
    config: PPGNNConfig,
    seed: int = 0,
    dummy_generator=None,
    nonce_pool=None,
    transport: Transport | None = None,
    guard: ProtocolGuard | None = None,
    obs: Observability | None = None,
) -> ProtocolResult:
    """Execute one full PPGNN round and return the answer plus cost report.

    ``dummy_generator`` optionally overrides the uniform dummy model with a
    strategy from :mod:`repro.dummies`.  ``nonce_pool`` (a
    :class:`~repro.crypto.noncepool.NoncePool` under the group key) moves
    the indicator encryption's obfuscation exponentiations offline — the
    mobile-coordinator optimization; the measured coordinator time then
    covers only the online phase.  ``transport`` routes every message
    through a :mod:`repro.transport` channel (envelopes, checksums,
    retries); None keeps the historical perfect in-memory network.
    ``guard`` arms the hostile-input defenses of :mod:`repro.guard`
    (state machines, inbound validation, round deadlines); None keeps the
    historical trusting behavior.  ``obs`` traces the round as a
    ``round.ppgnn`` span with per-phase children and publishes the crypto
    operation counters; None keeps the uninstrumented path byte-identical.
    """
    with maybe_span(obs, "round.ppgnn", n=len(locations), seed=seed) as round_span:
        result = _run_ppgnn(
            lsp, locations, config, seed, dummy_generator, nonce_pool,
            transport, guard, obs,
        )
        if round_span is not None:
            publish_round(obs, round_span, result, lsp)
        return result


def _run_ppgnn(
    lsp: LSPServer,
    locations: Sequence[Point],
    config: PPGNNConfig,
    seed: int,
    dummy_generator,
    nonce_pool,
    transport: Transport | None,
    guard: ProtocolGuard | None,
    obs: Observability | None,
) -> ProtocolResult:
    n = len(locations)
    if n < 1:
        raise ConfigurationError("a group needs at least one user")
    ledger = CostLedger()
    rng, nprng = derive_rngs(seed)
    keypair = group_keypair(config)  # offline key setup
    params = solve_partition(n, config.d, config.delta)  # offline precomputation
    layout = GroupLayout(params)
    codec = AnswerCodec(config.keysize, config.k, lsp.space)
    rg = begin_round(
        guard,
        layout=layout,
        public_key=keypair.public_key,
        space=lsp.space,
        ledger=ledger,
        k=config.k,
        answer_m=codec.m,
    )

    # --- Algorithm 1: coordinator side -----------------------------------
    with ledger.clock(COORDINATOR), maybe_span(obs, "coordinator.encrypt_query"):
        plan = layout.plan_placement(rng)
        if nonce_pool is not None:
            from repro.crypto.noncepool import pooled_indicator

            indicator = pooled_indicator(
                nonce_pool,
                layout.delta_prime,
                plan.query_index,
                rng=rng,
                public_key=keypair.public_key,
            )
            ledger.counter(COORDINATOR).encryptions += layout.delta_prime
        else:
            indicator = encrypt_indicator(
                keypair.public_key,
                layout.delta_prime,
                plan.query_index,
                rng=rng,
                counter=ledger.counter(COORDINATOR),
            )
        request = GroupQueryRequest(
            k=config.k,
            public_key=keypair.public_key,
            subgroup_sizes=params.subgroup_sizes,
            segment_sizes=params.segment_sizes,
            indicator=tuple(indicator),
            theta0=config.theta0 if config.sanitize else None,
        )
    rg.planned()
    positions = {}
    for subgroup, position in enumerate(plan.absolute_positions):
        message = PositionAssignment(position)
        for user in layout.users_of_subgroup(subgroup):
            delivered = send(transport, ledger, COORDINATOR, f"user:{user}", message)
            rg.position_delivered(user, delivered)
            positions[user] = delivered.position
    request = send(transport, ledger, COORDINATOR, LSP, request)
    rg.request_delivered(request)

    # --- Algorithm 1: every user uploads its location set ----------------
    uploads = []
    with maybe_span(obs, "uploads", users=n):
        for i, real in enumerate(locations):
            with ledger.clock(USER):
                location_set = build_location_set(
                    real, positions[i], config.d, lsp.space, nprng, dummy_generator
                )
                upload = LocationSetUpload(i, location_set)
            delivered = send(transport, ledger, f"user:{i}", LSP, upload)
            rg.upload_delivered(delivered)
            uploads.append(delivered)

    # --- Algorithm 2: LSP (clocked inside the handler) -------------------
    rg.uploads_complete()
    with maybe_span(obs, "lsp.answer") as lsp_span:
        encrypted = lsp.answer_group_query(request, uploads, ledger)
    if lsp_span is not None:
        lsp_span.set(kgnn_queries=lsp.last_stats.kgnn_queries)
    encrypted = send(transport, ledger, LSP, COORDINATOR, encrypted)
    rg.answer_delivered(encrypted)

    # --- Answer decryption and broadcast ----------------------------------
    answers = decrypt_answer(
        keypair, codec, encrypted, ledger, guard_round=rg, obs=obs
    )
    broadcast = PlaintextAnswerBroadcast(tuple(answers))
    for user in range(1, n):
        delivered = send(transport, ledger, COORDINATOR, f"user:{user}", broadcast)
        rg.broadcast_delivered(user, delivered)
    rg.finished()

    return ProtocolResult(
        protocol="ppgnn" if config.sanitize else "ppgnn-nas",
        answers=tuple(answers),
        report=ledger.report(),
        delta_prime=layout.delta_prime,
        m=codec.m,
        query_index=plan.query_index,
    )
