"""PPGNN-OPT: the two-phase private selection of Section 6.

Instead of one indicator of length delta', the coordinator sends two small
vectors: ``[v1]`` (eps_1, length ``ceil(delta'/omega)``) selecting the
position *within* a block, and ``[[v2]]`` (eps_2, length ``omega``)
selecting the block.  The LSP selects per-block with ``[v1]``, then selects
across blocks with ``[[v2]]`` by treating each eps_1 ciphertext as an eps_2
plaintext; the coordinator decrypts twice.

The optimal block count minimizes the actual indicator+answer bytes.  With
exact sizes (an eps_2 ciphertext is 1.5x an eps_1 ciphertext, i.e. 3 vs 2
key-size units) the cost in half-keysize units is

    cost(omega) = 3 * omega + 2 * ceil(delta' / omega) + 3 * m,

minimized near ``omega = sqrt(2 * delta' / 3)``.  The paper's analysis
rounds the eps_2 length to 2x, giving ``omega ~ sqrt(delta' / 2)`` — both
are exposed, and :func:`optimal_omega` searches the exact integer optimum
so the implementation is self-consistent.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.common import (
    build_location_set,
    decrypt_answer,
    derive_rngs,
    group_keypair,
    publish_round,
)
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.core.result import ProtocolResult
from repro.crypto.homomorphic import encrypt_indicator
from repro.encoding.answers import AnswerCodec
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.guard.guard import ProtocolGuard, begin_round
from repro.obs import Observability, maybe_span
from repro.partition.layout import GroupLayout
from repro.partition.solver import solve_partition
from repro.protocol.messages import (
    LocationSetUpload,
    OptGroupQueryRequest,
    PlaintextAnswerBroadcast,
    PositionAssignment,
)
from repro.protocol.metrics import COORDINATOR, LSP, USER, CostLedger
from repro.transport.transport import Transport, send


def paper_omega(delta_prime: int) -> int:
    """The paper's closed form: nearest integer to sqrt(delta' / 2)."""
    if delta_prime < 1:
        raise ConfigurationError("delta' must be positive")
    return max(1, round(math.sqrt(delta_prime / 2.0)))


def optimal_omega(delta_prime: int) -> int:
    """The exact integer minimizer of the two-indicator byte cost.

    Cost in half-keysize units: ``3 * omega + 2 * ceil(delta' / omega)``
    (the answer term is constant in omega).  delta' is small, so a direct
    scan is cheap and exact.
    """
    if delta_prime < 1:
        raise ConfigurationError("delta' must be positive")
    best = min(
        range(1, delta_prime + 1),
        key=lambda w: (3 * w + 2 * math.ceil(delta_prime / w), w),
    )
    return best


def split_indicator_index(query_index: int, block_width: int) -> tuple[int, int]:
    """Decompose a flat candidate index into (block, within-block) positions."""
    return query_index // block_width, query_index % block_width


def run_ppgnn_opt(
    lsp: LSPServer,
    locations: Sequence[Point],
    config: PPGNNConfig,
    seed: int = 0,
    omega: int | None = None,
    dummy_generator=None,
    nonce_pool=None,
    transport: Transport | None = None,
    guard: ProtocolGuard | None = None,
    obs: Observability | None = None,
) -> ProtocolResult:
    """Execute one PPGNN-OPT round (group sizes n >= 1).

    ``omega`` overrides the block count (the omega-sweep ablation uses it);
    by default the exact integer optimum is chosen.  ``nonce_pool`` (a
    :class:`~repro.crypto.noncepool.NoncePool` under the group key) moves
    the obfuscation exponentiations of *both* indicators offline — the
    inner eps_1 vector and the outer eps_2 vector each consume one pooled
    factor per ciphertext at their level.  ``transport`` routes every
    message through a :mod:`repro.transport` channel; None keeps the
    historical perfect in-memory network.  ``guard`` arms the
    hostile-input defenses of :mod:`repro.guard`; None keeps the
    historical trusting behavior.  ``obs`` traces the round as a
    ``round.ppgnn-opt`` span and publishes the crypto operation counters;
    None keeps the uninstrumented path byte-identical.
    """
    with maybe_span(
        obs, "round.ppgnn-opt", n=len(locations), seed=seed
    ) as round_span:
        result = _run_ppgnn_opt(
            lsp, locations, config, seed, omega, dummy_generator, nonce_pool,
            transport, guard, obs,
        )
        if round_span is not None:
            publish_round(obs, round_span, result, lsp)
        return result


def _run_ppgnn_opt(
    lsp: LSPServer,
    locations: Sequence[Point],
    config: PPGNNConfig,
    seed: int,
    omega: int | None,
    dummy_generator,
    nonce_pool,
    transport: Transport | None,
    guard: ProtocolGuard | None,
    obs: Observability | None,
) -> ProtocolResult:
    n = len(locations)
    if n < 1:
        raise ConfigurationError("a group needs at least one user")
    ledger = CostLedger()
    rng, nprng = derive_rngs(seed)
    keypair = group_keypair(config)
    params = solve_partition(n, config.d, config.delta)
    layout = GroupLayout(params)
    codec = AnswerCodec(config.keysize, config.k, lsp.space)

    delta_prime = layout.delta_prime
    block_count = omega if omega is not None else optimal_omega(delta_prime)
    if not 1 <= block_count <= delta_prime:
        raise ConfigurationError(f"omega must be in [1, {delta_prime}]")
    block_width = math.ceil(delta_prime / block_count)
    rg = begin_round(
        guard,
        layout=layout,
        public_key=keypair.public_key,
        space=lsp.space,
        ledger=ledger,
        k=config.k,
        answer_m=codec.m,
        answer_s=2,
        inner_length=block_width,
        outer_length=block_count,
    )

    # --- Algorithm 1 with the two small indicators -----------------------
    with ledger.clock(COORDINATOR), maybe_span(obs, "coordinator.encrypt_query"):
        plan = layout.plan_placement(rng)
        block, within = split_indicator_index(plan.query_index, block_width)
        counter = ledger.counter(COORDINATOR)
        if nonce_pool is not None:
            from repro.crypto.noncepool import pooled_indicator

            inner = pooled_indicator(
                nonce_pool, block_width, within, s=1, rng=rng,
                public_key=keypair.public_key,
            )
            outer = pooled_indicator(
                nonce_pool, block_count, block, s=2, rng=rng,
                public_key=keypair.public_key,
            )
            counter.encryptions += block_width + block_count
        else:
            inner = encrypt_indicator(
                keypair.public_key, block_width, within, s=1, rng=rng, counter=counter
            )
            outer = encrypt_indicator(
                keypair.public_key, block_count, block, s=2, rng=rng, counter=counter
            )
        request = OptGroupQueryRequest(
            k=config.k,
            public_key=keypair.public_key,
            subgroup_sizes=params.subgroup_sizes,
            segment_sizes=params.segment_sizes,
            inner_indicator=tuple(inner),
            outer_indicator=tuple(outer),
            theta0=config.theta0 if config.sanitize else None,
        )
    rg.planned()
    positions = {}
    for subgroup, position in enumerate(plan.absolute_positions):
        message = PositionAssignment(position)
        for user in layout.users_of_subgroup(subgroup):
            delivered = send(transport, ledger, COORDINATOR, f"user:{user}", message)
            rg.position_delivered(user, delivered)
            positions[user] = delivered.position
    request = send(transport, ledger, COORDINATOR, LSP, request)
    rg.request_delivered(request)

    uploads = []
    with maybe_span(obs, "uploads", users=n):
        for i, real in enumerate(locations):
            with ledger.clock(USER):
                location_set = build_location_set(
                    real, positions[i], config.d, lsp.space, nprng, dummy_generator
                )
                upload = LocationSetUpload(i, location_set)
            delivered = send(transport, ledger, f"user:{i}", LSP, upload)
            rg.upload_delivered(delivered)
            uploads.append(delivered)

    rg.uploads_complete()
    with maybe_span(obs, "lsp.answer") as lsp_span:
        encrypted = lsp.answer_group_query_opt(request, uploads, ledger)
    if lsp_span is not None:
        lsp_span.set(kgnn_queries=lsp.last_stats.kgnn_queries)
    encrypted = send(transport, ledger, LSP, COORDINATOR, encrypted)
    rg.answer_delivered(encrypted)

    answers = decrypt_answer(
        keypair, codec, encrypted, ledger, nested=True, guard_round=rg, obs=obs
    )
    broadcast = PlaintextAnswerBroadcast(tuple(answers))
    for user in range(1, n):
        delivered = send(transport, ledger, COORDINATOR, f"user:{user}", broadcast)
        rg.broadcast_delivered(user, delivered)
    rg.finished()

    return ProtocolResult(
        protocol="ppgnn-opt",
        answers=tuple(answers),
        report=ledger.report(),
        delta_prime=delta_prime,
        m=codec.m,
        query_index=plan.query_index,
    )
