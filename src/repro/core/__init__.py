"""The paper's contribution: the PPGNN protocol family.

Public entry points:

- :func:`~repro.core.single.run_single_user` / ``run_single_user_opt`` —
  the n = 1 protocol of Section 3,
- :func:`~repro.core.group.run_ppgnn` — the group protocol of Section 4
  with the Section 5 answer sanitation (PPGNN; ``sanitize=False`` gives
  PPGNN-NAS),
- :func:`~repro.core.opt.run_ppgnn_opt` — the two-phase optimization of
  Section 6 (PPGNN-OPT),
- :func:`~repro.core.naive.run_naive` — the Naive baseline of Section 4,
- :class:`~repro.core.lsp.LSPServer` — the service provider,
- :class:`~repro.core.config.PPGNNConfig` — all privacy/system parameters.
"""

from repro.core.config import PPGNNConfig
from repro.core.group import random_group, run_ppgnn
from repro.core.lsp import LSPServer
from repro.core.naive import run_naive
from repro.core.opt import optimal_omega, paper_omega, run_ppgnn_opt
from repro.core.result import ProtocolResult
from repro.core.sanitize import AnswerSanitizer, SanitationOutcome
from repro.core.session import QuerySession, SessionTotals
from repro.core.single import run_single_user, run_single_user_opt

__all__ = [
    "PPGNNConfig",
    "LSPServer",
    "ProtocolResult",
    "run_ppgnn",
    "run_ppgnn_opt",
    "run_naive",
    "run_single_user",
    "run_single_user_opt",
    "random_group",
    "optimal_omega",
    "paper_omega",
    "AnswerSanitizer",
    "SanitationOutcome",
    "QuerySession",
    "SessionTotals",
]
