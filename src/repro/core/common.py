"""Shared user-side building blocks of the protocol runners."""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import PPGNNConfig

if TYPE_CHECKING:
    from repro.dummies.base import DummyGenerator
from repro.crypto.paillier import KeyPair, generate_keypair
from repro.encoding.answers import AnswerCodec, DecodedAnswer
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.protocol.messages import EncryptedAnswer
from repro.protocol.metrics import COORDINATOR, CostLedger


def derive_rngs(seed: int) -> tuple[random.Random, np.random.Generator]:
    """One seed -> (protocol randomness, dummy-location randomness)."""
    return random.Random(seed), np.random.default_rng(seed)


def group_keypair(config: PPGNNConfig) -> KeyPair:
    """The (sk, pk) pair for a query group.

    Key generation is an offline step (keys exist before any query is
    posed), so runners call this outside the user clock; with a
    ``key_seed`` the pair is cached across runs, keeping benchmark sweeps
    comparable to the paper's timing which excludes key setup.
    """
    return generate_keypair(config.keysize, seed=config.key_seed)


def build_location_set(
    real_location: Point,
    position: int,
    size: int,
    space: LocationSpace,
    rng: np.random.Generator,
    generator: "DummyGenerator | None" = None,
) -> tuple[Point, ...]:
    """A length-``size`` location set with the real location at ``position``.

    The remaining slots are dummy locations from ``generator`` (default:
    uniform over the space, the paper's evaluation model; PAD-style and
    POI-aware strategies live in :mod:`repro.dummies`).  The real location
    must lie inside the space — Privacy I hinges on dummies and real
    locations being indistinguishable.
    """
    if not 0 <= position < size:
        raise ConfigurationError(f"position {position} out of range [0, {size})")
    if not space.contains(real_location):
        raise ConfigurationError(f"real location {real_location} outside the space")
    if generator is None:
        dummies = space.sample_points(size - 1, rng)
    else:
        dummies = generator.generate(size - 1, space, rng)
        if len(dummies) != size - 1:
            raise ConfigurationError(
                f"dummy generator returned {len(dummies)} locations, "
                f"expected {size - 1}"
            )
        for dummy in dummies:
            if not space.contains(dummy):
                raise ConfigurationError(f"dummy {dummy} outside the space")
    return tuple(dummies[:position]) + (real_location,) + tuple(dummies[position:])


def decrypt_answer(
    keypair: KeyPair,
    codec: AnswerCodec,
    encrypted: EncryptedAnswer,
    ledger: CostLedger,
    nested: bool = False,
    guard_round=None,
) -> list[DecodedAnswer]:
    """Coordinator-side answer decryption + decoding (charged to its clock).

    ``guard_round`` (a :class:`~repro.guard.guard.RoundGuard`) range-checks
    the decrypted plaintexts and attributes decode failures to the LSP;
    None keeps the trusting decode path.
    """
    with ledger.clock(COORDINATOR):
        counter = ledger.counter(COORDINATOR)
        if nested:
            integers = [
                keypair.secret_key.decrypt_nested(c) for c in encrypted.ciphertexts
            ]
            counter.decryptions += 2 * len(encrypted.ciphertexts)
        else:
            integers = [keypair.secret_key.decrypt(c) for c in encrypted.ciphertexts]
            counter.decryptions += len(encrypted.ciphertexts)
        if guard_round is not None:
            return guard_round.decode_plaintexts(codec, integers)
        return codec.decode(integers)
