"""Shared user-side building blocks of the protocol runners."""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import PPGNNConfig

if TYPE_CHECKING:
    from repro.dummies.base import DummyGenerator
from repro.crypto.paillier import KeyPair, generate_keypair
from repro.encoding.answers import AnswerCodec, DecodedAnswer
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace
from repro.obs import Observability, maybe_span
from repro.protocol.messages import EncryptedAnswer
from repro.protocol.metrics import COORDINATOR, CostLedger


def derive_rngs(seed: int) -> tuple[random.Random, np.random.Generator]:
    """One seed -> (protocol randomness, dummy-location randomness)."""
    return random.Random(seed), np.random.default_rng(seed)


def group_keypair(config: PPGNNConfig) -> KeyPair:
    """The (sk, pk) pair for a query group.

    Key generation is an offline step (keys exist before any query is
    posed), so runners call this outside the user clock; with a
    ``key_seed`` the pair is cached across runs, keeping benchmark sweeps
    comparable to the paper's timing which excludes key setup.
    """
    return generate_keypair(config.keysize, seed=config.key_seed)


def build_location_set(
    real_location: Point,
    position: int,
    size: int,
    space: LocationSpace,
    rng: np.random.Generator,
    generator: "DummyGenerator | None" = None,
) -> tuple[Point, ...]:
    """A length-``size`` location set with the real location at ``position``.

    The remaining slots are dummy locations from ``generator`` (default:
    uniform over the space, the paper's evaluation model; PAD-style and
    POI-aware strategies live in :mod:`repro.dummies`).  The real location
    must lie inside the space — Privacy I hinges on dummies and real
    locations being indistinguishable.
    """
    if not 0 <= position < size:
        raise ConfigurationError(f"position {position} out of range [0, {size})")
    if not space.contains(real_location):
        raise ConfigurationError(f"real location {real_location} outside the space")
    if generator is None:
        dummies = space.sample_points(size - 1, rng)
    else:
        dummies = generator.generate(size - 1, space, rng)
        if len(dummies) != size - 1:
            raise ConfigurationError(
                f"dummy generator returned {len(dummies)} locations, "
                f"expected {size - 1}"
            )
        for dummy in dummies:
            if not space.contains(dummy):
                raise ConfigurationError(f"dummy {dummy} outside the space")
    return tuple(dummies[:position]) + (real_location,) + tuple(dummies[position:])


def publish_round(obs: "Observability", span, result, lsp) -> None:
    """Stamp a finished round's costs onto its span and the metrics registry.

    Called by the protocol runners when ``obs`` is armed, after the round
    guard closed.  The span carries the *deterministic* per-round totals
    (operation counts, communication bytes, the LSP's kGNN call count) —
    the numbers the acceptance test compares against
    :meth:`~repro.serve.costs.CostModel.predict_ops`.
    """
    ops = result.report.ops_by_role
    encryptions = sum(c.encryptions for c in ops.values())
    decryptions = sum(c.decryptions for c in ops.values())
    scalar_muls = sum(c.scalar_muls for c in ops.values())
    additions = sum(c.additions for c in ops.values())
    stats = getattr(lsp, "last_stats", None)
    kgnn_queries = stats.kgnn_queries if stats is not None else 0
    span.set(
        protocol=result.protocol,
        encryptions=encryptions,
        decryptions=decryptions,
        scalar_muls=scalar_muls,
        additions=additions,
        kgnn_queries=kgnn_queries,
        comm_bytes=result.report.total_comm_bytes,
    )
    obs.count("crypto.encryptions", encryptions)
    obs.count("crypto.scalar_muls", scalar_muls)
    obs.count("crypto.additions", additions)
    obs.count("lsp.kgnn_queries", kgnn_queries)


def decrypt_answer(
    keypair: KeyPair,
    codec: AnswerCodec,
    encrypted: EncryptedAnswer,
    ledger: CostLedger,
    nested: bool = False,
    guard_round=None,
    obs: "Observability | None" = None,
) -> list[DecodedAnswer]:
    """Coordinator-side answer decryption + decoding (charged to its clock).

    ``guard_round`` (a :class:`~repro.guard.guard.RoundGuard`) range-checks
    the decrypted plaintexts and attributes decode failures to the LSP;
    None keeps the trusting decode path.  ``obs`` records a
    ``coordinator.decrypt`` span and splits the
    ``crypto.decryptions.crt`` / ``.generic`` counters by the path each
    decryption actually took.
    """
    with maybe_span(
        obs, "coordinator.decrypt", ciphertexts=len(encrypted.ciphertexts)
    ) as span:
        with ledger.clock(COORDINATOR):
            counter = ledger.counter(COORDINATOR)
            crt = generic = 0
            integers = []
            if nested:
                for c in encrypted.ciphertexts:
                    value, paths = keypair.secret_key.decrypt_nested_with_path(c)
                    integers.append(value)
                    for path in paths:
                        crt += path == "crt"
                        generic += path == "generic"
                counter.decryptions += 2 * len(encrypted.ciphertexts)
            else:
                for c in encrypted.ciphertexts:
                    value, path = keypair.secret_key.decrypt_with_path(c)
                    integers.append(value)
                    crt += path == "crt"
                    generic += path == "generic"
                counter.decryptions += len(encrypted.ciphertexts)
            if obs is not None:
                obs.count("crypto.decryptions.crt", crt)
                obs.count("crypto.decryptions.generic", generic)
                span.set(crt=crt, generic=generic)
            if guard_round is not None:
                return guard_round.decode_plaintexts(codec, integers)
            return codec.decode(integers)
