"""Multi-query sessions: amortized setup and aggregated accounting.

A real deployment does not regenerate keys or re-solve the partition
parameters per query — a group establishes them once (the paper treats
both as offline work) and then issues many queries.  :class:`QuerySession`
packages that lifecycle: one key pair, one configuration, per-query seeds
derived from a session seed, and a running total of the cost reports —
the shape a downstream application would actually embed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.config import PPGNNConfig
from repro.core.group import run_ppgnn
from repro.core.lsp import LSPServer
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt
from repro.core.result import ProtocolResult
from repro.crypto.noncepool import NoncePool
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.guard.guard import ProtocolGuard
from repro.obs import Observability, maybe_span

_RUNNERS: dict[str, Callable] = {
    "ppgnn": run_ppgnn,
    "ppgnn-opt": run_ppgnn_opt,
    "naive": run_naive,
}


@dataclass
class SessionTotals:
    """Accumulated costs across the session's queries."""

    queries: int = 0
    comm_bytes: int = 0
    user_seconds: float = 0.0
    lsp_seconds: float = 0.0
    answers_returned: int = 0

    def add(self, result: ProtocolResult) -> None:
        """Fold one protocol result into the running totals."""
        self.queries += 1
        self.comm_bytes += result.report.total_comm_bytes
        self.user_seconds += result.report.user_cost_seconds
        self.lsp_seconds += result.report.lsp_cost_seconds
        self.answers_returned += len(result.answers)

    @property
    def mean_comm_bytes(self) -> float:
        return self.comm_bytes / self.queries if self.queries else 0.0

    @property
    def mean_answers(self) -> float:
        return self.answers_returned / self.queries if self.queries else 0.0


@dataclass
class QuerySession:
    """A long-lived query relationship between one group shape and one LSP.

    Parameters
    ----------
    lsp:
        The provider to query.
    config:
        Privacy/system parameters, fixed for the session.  A ``key_seed``
        is required: it pins the session key pair so every query reuses it
        (the offline-setup model).
    protocol:
        ``"ppgnn"`` (default), ``"ppgnn-opt"``, or ``"naive"``.
    seed:
        Session seed; query i runs with ``seed + i``.
    max_history:
        Retained :class:`ProtocolResult` count.  A long-lived session would
        otherwise grow ``history`` (and every transcript it pins) without
        bound; only the newest ``max_history`` results are kept, while
        ``totals`` stays exact over *all* queries.  ``None`` disables the
        cap.
    guard:
        A :class:`~repro.guard.guard.ProtocolGuard` arming the
        hostile-input defenses for every query; None (default) keeps the
        historical trusting behavior.
    nonce_pool:
        A :class:`~repro.crypto.noncepool.NoncePool` under the session key;
        every query's indicator encryptions then spend precomputed
        obfuscation factors.  Pools may be shared across sessions with the
        same public key (the serving engine does exactly that); None keeps
        the online-encryption behavior.
    obs:
        An :class:`~repro.obs.Observability` handle; every query then
        traces a ``session.query`` span (with the protocol round and its
        phases as children) and publishes the crypto counters.  None
        (default) keeps the uninstrumented path byte-identical.
    """

    lsp: LSPServer
    config: PPGNNConfig
    protocol: str = "ppgnn"
    seed: int = 0
    totals: SessionTotals = field(default_factory=SessionTotals)
    history: list[ProtocolResult] = field(default_factory=list)
    max_history: int | None = 256
    guard: ProtocolGuard | None = None
    nonce_pool: "NoncePool | None" = None
    obs: Observability | None = None

    def __post_init__(self) -> None:
        if self.protocol not in _RUNNERS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; known: {sorted(_RUNNERS)}"
            )
        if self.config.key_seed is None:
            raise ConfigurationError(
                "sessions reuse one key pair; set config.key_seed"
            )
        if self.max_history is not None and self.max_history < 0:
            raise ConfigurationError("max_history must be non-negative or None")

    def _remember(self, result: ProtocolResult) -> None:
        """Append to history, trimming to the newest ``max_history`` entries."""
        self.history.append(result)
        if self.max_history is not None and len(self.history) > self.max_history:
            del self.history[: len(self.history) - self.max_history]

    def query(
        self, locations: Sequence[Point], seed: int | None = None
    ) -> ProtocolResult:
        """Run one group query and fold its costs into the session totals.

        ``seed`` overrides this query's randomness seed (default: the
        session sequence ``self.seed + totals.queries``).  An explicit seed
        lets a serving layer re-issue a query *verbatim* — same dummies,
        same placement plan — which is what makes repeated queries
        cache-servable; the totals still advance normally.
        """
        runner = _RUNNERS[self.protocol]
        with maybe_span(
            self.obs, "session.query", protocol=self.protocol, n=len(locations)
        ):
            result = runner(
                self.lsp,
                locations,
                self.config,
                seed=self.seed + self.totals.queries if seed is None else seed,
                nonce_pool=self.nonce_pool,
                guard=self.guard,
                obs=self.obs,
            )
        self.totals.add(result)
        self._remember(result)
        return result

    def reset_totals(self) -> SessionTotals:
        """Start a fresh accounting period; returns the closed one."""
        closed = self.totals
        self.totals = SessionTotals()
        self.history = []
        return closed

    # ----------------------------------------------------------- durability

    def checkpoint(self) -> bytes:
        """Freeze the session's durable state (crash-safe resume point).

        Captures protocol, seed, configuration, and the exact running
        totals — not the result history — via
        :func:`repro.guard.checkpoint.checkpoint_session`.
        """
        from repro.guard.checkpoint import checkpoint_session

        return checkpoint_session(self)

    @classmethod
    def restore(cls, data: bytes, lsp: LSPServer, **session_kwargs) -> "QuerySession":
        """Rebuild a session from :meth:`checkpoint` bytes.

        The restored session's next query uses ``seed + totals.queries`` —
        exactly the seed the checkpointed session would have used next, so
        finishing the remaining queries yields totals equal to an
        uninterrupted run.
        """
        from repro.guard.checkpoint import restore_session

        return restore_session(data, lsp, session_cls=cls, **session_kwargs)
