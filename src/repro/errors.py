"""Exception hierarchy for the PPGNN reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library produces with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter value is outside its documented domain.

    Examples: ``d < 2`` for the Privacy I anonymity parameter, a ``delta``
    larger than ``d ** n`` (no feasible partition exists), or a key size too
    small to hold an encoded answer integer.
    """


class CryptoError(ReproError):
    """A cryptographic operation failed or was used inconsistently.

    Raised for plaintexts outside the plaintext space, ciphertexts combined
    under mismatching public keys, or decryption with the wrong key.
    """


class EncodingError(ReproError):
    """Answer encoding or decoding failed.

    Raised when a value does not fit its packed field width, or when a
    decoded buffer is structurally invalid.
    """


class ProtocolError(ReproError):
    """A party received a message that violates the protocol state machine."""


class InfeasibleError(ConfigurationError):
    """No feasible solution exists for an optimization problem instance.

    Raised by the partition-parameter solver when ``delta > d ** n`` — the
    paper requires users to pick a larger ``d`` in that case.
    """


class TransportError(ReproError):
    """A message could not be carried across an unreliable channel.

    Base class for delivery failures in :mod:`repro.transport`; protocol
    answers are never silently wrong — an undeliverable message surfaces
    as one of the subclasses below instead.
    """


class RetryExhaustedError(TransportError):
    """Every retransmission attempt for one message failed.

    Carries the directed ``link`` and the number of ``attempts`` made so
    callers can report which hop of the protocol died.
    """

    def __init__(self, link: tuple[str, str], attempts: int) -> None:
        self.link = link
        self.attempts = attempts
        super().__init__(
            f"link {link[0]} -> {link[1]} dead after {attempts} attempts"
        )


class GroupMemberLostError(TransportError, ProtocolError):
    """A group member became unreachable mid-protocol.

    Also a :class:`ProtocolError`: losing a member invalidates the round's
    partition layout.  ``user_index`` identifies the lost member so a
    resilient caller can re-run the round with the survivors.
    """

    def __init__(self, party: str, user_index: int, attempts: int) -> None:
        self.party = party
        self.user_index = user_index
        self.attempts = attempts
        super().__init__(
            f"group member {party} unreachable after {attempts} attempts"
        )
