"""Exception hierarchy for the PPGNN reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library produces with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter value is outside its documented domain.

    Examples: ``d < 2`` for the Privacy I anonymity parameter, a ``delta``
    larger than ``d ** n`` (no feasible partition exists), or a key size too
    small to hold an encoded answer integer.
    """


class CryptoError(ReproError):
    """A cryptographic operation failed or was used inconsistently.

    Raised for plaintexts outside the plaintext space, ciphertexts combined
    under mismatching public keys, or decryption with the wrong key.
    """


class EncodingError(ReproError):
    """Answer encoding or decoding failed.

    Raised when a value does not fit its packed field width, or when a
    decoded buffer is structurally invalid.
    """


class ProtocolError(ReproError):
    """A party received a message that violates the protocol state machine."""


class GuardError(ProtocolError):
    """A hostile-input defense in :mod:`repro.guard` fired.

    Every guard rejection names the protocol round it happened in and the
    party whose inbound message (or silence) triggered it, so an operator
    can attribute the abuse without replaying the transcript.
    """

    def __init__(self, message: str, *, round_id: int = 0, party: str = "") -> None:
        self.round_id = round_id
        self.party = party
        origin = f" [round {round_id}, party {party or '?'}]"
        super().__init__(message + origin)


class ProtocolStateError(GuardError):
    """A message arrived out of order, duplicated, or in the wrong phase.

    Raised by the per-role state machines of :mod:`repro.guard.state`: a
    replayed upload, a second query request, an answer before any request —
    anything the round's phase ordering forbids.
    """


class InboundValidationError(GuardError):
    """An inbound message is structurally or cryptographically malformed.

    Raised by :mod:`repro.guard.validate` before the payload reaches the
    crypto layer: ciphertexts outside ``Z*_{N^{s+1}}``, wrong level tags,
    indicator/candidate shapes that contradict the solved partition,
    NaN/out-of-space locations, undecodable plaintexts.
    """


class DeadlineExceededError(GuardError):
    """A round blew its simulated-network time budget.

    Carries the ``elapsed`` and ``budget`` seconds plus a partial
    ``report`` (a :class:`~repro.protocol.metrics.CostReport` frozen at
    abort time) so callers can account the wasted traffic instead of
    hanging on a silent or stalling counterpart.
    """

    def __init__(
        self,
        *,
        round_id: int = 0,
        party: str = "",
        elapsed: float = 0.0,
        budget: float = 0.0,
        report: object | None = None,
    ) -> None:
        self.elapsed = elapsed
        self.budget = budget
        self.report = report
        super().__init__(
            f"round deadline exceeded: {elapsed:.3f}s of simulated network "
            f"time against a budget of {budget:.3f}s",
            round_id=round_id,
            party=party,
        )


class CheckpointError(ReproError):
    """A session checkpoint could not be restored.

    Raised for version/field mismatches the byte-level
    :class:`CryptoError` checks cannot express, e.g. a checkpoint naming
    an unknown protocol.
    """


class InfeasibleError(ConfigurationError):
    """No feasible solution exists for an optimization problem instance.

    Raised by the partition-parameter solver when ``delta > d ** n`` — the
    paper requires users to pick a larger ``d`` in that case.
    """


class TransportError(ReproError):
    """A message could not be carried across an unreliable channel.

    Base class for delivery failures in :mod:`repro.transport`; protocol
    answers are never silently wrong — an undeliverable message surfaces
    as one of the subclasses below instead.
    """


class RetryExhaustedError(TransportError):
    """Every retransmission attempt for one message failed.

    Carries the directed ``link`` and the number of ``attempts`` made so
    callers can report which hop of the protocol died.  When a session
    retry *budget* (see :class:`~repro.transport.retry.RetryPolicy`
    ``retry_budget``) is what gave up, ``retries_spent`` and
    ``retry_budget`` carry the accounting.
    """

    # Class-level defaults so subclasses that bypass this __init__
    # (ShardLostError) still expose the budget accounting attributes.
    retries_spent: int | None = None
    retry_budget: int | None = None

    def __init__(
        self,
        link: tuple[str, str],
        attempts: int,
        *,
        retries_spent: int | None = None,
        retry_budget: int | None = None,
    ) -> None:
        self.link = link
        self.attempts = attempts
        self.retries_spent = retries_spent
        self.retry_budget = retry_budget
        message = f"link {link[0]} -> {link[1]} dead after {attempts} attempts"
        if retry_budget is not None:
            # The session-wide retry budget gave up, not the per-message
            # attempt loop: say so, with the accounting attached.
            message = (
                f"link {link[0]} -> {link[1]} abandoned: session retry "
                f"budget exhausted ({retries_spent} of {retry_budget} "
                "retransmissions spent)"
            )
        super().__init__(message)


class ShardLostError(RetryExhaustedError):
    """An LSP shard (every reachable replica of it) is unreachable.

    Distinguishes a dead *party* on the provider side from a merely dead
    channel: the failed endpoint was a scripted-dead LSP, so retrying the
    same link is pointless — the cure is failover to another replica or,
    past the quorum, a degraded :class:`~repro.cluster.merge.PartialAnswer`.
    Deliberately *not* a :class:`GroupMemberLostError`: losing a shard
    never invalidates the group's partition layout, so
    :class:`~repro.transport.session.ResilientSession` must not regroup
    around it.
    """

    def __init__(
        self,
        party: str,
        shard_id: int,
        link: tuple[str, str],
        attempts: int,
    ) -> None:
        self.party = party
        self.shard_id = shard_id
        # Skip RetryExhaustedError.__init__ to keep its fields but not
        # its message; a dead shard is not a dead link.
        self.link = link
        self.attempts = attempts
        TransportError.__init__(
            self,
            f"LSP shard {shard_id} ({party}) unreachable after "
            f"{attempts} attempts",
        )


class GroupMemberLostError(TransportError, ProtocolError):
    """A group member became unreachable mid-protocol.

    Also a :class:`ProtocolError`: losing a member invalidates the round's
    partition layout.  ``user_index`` identifies the lost member so a
    resilient caller can re-run the round with the survivors.
    """

    def __init__(self, party: str, user_index: int, attempts: int) -> None:
        self.party = party
        self.user_index = user_index
        self.attempts = attempts
        super().__init__(
            f"group member {party} unreachable after {attempts} attempts"
        )


class BackpressureError(ReproError):
    """The serving engine refused to accept more work.

    Base class for admission-control rejections in :mod:`repro.serve`; a
    rejected query is never silently dropped — the engine counts it and
    surfaces one of the subclasses below in the serving report.  Every
    subclass exposes the queue ``depth`` and ``capacity`` observed at
    rejection time (None where the rejection happened before the queue).
    """

    depth: int | None = None
    capacity: int | None = None


class QueueFullError(BackpressureError):
    """A bounded scheduler queue is at capacity.

    Carries the queue ``depth`` at rejection time and the configured
    ``capacity`` so operators can size queues from the report.
    """

    def __init__(self, depth: int, capacity: int) -> None:
        self.depth = depth
        self.capacity = capacity
        super().__init__(f"queue full: {depth} waiting against capacity {capacity}")


class AdmissionRejectedError(BackpressureError):
    """Admission control turned a query away before it reached the queue.

    ``tenant`` names the over-quota tenant and ``in_flight`` its
    admitted-but-unfinished query count at rejection time.
    """

    def __init__(self, tenant: str, in_flight: int, limit: int) -> None:
        self.tenant = tenant
        self.in_flight = in_flight
        self.limit = limit
        super().__init__(
            f"tenant {tenant!r} over quota: {in_flight} in flight, limit {limit}"
        )


class OverloadSheddedError(AdmissionRejectedError):
    """The overload controller shed this session at admission time.

    Unlike a quota rejection this is a *load* decision, not a fairness
    one: the control loop's pressure signal (``burn_rate``, the max SLO
    burn observed at the most recent control tick) crossed the brownout
    threshold and ``tenant`` was selected for shedding.
    ``retry_after_tick`` is the control tick after which the client
    should retry — the controller's own estimate of when pressure will
    have drained.
    """

    def __init__(
        self, tenant: str, *, retry_after_tick: int, burn_rate: float
    ) -> None:
        self.tenant = tenant
        self.retry_after_tick = retry_after_tick
        self.burn_rate = burn_rate
        # Skip AdmissionRejectedError.__init__: shedding has no quota
        # accounting, carrying in_flight/limit here would be a lie.
        self.in_flight = 0
        self.limit = 0
        BackpressureError.__init__(
            self,
            f"tenant {tenant!r} shed under overload (burn {burn_rate:.2f}x); "
            f"retry after control tick {retry_after_tick}",
        )


class PerfRegressionError(ReproError):
    """A benchmark run regressed against its committed baseline.

    Raised by the performance sentinel (:mod:`repro.bench.sentinel`) when
    an exact counter — operation counts, rounds, bytes on the wire —
    moved the wrong way relative to a recorded baseline.  ``regressions``
    carries the offending metric deltas so reports can name them.
    """

    def __init__(self, experiment: str, regressions: list) -> None:
        self.experiment = experiment
        self.regressions = regressions
        names = ", ".join(delta.name for delta in regressions)
        super().__init__(
            f"experiment {experiment!r} regressed {len(regressions)} "
            f"exact counter(s): {names}"
        )
