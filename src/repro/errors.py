"""Exception hierarchy for the PPGNN reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library produces with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter value is outside its documented domain.

    Examples: ``d < 2`` for the Privacy I anonymity parameter, a ``delta``
    larger than ``d ** n`` (no feasible partition exists), or a key size too
    small to hold an encoded answer integer.
    """


class CryptoError(ReproError):
    """A cryptographic operation failed or was used inconsistently.

    Raised for plaintexts outside the plaintext space, ciphertexts combined
    under mismatching public keys, or decryption with the wrong key.
    """


class EncodingError(ReproError):
    """Answer encoding or decoding failed.

    Raised when a value does not fit its packed field width, or when a
    decoded buffer is structurally invalid.
    """


class ProtocolError(ReproError):
    """A party received a message that violates the protocol state machine."""


class InfeasibleError(ConfigurationError):
    """No feasible solution exists for an optimization problem instance.

    Raised by the partition-parameter solver when ``delta > d ** n`` — the
    paper requires users to pick a larger ``d`` in that case.
    """
