"""One-tailed hypothesis testing for the inequality-attack region size.

Implements Section 5.3 of the paper:

- ``H0: theta <= theta_0`` (the attack succeeds) versus
  ``H1: theta > theta_0`` (the user's feasible region is large enough),
- reject H0 when the count X of Monte-Carlo samples inside the region
  exceeds ``N_H * theta_0 + z_gamma * sqrt(N_H * theta_0 * (1 - theta_0))``
  (Eqn 16),
- the sample size N_H bounding both error types comes from the Fleiss
  formula (Eqn 17) with ``theta_1 = theta_0 * (1 + phi)``.

The normal quantile uses Acklam's rational approximation (absolute error
below 1.2e-9) so the core library does not depend on scipy; the test suite
cross-checks it against ``scipy.stats.norm.ppf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

# Coefficients of Acklam's inverse-normal-CDF approximation.
_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def normal_quantile(p: float) -> float:
    """The standard normal quantile ``Phi^{-1}(p)`` for ``p`` in (0, 1)."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"quantile argument must be in (0, 1), got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    if p <= _P_HIGH:
        q = p - 0.5
        r = q * q
        return (
            (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5])
            * q
            / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
    ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)


def required_sample_size(
    theta0: float, gamma: float = 0.05, eta: float = 0.2, phi: float = 0.1
) -> int:
    """Eqn (17): the Monte-Carlo sample count N_H for the sanitation test.

    Bounds Pr(Type I error) <= gamma and Pr(Type II error) <= eta for the
    alternative ``theta_1 = theta_0 * (1 + phi)``.
    """
    if not 0.0 < theta0 < 1.0:
        raise ConfigurationError("theta0 must be in (0, 1)")
    theta1 = theta0 * (1.0 + phi)
    if not theta0 < theta1 < 1.0:
        raise ConfigurationError("theta1 = theta0 * (1 + phi) must stay below 1")
    if not (0.0 < gamma < 0.5 and 0.0 < eta < 0.5):
        raise ConfigurationError("gamma and eta must be in (0, 0.5)")
    z_gamma = normal_quantile(1.0 - gamma)
    z_eta = normal_quantile(1.0 - eta)
    numerator = z_gamma * math.sqrt(theta0 * (1.0 - theta0)) + z_eta * math.sqrt(
        theta1 * (1.0 - theta1)
    )
    return math.ceil((numerator / (theta1 - theta0)) ** 2)


def rejection_threshold(n_samples: int, theta0: float, gamma: float = 0.05) -> float:
    """Eqn (16): reject H0 (declare the prefix safe) when X exceeds this."""
    if n_samples < 1:
        raise ConfigurationError("sample count must be positive")
    if not 0.0 < theta0 < 1.0:
        raise ConfigurationError("theta0 must be in (0, 1)")
    z_gamma = normal_quantile(1.0 - gamma)
    return n_samples * theta0 + z_gamma * math.sqrt(n_samples * theta0 * (1.0 - theta0))


@dataclass(frozen=True, slots=True)
class SanitationTestPlan:
    """A fully resolved test: sample size and rejection threshold.

    Built once per ``(theta0, gamma, eta, phi)`` configuration and reused
    across every candidate query and target user.
    """

    theta0: float
    gamma: float
    eta: float
    phi: float
    n_samples: int
    threshold: float

    @classmethod
    def from_parameters(
        cls,
        theta0: float,
        gamma: float = 0.05,
        eta: float = 0.2,
        phi: float = 0.1,
        n_samples_override: int | None = None,
    ) -> "SanitationTestPlan":
        """Resolve Eqns (16)-(17) for the given privacy parameters.

        ``n_samples_override`` substitutes a custom sample count (tests use
        small counts for speed) while keeping the threshold consistent.
        """
        n_samples = (
            n_samples_override
            if n_samples_override is not None
            else required_sample_size(theta0, gamma, eta, phi)
        )
        return cls(
            theta0=theta0,
            gamma=gamma,
            eta=eta,
            phi=phi,
            n_samples=n_samples,
            threshold=rejection_threshold(n_samples, theta0, gamma),
        )

    def is_safe(self, inside_count: int) -> bool:
        """Whether a count of in-region samples rejects H0 (prefix is safe)."""
        return inside_count > self.threshold
