"""Statistical machinery for the answer sanitation (Section 5.3).

The LSP decides whether an attacked user's feasible region exceeds the
``theta_0`` fraction of the space by a one-tailed Z-test over Monte-Carlo
samples; the sample size comes from the Fleiss formula the paper cites
(Theorem 5.1).
"""

from repro.stats.hypothesis import (
    SanitationTestPlan,
    normal_quantile,
    rejection_threshold,
    required_sample_size,
)

__all__ = [
    "normal_quantile",
    "required_sample_size",
    "rejection_threshold",
    "SanitationTestPlan",
]
